//! The paper's virtualization claims, end to end: transactions survive
//! paging, context switches, and inter-process physical sharing.

use unbounded_ptm::cache::CacheConfig;
use unbounded_ptm::sim::{
    assert_serializable, run, Machine, MachineConfig, Op, SystemKind, ThreadProgram,
};
use unbounded_ptm::types::{Granularity, ProcessId, ThreadId, VirtAddr};
use unbounded_ptm::workloads::{splash2, Scale};

fn begin(lock: u64) -> Op {
    Op::Begin {
        ordered: None,
        lock: VirtAddr::new(lock),
    }
}

fn tiny_caches() -> MachineConfig {
    MachineConfig {
        l1: CacheConfig::tiny(2, 1),
        l2: CacheConfig::tiny(4, 2),
        ..MachineConfig::default()
    }
}

#[test]
fn transactional_pages_survive_swap_out_before_execution() {
    // Write committed data, swap the page out, then run a transaction over
    // it: the access faults, PTM swaps home (and later shadow) back in, and
    // the transaction proceeds correctly.
    let data = VirtAddr::new(0x4000);
    let prog = ThreadProgram::new(
        ProcessId(0),
        ThreadId(0),
        vec![begin(0x100), Op::Rmw(data, 5), Op::End],
    );
    for kind in [
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::CopyPtm,
        SystemKind::Vtm,
    ] {
        let mut m = Machine::new(MachineConfig::default(), kind, vec![prog.clone()]);
        m.prefault(ProcessId(0), data);
        // Seed a committed value, then push the page out to swap.
        {
            let frame = m.prefault(ProcessId(0), data);
            let pa = unbounded_ptm::types::PhysAddr::from_frame(frame, data.page_offset());
            m.memory_mut().write_word(pa, 100);
        }
        m.force_swap_out(ProcessId(0), data.vpn());
        m.run();
        assert_eq!(
            m.read_committed(ProcessId(0), data),
            105,
            "{kind}: swapped data + transactional increment"
        );
        assert_eq!(m.kernel_stats().swap_ins, 1, "{kind}");
        assert_eq!(m.stats().commits, 1, "{kind}");
    }
}

#[test]
fn overflowed_transaction_state_survives_page_migration() {
    // A transaction dirty-overflows a page; we then swap the page out and
    // back in *mid-machine-life* via the PTM paging hooks and let a second
    // transaction conflict with the first — detection must still work on
    // the migrated frame. (Covered at the unit level too; this exercises it
    // through the whole machine.)
    let w = splash2(Scale::Tiny).remove(3); // ocean: plenty of overflow
    let kind = SystemKind::SelectPtm(Granularity::Block);
    let programs = w.programs_for(kind);
    let mut cfg = w.machine_config();
    cfg.kernel.cs_interval = Some(5_000);
    let m = run(cfg, kind, programs.clone());
    assert!(m.kernel_stats().context_switches > 0);
    assert_serializable(&m, &programs);
}

#[test]
fn context_switch_storm_does_not_break_transactions() {
    for kind in [
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::CopyPtm,
        SystemKind::Vtm,
        SystemKind::VictimVtm,
    ] {
        let w = unbounded_ptm::workloads::synthetic::contended(99);
        let mut cfg = w.machine_config();
        cfg.l1 = CacheConfig::tiny(2, 1);
        cfg.l2 = CacheConfig::tiny(4, 2);
        cfg.kernel.cs_interval = Some(1_500);
        cfg.kernel.exc_interval = Some(700);
        let programs = w.programs();
        let m = run(cfg, kind, programs.clone());
        assert!(m.kernel_stats().context_switches > 0, "{kind}");
        assert!(m.kernel_stats().exceptions > 0, "{kind}");
        assert_serializable(&m, &programs);
    }
}

#[test]
fn interprocess_sharing_detected_by_ptm() {
    // Two processes, one physical page: PTM's physically-indexed structures
    // see the conflict; the final value is a serializable outcome.
    let va0 = VirtAddr::new(0x1000);
    let va1 = VirtAddr::new(0x7000);
    let t0 = ThreadProgram::new(
        ProcessId(0),
        ThreadId(0),
        vec![
            begin(0x100),
            Op::Rmw(va0, 1),
            Op::Compute(2000),
            Op::Rmw(va0.offset(8), 1),
            Op::End,
        ],
    );
    let t1 = ThreadProgram::new(
        ProcessId(1),
        ThreadId(1),
        vec![Op::Compute(400), begin(0x140), Op::Rmw(va1, 10), Op::End],
    );
    let mut m = Machine::new(
        tiny_caches(),
        SystemKind::SelectPtm(Granularity::Block),
        vec![t0, t1],
    );
    let frame = m.prefault(ProcessId(0), va0);
    m.kernel_mut().map_shared(ProcessId(1), va1.vpn(), frame);
    m.run();
    let v0 = m.read_committed(ProcessId(0), va0);
    let v1 = m.read_committed(ProcessId(1), va1);
    assert_eq!(v0, v1, "one physical word");
    assert_eq!(v0, 11, "both increments landed");
}

#[test]
fn overflow_survives_forced_swap_cycle_under_pressure() {
    // Force transactional overflow (tiny caches) and inject frequent
    // context switches; every workload still serializes.
    for w in splash2(Scale::Tiny) {
        let kind = SystemKind::SelectPtm(Granularity::Block);
        let mut cfg = w.machine_config();
        cfg.l1 = CacheConfig::tiny(2, 1);
        cfg.l2 = CacheConfig::tiny(8, 2);
        cfg.kernel.cs_interval = Some(3_000);
        let programs = w.programs_for(kind);
        let m = run(cfg, kind, programs.clone());
        assert_serializable(&m, &programs);
        let ptm = m.backend().as_ptm().expect("select run");
        assert!(
            ptm.stats().overflows() > 0,
            "{}: tiny caches must overflow",
            w.name
        );
    }
}

#[test]
fn thread_migration_across_workloads_is_serializable() {
    // §4.7: PTM updates SPT/TAV entries with just the physical address, so
    // transactions survive migration without reverse translation. Run every
    // kernel with aggressive migrating context switches.
    for w in splash2(Scale::Tiny) {
        let kind = SystemKind::SelectPtm(Granularity::Block);
        let mut cfg = w.machine_config();
        cfg.kernel.cs_interval = Some(2_500);
        cfg.kernel.migrate_on_cs = true;
        let programs = w.programs_for(kind);
        let m = run(cfg, kind, programs.clone());
        assert!(m.kernel_stats().context_switches > 0, "{}", w.name);
        assert_serializable(&m, &programs);
    }
}
