//! Property-based end-to-end testing: random synthetic workloads must be
//! serializable under every TM system, with tiny caches forcing the
//! overflow machinery into play.

use proptest::prelude::*;
use unbounded_ptm::cache::CacheConfig;
use unbounded_ptm::sim::{diff_against_machine, run, SystemKind};
use unbounded_ptm::types::Granularity;
use unbounded_ptm::workloads::synthetic::{workload, SyntheticConfig};

fn small_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        2usize..=4,   // threads
        1usize..=8,   // txs per thread
        1usize..=30,  // ops per tx
        1usize..=4,   // private pages
        1usize..=2,   // shared pages
        0.0f64..=1.0, // shared fraction
        0.1f64..=0.9, // write fraction
        any::<u64>(), // seed
    )
        .prop_map(
            |(threads, txs, ops, private, shared, sf, wf, seed)| SyntheticConfig {
                threads,
                txs_per_thread: txs,
                ops_per_tx: ops,
                private_pages: private,
                shared_pages: shared,
                shared_fraction: sf,
                write_fraction: wf,
                seed,
            },
        )
}

fn systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Locks,
        SystemKind::Vtm,
        SystemKind::VictimVtm,
        SystemKind::CopyPtm,
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::SelectPtm(Granularity::WordCache),
        SystemKind::SelectPtm(Granularity::WordCacheMem),
        SystemKind::LogTm,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_workloads_serialize_under_every_system(
        cfg in small_config(),
        migrate in any::<bool>(),
    ) {
        let w = workload(cfg);
        for kind in systems() {
            let programs = w.programs_for(kind);
            let mut mc = w.machine_config();
            // Tiny caches: force overflows even for these small footprints.
            mc.l1 = CacheConfig::tiny(2, 1);
            mc.l2 = CacheConfig::tiny(4, 2);
            if migrate && kind != SystemKind::LogTm {
                // LogTM does not support migration (§5.2).
                mc.kernel.cs_interval = Some(1_700);
                mc.kernel.migrate_on_cs = true;
            }
            let m = run(mc, kind, programs.clone());
            let mismatches = diff_against_machine(&m, &programs);
            prop_assert!(
                mismatches.is_empty(),
                "{kind} (migrate={migrate}) diverged on {cfg:?}: {:?}",
                mismatches.first()
            );
        }
    }

    #[test]
    fn copy_and_select_agree_functionally(cfg in small_config()) {
        // The two PTM policies differ only in *where* versions live and
        // what commits/aborts cost — never in committed values.
        let w = workload(cfg);
        let mut mc = w.machine_config();
        mc.l1 = CacheConfig::tiny(2, 1);
        mc.l2 = CacheConfig::tiny(4, 2);
        let copy = run(mc, SystemKind::CopyPtm, w.programs());
        let select = run(mc, SystemKind::SelectPtm(Granularity::Block), w.programs());
        // Committed values of every word either run wrote must agree.
        for p in &w.programs {
            for pc in 0..p.len() {
                if let Some(op) = p.op_at(pc) {
                    if let Some(addr) = op.addr() {
                        if op.is_write() {
                            let a = copy.read_committed(p.pid(), addr);
                            let b = select.read_committed(p.pid(), addr);
                            prop_assert_eq!(a, b, "policies diverged at {}", addr);
                        }
                    }
                }
            }
        }
    }
}
