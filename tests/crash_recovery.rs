//! End-to-end crash-stop recovery: a machine halted at *any* scheduler step
//! — torn TAV publish included — must recover to exactly the committed
//! prefix the serializability oracle predicts, and recovery must be
//! idempotent.

use proptest::prelude::*;
use unbounded_ptm::cache::CacheConfig;
use unbounded_ptm::sim::crash::CrashPlan;
use unbounded_ptm::sim::{Machine, SystemKind};
use unbounded_ptm::types::Granularity;
use unbounded_ptm::workloads::synthetic::{workload, SyntheticConfig};

fn small_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        2usize..=4,   // threads
        1usize..=6,   // txs per thread
        1usize..=24,  // ops per tx
        1usize..=4,   // private pages
        1usize..=2,   // shared pages
        0.0f64..=1.0, // shared fraction
        0.1f64..=0.9, // write fraction
        any::<u64>(), // seed
    )
        .prop_map(
            |(threads, txs, ops, private, shared, sf, wf, seed)| SyntheticConfig {
                threads,
                txs_per_thread: txs,
                ops_per_tx: ops,
                private_pages: private,
                shared_pages: shared,
                shared_fraction: sf,
                write_fraction: wf,
                seed,
            },
        )
}

/// Tiny caches force transactional overflow, so crashes land on machines
/// with real SPT/SIT/TAV state to recover.
fn tiny_machine(
    cfg: SyntheticConfig,
    kind: SystemKind,
) -> (Machine, Vec<unbounded_ptm::sim::ThreadProgram>) {
    let w = workload(cfg);
    let programs = w.programs_for(kind);
    let mut mc = w.machine_config();
    mc.l1 = CacheConfig::tiny(2, 1);
    mc.l2 = CacheConfig::tiny(4, 2);
    (Machine::new(mc, kind, programs.clone()), programs)
}

/// The six transactional kinds the crash sweep covers.
fn crash_systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Vtm,
        SystemKind::VictimVtm,
        SystemKind::CopyPtm,
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::SelectPtm(Granularity::WordCache),
        SystemKind::SelectPtm(Granularity::WordCacheMem),
    ]
}

/// Total scheduler steps of a full run of `cfg` under `kind`.
fn total_steps(cfg: SyntheticConfig, kind: SystemKind) -> u64 {
    let (mut m, _) = tiny_machine(cfg, kind);
    m.run_until_crash(&CrashPlan::at_step(u64::MAX)).step
}

/// Crash at `plan`, recover, check the oracle and idempotence. Returns the
/// first recovery's stats for callers that assert on them.
fn crash_recover_check(
    cfg: SyntheticConfig,
    kind: SystemKind,
    plan: CrashPlan,
) -> (
    unbounded_ptm::core::recovery::RecoveryStats,
    unbounded_ptm::sim::crash::CrashImage,
) {
    let (mut m, programs) = tiny_machine(cfg, kind);
    let mut img = m.run_until_crash(&plan);
    let stats = img.recover();
    img.assert_matches_reference(&programs);
    let second = img.recover();
    assert!(
        second.is_noop(),
        "{kind} step {} torn={}: second recovery was not a no-op: {second:?}",
        plan.step,
        plan.torn
    );
    img.assert_matches_reference(&programs);
    (stats, img)
}

#[test]
fn coarse_sweep_matches_oracle_across_kinds() {
    let cfg = SyntheticConfig {
        threads: 3,
        txs_per_thread: 4,
        ops_per_tx: 10,
        private_pages: 2,
        shared_pages: 1,
        shared_fraction: 0.6,
        write_fraction: 0.6,
        seed: 7,
    };
    for kind in crash_systems() {
        let total = total_steps(cfg, kind);
        let stride = (total / 9).max(1);
        let mut step = 0;
        while step <= total {
            crash_recover_check(cfg, kind, CrashPlan::at_step(step));
            crash_recover_check(cfg, kind, CrashPlan::torn_at_step(step));
            step += stride;
        }
    }
}

#[test]
fn crash_at_step_zero_recovers_initial_state() {
    let cfg = SyntheticConfig::default();
    for kind in crash_systems() {
        let (stats, img) = crash_recover_check(cfg, kind, CrashPlan::at_step(0));
        assert!(img.commit_log.is_empty(), "{kind}: commits before step 0");
        assert!(
            stats.is_noop(),
            "{kind}: nothing ran, yet recovery found work: {stats:?}"
        );
    }
}

#[test]
fn crash_past_the_end_recovers_final_state() {
    let cfg = SyntheticConfig::default();
    for kind in crash_systems() {
        let (stats, img) = crash_recover_check(cfg, kind, CrashPlan::at_step(u64::MAX));
        assert!(img.finished, "{kind}: run should have completed");
        // No transactions are live after a completed run. Select-PTM may
        // still fold committed-in-shadow blocks home (lazy migration leaves
        // them parked), but nothing may be discarded or repaired.
        assert_eq!(
            (
                stats.transactions_discarded,
                stats.tav_nodes_freed,
                stats.torn_nodes_repaired
            ),
            (0, 0, 0),
            "{kind}: a completed run has nothing live, yet: {stats:?}"
        );
    }
}

/// The torn mode must actually fire on PTM kinds: scan for a crash point
/// with an in-flight overflowed transaction and check the orphaned node is
/// found and repaired.
#[test]
fn torn_tav_tail_is_detected_and_repaired() {
    let cfg = SyntheticConfig {
        threads: 4,
        txs_per_thread: 6,
        ops_per_tx: 20,
        private_pages: 2,
        shared_pages: 2,
        shared_fraction: 0.7,
        write_fraction: 0.7,
        seed: 11,
    };
    for kind in [
        SystemKind::CopyPtm,
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::SelectPtm(Granularity::WordCacheMem),
    ] {
        let total = total_steps(cfg, kind);
        let stride = (total / 200).max(1);
        let mut torn_seen = false;
        let mut step = 0;
        while step <= total && !torn_seen {
            let (stats, img) = crash_recover_check(cfg, kind, CrashPlan::torn_at_step(step));
            if img.torn.is_some() {
                torn_seen = true;
                assert!(
                    stats.torn_nodes_repaired >= 1,
                    "{kind} step {step}: tear applied to {:?} but no torn node repaired: {stats:?}",
                    img.torn
                );
            }
            step += stride;
        }
        assert!(
            torn_seen,
            "{kind}: no crash point with a live overflowed transaction found \
             (workload too small to exercise the torn mode)"
        );
    }
}

/// Non-transactional kinds: a crash needs no recovery, and the committed
/// prefix is simply everything executed (writes are durable immediately).
#[test]
fn serial_and_locks_recover_as_noop() {
    let cfg = SyntheticConfig::default();
    for kind in [SystemKind::Serial, SystemKind::Locks] {
        let total = total_steps(cfg, kind);
        let stride = (total / 7).max(1);
        let mut step = 0;
        while step <= total {
            let (stats, _) = crash_recover_check(cfg, kind, CrashPlan::at_step(step));
            assert!(stats.is_noop(), "{kind}: recovery should be a no-op");
            step += stride;
        }
    }
}

/// LogTM rolls its undo logs backwards; a mid-run crash must restore every
/// eagerly-written speculative word.
#[test]
fn logtm_undo_replay_restores_committed_state() {
    let cfg = SyntheticConfig {
        threads: 3,
        txs_per_thread: 5,
        ops_per_tx: 12,
        private_pages: 2,
        shared_pages: 1,
        shared_fraction: 0.6,
        write_fraction: 0.7,
        seed: 23,
    };
    let kind = SystemKind::LogTm;
    let total = total_steps(cfg, kind);
    let stride = (total / 23).max(1);
    let mut rolled_back = false;
    let mut step = 0;
    while step <= total {
        let (stats, _) = crash_recover_check(cfg, kind, CrashPlan::at_step(step));
        rolled_back |= stats.blocks_restored > 0;
        step += stride;
    }
    assert!(
        rolled_back,
        "no crash point caught LogTM with a non-empty undo log"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// Any crash point, any kind, torn or clean: recovery lands exactly on
    /// the committed-prefix oracle and a second pass is a no-op.
    #[test]
    fn recovery_is_correct_and_idempotent_everywhere(
        cfg in small_config(),
        kind_sel in 0usize..6,
        frac in 0.0f64..=1.0,
        torn in any::<bool>(),
    ) {
        let kind = crash_systems()[kind_sel];
        let total = total_steps(cfg, kind);
        let step = (total as f64 * frac) as u64;
        let plan = CrashPlan { step, torn };
        crash_recover_check(cfg, kind, plan);
    }
}
