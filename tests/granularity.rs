//! The Figure 5 mechanisms, end to end: word-granularity conflict detection
//! eliminates false-sharing aborts; the `wd:cache` configuration still
//! aborts when a block with multiple word-writers overflows.

use unbounded_ptm::cache::CacheConfig;
use unbounded_ptm::sim::{assert_serializable, run, MachineConfig, Op, SystemKind, ThreadProgram};
use unbounded_ptm::types::{Granularity, ProcessId, ThreadId, VirtAddr};

fn begin(lock: u64) -> Op {
    Op::Begin {
        ordered: None,
        lock: VirtAddr::new(lock),
    }
}

/// Two threads repeatedly write *different words of the same block*.
fn false_sharing_programs(rounds: usize) -> Vec<ThreadProgram> {
    let block = 0x9000u64;
    (0..2u64)
        .map(|t| {
            let mut ops = Vec::new();
            for r in 0..rounds {
                ops.push(begin(0x100 + t * 64));
                ops.push(Op::Rmw(VirtAddr::new(block + t * 4), 1));
                ops.push(Op::Compute(60 + (r as u32 % 7)));
                ops.push(Op::End);
            }
            ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops)
        })
        .collect()
}

#[test]
fn word_granularity_removes_false_sharing_aborts() {
    let programs = false_sharing_programs(40);
    let blk = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    let wd = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::WordCacheMem),
        programs.clone(),
    );
    assert!(blk.stats().aborts > 0, "block granularity false-conflicts");
    assert_eq!(wd.stats().aborts, 0, "no true conflicts exist");
    for m in [&blk, &wd] {
        assert_serializable(m, &programs);
        assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(0x9000)), 40);
        assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(0x9004)), 40);
    }
    assert!(
        wd.stats().cycles <= blk.stats().cycles,
        "word granularity is never slower here"
    );
}

#[test]
fn wd_cache_aborts_on_multi_writer_overflow() {
    // Two transactions write disjoint words of one shared block, then churn
    // through enough private blocks to evict it mid-transaction. With
    // `wd:cache` the coherence level tolerates the co-writers, but the
    // overflow structures track one writer per block: the second eviction
    // must abort someone (§6.3). With `wd:cache+mem` nobody aborts.
    let shared = 0x9000u64;
    let programs: Vec<ThreadProgram> = (0..2u64)
        .map(|t| {
            let mut ops = vec![begin(0x100 + t * 64)];
            ops.push(Op::Rmw(VirtAddr::new(shared + t * 4), 1));
            // Private churn: force the shared block out of the tiny cache
            // while the transaction is still live.
            let private = 0x100_0000 + t * 0x10_0000;
            for i in 0..64u64 {
                ops.push(Op::Write(VirtAddr::new(private + i * 64), i as u32));
            }
            ops.push(Op::Compute(3_000));
            ops.push(Op::End);
            ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops)
        })
        .collect();

    let cfg = MachineConfig {
        l1: CacheConfig::tiny(2, 1),
        l2: CacheConfig::tiny(4, 2),
        ..MachineConfig::default()
    };

    let wd_cache = run(
        cfg,
        SystemKind::SelectPtm(Granularity::WordCache),
        programs.clone(),
    );
    assert!(
        wd_cache.stats().aborts > 0,
        "wd:cache must abort when a multi-writer block overflows"
    );
    assert_serializable(&wd_cache, &programs);
    assert_eq!(
        wd_cache.read_committed(ProcessId(0), VirtAddr::new(shared)),
        1
    );
    assert_eq!(
        wd_cache.read_committed(ProcessId(0), VirtAddr::new(shared + 4)),
        1
    );

    let wd_mem = run(
        cfg,
        SystemKind::SelectPtm(Granularity::WordCacheMem),
        programs.clone(),
    );
    assert_eq!(
        wd_mem.stats().aborts,
        0,
        "word-granular overflow state holds both writers"
    );
    assert_serializable(&wd_mem, &programs);
}

#[test]
fn block_granularity_is_strictly_more_conservative() {
    // Any conflict the word configurations report, block granularity also
    // reports (on this workload): abort counts are monotone in coarseness.
    let programs = false_sharing_programs(25);
    let mut aborts = Vec::new();
    for g in [
        Granularity::WordCacheMem,
        Granularity::WordCache,
        Granularity::Block,
    ] {
        let m = run(
            MachineConfig::default(),
            SystemKind::SelectPtm(g),
            programs.clone(),
        );
        aborts.push(m.stats().aborts);
    }
    assert!(
        aborts[0] <= aborts[1] && aborts[1] <= aborts[2],
        "aborts monotone: {aborts:?}"
    );
}
