//! End-to-end fault injection: adversarial schedules must never break
//! serializability, leak resources, or diverge between identical runs —
//! and an *empty* plan must be bit-identical to the plain run loop.

use proptest::prelude::*;
use unbounded_ptm::cache::CacheConfig;
use unbounded_ptm::sim::{
    assert_invariants, diff_against_machine, FaultAction, FaultEvent, FaultPlan, Machine,
    SystemKind,
};
use unbounded_ptm::types::Granularity;
use unbounded_ptm::workloads::synthetic::{workload, SyntheticConfig};

fn small_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        2usize..=4,   // threads
        1usize..=6,   // txs per thread
        1usize..=24,  // ops per tx
        1usize..=4,   // private pages
        1usize..=2,   // shared pages
        0.0f64..=1.0, // shared fraction
        0.1f64..=0.9, // write fraction
        any::<u64>(), // seed
    )
        .prop_map(
            |(threads, txs, ops, private, shared, sf, wf, seed)| SyntheticConfig {
                threads,
                txs_per_thread: txs,
                ops_per_tx: ops,
                private_pages: private,
                shared_pages: shared,
                shared_fraction: sf,
                write_fraction: wf,
                seed,
            },
        )
}

/// A shrinkable fault, mapped to one or two [`FaultEvent`]s. Resource
/// squeezes carry their own release offset so that proptest shrinking can
/// never separate a squeeze from its release (an unpaired squeeze starves
/// the run into the progress guard, which would mask the real failure).
#[derive(Debug, Clone, Copy)]
enum Planned {
    Cs { step: u64, core: u8 },
    Migrate { step: u64, core: u8 },
    Swap { step: u64, nth: u8 },
    Storm { step: u64, count: u8 },
    Squeeze { step: u64, leave: u8, hold: u64 },
    Cap { step: u64, slack: u8, hold: u64 },
    Delay { step: u64, delay: u16 },
}

fn planned() -> impl Strategy<Value = Planned> {
    let step = 0u64..6_000;
    let hold = 1u64..2_000;
    prop_oneof![
        (step.clone(), any::<u8>()).prop_map(|(step, core)| Planned::Cs { step, core }),
        (step.clone(), any::<u8>()).prop_map(|(step, core)| Planned::Migrate { step, core }),
        (step.clone(), any::<u8>()).prop_map(|(step, nth)| Planned::Swap { step, nth }),
        (step.clone(), 1u8..4).prop_map(|(step, count)| Planned::Storm { step, count }),
        (step.clone(), 0u8..3, hold.clone()).prop_map(|(step, leave, hold)| Planned::Squeeze {
            step,
            leave,
            hold
        }),
        (step.clone(), 0u8..4, hold).prop_map(|(step, slack, hold)| Planned::Cap {
            step,
            slack,
            hold
        }),
        (step, 0u16..5_000).prop_map(|(step, delay)| Planned::Delay { step, delay }),
    ]
}

fn to_plan(planned: &[Planned]) -> FaultPlan {
    let mut events = Vec::new();
    for p in planned {
        match *p {
            Planned::Cs { step, core } => events.push(FaultEvent {
                step,
                action: FaultAction::ForceContextSwitch { core },
            }),
            Planned::Migrate { step, core } => events.push(FaultEvent {
                step,
                action: FaultAction::ForceMigration { core },
            }),
            Planned::Swap { step, nth } => events.push(FaultEvent {
                step,
                action: FaultAction::SwapOutHotPage { nth },
            }),
            Planned::Storm { step, count } => events.push(FaultEvent {
                step,
                action: FaultAction::AbortStorm { count },
            }),
            Planned::Squeeze { step, leave, hold } => {
                events.push(FaultEvent {
                    step,
                    action: FaultAction::SqueezeMemory { leave },
                });
                events.push(FaultEvent {
                    step: step + hold,
                    action: FaultAction::ReleaseMemory,
                });
            }
            Planned::Cap { step, slack, hold } => {
                events.push(FaultEvent {
                    step,
                    action: FaultAction::CapTavArena { slack },
                });
                events.push(FaultEvent {
                    step: step + hold,
                    action: FaultAction::UncapTavArena,
                });
            }
            Planned::Delay { step, delay } => events.push(FaultEvent {
                step,
                action: FaultAction::DelaySwapIns { delay },
            }),
        }
    }
    let mut plan = FaultPlan { events };
    plan.normalize();
    plan
}

fn tiny_machine(
    cfg: SyntheticConfig,
    kind: SystemKind,
) -> (Machine, Vec<unbounded_ptm::sim::ThreadProgram>) {
    let w = workload(cfg);
    let programs = w.programs_for(kind);
    let mut mc = w.machine_config();
    mc.l1 = CacheConfig::tiny(2, 1);
    mc.l2 = CacheConfig::tiny(4, 2);
    (Machine::new(mc, kind, programs.clone()), programs)
}

fn fault_systems() -> Vec<SystemKind> {
    vec![
        SystemKind::CopyPtm,
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::SelectPtm(Granularity::WordCacheMem),
        SystemKind::Vtm,
    ]
}

#[test]
fn empty_plan_is_bit_identical_to_run() {
    let cfg = SyntheticConfig::default();
    for kind in [
        SystemKind::Locks,
        SystemKind::Vtm,
        SystemKind::CopyPtm,
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::SelectPtm(Granularity::WordCacheMem),
        SystemKind::LogTm,
    ] {
        let (mut plain, _) = tiny_machine(cfg, kind);
        plain.run();
        let (mut faulted, _) = tiny_machine(cfg, kind);
        faulted.run_with_faults(&FaultPlan::empty());
        assert_eq!(
            plain.checksums(),
            faulted.checksums(),
            "{kind}: checksums diverged under an empty plan"
        );
        assert_eq!(
            format!("{}", plain.stats()),
            format!("{}", faulted.stats()),
            "{kind}: stats diverged under an empty plan"
        );
        assert_eq!(
            plain.stats().commit_log,
            faulted.stats().commit_log,
            "{kind}: commit order diverged under an empty plan"
        );
    }
}

#[test]
fn injected_runs_are_deterministic() {
    let cfg = SyntheticConfig {
        write_fraction: 0.7,
        ..SyntheticConfig::default()
    };
    let plan = FaultPlan::from_seed(0xFA117, 8_000, 10);
    assert!(!plan.is_empty());
    let kind = SystemKind::SelectPtm(Granularity::Block);
    let run = |p: &FaultPlan| {
        let (mut m, _) = tiny_machine(cfg, kind);
        m.run_with_faults(p);
        (m.checksums(), format!("{}", m.stats()))
    };
    assert_eq!(run(&plan), run(&plan), "same plan, same seed, same bits");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// The tentpole property: any plan, any small workload, every PTM/VTM
    /// system — the run completes without panicking, the serializability
    /// oracle passes, and the stats identities hold. On failure proptest
    /// shrinks both the workload and the plan to a minimal reproducer.
    #[test]
    fn faulted_runs_stay_serializable(
        cfg in small_config(),
        planned in proptest::collection::vec(planned(), 0..8),
    ) {
        let plan = to_plan(&planned);
        for kind in fault_systems() {
            let (mut m, programs) = tiny_machine(cfg, kind);
            m.run_with_faults(&plan);
            let mismatches = diff_against_machine(&m, &programs);
            prop_assert!(
                mismatches.is_empty(),
                "{kind} diverged on {cfg:?} under {plan:?}: {:?}",
                mismatches.first()
            );
            assert_invariants(&m);
        }
    }
}
