//! Workspace-level correctness: every SPLASH-2-style workload, under every
//! execution mode, must produce a committed memory image identical to a
//! serial replay of its transactions in commit order.
//!
//! This is the strongest end-to-end property of the reproduction: it covers
//! conflict detection (in-cache and overflowed), version management (spec
//! buffers, home/shadow placement, XADT buffering), commit/abort data
//! movement, paging structures, and arbitration — a bug in any of them
//! shows up as a value divergence here.

use unbounded_ptm::sim::{assert_serializable, run, SystemKind};
use unbounded_ptm::types::Granularity;
use unbounded_ptm::workloads::{splash2, Scale};

fn all_systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Locks,
        SystemKind::Vtm,
        SystemKind::VictimVtm,
        SystemKind::CopyPtm,
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::SelectPtm(Granularity::WordCache),
        SystemKind::SelectPtm(Granularity::WordCacheMem),
        SystemKind::LogTm,
    ]
}

#[test]
fn every_workload_is_serializable_under_every_system() {
    for w in splash2(Scale::Tiny) {
        for kind in all_systems() {
            let programs = w.programs_for(kind);
            let m = run(w.machine_config(), kind, programs.clone());
            assert_serializable(&m, &programs);
            assert!(
                m.stats().commits > 0 || !kind.is_transactional(),
                "{} under {kind}: no transactions committed",
                w.name
            );
        }
    }
}

#[test]
fn transactional_runs_commit_every_transaction_exactly_once() {
    for w in splash2(Scale::Tiny) {
        let expected: usize = w
            .programs
            .iter()
            .map(|p| {
                // Outermost begins only: nesting depth 0 -> 1 transitions.
                let mut depth = 0;
                let mut outer = 0;
                for pc in 0..p.len() {
                    match p.op_at(pc) {
                        Some(unbounded_ptm::sim::Op::Begin { .. }) => {
                            if depth == 0 {
                                outer += 1;
                            }
                            depth += 1;
                        }
                        Some(unbounded_ptm::sim::Op::End) => depth -= 1,
                        _ => {}
                    }
                }
                outer
            })
            .sum();
        let m = run(
            w.machine_config(),
            SystemKind::SelectPtm(Granularity::Block),
            w.programs(),
        );
        assert_eq!(
            m.stats().commits as usize,
            expected,
            "{}: every outermost transaction commits exactly once",
            w.name
        );
        assert_eq!(m.stats().commit_log.len(), expected, "{}", w.name);
    }
}

#[test]
fn water_forces_cancel_pairwise() {
    // Water's pair loop adds +1/-1 antisymmetrically; after the merge the
    // shared force words must sum to zero across all molecules — a physical
    // conservation law the TM must not violate.
    use unbounded_ptm::sim::Op;
    use unbounded_ptm::types::ProcessId;

    let w = unbounded_ptm::workloads::water::workload(Scale::Tiny);
    let programs = w.programs();
    let m = run(
        w.machine_config(),
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );

    // Collect every force word the pair loop wrote (Rmw targets in the
    // per-thread partial regions — pages 2..=5 of the layout) and sum
    // their committed values: the +1/-1 pair updates must cancel.
    let mut force_words = std::collections::HashSet::new();
    for p in &programs {
        for pc in 0..p.len() {
            if let Some(Op::Rmw(a, _)) = p.op_at(pc) {
                if (2..=5).contains(&a.vpn().0) {
                    force_words.insert(a.word_aligned());
                }
            }
        }
    }
    assert!(!force_words.is_empty());
    let partial_sum: i64 = force_words
        .iter()
        .map(|a| m.read_committed(ProcessId(0), *a) as i32 as i64)
        .sum();
    assert_eq!(partial_sum, 0, "forces must cancel pairwise");
}

#[test]
fn radix_cursor_totals_match_key_count() {
    // Each digit pass bumps exactly one cursor per key; cursor words are
    // per-thread-private so the committed totals must equal the processed
    // key counts — lost updates would show up here.
    use unbounded_ptm::sim::Op;
    use unbounded_ptm::types::ProcessId;

    let w = unbounded_ptm::workloads::radix::workload(Scale::Tiny);
    let programs = w.programs();
    let m = run(
        w.machine_config(),
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );

    let mut cursor_words = std::collections::HashSet::new();
    let mut bump_count: u64 = 0;
    for p in &programs {
        for pc in 0..p.len() {
            if let Some(Op::Rmw(a, d)) = p.op_at(pc) {
                cursor_words.insert(a.word_aligned());
                assert_eq!(d, 1, "all radix updates are increments");
                bump_count += 1;
            }
        }
    }
    let total: u64 = cursor_words
        .iter()
        .map(|a| u64::from(m.read_committed(ProcessId(0), *a)))
        .sum();
    assert_eq!(total, bump_count, "no increment lost or duplicated");
}

#[test]
fn deterministic_replay_across_runs() {
    // Same workload, same system, twice: identical cycle counts and commit
    // logs — the simulator is fully deterministic.
    let w1 = unbounded_ptm::workloads::ocean::workload(Scale::Tiny);
    let w2 = unbounded_ptm::workloads::ocean::workload(Scale::Tiny);
    let kind = SystemKind::SelectPtm(Granularity::Block);
    let m1 = run(w1.machine_config(), kind, w1.programs());
    let m2 = run(w2.machine_config(), kind, w2.programs());
    assert_eq!(m1.stats().cycles, m2.stats().cycles);
    assert_eq!(m1.stats().aborts, m2.stats().aborts);
    assert_eq!(m1.stats().commit_log.len(), m2.stats().commit_log.len());
    for (a, b) in m1
        .stats()
        .commit_log
        .iter()
        .zip(m2.stats().commit_log.iter())
    {
        assert_eq!(a.tx, b.tx);
        assert_eq!(a.at, b.at);
    }
}
