//! Swap round-trips under fire: the six workloads that historically broke
//! serializability (shrunk cases from `prop_serializability.proptest-regressions`)
//! re-run with forced swap-outs of hot transactional pages injected mid-run,
//! under both PTM policies. SPT→SIT→SPT migration of the shadow pointer,
//! selection vector and TAV heads is what these runs exercise end-to-end;
//! the field-level assertions live in `crates/ptm/tests/paging.rs`.

use unbounded_ptm::cache::CacheConfig;
use unbounded_ptm::sim::{
    assert_invariants, diff_against_machine, FaultAction, FaultEvent, FaultPlan, Machine,
    SystemKind,
};
use unbounded_ptm::types::Granularity;
use unbounded_ptm::workloads::synthetic::{workload, SyntheticConfig};

/// The six shrunk regression cases, verbatim from the proptest corpus.
fn regression_configs() -> [SyntheticConfig; 6] {
    [
        SyntheticConfig {
            threads: 2,
            txs_per_thread: 2,
            ops_per_tx: 19,
            private_pages: 3,
            shared_pages: 1,
            shared_fraction: 0.7735800901487103,
            write_fraction: 0.7823090233995159,
            seed: 34355068198718879,
        },
        SyntheticConfig {
            threads: 4,
            txs_per_thread: 1,
            ops_per_tx: 26,
            private_pages: 4,
            shared_pages: 1,
            shared_fraction: 0.42409011694140625,
            write_fraction: 0.47560666492343084,
            seed: 7260712957295347068,
        },
        SyntheticConfig {
            threads: 4,
            txs_per_thread: 2,
            ops_per_tx: 21,
            private_pages: 2,
            shared_pages: 1,
            shared_fraction: 0.8117143369982661,
            write_fraction: 0.899767387474694,
            seed: 544321177786663042,
        },
        SyntheticConfig {
            threads: 3,
            txs_per_thread: 6,
            ops_per_tx: 26,
            private_pages: 3,
            shared_pages: 1,
            shared_fraction: 0.9363764203407908,
            write_fraction: 0.6484693453999143,
            seed: 3187005790505508750,
        },
        SyntheticConfig {
            threads: 4,
            txs_per_thread: 5,
            ops_per_tx: 10,
            private_pages: 3,
            shared_pages: 1,
            shared_fraction: 0.5924135299531551,
            write_fraction: 0.7820853029170244,
            seed: 13957330436400438267,
        },
        // This one originally failed with migration enabled; keep that.
        SyntheticConfig {
            threads: 4,
            txs_per_thread: 4,
            ops_per_tx: 19,
            private_pages: 2,
            shared_pages: 1,
            shared_fraction: 0.4385316673566836,
            write_fraction: 0.7408102966696212,
            seed: 17519741980151038485,
        },
    ]
}

/// A barrage of hot-page swap-outs spread across the run, on a slow swap
/// device, with a mid-run abort storm for good measure.
fn swap_plan() -> FaultPlan {
    let mut events = vec![FaultEvent {
        step: 0,
        action: FaultAction::DelaySwapIns { delay: 300 },
    }];
    for i in 0..12u64 {
        events.push(FaultEvent {
            step: 40 + i * 90,
            action: FaultAction::SwapOutHotPage { nth: i as u8 },
        });
    }
    events.push(FaultEvent {
        step: 500,
        action: FaultAction::AbortStorm { count: 2 },
    });
    let mut plan = FaultPlan { events };
    plan.normalize();
    plan
}

#[test]
fn regression_workloads_survive_forced_swaps() {
    let plan = swap_plan();
    let mut total_swap_outs = 0;
    let mut total_swap_ins = 0;
    for (i, cfg) in regression_configs().into_iter().enumerate() {
        for (kind, migrate) in [
            (SystemKind::CopyPtm, false),
            (SystemKind::SelectPtm(Granularity::Block), false),
            (SystemKind::CopyPtm, i == 5),
            (SystemKind::SelectPtm(Granularity::Block), i == 5),
        ] {
            let w = workload(cfg);
            let programs = w.programs_for(kind);
            let mut mc = w.machine_config();
            // Tiny caches force overflows, so swapped pages carry live TAV
            // lists and shadows — the §3.5 state the SIT must preserve.
            mc.l1 = CacheConfig::tiny(2, 1);
            mc.l2 = CacheConfig::tiny(4, 2);
            if migrate {
                mc.kernel.cs_interval = Some(1_700);
                mc.kernel.migrate_on_cs = true;
            }
            let mut m = Machine::new(mc, kind, programs.clone());
            m.run_with_faults(&plan);
            let mismatches = diff_against_machine(&m, &programs);
            assert!(
                mismatches.is_empty(),
                "{kind} (case {i}, migrate={migrate}) diverged: {:?}",
                mismatches.first()
            );
            assert_invariants(&m);
            let ps = m.backend().as_ptm().expect("PTM kinds only").stats();
            total_swap_outs += ps.tx_swap_outs;
            total_swap_ins += ps.tx_swap_ins;
        }
    }
    // The plan must actually have exercised the SPT→SIT→SPT machinery.
    assert!(
        total_swap_outs > 0,
        "no transactional page was ever swapped out"
    );
    assert!(
        total_swap_ins > 0,
        "no transactional page was ever swapped back in"
    );
}

#[test]
fn forced_swaps_are_deterministic() {
    let cfg = regression_configs()[2];
    let plan = swap_plan();
    let run = || {
        let w = workload(cfg);
        let kind = SystemKind::SelectPtm(Granularity::Block);
        let programs = w.programs_for(kind);
        let mut mc = w.machine_config();
        mc.l1 = CacheConfig::tiny(2, 1);
        mc.l2 = CacheConfig::tiny(4, 2);
        let mut m = Machine::new(mc, kind, programs);
        m.run_with_faults(&plan);
        (m.checksums(), format!("{}", m.stats()))
    };
    assert_eq!(run(), run());
}
