//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides a
//! minimal timed-loop bench runner with the API surface the workspace's
//! benches use: `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Output is one line per benchmark: median ns/iter over `sample_size`
//! samples. There are no plots, baselines, or statistical tests.

use std::fmt::Display;
use std::time::Instant;

/// Opaque value sink preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration timings.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            // Under `cargo test` each bench body runs exactly once, as a
            // smoke test — matching real criterion's behavior.
            black_box(f());
            return;
        }
        // Calibrate: grow the batch until one batch takes >= 1 ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed.as_micros() >= 1_000 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        self.samples[self.samples.len() / 2]
    }
}

/// Names a parameterized benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The bench-runner handle passed to each registered bench function.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--test` to harness=false bench binaries under
        // `cargo test`; in that mode each bench runs once as a smoke test.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    fn run_one(&self, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("bench: {name} ... ok (test mode)");
        } else {
            println!("bench: {name:<48} {:>12.1} ns/iter", b.median_ns());
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let size = self.sample_size;
        self.run_one(name, size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs a benchmark under `group/name`.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let samples = self.effective_samples();
        self.criterion.run_one(&full, samples, &mut f);
        self
    }

    /// Runs a parameterized benchmark under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.effective_samples();
        self.criterion.run_one(&full, samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond source compatibility).
    pub fn finish(self) {}
}

/// Bundles bench functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, i| {
            b.iter(|| black_box(i * 2))
        });
        g.finish();
    }
}
