//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides the (small) slice of the `rand 0.8` API the reproduction
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_bool` and `gen_range`. The generator is splitmix64 — fully
//! deterministic for a given seed, which is all the workload generators and
//! tests rely on (they never assume a particular stream, only stability).

pub mod rngs {
    /// The standard deterministic generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            StdRng { state }
        }

        /// Advances the splitmix64 state and returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Seeding interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One scramble round so that nearby seeds diverge immediately.
        let mut rng = rngs::StdRng::from_state(seed ^ 0x51_7c_c1_b7_27_22_0a_95);
        let _ = rng.next_u64();
        rng
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Derives a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges `Rng::gen_range` can sample from. The type parameter `T` is the
/// sampled value type, so `gen_range(10..60)` infers its literals from the
/// call site's expected type (matching real rand's signature).
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        self.start + f64::from_bits_uniform(rng) * (self.end - self.start)
    }
}

trait F64Uniform {
    fn from_bits_uniform(rng: &mut rngs::StdRng) -> f64;
}
impl F64Uniform for f64 {
    fn from_bits_uniform(rng: &mut rngs::StdRng) -> f64 {
        <f64 as Standard>::from_bits(rng.next_u64())
    }
}

/// The random-value interface.
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::from_bits(self.next_u64()) < p
    }

    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        rngs::StdRng::next_u64(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: u64 = rng.gen_range(10..=10);
            assert_eq!(i, 10);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
