//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim reimplements
//! the slice of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, numeric-range and tuple strategies,
//! `any::<T>()`, `Just`, weighted `prop_oneof!`, `prop::collection::vec`,
//! and the `proptest!` test macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics: deterministic pseudo-random sampling, `cases` iterations per
//! test, **no shrinking** (a failing case panics with the test name and
//! case number; re-running reproduces it exactly — seeds are derived from
//! the test name, not from time).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic test RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test name, stable across runs.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    use super::*;

    /// A generator of test values.
    pub trait Strategy {
        /// The value type generated.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.generate(rng)))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights exhausted")
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Builds the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable length specifications for [`vec`].
    pub trait SizeRange {
        /// Samples a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy producing vectors of `element` with a length from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Builds a vector strategy.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (`cases` is the only honored knob).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
        /// Accepted for source compatibility; ignored (no shrinking here).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

/// The `proptest::prelude::prop` facade module.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assert_ne;
    pub use crate::prop_oneof;
    pub use crate::proptest;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestRng;
}

/// Weighted or unweighted strategy union.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property assertion (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` test-definition macro: each `#[test] fn name(x in
/// strategy, ...)` expands to a plain test running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let run = || $body;
                let guard = CaseGuard { name: stringify!($name), case };
                run();
                std::mem::forget(guard);
            }
            /// Names the failing case on unwind (there is no shrinking, but
            /// the sampling is deterministic, so the case re-runs exactly).
            struct CaseGuard {
                name: &'static str,
                case: u32,
            }
            impl Drop for CaseGuard {
                fn drop(&mut self) {
                    eprintln!(
                        "proptest shim: property '{}' failed at case {} (deterministic; re-run reproduces)",
                        self.name, self.case
                    );
                }
            }
        }
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic("shim-self-test");
        let s = (0u8..4, 10usize..=12).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn oneof_honors_weights() {
        let mut rng = TestRng::deterministic("weights");
        let s = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 800, "got {trues}");
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::deterministic("vec");
        let s = collection::vec(0u32..5, 0..10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 10);
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_round_trips(x in 0u64..100, ys in collection::vec(0u8..4, 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|y| **y >= 4).count(), 0);
        }
    }
}
