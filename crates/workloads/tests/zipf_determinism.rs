//! Bit-stability of the Zipfian generator and the client-transaction
//! stream: a fixed seed must produce the exact same sequence forever.
//! The golden constants below pin the current sequence — if sampler or
//! stream internals change, this test fails loudly and the goldens (and
//! every recorded bench history entry that depends on them) must be
//! revisited deliberately.

use ptm_workloads::service::generate;
use ptm_workloads::{ClientTx, ServiceWorkloadConfig, ZipfAccounts};

#[test]
fn zipf_stream_is_bit_stable() {
    let mut gen = ZipfAccounts::new(1_000_000, 1.2, 0xDECAF);
    let got: Vec<u64> = (0..8).map(|_| gen.next_account()).collect();
    let golden = [
        211_934u64, 384_549, 607_535, 607_535, 348_110, 315_980, 969_543, 822_465,
    ];
    assert_eq!(got, golden);
}

#[test]
fn client_stream_is_bit_stable() {
    let cfg = ServiceWorkloadConfig {
        accounts: 1_000_000,
        skew: 0.9,
        seed: 42,
        txs: 4,
        read_only_pct: 20,
    };
    let got = generate(&cfg);
    let golden = vec![
        ClientTx {
            id: 0,
            from: 446_906,
            to: 437_110,
            amount: 211,
            read_only: false,
        },
        ClientTx {
            id: 1,
            from: 111_868,
            to: 111_868,
            amount: 0,
            read_only: true,
        },
        ClientTx {
            id: 2,
            from: 308_973,
            to: 791_146,
            amount: 764,
            read_only: false,
        },
        ClientTx {
            id: 3,
            from: 712_370,
            to: 15_290,
            amount: 92,
            read_only: false,
        },
    ];
    assert_eq!(got, golden);
}
