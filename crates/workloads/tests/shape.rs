//! Cross-workload shape invariants: the qualitative Table 1 signatures the
//! kernels were designed around, asserted structurally (no simulation).

use ptm_sim::Op;
use ptm_sim::ThreadProgram;
use ptm_workloads::{splash2, Scale, THREADS};
use std::collections::HashSet;

fn ops_of(p: &ThreadProgram) -> impl Iterator<Item = Op> + '_ {
    (0..p.len()).filter_map(move |pc| p.op_at(pc))
}

fn footprint_pages(programs: &[ThreadProgram]) -> usize {
    programs
        .iter()
        .flat_map(|p| ops_of(p).filter_map(|op| op.addr()))
        .map(|a| a.vpn())
        .collect::<HashSet<_>>()
        .len()
}

fn write_pages(programs: &[ThreadProgram]) -> usize {
    programs
        .iter()
        .flat_map(|p| {
            ops_of(p)
                .filter(|op| op.is_write())
                .filter_map(|op| op.addr())
        })
        .map(|a| a.vpn())
        .collect::<HashSet<_>>()
        .len()
}

fn outer_begins(programs: &[ThreadProgram]) -> usize {
    programs
        .iter()
        .map(|p| {
            let mut depth = 0;
            let mut outer = 0;
            for op in ops_of(p) {
                match op {
                    Op::Begin { .. } => {
                        if depth == 0 {
                            outer += 1;
                        }
                        depth += 1;
                    }
                    Op::End => depth -= 1,
                    _ => {}
                }
            }
            outer
        })
        .sum()
}

#[test]
fn footprint_ordering_matches_table_1() {
    // Paper: ocean >> lu > fft > radix >> water (pages).
    let names = ["fft", "lu", "radix", "ocean", "water"];
    let all = splash2(Scale::Small);
    let pages: Vec<usize> = all.iter().map(|w| footprint_pages(&w.programs)).collect();
    let by = |n: &str| pages[names.iter().position(|x| *x == n).unwrap()];
    assert!(
        by("ocean") > by("lu"),
        "ocean {} > lu {}",
        by("ocean"),
        by("lu")
    );
    assert!(by("ocean") > by("fft"));
    assert!(by("lu") + by("fft") > 2 * by("radix") / 2, "mid-size band");
    assert!(by("fft") > by("water"));
    assert!(by("radix") > by("water"));
}

#[test]
fn commit_count_ordering_matches_table_1() {
    // Paper: ocean > lu > radix ~ water > fft.
    let names = ["fft", "lu", "radix", "ocean", "water"];
    let all = splash2(Scale::Small);
    let commits: Vec<usize> = all.iter().map(|w| outer_begins(&w.programs)).collect();
    let by = |n: &str| commits[names.iter().position(|x| *x == n).unwrap()];
    assert!(by("ocean") > by("lu"));
    assert!(by("lu") > by("radix"));
    assert!(by("radix") > by("water"));
    assert!(by("water") > by("fft"));
}

#[test]
fn transactional_write_fraction_in_paper_band() {
    // Paper's "conservative" column: 45%..95% of touched pages are
    // transactionally written.
    for w in splash2(Scale::Small) {
        let total = footprint_pages(&w.programs);
        let written = write_pages(&w.programs);
        let frac = written as f64 / total as f64;
        assert!(
            (0.40..=0.99).contains(&frac),
            "{}: write fraction {frac:.2} outside the paper band",
            w.name
        );
    }
}

#[test]
fn every_thread_emits_identical_barrier_sequences() {
    for w in splash2(Scale::Tiny) {
        let seqs: Vec<Vec<u32>> = w
            .programs
            .iter()
            .map(|p| {
                ops_of(p)
                    .filter_map(|op| match op {
                        Op::Barrier(id) => Some(id),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for t in 1..THREADS {
            assert_eq!(seqs[0], seqs[t], "{}: thread {t} barrier mismatch", w.name);
        }
    }
}

#[test]
fn lock_programs_are_balanced_and_barrier_compatible() {
    for w in splash2(Scale::Tiny) {
        let lock_programs = w.programs_for(ptm_sim::SystemKind::Locks);
        for p in &lock_programs {
            let mut depth: i64 = 0;
            for op in ops_of(p) {
                match op {
                    Op::Begin { .. } => depth += 1,
                    Op::End => {
                        depth -= 1;
                        assert!(depth >= 0, "{}: unbalanced lock release", w.name);
                    }
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "{}: leaked lock", w.name);
        }
        let seqs: Vec<Vec<u32>> = lock_programs
            .iter()
            .map(|p| {
                ops_of(p)
                    .filter_map(|op| match op {
                        Op::Barrier(id) => Some(id),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for t in 1..lock_programs.len() {
            assert_eq!(
                seqs[0], seqs[t],
                "{}: lock-program barriers diverge",
                w.name
            );
        }
    }
}

#[test]
fn scales_are_strictly_nested() {
    for (tiny, small) in splash2(Scale::Tiny)
        .iter()
        .zip(splash2(Scale::Small).iter())
    {
        let t: usize = tiny.programs.iter().map(|p| p.len()).sum();
        let s: usize = small.programs.iter().map(|p| p.len()).sum();
        assert!(
            s > 2 * t,
            "{}: Small must dwarf Tiny ({s} vs {t})",
            tiny.name
        );
    }
}

#[test]
fn ocean_is_the_eviction_monster() {
    // At Small scale, ocean's writable footprint alone exceeds the scaled
    // L2 many times over; water's total footprint fits in it.
    let all = splash2(Scale::Small);
    let ocean = &all[3];
    let water = &all[4];
    let l2_pages = 16 * 1024 / 4096; // scaled 16 KiB L2 = 4 pages
    assert!(footprint_pages(&ocean.programs) > 20 * l2_pages);
    assert!(footprint_pages(&water.programs) <= 4 * l2_pages);
}
