//! Shared workload infrastructure: scaling, the workload descriptor, and
//! program-building helpers.

use ptm_cache::CacheConfig;
use ptm_sim::{KernelConfig, MachineConfig, Op, OrderedSeq, ThreadProgram};
use ptm_types::{ProcessId, ThreadId, VirtAddr};

/// Problem-size scaling. The paper ran full SPLASH-2 inputs under Simics;
/// we scale the kernels down so a full figure regenerates in minutes while
/// preserving each benchmark's qualitative signature (footprint ordering,
/// eviction rate ordering, sharing pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Minimal sizes for unit/integration tests (seconds).
    Tiny,
    /// Default benchmarking size (the EXPERIMENTS.md numbers).
    #[default]
    Small,
    /// Larger runs for calibration experiments.
    Full,
}

impl Scale {
    /// A generic multiplier the kernels derive their dimensions from.
    pub fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 4,
            Scale::Full => 8,
        }
    }
}

/// A runnable workload: the thread programs plus the machine/kernel
/// parameters it should run under (memory sizing, system-event rates).
#[derive(Debug)]
pub struct Workload {
    /// Benchmark name (the Table 1 row label).
    pub name: &'static str,
    /// One program per thread (the paper's platform has 4) — the
    /// *transactionalized* version of the benchmark.
    pub programs: Vec<ThreadProgram>,
    /// The original lock-based version, when it differs structurally from
    /// the transactional rewrite (the paper compares against "the default
    /// p-thread locks", i.e. the original program). `None` means both
    /// versions share one program.
    pub lock_programs: Option<Vec<ThreadProgram>>,
    /// Context-switch injection interval in cycles, calibrated per workload
    /// to land in the neighbourhood of Table 1's counts.
    pub cs_interval: Option<u64>,
    /// Exception injection interval in cycles.
    pub exc_interval: Option<u64>,
    /// Physical memory frames to simulate.
    pub mem_frames: usize,
}

impl Workload {
    /// The machine configuration this workload should run under.
    ///
    /// The caches are scaled down 16× from the paper's platform (L1 1 KiB
    /// direct-mapped, L2 16 KiB 4-way) because the kernels' problem sizes
    /// are scaled down by a comparable factor — preserving the
    /// footprint-to-cache ratios that drive Table 1's eviction rates and
    /// Figure 4's overflow behaviour. Latencies are unchanged.
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            mem_frames: self.mem_frames,
            l1: CacheConfig {
                sets: 16,
                ways: 1,
                latency: 1,
            },
            l2: CacheConfig {
                sets: 64,
                ways: 4,
                latency: 6,
            },
            kernel: KernelConfig {
                cs_interval: self.cs_interval,
                exc_interval: self.exc_interval,
                ..KernelConfig::default()
            },
            ..MachineConfig::default()
        }
    }

    /// Clones the thread programs (machines consume them).
    pub fn programs(&self) -> Vec<ThreadProgram> {
        self.programs.clone()
    }

    /// The programs a given execution mode should run: the lock-based
    /// original for lock mode and the single-thread baseline, the
    /// transactional rewrite for everything else.
    pub fn programs_for(&self, kind: ptm_sim::SystemKind) -> Vec<ThreadProgram> {
        match kind {
            ptm_sim::SystemKind::Locks | ptm_sim::SystemKind::Serial => self
                .lock_programs
                .clone()
                .unwrap_or_else(|| self.programs.clone()),
            _ => self.programs.clone(),
        }
    }
}

/// Number of worker threads, matching the paper's 4-core platform.
pub const THREADS: usize = 4;

/// Builds one thread's program incrementally.
#[derive(Debug)]
pub struct ProgramBuilder {
    pid: ProcessId,
    thread: ThreadId,
    ops: Vec<Op>,
    ordered_group: Option<u32>,
}

impl ProgramBuilder {
    /// Starts a builder for `thread` in process 0.
    pub fn new(thread: usize) -> Self {
        ProgramBuilder {
            pid: ProcessId(0),
            thread: ThreadId(thread as u32),
            ops: Vec::new(),
            ordered_group: None,
        }
    }

    /// Makes subsequent [`ProgramBuilder::begin`] calls ordered in `group`.
    pub fn ordered_in(mut self, group: u32) -> Self {
        self.ordered_group = Some(group);
        self
    }

    /// Opens a transaction protected (in lock mode) by `lock`; `seq` is the
    /// ordered-commit position when the builder is in ordered mode.
    pub fn begin(&mut self, lock: VirtAddr, seq: u64) -> &mut Self {
        let ordered = self.ordered_group.map(|group| OrderedSeq { group, seq });
        self.ops.push(Op::Begin { ordered, lock });
        self
    }

    /// Closes the innermost transaction.
    pub fn end(&mut self) -> &mut Self {
        self.ops.push(Op::End);
        self
    }

    /// Emits a load.
    pub fn read(&mut self, addr: VirtAddr) -> &mut Self {
        self.ops.push(Op::Read(addr));
        self
    }

    /// Emits a store.
    pub fn write(&mut self, addr: VirtAddr, value: u32) -> &mut Self {
        self.ops.push(Op::Write(addr, value));
        self
    }

    /// Emits a read-modify-write.
    pub fn rmw(&mut self, addr: VirtAddr, delta: i32) -> &mut Self {
        self.ops.push(Op::Rmw(addr, delta));
        self
    }

    /// Emits busy computation.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.ops.push(Op::Compute(cycles));
        self
    }

    /// Emits a barrier. All threads must emit the same barrier ids in the
    /// same order; each static barrier instance needs a fresh id.
    pub fn barrier(&mut self, id: u32) -> &mut Self {
        self.ops.push(Op::Barrier(id));
        self
    }

    /// Finalizes the program.
    pub fn build(self) -> ThreadProgram {
        ThreadProgram::new(self.pid, self.thread, self.ops)
    }

    /// Number of operations queued so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Splits `0..n` into `THREADS` contiguous chunks; returns thread `t`'s
/// range.
pub fn chunk(n: usize, t: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(THREADS);
    let start = (t * per).min(n);
    let end = ((t + 1) * per).min(n);
    start..end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_are_monotonic() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Full.factor());
    }

    #[test]
    fn chunks_cover_range_without_overlap() {
        let n = 103;
        let mut covered = vec![false; n];
        for t in 0..THREADS {
            for i in chunk(n, t) {
                assert!(!covered[i], "overlap at {i}");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn builder_produces_expected_sequence() {
        let mut b = ProgramBuilder::new(1);
        b.begin(VirtAddr::new(0x40), 0)
            .rmw(VirtAddr::new(0x1000), 2)
            .end()
            .compute(3);
        let p = b.build();
        assert_eq!(p.len(), 4);
        assert_eq!(p.thread(), ThreadId(1));
    }

    #[test]
    fn ordered_builder_tags_begins() {
        let mut b = ProgramBuilder::new(0).ordered_in(7);
        b.begin(VirtAddr::new(0), 3).end();
        let p = b.build();
        match p.op_at(0) {
            Some(Op::Begin {
                ordered: Some(o), ..
            }) => {
                assert_eq!(o.group, 7);
                assert_eq!(o.seq, 3);
            }
            other => panic!("expected ordered begin, got {other:?}"),
        }
    }
}
