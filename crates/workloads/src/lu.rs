//! `lu` — blocked LU decomposition's memory behaviour.
//!
//! Table 1 signature: *many* transactions (656 commits — the most after
//! ocean), essentially no aborts, the second-largest footprint with almost
//! all touched pages transactionally written (2130/2311), and moderate
//! eviction pressure. Blocked LU gets exactly that: for every step `k`,
//! owners factor the diagonal block, then the panel blocks, then every
//! interior block (i, j) is updated from its row and column panels — one
//! transaction per block update, writes always to the *owned* block, reads
//! from panels owned by others.

use crate::common::{ProgramBuilder, Scale, Workload, THREADS};
use ptm_mem::LayoutBuilder;

/// Matrix dimension in words per scale.
fn dim(scale: Scale) -> usize {
    48 * scale.factor() // Tiny: 48, Small: 192, Full: 384
}

/// Block edge in words. 16 words = 64 bytes: a matrix block row segment is
/// exactly one cache block, so differently-owned blocks never false-share
/// (lu's signature is ~zero aborts).
const BLOCK: usize = 16;

/// Builds the lu workload.
pub fn workload(scale: Scale) -> Workload {
    let n = dim(scale);
    let nb = n / BLOCK;

    let mut layout = LayoutBuilder::new();
    layout.region("matrix", n * n * 4);
    // Read-only pivot/permutation workspace (lu's small non-shadowed tail:
    // Table 1 reports ~92% of its pages transactionally written).
    layout.region("pivots", 3 * 4096);
    layout.region("locks", 4096 * 2);
    let layout = layout.build();
    let matrix = layout
        .region("matrix")
        .expect("lu workload layout has no region \"matrix\"")
        .base();
    let pivots = layout
        .region("pivots")
        .expect("lu workload layout has no region \"pivots\"")
        .base();
    let locks = layout
        .region("locks")
        .expect("lu workload layout has no region \"locks\"")
        .base();

    let at = |r: usize, c: usize| matrix.offset((r * n + c) as u64 * 4);
    // 2D block scatter: block (bi, bj) belongs to thread (bi + bj) % THREADS.
    let owner = |bi: usize, bj: usize| (bi + bj) % THREADS;
    // Fine-grained lock per block.
    let block_lock = |bi: usize, bj: usize| locks.offset(((bi * nb + bj) * 64) as u64);

    let mut builders: Vec<ProgramBuilder> = (0..THREADS).map(ProgramBuilder::new).collect();

    for k in 0..nb {
        // Diagonal factorization: read-modify the whole diagonal block.
        {
            let t = owner(k, k);
            let b = &mut builders[t];
            b.begin(block_lock(k, k), 0);
            for r in 0..BLOCK {
                b.read(pivots.offset(((k * BLOCK + r) % 3072) as u64 * 4));
                for c in 0..BLOCK {
                    b.rmw(at(k * BLOCK + r, k * BLOCK + c), (k + r + c) as i32);
                }
            }
            b.end();
            b.compute(120);
        }
        for b in builders.iter_mut() {
            b.barrier((k * 3) as u32);
        }
        // Panel updates: row panel (k, j) and column panel (i, k) read the
        // diagonal and update themselves.
        for other in k + 1..nb {
            for (bi, bj) in [(k, other), (other, k)] {
                let t = owner(bi, bj);
                let b = &mut builders[t];
                b.begin(block_lock(bi, bj), 0);
                for r in 0..BLOCK {
                    b.read(at(k * BLOCK + r, k * BLOCK + r)); // diagonal
                    for c in 0..BLOCK {
                        b.rmw(at(bi * BLOCK + r, bj * BLOCK + c), 1);
                    }
                }
                b.end();
            }
        }
        for b in builders.iter_mut() {
            b.barrier((k * 3 + 1) as u32);
        }
        // Interior updates: block (i, j) -= panel(i, k) * panel(k, j).
        // As in the transactionalized original, the transaction wraps each
        // thread's whole interior loop body for this step — a large
        // transaction whose footprint overflows the caches at later steps.
        let mut opened = [false; THREADS];
        for bi in k + 1..nb {
            for bj in k + 1..nb {
                let t = owner(bi, bj);
                let b = &mut builders[t];
                if !opened[t] {
                    b.begin(block_lock(k, k).offset(4096 + t as u64 * 64), 0);
                    opened[t] = true;
                }
                for r in 0..BLOCK {
                    b.read(at(bi * BLOCK + r, k * BLOCK + r % BLOCK));
                    b.read(at(k * BLOCK + r % BLOCK, bj * BLOCK + r));
                    for c in 0..BLOCK {
                        b.rmw(at(bi * BLOCK + r, bj * BLOCK + c), 1);
                    }
                }
            }
        }
        for (t, b) in builders.iter_mut().enumerate() {
            if opened[t] {
                b.end();
            }
        }
        for b in builders.iter_mut() {
            b.barrier((k * 3 + 2) as u32);
        }
    }

    Workload {
        name: "lu",
        programs: builders.into_iter().map(|b| b.build()).collect(),
        lock_programs: None,
        cs_interval: Some(30_000),
        exc_interval: Some(2_500),
        mem_frames: (dim(scale).pow(2) * 4 / 4096) * 4 + 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_sim::Op;

    #[test]
    fn lu_has_many_small_transactions() {
        let w = workload(Scale::Tiny);
        let total_begins: usize = w
            .programs
            .iter()
            .map(|p| {
                (0..p.len())
                    .filter(|&pc| matches!(p.op_at(pc), Some(Op::Begin { .. })))
                    .count()
            })
            .sum();
        // nb = 3 at tiny: per k, 1 diagonal + 2(nb-k-1) panels + one
        // interior transaction per thread that owns interior blocks.
        // k=0: 1+4+(owners of 4 interior blocks: (1,1)=2,(1,2)=3,(2,1)=3,
        // (2,2)=0 → 3 threads) = 8; k=1: 1+2+1 = 4; k=2: 1. Total 13.
        assert_eq!(total_begins, 13);
    }

    #[test]
    fn writes_are_confined_to_owned_blocks() {
        // No two threads ever write the same word: LU writes go to the
        // owning thread's blocks only.
        let w = workload(Scale::Tiny);
        let mut seen: std::collections::HashMap<ptm_types::VirtAddr, usize> = Default::default();
        for (t, p) in w.programs.iter().enumerate() {
            for pc in 0..p.len() {
                if let Some(Op::Rmw(a, _)) | Some(Op::Write(a, _)) = p.op_at(pc) {
                    if let Some(&prev) = seen.get(&a.word_aligned()) {
                        assert_eq!(prev, t, "word written by two threads");
                    }
                    seen.insert(a.word_aligned(), t);
                }
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn scale_grows_the_matrix() {
        assert!(dim(Scale::Full) > dim(Scale::Small));
    }
}
