//! A Zipfian account sampler for serving-style workloads.
//!
//! Implements Hörmann's *rejection-inversion* method for discrete monotone
//! distributions ("Rejection-inversion to generate variates from monotone
//! discrete distributions", TOMACS 1996): O(1) per sample with no
//! per-element tables, so an account space of millions costs nothing to set
//! up, and any exponent `s > 0` works — including `s = 1` (the harmonic
//! series) and `s > 1`, which the YCSB-style precomputed-zeta generator
//! cannot handle.
//!
//! Sampling draws only from [`SplitMix64`], so a fixed seed yields a
//! bit-stable sequence — the property the service bench's reproducibility
//! rests on (see `tests` and the `zipf_stream_is_bit_stable` test).

use ptm_types::rng::SplitMix64;

/// A Zipfian distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^-s`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    s: f64,
    /// `H(1.5) - 1`, the lower integration bound.
    h_x1: f64,
    /// `H(n + 0.5)`, the upper integration bound.
    h_n: f64,
    /// Acceptance shortcut: `k - x <= cut` accepts without evaluating `H`.
    cut: f64,
}

/// `ln(1 + x) / x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x / 2.0 + x * x / 3.0
    }
}

/// `(e^x - 1) / x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x / 2.0 + x * x / 6.0
    }
}

impl Zipfian {
    /// A Zipfian over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0` (a uniform generator wants `s → 0`,
    /// not 0 itself; use a plain modulus for uniform keys).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipfian needs at least one rank");
        assert!(s > 0.0, "Zipfian exponent must be positive, got {s}");
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let cut = 2.0 - h_integral_inverse(h_integral(2.5, s) - (2.0f64).powf(-s), s);
        Zipfian {
            n,
            s,
            h_x1,
            h_n,
            cut,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        loop {
            let u = self.h_n + unit_f64(rng) * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n as f64);
            // Accept k when it is close enough to x (the bulk of draws),
            // or by the exact rejection test otherwise.
            if k - x <= self.cut || u >= h_integral(k + 0.5, self.s) - k.powf(-self.s) {
                return k as u64;
            }
        }
    }
}

/// `H(x) = ∫ t^-s dt` with the constant chosen so both branches agree:
/// `((x^(1-s)) - 1)/(1-s)` for `s ≠ 1`, `ln x` for `s = 1` — computed via
/// the stable `helper2` form so exponents near 1 don't lose precision.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Numerical round-off past the pole; clamp like the reference
        // algorithm does.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// A uniform draw in `[0, 1)` from the top 53 bits of the stream.
fn unit_f64(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps Zipfian *ranks* onto a scrambled account space: rank 1 (the
/// hottest key) lands on a pseudo-random but **fixed** account id, so key
/// popularity is decorrelated from key *value* — real account ids are not
/// sorted by temperature, and a range-sharded service would otherwise see
/// every hot key in shard 0. The scramble is a fixed bijective mix
/// followed by a modulus: distinct ranks may collide on one account
/// (merging their probability mass), which is harmless for a contention
/// generator and keeps the map O(1).
#[derive(Debug, Clone)]
pub struct ZipfAccounts {
    zipf: Zipfian,
    rng: SplitMix64,
}

impl ZipfAccounts {
    /// A Zipfian account stream over `0..accounts` with exponent `s`,
    /// seeded for reproducibility.
    pub fn new(accounts: u64, s: f64, seed: u64) -> Self {
        ZipfAccounts {
            zipf: Zipfian::new(accounts, s),
            rng: SplitMix64::new(seed),
        }
    }

    /// Draws the next account id in `0..accounts`.
    pub fn next_account(&mut self) -> u64 {
        let rank = self.zipf.sample(&mut self.rng) - 1;
        scramble(rank) % self.zipf.n()
    }

    /// Number of accounts.
    pub fn accounts(&self) -> u64 {
        self.zipf.n()
    }
}

/// The fixed 64-bit finalizer mix (SplitMix64's output stage): bijective
/// on `u64`, so the rank → account map only collides through the final
/// modulus.
fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact Zipfian probability of rank `k`.
    fn p(k: u64, n: u64, s: f64) -> f64 {
        let z: f64 = (1..=n).map(|i| (i as f64).powf(-s)).sum();
        (k as f64).powf(-s) / z
    }

    #[test]
    fn samples_match_exact_probabilities() {
        for &s in &[0.6, 1.0, 1.2] {
            let n = 20u64;
            let zipf = Zipfian::new(n, s);
            let mut rng = SplitMix64::new(7);
            let draws = 200_000;
            let mut counts = vec![0u64; n as usize + 1];
            for _ in 0..draws {
                let k = zipf.sample(&mut rng);
                assert!((1..=n).contains(&k));
                counts[k as usize] += 1;
            }
            for k in 1..=5 {
                let expect = p(k, n, s);
                let got = counts[k as usize] as f64 / draws as f64;
                let rel = (got - expect).abs() / expect;
                assert!(
                    rel < 0.05,
                    "rank {k} at s={s}: expected {expect:.4}, got {got:.4}"
                );
            }
        }
    }

    #[test]
    fn single_rank_degenerates_to_constant() {
        let zipf = Zipfian::new(1, 1.2);
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn skew_orders_the_head_mass() {
        // Higher exponents concentrate more mass on the hottest rank.
        let n = 1000u64;
        let head_share = |s: f64| {
            let zipf = Zipfian::new(n, s);
            let mut rng = SplitMix64::new(11);
            let draws = 50_000;
            let hot = (0..draws).filter(|_| zipf.sample(&mut rng) <= 10).count();
            hot as f64 / draws as f64
        };
        let (low, mid, high) = (head_share(0.6), head_share(0.9), head_share(1.2));
        assert!(low < mid && mid < high, "head mass {low} {mid} {high}");
    }

    #[test]
    fn accounts_stay_in_range_and_streams_are_seed_deterministic() {
        let mut a = ZipfAccounts::new(1_000_000, 0.9, 42);
        let mut b = ZipfAccounts::new(1_000_000, 0.9, 42);
        for _ in 0..1000 {
            let (x, y) = (a.next_account(), b.next_account());
            assert_eq!(x, y);
            assert!(x < 1_000_000);
        }
    }
}
