//! `fft` — the SPLASH-2 radix-√n six-step FFT's memory behaviour.
//!
//! The signature the paper reports for fft (Table 1): *few, large*
//! transactions (34 commits), a mid-size footprint (~1000 pages at full
//! scale, over half of it transactionally written), moderate eviction
//! pressure, and a handful of aborts. The expensive shared phase of the
//! six-step algorithm is the **matrix transpose**: every thread reads its
//! own row band and writes columns across the whole matrix — long strides
//! that overflow the caches, with block-level false sharing where two
//! threads' destination columns land in the same cache block.
//!
//! We reproduce that structure: per iteration, each thread runs one big
//! transaction over its local butterfly band (private, in-place) and one
//! big transposing transaction (shared, strided writes).

use crate::common::{chunk, ProgramBuilder, Scale, Workload, THREADS};
use ptm_mem::LayoutBuilder;
use ptm_types::VirtAddr;

/// Matrix dimension (n × n complex words) per scale.
fn dim(scale: Scale) -> usize {
    32 * scale.factor() // Tiny: 32, Small: 128, Full: 256
}

/// Builds the fft workload.
pub fn workload(scale: Scale) -> Workload {
    let n = dim(scale);
    let iters = 3;

    let mut layout = LayoutBuilder::new();
    layout.region("matrix", n * n * 4);
    layout.region("scratch", n * n * 4);
    // Read-only twiddle-factor table (never written transactionally — this
    // is roughly half of fft's footprint, hence Table 1's ~53% conservative
    // shadow overhead).
    layout.region("twiddles", 2 * n * n * 4);
    layout.region("locks", 4096);
    let layout = layout.build();
    let matrix = layout
        .region("matrix")
        .expect("fft workload layout has no region \"matrix\"")
        .base();
    let scratch = layout
        .region("scratch")
        .expect("fft workload layout has no region \"scratch\"")
        .base();
    let twiddles = layout
        .region("twiddles")
        .expect("fft workload layout has no region \"twiddles\"")
        .base();
    let locks = layout
        .region("locks")
        .expect("fft workload layout has no region \"locks\"")
        .base();

    let at = |base: VirtAddr, r: usize, c: usize| base.offset((r * n + c) as u64 * 4);

    let programs = (0..THREADS)
        .map(|t| {
            let mut b = ProgramBuilder::new(t);
            let rows = chunk(n, t);
            for it in 0..iters {
                // Local butterfly pass over the thread's own row band: a
                // large read-modify transaction on private rows.
                b.begin(locks.offset((t * 64) as u64), 0);
                for r in rows.clone() {
                    // One butterfly sweep across the row, with a twiddle
                    // lookup per pair (the read-only table).
                    for i in (0..n / 2).step_by(2) {
                        b.read(at(matrix, r, i));
                        b.read(at(matrix, r, i + n / 2));
                        b.read(at(twiddles, (it * 2 + r) % (2 * n), i));
                        b.write(at(matrix, r, i), (it * 31 + r + i) as u32);
                        b.write(at(matrix, r, i + n / 2), (it * 37 + r) as u32);
                    }
                }
                b.end();
                b.compute(200);
                b.barrier((it * 2) as u32);

                // Blocked transpose (as in the original): read a 16x16 tile
                // of own rows, write it transposed into scratch — each
                // destination cache block is filled before moving on, but
                // the overall footprint still overflows the caches.
                b.begin(locks.offset((1024 + t * 64) as u64), 0);
                const TILE: usize = 16;
                for r0 in rows.clone().step_by(TILE) {
                    for c0 in (0..n).step_by(TILE) {
                        for c in c0..(c0 + TILE).min(n) {
                            for r in r0..(r0 + TILE).min(rows.end) {
                                if (r + c) % 2 == 0 {
                                    b.read(at(matrix, r, c));
                                }
                                b.write(at(scratch, c, r), (r * n + c) as u32);
                            }
                        }
                    }
                }
                b.end();
                b.compute(400);
                b.barrier((it * 2 + 1) as u32);
            }
            b.build()
        })
        .collect();

    Workload {
        name: "fft",
        programs,
        lock_programs: None,
        cs_interval: Some(600_000),
        exc_interval: Some(60_000),
        mem_frames: frames_for(n),
    }
}

fn frames_for(n: usize) -> usize {
    // Matrix + scratch + twiddles + shadows + slack.
    (n * n * 4 * 4 / 4096) * 3 + 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_has_few_large_transactions() {
        let w = workload(Scale::Tiny);
        assert_eq!(w.programs.len(), THREADS);
        // 3 iterations x 2 transactions per thread.
        let begins = (0..w.programs[0].len())
            .filter(|&pc| matches!(w.programs[0].op_at(pc), Some(ptm_sim::Op::Begin { .. })))
            .count();
        assert_eq!(begins, 6);
        // "Large": hundreds of ops per transaction even at tiny scale.
        assert!(w.programs[0].len() / begins > 50);
    }

    #[test]
    fn transpose_targets_are_write_shared_across_threads() {
        // Thread 0 and thread 1 transpose into overlapping column blocks:
        // their scratch writes must land in the same pages (the false-
        // sharing signature), but never the same word.
        let w = workload(Scale::Tiny);
        let words = |p: &ptm_sim::ThreadProgram| {
            (0..p.len())
                .filter_map(|pc| match p.op_at(pc) {
                    Some(ptm_sim::Op::Write(a, _)) => Some(a.word_aligned()),
                    _ => None,
                })
                .collect::<std::collections::HashSet<_>>()
        };
        let w0 = words(&w.programs[0]);
        let w1 = words(&w.programs[1]);
        assert!(w0.is_disjoint(&w1), "threads never write the same word");
        let pages0: std::collections::HashSet<_> = w0.iter().map(|a| a.vpn()).collect();
        let pages1: std::collections::HashSet<_> = w1.iter().map(|a| a.vpn()).collect();
        assert!(
            pages0.intersection(&pages1).count() > 0,
            "transpose shares pages across threads"
        );
    }
}
