//! `water` — the N-body molecular-dynamics kernel.
//!
//! Table 1 signature: the **smallest footprint** (241 pages full-scale,
//! under half transactionally written) and almost **no eviction pressure**
//! (one eviction per ~4,900 memory operations — the working set lives in
//! the caches), with few aborts.
//!
//! Like the original, forces are first accumulated into *per-thread private*
//! arrays during the pair loop; after a barrier, each thread merges its
//! partials into the shared per-molecule force fields for its slice of
//! molecules (disjoint writes), plus one genuinely shared global
//! potential-energy accumulator — the occasional-conflict source.

use crate::common::{chunk, ProgramBuilder, Scale, Workload, THREADS};
use ptm_mem::LayoutBuilder;

/// Number of molecules per scale.
fn molecules(scale: Scale) -> usize {
    16 * scale.factor() // Tiny: 16, Small: 64, Full: 128
}

/// Words per molecule record (positions, velocities, force accumulators).
const MOL_WORDS: usize = 16; // one cache block per molecule

/// Builds the water workload.
pub fn workload(scale: Scale) -> Workload {
    let m = molecules(scale);

    let mut layout = LayoutBuilder::new();
    layout.region("molecules", m * MOL_WORDS * 4);
    for t in 0..THREADS {
        layout.region(&format!("partial{t}"), m * 4 * 4);
    }
    // Read-only interaction-potential lookup tables (water's non-shadowed
    // footprint: under half of its pages are transactionally written).
    layout.region("tables", 8 * 4096);
    layout.region("globals", 4096);
    layout.region("locks", 4096);
    let layout = layout.build();
    let mols = layout
        .region("molecules")
        .expect("water workload layout has no region \"molecules\"")
        .base();
    let tables = layout
        .region("tables")
        .expect("water workload layout has no region \"tables\"")
        .base();
    let globals = layout
        .region("globals")
        .expect("water workload layout has no region \"globals\"")
        .base();
    let locks = layout
        .region("locks")
        .expect("water workload layout has no region \"locks\"")
        .base();

    let pos = |i: usize, w: usize| mols.offset((i * MOL_WORDS + w) as u64 * 4);
    let force = |i: usize, w: usize| mols.offset((i * MOL_WORDS + 8 + w) as u64 * 4);

    // Interacting pairs (half matrix, cutoff-sampled).
    let pairs: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| ((i + 1)..m).step_by(3).map(move |j| (i, j)))
        .collect();
    let pairs_per_tx = (pairs.len() / (THREADS * 6)).max(4);
    let iters = 2;

    let programs = (0..THREADS)
        .map(|t| {
            let partial = layout
                .region(&format!("partial{t}"))
                .unwrap_or_else(|| panic!("water workload layout has no region \"partial{t}\""))
                .base();
            let pforce = |i: usize, w: usize| partial.offset((i * 4 + w) as u64 * 4);
            let mut b = ProgramBuilder::new(t);
            for it in 0..iters as u32 {
                // Phase 1: pair loop into private partial forces.
                let mine = chunk(pairs.len(), t);
                let mut i = mine.start;
                while i < mine.end {
                    let hi = (i + pairs_per_tx).min(mine.end);
                    b.begin(locks.offset((t * 64) as u64), 0);
                    for &(a, c) in &pairs[i..hi] {
                        for w in 0..3 {
                            b.read(pos(a, w));
                            b.read(pos(c, w));
                        }
                        b.read(tables.offset(((a * 31 + c * 7) % 8192) as u64 * 4));
                        for w in 0..3 {
                            b.rmw(pforce(a, w), 1);
                            b.rmw(pforce(c, w), -1);
                        }
                    }
                    b.end();
                    b.compute(200);
                    i = hi;
                }
                b.barrier(it * 2);

                // Phase 2: merge partials into the shared force fields for
                // this thread's slice of molecules; the global accumulator
                // is the true-sharing hotspot.
                let my_mols = chunk(m, t);
                let mols_per_tx = (my_mols.len() / 4).max(2);
                let mut i = my_mols.start;
                while i < my_mols.end {
                    let hi = (i + mols_per_tx).min(my_mols.end);
                    b.begin(locks.offset((1024 + t * 64) as u64), 0);
                    for mol in i..hi {
                        for w in 0..3 {
                            b.read(pforce(mol, w));
                            b.rmw(force(mol, w), 1);
                        }
                    }
                    // The shared potential-energy update: one global lock
                    // under lock-based execution, speculation under TM.
                    b.begin(locks.offset(3072), 0);
                    b.rmw(globals, 1);
                    b.end();
                    b.end();
                    b.compute(80);
                    i = hi;
                }
                b.barrier(it * 2 + 1);
            }
            b.build()
        })
        .collect();

    // The ORIGINAL lock-based water: no private partials — the pair loop
    // accumulates straight into the shared per-molecule force fields, taking
    // the molecule's lock for each update (plus the global lock for the
    // potential energy). This is what the paper's "default p-thread locks"
    // bar runs: correct, but it pays two lock round-trips per pair and the
    // hot molecules' locks ping-pong between caches.
    let lock_programs = (0..THREADS)
        .map(|t| {
            let mut b = ProgramBuilder::new(t);
            // One lock word per molecule (the lock region holds 64 slots).
            let mol_lock = |i: usize| locks.offset((i % 64) as u64 * 64);
            for it in 0..iters as u32 {
                let mine = chunk(pairs.len(), t);
                for (pi, &(a, c)) in pairs[mine.clone()].iter().enumerate() {
                    for w in 0..3 {
                        b.read(pos(a, w));
                        b.read(pos(c, w));
                    }
                    // The pair's updates run under the lower molecule's lock.
                    b.begin(mol_lock(a.min(c)), 0);
                    for w in 0..3 {
                        b.rmw(force(a, w), 1);
                        b.rmw(force(c, w), -1);
                    }
                    b.end();
                    if pi % 8 == 0 {
                        b.begin(locks.offset(4032), 0);
                        b.rmw(globals, 1);
                        b.end();
                    }
                    b.compute(30);
                }
                b.barrier(it);
            }
            b.build()
        })
        .collect();

    Workload {
        name: "water",
        programs,
        lock_programs: Some(lock_programs),
        cs_interval: Some(20_000),
        exc_interval: Some(400_000),
        mem_frames: 2048,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_sim::Op;

    #[test]
    fn footprint_fits_in_the_scaled_caches_at_tiny() {
        let m = molecules(Scale::Tiny);
        assert!(m * MOL_WORDS * 4 <= 16 * 1024, "water must mostly fit");
    }

    #[test]
    fn pair_phase_writes_only_private_partials() {
        // During phase 1 no two threads write the same word; sharing is
        // confined to the merge phase's global accumulator.
        let w = workload(Scale::Tiny);
        let mut writers: std::collections::HashMap<ptm_types::VirtAddr, usize> = Default::default();
        let mut shared_words = 0;
        for (t, p) in w.programs.iter().enumerate() {
            for pc in 0..p.len() {
                if let Some(Op::Rmw(a, _)) = p.op_at(pc) {
                    match writers.get(&a.word_aligned()) {
                        Some(&prev) if prev != t => shared_words += 1,
                        _ => {
                            writers.insert(a.word_aligned(), t);
                        }
                    }
                }
            }
        }
        // Only the single global accumulator is multi-writer.
        assert!(shared_words > 0, "the global accumulator is shared");
    }

    #[test]
    fn phases_are_barrier_separated() {
        let w = workload(Scale::Tiny);
        for p in &w.programs {
            let barriers = (0..p.len())
                .filter(|&pc| matches!(p.op_at(pc), Some(Op::Barrier(_))))
                .count();
            assert_eq!(barriers, 4, "two barriers per iteration, two iterations");
        }
    }
}
