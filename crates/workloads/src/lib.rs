//! SPLASH-2-style transactional workloads for the PTM reproduction.
//!
//! The paper evaluates five SPLASH-2 programs (fft, lu, radix, ocean,
//! water), lock-stripped and re-parallelized with transactions around loop
//! bodies (§6.2). We cannot run the original binaries inside this
//! simulator, so each kernel here regenerates the benchmark's *memory
//! behaviour* — the footprints, sharing patterns, transaction shapes and
//! eviction pressure that drive every number in Table 1 and Figures 4/5 —
//! as deterministic per-thread operation streams. See each module's
//! documentation for the signature it reproduces and DESIGN.md for the
//! substitution argument.
//!
//! # Examples
//!
//! ```
//! use ptm_sim::{run, SystemKind};
//! use ptm_workloads::{Scale, water};
//!
//! let w = water::workload(Scale::Tiny);
//! let m = run(w.machine_config(), SystemKind::SelectPtm(Default::default()), w.programs());
//! assert!(m.stats().commits > 0);
//! ```

pub mod common;
pub mod fft;
pub mod lu;
pub mod ocean;
pub mod radix;
pub mod service;
pub mod synthetic;
pub mod water;
pub mod zipf;

pub use common::{chunk, ProgramBuilder, Scale, Workload, THREADS};
pub use service::{BurstConfig, ClientTx, ServiceWorkloadConfig};
pub use synthetic::SyntheticConfig;
pub use zipf::{ZipfAccounts, Zipfian};

/// The five paper benchmarks, in Table 1 order.
pub fn splash2(scale: Scale) -> Vec<Workload> {
    vec![
        fft::workload(scale),
        lu::workload(scale),
        radix::workload(scale),
        ocean::workload(scale),
        water::workload(scale),
    ]
}

/// Builds one benchmark by its Table 1 name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    match name {
        "fft" => Some(fft::workload(scale)),
        "lu" => Some(lu::workload(scale)),
        "radix" => Some(radix::workload(scale)),
        "ocean" => Some(ocean::workload(scale)),
        "water" => Some(water::workload(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_benchmarks_build() {
        let all = splash2(Scale::Tiny);
        let names: Vec<_> = all.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["fft", "lu", "radix", "ocean", "water"]);
        for w in &all {
            assert_eq!(w.programs.len(), THREADS, "{}", w.name);
            assert!(w.programs.iter().all(|p| !p.is_empty()), "{}", w.name);
        }
    }

    #[test]
    fn by_name_resolves_and_rejects() {
        assert!(by_name("ocean", Scale::Tiny).is_some());
        assert!(by_name("barnes", Scale::Tiny).is_none());
    }

    #[test]
    fn every_benchmark_has_balanced_transactions() {
        for w in splash2(Scale::Tiny) {
            for p in &w.programs {
                let mut depth: i64 = 0;
                for pc in 0..p.len() {
                    match p.op_at(pc) {
                        Some(ptm_sim::Op::Begin { .. }) => depth += 1,
                        Some(ptm_sim::Op::End) => {
                            depth -= 1;
                            assert!(depth >= 0, "{}: unbalanced end", w.name);
                        }
                        _ => {}
                    }
                }
                assert_eq!(depth, 0, "{}: unbalanced begin", w.name);
            }
        }
    }

    #[test]
    fn shared_writes_only_inside_transactions() {
        // The serial-reference check requires that no two threads race on a
        // word outside transactions. Conservatively: *all* memory ops in the
        // five benchmarks sit inside transactions.
        for w in splash2(Scale::Tiny) {
            for p in &w.programs {
                let mut depth = 0;
                for pc in 0..p.len() {
                    match p.op_at(pc) {
                        Some(ptm_sim::Op::Begin { .. }) => depth += 1,
                        Some(ptm_sim::Op::End) => depth -= 1,
                        Some(op) if op.addr().is_some() => {
                            assert!(depth > 0, "{}: op outside tx at {pc}", w.name);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
