//! `radix` — the radix sort's histogram and permutation phases.
//!
//! Table 1/Figure 5 signature: modest footprint, and the **highest
//! sensitivity to conflict granularity** of the five benchmarks. As in the
//! SPLASH-2 original, every processor counts into its own contiguous
//! density/rank section (conflict-free), but the **permutation phase
//! scatters keys into the shared output array**: within each bucket the
//! processors' destination runs are contiguous and adjacent, so runs share
//! cache blocks at their boundaries — no two threads ever write the same
//! *word*, yet at *block* granularity the scatter collides constantly.
//! That pure false sharing is why `wd:cache+mem` lifts radix from 116% to
//! 170% in Figure 5 while `blk-only` suffers unnecessary aborts.

use crate::common::{chunk, ProgramBuilder, Scale, Workload, THREADS};
use ptm_mem::LayoutBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of keys per scale.
fn keys(scale: Scale) -> usize {
    1536 * scale.factor()
}

const RADIX_BITS: u32 = 5;
const BUCKETS: usize = 1 << RADIX_BITS; // 32 buckets
const DIGITS: usize = 2;

/// Builds the radix workload.
pub fn workload(scale: Scale) -> Workload {
    let n = keys(scale);
    let mut rng = StdRng::seed_from_u64(0x5eed_5a1e);
    let key_vals: Vec<u32> = (0..n).map(|_| rng.gen()).collect();

    let mut layout = LayoutBuilder::new();
    layout.region("keys", n * 4);
    layout.region("output", n * 4);
    // density[proc][bucket] / rank[proc][bucket]: contiguous per-processor
    // sections, as in the original.
    layout.region("hist", BUCKETS * THREADS * 4);
    layout.region("cursors", BUCKETS * THREADS * 4);
    layout.region("locks", 4096);
    let layout = layout.build();
    let keys_base = layout
        .region("keys")
        .expect("radix workload layout has no region \"keys\"")
        .base();
    let out_base = layout
        .region("output")
        .expect("radix workload layout has no region \"output\"")
        .base();
    let hist = layout
        .region("hist")
        .expect("radix workload layout has no region \"hist\"")
        .base();
    let cursors = layout
        .region("cursors")
        .expect("radix workload layout has no region \"cursors\"")
        .base();
    let locks = layout
        .region("locks")
        .expect("radix workload layout has no region \"locks\"")
        .base();

    let digit = |v: u32, d: usize| ((v >> (d as u32 * RADIX_BITS)) as usize) & (BUCKETS - 1);
    let hist_slot = |b: usize, t: usize| hist.offset(((t * BUCKETS + b) * 4) as u64);
    let cursor_slot = |b: usize, t: usize| cursors.offset(((t * BUCKETS + b) * 4) as u64);

    let mut programs = Vec::new();
    for t in 0..THREADS {
        let my_keys = chunk(n, t);
        let mut b = ProgramBuilder::new(t);
        for d in 0..DIGITS {
            // Histogram phase: count into this thread's interleaved stripe.
            let tx_chunk = (my_keys.len() / 4).max(1);
            let mut i = my_keys.start;
            while i < my_keys.end {
                let hi = (i + tx_chunk).min(my_keys.end);
                b.begin(locks.offset((d * 1024 + t * 64) as u64), 0);
                for (k, &key) in key_vals.iter().enumerate().take(hi).skip(i) {
                    b.read(keys_base.offset(k as u64 * 4));
                    b.rmw(hist_slot(digit(key, d), t), 1);
                }
                b.end();
                b.compute(40);
                i = hi;
            }
            b.barrier((d * 2) as u32);

            // Permute phase: bump this thread's bucket cursor and scatter
            // the key to its unique slot. The transaction wraps a quarter
            // of the thread's keys — large scatters that overflow.
            let order = stable_order(&key_vals, d, digit);
            let permute_chunk = (my_keys.len() / 8).max(1);
            // Odd threads walk their keys in reverse: their destination
            // runs are filled end-first, so adjacent threads write the
            // blocks around their shared run boundaries *at the same time*
            // — the false-sharing collision the original exhibits.
            let key_order: Vec<usize> = if t % 2 == 0 {
                my_keys.clone().collect()
            } else {
                my_keys.clone().rev().collect()
            };
            let mut i = 0;
            while i < key_order.len() {
                let hi = (i + permute_chunk).min(key_order.len());
                b.begin(locks.offset((2048 + d * 1024 + t * 64) as u64), 0);
                for &k in &key_order[i..hi] {
                    b.read(keys_base.offset(k as u64 * 4));
                    b.rmw(cursor_slot(digit(key_vals[k], d), t), 1);
                    b.write(out_base.offset(order[k] as u64 * 4), key_vals[k]);
                }
                b.end();
                b.compute(40);
                i = hi;
            }
            b.barrier((d * 2 + 1) as u32);
        }
        programs.push(b.build());
    }

    Workload {
        name: "radix",
        programs,
        lock_programs: None,
        cs_interval: Some(40_000),
        exc_interval: Some(25_000),
        mem_frames: (keys(scale) * 8 / 4096) * 4 + 1024,
    }
}

/// The rank of each key in the stable counting sort for digit `d` — its
/// unique destination slot.
fn stable_order(vals: &[u32], d: usize, digit: impl Fn(u32, usize) -> usize) -> Vec<usize> {
    let mut counts = vec![0usize; BUCKETS + 1];
    for &v in vals {
        counts[digit(v, d) + 1] += 1;
    }
    for b in 0..BUCKETS {
        counts[b + 1] += counts[b];
    }
    let mut next = counts;
    vals.iter()
        .map(|&v| {
            let b = digit(v, d);
            let slot = next[b];
            next[b] += 1;
            slot
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_sim::Op;
    use ptm_types::BLOCK_SIZE;

    #[test]
    fn histogram_sections_are_block_private() {
        // density[proc][bucket]: each processor's 32-bucket section spans
        // exactly two blocks, so the histogram phase is conflict-free.
        assert_eq!(BUCKETS * 4 % BLOCK_SIZE, 0, "sections are block-aligned");
    }

    #[test]
    fn scatter_destinations_are_unique() {
        let vals = vec![9u32, 1, 9, 3, 1];
        let order = stable_order(&vals, 0, |v, _| (v as usize) & (BUCKETS - 1));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "a permutation");
        assert!(order[1] < order[4], "stable");
    }

    #[test]
    fn histogram_stripes_are_word_private() {
        // The whole point: the concurrent phases are pure *false* sharing —
        // no two threads ever increment the same histogram/cursor word.
        // (Output slots are reused across barrier-separated digit phases,
        // which is sequential, not concurrent, sharing.)
        let w = workload(Scale::Tiny);
        let mut writers: std::collections::HashMap<ptm_types::VirtAddr, usize> = Default::default();
        for (t, p) in w.programs.iter().enumerate() {
            for pc in 0..p.len() {
                if let Some(Op::Rmw(a, _)) = p.op_at(pc) {
                    if let Some(prev) = writers.insert(a.word_aligned(), t) {
                        assert_eq!(prev, t, "true sharing at {a}");
                    }
                }
            }
        }
        assert!(!writers.is_empty());
    }

    #[test]
    fn scatter_runs_share_output_blocks_across_threads() {
        // The permutation phase's defining false sharing: different threads
        // write different words of the same output blocks.
        let w = workload(Scale::Tiny);
        let blocks = |p: &ptm_sim::ThreadProgram| {
            (0..p.len())
                .filter_map(|pc| match p.op_at(pc) {
                    Some(Op::Write(a, _)) => Some(a.block_aligned()),
                    _ => None,
                })
                .collect::<std::collections::HashSet<_>>()
        };
        let a = blocks(&w.programs[0]);
        let b = blocks(&w.programs[1]);
        assert!(
            a.intersection(&b).count() > 0,
            "false sharing on output blocks"
        );
    }
}
