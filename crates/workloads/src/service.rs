//! Client-transaction stream for the PTM-as-a-service frontend.
//!
//! Models a bank / erc20-style ledger: each transaction transfers an
//! amount between two accounts, or probes one account's balance
//! (read-only). Account ids are drawn from the Zipfian contention
//! generator in [`crate::zipf`], so skew and account-space size are the
//! two workload knobs the service bench sweeps.

use crate::common::Scale;
use crate::zipf::ZipfAccounts;
use ptm_types::rng::SplitMix64;

/// One client request as it arrives at the service frontend.
///
/// For transfers, `from` is debited and `to` credited by `amount`
/// (wrapping 32-bit ledger arithmetic, matching the simulator's word
/// size). For read-only probes, `to` and `amount` are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientTx {
    /// Client-assigned id; unique within a stream, echoed in receipts.
    pub id: u64,
    /// Debited account (or the probed account for read-only requests).
    pub from: u64,
    /// Credited account.
    pub to: u64,
    /// Transfer amount in ledger units.
    pub amount: u32,
    /// Balance probe: touches only `from`, never writes.
    pub read_only: bool,
}

/// Knobs for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceWorkloadConfig {
    /// Size of the account space; ids are `0..accounts`.
    pub accounts: u64,
    /// Zipfian exponent for account selection.
    pub skew: f64,
    /// Stream seed; the output is bit-stable per seed.
    pub seed: u64,
    /// Number of client transactions to emit.
    pub txs: usize,
    /// Percentage (0..=100) of read-only balance probes.
    pub read_only_pct: u8,
}

impl ServiceWorkloadConfig {
    /// Default stream at a given simulator scale and skew. Account
    /// spaces are deliberately large — the service maps only the
    /// accounts a block actually touches, so millions of accounts cost
    /// nothing.
    pub fn scaled(scale: Scale, skew: f64) -> Self {
        let factor = scale.factor() as u64;
        ServiceWorkloadConfig {
            accounts: 500_000 * factor,
            skew,
            seed: 0x5EED_5E4C + (skew * 1000.0) as u64,
            txs: 500 * factor as usize,
            read_only_pct: 20,
        }
    }
}

/// Generates a bit-stable client-transaction stream.
///
/// Determinism contract: the output is a pure function of the config.
/// Two generators, per-field draw order, and the Zipfian sampler all run
/// off `SplitMix64` streams derived from `seed`, so any change to the
/// sequence is a deliberate, test-visible event.
pub fn generate(cfg: &ServiceWorkloadConfig) -> Vec<ClientTx> {
    assert!(cfg.accounts >= 2, "transfers need at least two accounts");
    assert!(cfg.read_only_pct <= 100);
    let mut pick = ZipfAccounts::new(cfg.accounts, cfg.skew, cfg.seed);
    // Independent stream for amounts and the read-only coin so changing
    // the read-only mix doesn't reshuffle which accounts get hot.
    let mut aux = SplitMix64::new(cfg.seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let mut out = Vec::with_capacity(cfg.txs);
    for id in 0..cfg.txs as u64 {
        let read_only = (aux.next_u64() % 100) < cfg.read_only_pct as u64;
        let from = pick.next_account();
        if read_only {
            out.push(ClientTx {
                id,
                from,
                to: from,
                amount: 0,
                read_only: true,
            });
            continue;
        }
        let mut to = pick.next_account();
        if to == from {
            // Self-transfers are a no-op; redirect to the neighbour so
            // every transfer moves value.
            to = (to + 1) % cfg.accounts;
        }
        let amount = (aux.next_u64() % 1_000) as u32 + 1;
        out.push(ClientTx {
            id,
            from,
            to,
            amount,
            read_only: false,
        });
    }
    out
}

/// Burst shaping for [`generate_bursts`]: the overload generator the
/// service-chaos bench floods the bounded submit queue with.
#[derive(Debug, Clone, Copy)]
pub struct BurstConfig {
    /// Mean burst length in transactions; actual lengths are drawn
    /// geometrically around the mean, so the stream mixes single
    /// stragglers with queue-depth-crushing spikes.
    pub mean_burst: usize,
    /// Hard cap on one burst.
    pub max_burst: usize,
}

impl BurstConfig {
    /// A default shape whose spikes comfortably exceed typical
    /// `queue_depth` settings at every scale.
    pub fn new(mean_burst: usize) -> Self {
        BurstConfig {
            mean_burst: mean_burst.max(1),
            max_burst: mean_burst.max(1) * 8,
        }
    }
}

/// Chops the stream of [`generate`] into arrival bursts for overload and
/// crash drills: each inner vector is submitted back-to-back (a traffic
/// spike), with the client expected to drain/back off between bursts.
///
/// The concatenation of the bursts is exactly `generate(cfg)` — burst
/// shaping changes arrival timing, never content — and burst lengths are
/// a pure function of `(cfg.seed, burst)`, so a crash sweep replaying
/// the same config floods the queue identically every run.
pub fn generate_bursts(cfg: &ServiceWorkloadConfig, burst: &BurstConfig) -> Vec<Vec<ClientTx>> {
    assert!(burst.mean_burst >= 1 && burst.max_burst >= burst.mean_burst);
    let stream = generate(cfg);
    let mut lens = SplitMix64::new(cfg.seed ^ 0xB0B5_7B0B_57B0_B57B);
    let mut out = Vec::new();
    let mut rest = &stream[..];
    while !rest.is_empty() {
        // Geometric-ish draw: product of two uniform draws over
        // [1, 2*mean] biases toward short bursts with a heavy tail.
        let a = (lens.next_u64() % (2 * burst.mean_burst as u64)) + 1;
        let b = (lens.next_u64() % (2 * burst.mean_burst as u64)) + 1;
        let len = (((a * b) as f64).sqrt() as usize)
            .clamp(1, burst.max_burst)
            .min(rest.len());
        let (head, tail) = rest.split_at(len);
        out.push(head.to_vec());
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_concatenate_to_the_plain_stream_and_vary_in_length() {
        let cfg = ServiceWorkloadConfig {
            accounts: 10_000,
            skew: 0.9,
            seed: 99,
            txs: 2_000,
            read_only_pct: 25,
        };
        let burst = BurstConfig::new(16);
        let bursts = generate_bursts(&cfg, &burst);
        assert_eq!(bursts, generate_bursts(&cfg, &burst), "bit-stable");
        let flat: Vec<ClientTx> = bursts.iter().flatten().copied().collect();
        assert_eq!(flat, generate(&cfg), "shaping never changes content");
        let lens: Vec<usize> = bursts.iter().map(|b| b.len()).collect();
        assert!(lens.iter().all(|&l| l >= 1 && l <= burst.max_burst));
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        assert!(min < max, "a flood generator needs spikes: {lens:?}");
        assert!(*max > burst.mean_burst, "tail reaches past the mean");
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let cfg = ServiceWorkloadConfig {
            accounts: 10_000,
            skew: 0.9,
            seed: 99,
            txs: 500,
            read_only_pct: 25,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = ServiceWorkloadConfig { seed: 100, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn transfers_never_self_transfer_and_stay_in_range() {
        let cfg = ServiceWorkloadConfig {
            accounts: 64,
            skew: 1.2,
            seed: 5,
            txs: 2_000,
            read_only_pct: 10,
        };
        for tx in generate(&cfg) {
            assert!(tx.from < cfg.accounts && tx.to < cfg.accounts);
            if !tx.read_only {
                assert_ne!(tx.from, tx.to);
                assert!(tx.amount >= 1);
            }
        }
    }

    #[test]
    fn read_only_mix_tracks_the_knob() {
        let cfg = ServiceWorkloadConfig {
            accounts: 1_000,
            skew: 0.6,
            seed: 7,
            txs: 10_000,
            read_only_pct: 30,
        };
        let ro = generate(&cfg).iter().filter(|t| t.read_only).count();
        let frac = ro as f64 / cfg.txs as f64;
        assert!((frac - 0.30).abs() < 0.03, "read-only fraction {frac}");
    }
}
