//! `ocean` — grid-based ocean-current simulation.
//!
//! Table 1 signature: by far the **largest footprint** (14,966 pages at
//! full scale) and the **heaviest eviction pressure** (a cache block evicted
//! every ~16 memory operations), plus the most commits *and* the most
//! aborts. Ocean relaxes several large grids with 5-point stencils; band
//! boundaries make neighbouring threads' transactions genuinely conflict,
//! and the multigrid's column-order traversals stride straight through the
//! caches.
//!
//! We reproduce that with multiple grids larger than the L2, row-band
//! transactions whose stencil reads cross into the neighbour band, and a
//! column-major sweep per iteration.

use crate::common::{ProgramBuilder, Scale, Workload, THREADS};
use ptm_mem::LayoutBuilder;
use ptm_types::VirtAddr;

/// Grid edge length in words per scale.
fn dim(scale: Scale) -> usize {
    64 * scale.factor() // Tiny: 64, Small: 256, Full: 512
}

const GRIDS: usize = 3;
/// Additional read-only grids (bathymetry/coefficients): read by the
/// stencil, never written — they keep ocean's conservative shadow overhead
/// near the paper's ~45%.
const RO_GRIDS: usize = 3;

/// Builds the ocean workload.
pub fn workload(scale: Scale) -> Workload {
    let n = dim(scale);
    let iters = 3;

    let mut layout = LayoutBuilder::new();
    for g in 0..GRIDS {
        layout.region(&format!("grid{g}"), n * n * 4);
    }
    for g in 0..RO_GRIDS {
        layout.region(&format!("ro{g}"), n * n * 4);
    }
    layout.region("locks", 4096 * 2);
    let layout = layout.build();
    let grids: Vec<VirtAddr> = (0..GRIDS)
        .map(|g| {
            layout
                .region(&format!("grid{g}"))
                .unwrap_or_else(|| panic!("ocean workload layout has no region \"grid{g}\""))
                .base()
        })
        .collect();
    let ro: Vec<VirtAddr> = (0..RO_GRIDS)
        .map(|g| {
            layout
                .region(&format!("ro{g}"))
                .unwrap_or_else(|| panic!("ocean workload layout has no region \"ro{g}\""))
                .base()
        })
        .collect();
    let locks = layout
        .region("locks")
        .expect("ocean workload layout has no region \"locks\"")
        .base();

    let at = |g: usize, r: usize, c: usize| grids[g].offset((r * n + c) as u64 * 4);
    let ro_at = |g: usize, r: usize, c: usize| ro[g].offset((r * n + c) as u64 * 4);

    let band = n / THREADS;
    let rows_per_tx = (band / 6).max(2);

    let programs = (0..THREADS)
        .map(|t| {
            let mut b = ProgramBuilder::new(t);
            let r0 = t * band;
            let r1 = ((t + 1) * band).min(n);
            for it in 0..iters {
                for g in 0..GRIDS {
                    // Row-band stencil relaxation: one transaction per strip
                    // of rows; boundary strips read the neighbour band.
                    // Adjacent threads sweep their bands in opposite
                    // directions (as the original's red/black + multigrid
                    // phases do), so they genuinely meet at the band
                    // boundaries — the source of ocean's many aborts.
                    let strips: Vec<usize> = (r0..r1).step_by(rows_per_tx).collect();
                    let strips: Vec<usize> = if t % 2 == 0 {
                        strips
                    } else {
                        strips.into_iter().rev().collect()
                    };
                    for &r in &strips {
                        let rh = (r + rows_per_tx).min(r1);
                        b.begin(locks.offset((t * 64) as u64), 0);
                        // Boundary strips additionally take the shared
                        // boundary lock under lock-based execution — the
                        // conservative serialization transactions avoid.
                        let lower_boundary = t > 0 && r == r0;
                        let upper_boundary = t + 1 < THREADS && rh == r1;
                        if lower_boundary {
                            b.begin(locks.offset((2048 + t * 64) as u64), 0);
                        }
                        if upper_boundary {
                            b.begin(locks.offset((2048 + (t + 1) * 64) as u64), 0);
                        }
                        for row in r..rh {
                            for col in (1..n - 1).step_by(2) {
                                if row > 0 {
                                    b.read(at(g, row - 1, col));
                                }
                                if row + 1 < n {
                                    b.read(at(g, row + 1, col));
                                }
                                b.read(ro_at(g % RO_GRIDS, row, col));
                                b.rmw(at(g, row, col), (it + g + 1) as i32);
                            }
                        }
                        if upper_boundary {
                            b.end();
                        }
                        if lower_boundary {
                            b.end();
                        }
                        b.end();
                    }
                    b.compute(150);
                    b.barrier((it * (GRIDS + 1) + g) as u32);
                }
                // Column-major sweep of grid 0 (reads only): the cache-
                // hostile multigrid traversal. Columns are split by thread.
                b.begin(locks.offset((1024 + t * 64) as u64), 0);
                let c0 = t * (n / THREADS);
                let c1 = (t + 1) * (n / THREADS);
                for col in (c0..c1).step_by(4) {
                    for row in (0..n).step_by(2) {
                        b.read(at(0, row, col));
                        b.read(ro_at(1, row, col));
                    }
                }
                b.end();
                b.compute(150);
                b.barrier((it * (GRIDS + 1) + GRIDS) as u32);
            }
            b.build()
        })
        .collect();

    Workload {
        name: "ocean",
        programs,
        lock_programs: None,
        cs_interval: Some(100_000),
        exc_interval: Some(20_000),
        mem_frames: (dim(scale).pow(2) * 4 * (GRIDS + RO_GRIDS) / 4096) * 3 + 2048,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_sim::Op;

    #[test]
    fn footprint_exceeds_the_l2_at_small_scale() {
        let n = dim(Scale::Small);
        assert!(
            n * n * 4 * GRIDS > 256 * 1024,
            "ocean must not fit in the 256 KiB L2"
        );
    }

    #[test]
    fn boundary_strips_read_the_neighbour_band() {
        let w = workload(Scale::Tiny);
        let n = dim(Scale::Tiny);
        let band = n / THREADS;
        // Thread 1's band starts at row `band`; its stencil must read at
        // least one address from row `band - 1` (thread 0's band).
        let grid0_base = 4096u64; // first region of the layout
        let band_start = grid0_base + (band * n * 4) as u64;
        let p = &w.programs[1];
        let reads_neighbour = (0..p.len()).any(|pc| match p.op_at(pc) {
            Some(Op::Read(a)) => a.0 >= grid0_base && a.0 < band_start,
            _ => false,
        });
        assert!(reads_neighbour, "stencil crosses the band boundary");
    }

    #[test]
    fn ocean_generates_the_most_operations() {
        let ocean: usize = workload(Scale::Tiny).programs.iter().map(|p| p.len()).sum();
        let water: usize = crate::water::workload(Scale::Tiny)
            .programs
            .iter()
            .map(|p| p.len())
            .sum();
        assert!(ocean > water, "ocean dwarfs water ({ocean} vs {water})");
    }
}
