//! Parameterized synthetic workloads for tests, examples and ablations.

use crate::common::{ProgramBuilder, Workload, THREADS};
use ptm_mem::LayoutBuilder;
use ptm_types::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Worker threads.
    pub threads: usize,
    /// Transactions per thread.
    pub txs_per_thread: usize,
    /// Memory operations per transaction.
    pub ops_per_tx: usize,
    /// Pages of thread-private data per thread.
    pub private_pages: usize,
    /// Pages of shared data (the conflict surface).
    pub shared_pages: usize,
    /// Probability (0..=1) that an operation targets shared data.
    pub shared_fraction: f64,
    /// Probability (0..=1) that an operation writes.
    pub write_fraction: f64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            threads: THREADS,
            txs_per_thread: 20,
            ops_per_tx: 24,
            private_pages: 8,
            shared_pages: 2,
            shared_fraction: 0.2,
            write_fraction: 0.4,
            seed: 42,
        }
    }
}

/// Builds a synthetic workload.
///
/// Shared data is only ever touched inside transactions, keeping the serial
/// reference check applicable. Writes use commutative `Rmw` updates so
/// outcome checking stays order-independent.
///
/// # Examples
///
/// ```
/// use ptm_workloads::synthetic::{workload, SyntheticConfig};
///
/// let w = workload(SyntheticConfig::default());
/// assert_eq!(w.programs.len(), 4);
/// assert!(w.programs[0].len() > 0);
/// ```
pub fn workload(cfg: SyntheticConfig) -> Workload {
    let mut layout = LayoutBuilder::new();
    layout.region("shared", cfg.shared_pages * PAGE_SIZE);
    for t in 0..cfg.threads {
        layout.region(&format!("private{t}"), cfg.private_pages * PAGE_SIZE);
    }
    layout.region("locks", PAGE_SIZE);
    let layout = layout.build();
    let shared = layout
        .region("shared")
        .expect("synthetic workload layout has no region \"shared\"")
        .base();
    let locks = layout
        .region("locks")
        .expect("synthetic workload layout has no region \"locks\"")
        .base();

    let shared_words = cfg.shared_pages * PAGE_SIZE / 4;
    let private_words = cfg.private_pages * PAGE_SIZE / 4;

    let programs = (0..cfg.threads)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9e37));
            let private = layout
                .region(&format!("private{t}"))
                .unwrap_or_else(|| panic!("synthetic workload layout has no region \"private{t}\""))
                .base();
            let mut b = ProgramBuilder::new(t);
            for _ in 0..cfg.txs_per_thread {
                b.begin(locks.offset((t * 64) as u64), 0);
                for _ in 0..cfg.ops_per_tx {
                    let go_shared = rng.gen_bool(cfg.shared_fraction);
                    let addr = if go_shared {
                        shared.offset(rng.gen_range(0..shared_words) as u64 * 4)
                    } else {
                        private.offset(rng.gen_range(0..private_words) as u64 * 4)
                    };
                    if rng.gen_bool(cfg.write_fraction) {
                        b.rmw(addr, rng.gen_range(1..5));
                    } else {
                        b.read(addr);
                    }
                }
                b.end();
                b.compute(rng.gen_range(10..60));
            }
            b.build()
        })
        .collect();

    Workload {
        name: "synthetic",
        programs,
        lock_programs: None,
        cs_interval: None,
        exc_interval: None,
        mem_frames: (cfg.threads * cfg.private_pages + cfg.shared_pages) * 8 + 1024,
    }
}

/// A quickstart-sized synthetic workload: low contention, small footprint.
pub fn quickstart() -> Workload {
    workload(SyntheticConfig::default())
}

/// A high-contention variant (every op hits the shared region).
pub fn contended(seed: u64) -> Workload {
    workload(SyntheticConfig {
        shared_fraction: 0.9,
        shared_pages: 1,
        write_fraction: 0.6,
        seed,
        ..SyntheticConfig::default()
    })
}

/// An overflow-heavy variant: transactions larger than the caches.
pub fn overflowing(seed: u64) -> Workload {
    workload(SyntheticConfig {
        ops_per_tx: 600,
        txs_per_thread: 6,
        private_pages: 64,
        shared_pages: 8,
        shared_fraction: 0.1,
        seed,
        ..SyntheticConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_sim::Op;

    #[test]
    fn generator_is_deterministic() {
        let a = workload(SyntheticConfig::default());
        let b = workload(SyntheticConfig::default());
        for (pa, pb) in a.programs.iter().zip(b.programs.iter()) {
            assert_eq!(pa.len(), pb.len());
            for pc in 0..pa.len() {
                assert_eq!(pa.op_at(pc), pb.op_at(pc));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = workload(SyntheticConfig {
            seed: 1,
            ..Default::default()
        });
        let b = workload(SyntheticConfig {
            seed: 2,
            ..Default::default()
        });
        let same = a.programs[0].len() == b.programs[0].len()
            && (0..a.programs[0].len())
                .all(|pc| a.programs[0].op_at(pc) == b.programs[0].op_at(pc));
        assert!(!same);
    }

    #[test]
    fn shared_accesses_stay_inside_transactions() {
        let w = workload(SyntheticConfig::default());
        for p in &w.programs {
            let mut depth = 0;
            for pc in 0..p.len() {
                match p.op_at(pc) {
                    Some(Op::Begin { .. }) => depth += 1,
                    Some(Op::End) => depth -= 1,
                    Some(op) if op.addr().is_some() => {
                        assert!(depth > 0, "memory op outside a transaction at {pc}");
                    }
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "balanced transactions");
        }
    }

    #[test]
    fn contended_variant_shares_more() {
        let count_shared = |w: &Workload| {
            // The shared region is the first region: page 1 onward for
            // `shared_pages` pages.
            w.programs
                .iter()
                .flat_map(|p| (0..p.len()).filter_map(move |pc| p.op_at(pc)))
                .filter(|op| op.addr().map(|a| a.vpn().0 <= 2).unwrap_or(false))
                .count()
        };
        let low = workload(SyntheticConfig::default());
        let high = contended(42);
        assert!(count_shared(&high) > count_shared(&low));
    }
}
