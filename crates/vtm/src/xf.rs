//! The XF counting Bloom filter.
//!
//! VTM consults the XF on every miss to decide whether the block *may* have
//! overflowed: counters are incremented when a block overflows and
//! decremented lazily on commit/abort. A zero means "definitely not
//! overflowed"; non-zero means "walk the XADT (or hit the XADC)".

use ptm_types::VirtAddr;

/// A counting Bloom filter over block-aligned virtual addresses.
///
/// The paper models 1.6 million entries in dedicated hardware; counters are
/// 8-bit and saturate rather than wrap (a saturated counter can no longer be
/// decremented, trading accuracy for safety — it can only cause false
/// positives, never false negatives).
///
/// # Examples
///
/// ```
/// use ptm_vtm::CountingBloom;
/// use ptm_types::VirtAddr;
///
/// let mut xf = CountingBloom::with_paper_size();
/// let a = VirtAddr::new(0x1000);
/// assert!(!xf.may_contain(a));
/// xf.insert(a);
/// assert!(xf.may_contain(a));
/// xf.remove(a);
/// assert!(!xf.may_contain(a));
/// ```
#[derive(Debug, Clone)]
pub struct CountingBloom {
    counters: Vec<u8>,
    hashes: u32,
}

impl CountingBloom {
    /// The paper's XF size: 1.6 million counters.
    pub fn with_paper_size() -> Self {
        CountingBloom::new(1_600_000, 4)
    }

    /// Creates a filter with `counters` cells and `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(counters: usize, hashes: u32) -> Self {
        assert!(counters > 0, "filter needs at least one counter");
        assert!(hashes > 0, "filter needs at least one hash");
        CountingBloom {
            counters: vec![0; counters],
            hashes,
        }
    }

    fn indices(&self, addr: VirtAddr) -> impl Iterator<Item = usize> + '_ {
        // Derive k indices by repeatedly mixing the block address with a
        // different odd multiplier (splitmix-style finalizer).
        let key = addr.block_aligned().0;
        let len = self.counters.len() as u64;
        (0..self.hashes).map(move |i| {
            let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(i) + 1));
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            ((x ^ (x >> 31)) % len) as usize
        })
    }

    /// Registers an overflowed block.
    pub fn insert(&mut self, addr: VirtAddr) {
        let idx: Vec<usize> = self.indices(addr).collect();
        for i in idx {
            self.counters[i] = self.counters[i].saturating_add(1);
        }
    }

    /// Unregisters an overflowed block (lazy, on commit/abort).
    pub fn remove(&mut self, addr: VirtAddr) {
        let idx: Vec<usize> = self.indices(addr).collect();
        for i in idx {
            // A saturated counter sticks at max: it may only over-approximate.
            if self.counters[i] != u8::MAX && self.counters[i] > 0 {
                self.counters[i] -= 1;
            }
        }
    }

    /// Returns `false` only if the block has definitely never overflowed
    /// (or all its overflows were removed).
    pub fn may_contain(&self, addr: VirtAddr) -> bool {
        self.indices(addr).all(|i| self.counters[i] > 0)
    }

    /// Number of counter cells.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns `true` if the filter has no cells (never; construction
    /// forbids it) — provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut xf = CountingBloom::new(1024, 4);
        let addrs: Vec<VirtAddr> = (0..100).map(|i| VirtAddr::new(i * 64)).collect();
        for a in &addrs {
            xf.insert(*a);
        }
        for a in &addrs {
            assert!(xf.may_contain(*a), "bloom filters never false-negative");
        }
    }

    #[test]
    fn remove_clears_membership() {
        let mut xf = CountingBloom::new(4096, 4);
        let a = VirtAddr::new(0x4040);
        xf.insert(a);
        xf.insert(a);
        xf.remove(a);
        assert!(xf.may_contain(a), "still one insertion outstanding");
        xf.remove(a);
        assert!(!xf.may_contain(a));
    }

    #[test]
    fn block_aligned_addresses_share_counters() {
        let mut xf = CountingBloom::new(4096, 4);
        xf.insert(VirtAddr::new(0x1000));
        assert!(
            xf.may_contain(VirtAddr::new(0x1004)),
            "same 64-byte block, same filter entry"
        );
        // Different block typically absent (may rarely false-positive; use
        // a large filter to make this deterministic enough for this addr).
        assert!(!xf.may_contain(VirtAddr::new(0x2000)));
    }

    #[test]
    fn false_positive_rate_is_low_for_paper_size() {
        let mut xf = CountingBloom::new(100_000, 4);
        for i in 0..1000u64 {
            xf.insert(VirtAddr::new(i * 64));
        }
        let fps = (100_000..110_000u64)
            .filter(|i| xf.may_contain(VirtAddr::new(i * 64)))
            .count();
        assert!(
            fps < 100,
            "false-positive rate should be below 1%, got {fps}/10000"
        );
    }

    #[test]
    fn saturated_counter_never_underflows_to_false_negative() {
        let mut xf = CountingBloom::new(64, 1);
        let a = VirtAddr::new(0);
        for _ in 0..300 {
            xf.insert(a);
        }
        // Counter saturated at 255; removals stick.
        for _ in 0..300 {
            xf.remove(a);
        }
        assert!(xf.may_contain(a), "saturation errs toward false positives");
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_size_panics() {
        let _ = CountingBloom::new(0, 1);
    }
}
