//! VTM — *Virtualizing Transactional Memory* (Rajwar, Herlihy, Lai, ISCA
//! 2005) — reimplemented as the baseline the PTM paper compares against
//! (§5.3, §5.3.1).
//!
//! VTM keeps its overflow state in per-process software structures indexed
//! by **virtual** address:
//!
//! * [`xadt::Xadt`] — the overflow log table: per overflowed block, the old
//!   (committed) value, the new (speculative) value, the reader set and the
//!   writer;
//! * [`xf::CountingBloom`] — the XF counting Bloom filter (1.6 M counters in
//!   the paper's model) that screens misses so most accesses never walk the
//!   XADT;
//! * the XADC — a metadata cache in the memory controller; following the
//!   paper's fairness rule, its capacity equals the *combined* SPT + TAV
//!   cache capacity (512 + 2048 = 2560 entries);
//! * [`system::VtmSystem`] — the orchestrating type, with the **Victim-VTM**
//!   variant (`VC-VTM`) whose XADC also buffers block data so committed
//!   blocks are usable before their lazy write-back completes.
//!
//! The crucial asymmetry to PTM: VTM buffers speculative data *away from*
//! memory, so **commit** must copy every overflowed dirty block back to its
//! home location — consuming bus/memory bandwidth and stalling any
//! transaction that touches a not-yet-copied block — while abort is cheap.
//! Select-PTM moves no data on either path. Figure 4 turns on exactly this.
//!
//! # Examples
//!
//! ```
//! use ptm_vtm::{VtmConfig, VtmSystem};
//! use ptm_types::TxId;
//!
//! let mut vtm = VtmSystem::new(VtmConfig::baseline());
//! vtm.begin(TxId(0));
//! assert!(!vtm.has_overflows());
//! ```

pub mod stats;
pub mod system;
pub mod xadt;
pub mod xf;

pub use stats::VtmStats;
pub use system::{VtmConfig, VtmSystem};
pub use xadt::{Xadt, XadtEntry};
pub use xf::CountingBloom;
