//! The XADT: VTM's overflow log table.
//!
//! One entry per overflowed block (per process), holding the old committed
//! value, the speculative value (if a transaction wrote the block), the
//! reader set and the writer. VTM keys its structures by **virtual**
//! address — they live in each application's address space — which is why
//! VTM cannot cover inter-process physical sharing the way PTM does (§5.3).

use ptm_mem::SpecBlock;
use ptm_types::{FastMap, ProcessId, TxId, VirtAddr, WordMask, BLOCK_SIZE};

/// Key of an XADT entry: which process's address space, which block.
pub type XadtKey = (ProcessId, VirtAddr);

/// One overflowed block's log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XadtEntry {
    /// The committed data at the time of the first overflow (used for
    /// non-transactional conflict detection in VTM; in this model it also
    /// documents that memory keeps the old value until commit).
    pub old_data: [u8; BLOCK_SIZE],
    /// The speculative data and written-word mask, once a writer overflowed.
    pub new_data: Option<SpecBlock>,
    /// Transactions that read-overflowed the block.
    pub readers: Vec<TxId>,
    /// The (single) transaction that write-overflowed the block.
    pub writer: Option<TxId>,
}

impl XadtEntry {
    fn new(old_data: [u8; BLOCK_SIZE]) -> Self {
        XadtEntry {
            old_data,
            new_data: None,
            readers: Vec::new(),
            writer: None,
        }
    }

    /// Transactions with any use of this block.
    pub fn users(&self) -> impl Iterator<Item = TxId> + '_ {
        self.readers.iter().copied().chain(self.writer)
    }
}

/// The overflow table.
///
/// # Examples
///
/// ```
/// use ptm_vtm::Xadt;
/// use ptm_types::{ProcessId, TxId, VirtAddr};
///
/// let mut xadt = Xadt::new();
/// let key = (ProcessId(0), VirtAddr::new(0x1000));
/// xadt.record_read(key, TxId(1), || [0u8; 64]);
/// assert_eq!(xadt.entry(key).unwrap().readers, vec![TxId(1)]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Xadt {
    entries: FastMap<XadtKey, XadtEntry>,
    peak: usize,
}

impl Xadt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no blocks are overflowed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Peak entry count.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Looks up the entry for a block.
    pub fn entry(&self, key: XadtKey) -> Option<&XadtEntry> {
        self.entries.get(&normalize(key))
    }

    /// Records a read overflow. `old` supplies the committed data if the
    /// entry must be created.
    pub fn record_read<F>(&mut self, key: XadtKey, tx: TxId, old: F)
    where
        F: FnOnce() -> [u8; BLOCK_SIZE],
    {
        let e = self
            .entries
            .entry(normalize(key))
            .or_insert_with(|| XadtEntry::new(old()));
        if !e.readers.contains(&tx) {
            e.readers.push(tx);
        }
        self.peak = self.peak.max(self.entries.len());
    }

    /// Records a write overflow, buffering the speculative data in the log.
    ///
    /// # Panics
    ///
    /// Panics if a *different* transaction already write-overflowed the
    /// block — conflict detection must have prevented that.
    pub fn record_write<F>(&mut self, key: XadtKey, tx: TxId, spec: SpecBlock, old: F)
    where
        F: FnOnce() -> [u8; BLOCK_SIZE],
    {
        let e = self
            .entries
            .entry(normalize(key))
            .or_insert_with(|| XadtEntry::new(old()));
        if let Some(prev) = e.writer {
            assert_eq!(prev, tx, "two overflowed writers for one block");
        }
        e.writer = Some(tx);
        match &mut e.new_data {
            Some(existing) => {
                // Merge the newer eviction's written words over the log copy.
                ptm_mem::versions::apply_written_words(&mut existing.data, &spec);
                existing.written = existing.written | spec.written;
            }
            None => e.new_data = Some(spec),
        }
        self.peak = self.peak.max(self.entries.len());
    }

    /// Reads a word of `tx`'s buffered speculative data, if any.
    pub fn read_spec_word(&self, key: XadtKey, tx: TxId, word: ptm_types::WordIdx) -> Option<u32> {
        let e = self.entries.get(&normalize(key))?;
        if e.writer != Some(tx) {
            return None;
        }
        e.new_data.as_ref().map(|d| d.read_word(word))
    }

    /// Removes `tx` from an entry; drops the entry when unused. Returns the
    /// speculative data if `tx` was the writer (commit copies it back to
    /// memory; abort discards it), plus whether the entry was fully removed
    /// (so the XF counter can be decremented).
    pub fn release(&mut self, key: XadtKey, tx: TxId) -> (Option<SpecBlock>, bool) {
        let k = normalize(key);
        let Some(e) = self.entries.get_mut(&k) else {
            return (None, false);
        };
        e.readers.retain(|t| *t != tx);
        let spec = if e.writer == Some(tx) {
            e.writer = None;
            e.new_data.take()
        } else {
            None
        };
        let empty = e.readers.is_empty() && e.writer.is_none();
        if empty {
            self.entries.remove(&k);
        }
        (spec, empty)
    }

    /// All blocks `tx` currently appears in.
    pub fn blocks_of(&self, tx: TxId) -> Vec<XadtKey> {
        let mut keys: Vec<XadtKey> = self
            .entries
            .iter()
            .filter(|(_, e)| e.users().any(|t| t == tx))
            .map(|(k, _)| *k)
            .collect();
        // The entry map iterates in hash order, which varies between
        // processes; commit/abort charge sequential bus latencies per block,
        // so an unsorted walk gives each block a run-dependent cleanup
        // deadline (observable as nondeterministic stall cycles).
        keys.sort();
        keys
    }

    /// Conflict check: transactions (≠ `requester`) whose overflowed use of
    /// the block conflicts with an access of the given kind. Mirrors PTM's
    /// RAW / WAR / WAW rules.
    pub fn conflicting(
        &self,
        key: XadtKey,
        requester: Option<TxId>,
        is_write: bool,
        word: ptm_types::WordIdx,
        word_level: bool,
    ) -> Vec<TxId> {
        let Some(e) = self.entries.get(&normalize(key)) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if let Some(w) = e.writer {
            if Some(w) != requester {
                let overlaps = if word_level {
                    e.new_data
                        .as_ref()
                        .map(|d| d.written.get(word))
                        .unwrap_or(true)
                } else {
                    true
                };
                if overlaps {
                    out.push(w);
                }
            }
        }
        if is_write {
            for r in &e.readers {
                if Some(*r) != requester {
                    out.push(*r);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// XADT keys are block-aligned.
fn normalize(key: XadtKey) -> XadtKey {
    (key.0, key.1.block_aligned())
}

/// Builds a [`SpecBlock`] directly (convenience for tests and the
/// simulator's overflow path).
pub fn spec_from(data: [u8; BLOCK_SIZE], written: WordMask) -> SpecBlock {
    SpecBlock { data, written }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::WordIdx;

    fn key(addr: u64) -> XadtKey {
        (ProcessId(0), VirtAddr::new(addr))
    }

    fn spec(word: u8, value: u32) -> SpecBlock {
        let mut data = [0u8; BLOCK_SIZE];
        data[word as usize * 4..word as usize * 4 + 4].copy_from_slice(&value.to_le_bytes());
        let mut written = WordMask::EMPTY;
        written.set(WordIdx(word));
        SpecBlock { data, written }
    }

    #[test]
    fn read_then_write_same_tx() {
        let mut x = Xadt::new();
        x.record_read(key(0x1000), TxId(1), || [7u8; BLOCK_SIZE]);
        x.record_write(key(0x1000), TxId(1), spec(0, 42), || [7u8; BLOCK_SIZE]);
        let e = x.entry(key(0x1000)).unwrap();
        assert_eq!(e.readers, vec![TxId(1)]);
        assert_eq!(e.writer, Some(TxId(1)));
        assert_eq!(e.old_data[0], 7, "old value snapshotted once");
        assert_eq!(x.read_spec_word(key(0x1000), TxId(1), WordIdx(0)), Some(42));
        assert_eq!(x.read_spec_word(key(0x1000), TxId(2), WordIdx(0)), None);
    }

    #[test]
    fn keys_are_block_aligned() {
        let mut x = Xadt::new();
        x.record_read(key(0x1004), TxId(1), || [0u8; BLOCK_SIZE]);
        assert!(x.entry(key(0x1000)).is_some());
        assert!(x.entry(key(0x103c)).is_some());
        assert!(x.entry(key(0x1040)).is_none());
    }

    #[test]
    fn repeated_write_overflow_merges_words() {
        let mut x = Xadt::new();
        x.record_write(key(0), TxId(1), spec(0, 1), || [0u8; BLOCK_SIZE]);
        x.record_write(key(0), TxId(1), spec(1, 2), || [0u8; BLOCK_SIZE]);
        let d = x.entry(key(0)).unwrap().new_data.as_ref().unwrap();
        assert_eq!(d.read_word(WordIdx(0)), 1);
        assert_eq!(d.read_word(WordIdx(1)), 2);
        assert_eq!(d.written.count(), 2);
    }

    #[test]
    #[should_panic(expected = "two overflowed writers")]
    fn second_writer_panics() {
        let mut x = Xadt::new();
        x.record_write(key(0), TxId(1), spec(0, 1), || [0u8; BLOCK_SIZE]);
        x.record_write(key(0), TxId(2), spec(1, 2), || [0u8; BLOCK_SIZE]);
    }

    #[test]
    fn conflicts_follow_raw_war_waw() {
        let mut x = Xadt::new();
        x.record_read(key(0), TxId(1), || [0u8; BLOCK_SIZE]);
        x.record_write(key(64), TxId(2), spec(0, 1), || [0u8; BLOCK_SIZE]);

        // Reader of a read-overflowed block: no conflict.
        assert!(x
            .conflicting(key(0), Some(TxId(3)), false, WordIdx(0), false)
            .is_empty());
        // Writer against a reader: WAR.
        assert_eq!(
            x.conflicting(key(0), Some(TxId(3)), true, WordIdx(0), false),
            vec![TxId(1)]
        );
        // Reader against a writer: RAW.
        assert_eq!(
            x.conflicting(key(64), Some(TxId(3)), false, WordIdx(0), false),
            vec![TxId(2)]
        );
        // The owner never conflicts with itself.
        assert!(x
            .conflicting(key(64), Some(TxId(2)), true, WordIdx(0), false)
            .is_empty());
    }

    #[test]
    fn word_level_check_ignores_disjoint_words() {
        let mut x = Xadt::new();
        x.record_write(key(0), TxId(1), spec(0, 1), || [0u8; BLOCK_SIZE]);
        assert!(x
            .conflicting(key(0), Some(TxId(2)), false, WordIdx(5), true)
            .is_empty());
        assert_eq!(
            x.conflicting(key(0), Some(TxId(2)), false, WordIdx(0), true),
            vec![TxId(1)]
        );
    }

    #[test]
    fn release_returns_spec_and_frees_entry() {
        let mut x = Xadt::new();
        x.record_read(key(0), TxId(1), || [0u8; BLOCK_SIZE]);
        x.record_write(key(0), TxId(2), spec(0, 9), || [0u8; BLOCK_SIZE]);

        let (spec1, removed1) = x.release(key(0), TxId(1));
        assert!(spec1.is_none());
        assert!(!removed1, "writer still present");

        let (spec2, removed2) = x.release(key(0), TxId(2));
        assert_eq!(spec2.unwrap().read_word(WordIdx(0)), 9);
        assert!(removed2);
        assert!(x.is_empty());
        assert_eq!(x.peak(), 1);
    }

    #[test]
    fn blocks_of_finds_all_uses() {
        let mut x = Xadt::new();
        x.record_read(key(0), TxId(1), || [0u8; BLOCK_SIZE]);
        x.record_write(key(64), TxId(1), spec(0, 1), || [0u8; BLOCK_SIZE]);
        x.record_read(key(128), TxId(2), || [0u8; BLOCK_SIZE]);
        let mut blocks = x.blocks_of(TxId(1));
        blocks.sort();
        assert_eq!(blocks.len(), 2);
        assert_eq!(x.blocks_of(TxId(3)).len(), 0);
    }
}
