//! VTM event counters.

use std::fmt;

/// Counters for the VTM baseline's mechanisms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VtmStats {
    /// Transactions logically committed.
    pub commits: u64,
    /// Transactions logically aborted.
    pub aborts: u64,
    /// Clean (read-only) blocks overflowed into the XADT.
    pub clean_overflows: u64,
    /// Dirty blocks overflowed (speculative data buffered in the XADT).
    pub dirty_overflows: u64,
    /// Blocks copied from the XADT back to memory at commit — VTM's
    /// signature cost.
    pub commit_copy_blocks: u64,
    /// Commit copies absorbed by the victim cache (VC-VTM only): the block
    /// was usable immediately and written back in the background.
    pub victim_absorbed_commits: u64,
    /// XF filter queries that returned "definitely not overflowed".
    pub xf_filtered: u64,
    /// XF queries that said "maybe" and required an XADC/XADT check.
    pub xf_maybe: u64,
    /// XF "maybe" answers with no actual XADT entry (false positives).
    pub xf_false_positives: u64,
    /// XADC metadata-cache hits.
    pub xadc_hits: u64,
    /// XADC misses (each costs an XADT walk through memory).
    pub xadc_misses: u64,
    /// Conflicts detected against overflowed state.
    pub overflow_conflicts: u64,
    /// Peak XADT entry count.
    pub peak_xadt_entries: u64,
}

impl VtmStats {
    /// Total overflowed blocks.
    pub fn overflows(&self) -> u64 {
        self.clean_overflows + self.dirty_overflows
    }

    /// XF false-positive ratio among "maybe" answers.
    pub fn xf_false_positive_ratio(&self) -> f64 {
        if self.xf_maybe == 0 {
            0.0
        } else {
            self.xf_false_positives as f64 / self.xf_maybe as f64
        }
    }
}

impl fmt::Display for VtmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "commits={} aborts={} overflows={} (clean {} / dirty {})",
            self.commits,
            self.aborts,
            self.overflows(),
            self.clean_overflows,
            self.dirty_overflows
        )?;
        write!(
            f,
            "commit-copies={} (victim-absorbed {}) | xf filtered={} maybe={} fp={} | xadc {}/{} | conflicts={}",
            self.commit_copy_blocks,
            self.victim_absorbed_commits,
            self.xf_filtered,
            self.xf_maybe,
            self.xf_false_positives,
            self.xadc_hits,
            self.xadc_misses,
            self.overflow_conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        assert_eq!(VtmStats::default().xf_false_positive_ratio(), 0.0);
    }

    #[test]
    fn overflow_total() {
        let s = VtmStats {
            clean_overflows: 2,
            dirty_overflows: 5,
            ..Default::default()
        };
        assert_eq!(s.overflows(), 7);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", VtmStats::default()).is_empty());
    }
}
