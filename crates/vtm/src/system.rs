//! The VTM system: overflow handling, XF-filtered conflict detection, and
//! the copy-back commit that distinguishes VTM from PTM.

use crate::stats::VtmStats;
use crate::xadt::{Xadt, XadtKey};
use crate::xf::CountingBloom;
use ptm_cache::{SystemBus, TxLineMeta};
use ptm_core::system::{AccessKind, ConflictOutcome};
use ptm_core::tstate::{TStateTable, TxStatus};
use ptm_core::vts::{LruTracker, Touch, VtsCost};
use ptm_mem::{PhysicalMemory, SpecBlock};
use ptm_types::{Cycle, FastMap, Granularity, PhysBlock, TxId, VirtAddr, WordIdx, BLOCK_SIZE};

/// VTM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VtmConfig {
    /// Enable the Victim-VTM (`VC-VTM`) variant: the XADC also buffers block
    /// data, so committed blocks are marked committed instantly and written
    /// back lazily from the victim cache.
    pub victim_cache: bool,
    /// Counting Bloom filter size (the paper models 1.6 M entries).
    pub xf_counters: usize,
    /// XADC capacity. For fairness the paper sizes it to the combined SPT +
    /// TAV cache capacities (512 + 2048).
    pub xadc_entries: usize,
    /// Conflict granularity (shared with the Figure 5 study).
    pub granularity: Granularity,
    /// Latency of an XADC/XF lookup, in cycles.
    pub lookup_latency: u64,
}

impl VtmConfig {
    /// The paper's baseline VTM model.
    pub fn baseline() -> Self {
        VtmConfig {
            victim_cache: false,
            xf_counters: 1_600_000,
            xadc_entries: 512 + 2048,
            granularity: Granularity::Block,
            lookup_latency: 6,
        }
    }

    /// The Victim-VTM variant.
    pub fn victim() -> Self {
        VtmConfig {
            victim_cache: true,
            ..Self::baseline()
        }
    }
}

impl Default for VtmConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// The VTM transactional-memory system (baseline for Figure 4).
///
/// The API deliberately mirrors [`ptm_core::PtmSystem`] so the simulator can
/// swap backends; the semantic differences are:
///
/// * overflow state is keyed by *(process, virtual address)*, not physical
///   page — inter-process physical sharing is invisible to VTM;
/// * speculative data is buffered **in the XADT**, never in memory, so
///   commit must copy every dirty overflowed block back (bus traffic +
///   stalls) while abort is cheap;
/// * a counting Bloom filter (XF) screens misses before any XADC/XADT work.
#[derive(Debug, Clone)]
pub struct VtmSystem {
    cfg: VtmConfig,
    xadt: Xadt,
    xf: CountingBloom,
    xadc: LruTracker<XadtKey>,
    tstate: TStateTable,
    committing_blocks: FastMap<XadtKey, Cycle>,
    stats: VtmStats,
}

impl VtmSystem {
    /// Creates a VTM system.
    pub fn new(cfg: VtmConfig) -> Self {
        VtmSystem {
            xadt: Xadt::new(),
            xf: CountingBloom::new(cfg.xf_counters, 4),
            xadc: LruTracker::new(cfg.xadc_entries),
            tstate: TStateTable::new(),
            committing_blocks: FastMap::default(),
            stats: VtmStats::default(),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &VtmConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &VtmStats {
        &self.stats
    }

    /// The transaction-status table (VTM's XSWs, one status word per
    /// transaction, modeled with the same table type as PTM's T-State).
    pub fn tstate(&self) -> &TStateTable {
        &self.tstate
    }

    /// Mutable status-table access.
    pub fn tstate_mut(&mut self) -> &mut TStateTable {
        &mut self.tstate
    }

    /// Starts a transaction.
    pub fn begin(&mut self, tx: TxId) {
        self.tstate.begin(tx, None);
    }

    /// Whether any block is currently overflowed (VTM's overflow counter).
    pub fn has_overflows(&self) -> bool {
        !self.xadt.is_empty()
    }

    /// Whether `tx` is running.
    pub fn is_live(&self, tx: TxId) -> bool {
        self.tstate.is_live(tx)
    }

    /// Whether `tx` has any XADT state. Without it, commit and abort are
    /// pure status transitions (no copy-back, no walks) — the speculative
    /// executor relies on this to avoid global invalidation on the common
    /// in-cache commit.
    pub fn tx_has_overflow(&self, tx: TxId) -> bool {
        !self.xadt.blocks_of(tx).is_empty()
    }

    /// Checks a cache miss against the overflow state: XF filter first, then
    /// XADC, then (on a miss) an XADT walk.
    pub fn check_conflict(
        &mut self,
        requester: Option<TxId>,
        key: XadtKey,
        word: WordIdx,
        kind: AccessKind,
        now: Cycle,
        bus: &mut SystemBus,
    ) -> ConflictOutcome {
        let key = (key.0, key.1.block_aligned());
        let mut outcome = ConflictOutcome {
            done_at: now,
            ..Default::default()
        };

        self.committing_blocks.retain(|_, t| *t > now);
        if let Some(&until) = self.committing_blocks.get(&key) {
            if until > now {
                outcome.stall_until = Some(until);
            }
        }

        if !self.xf.may_contain(key.1) {
            self.stats.xf_filtered += 1;
            return outcome;
        }
        self.stats.xf_maybe += 1;

        let mut cost = VtsCost {
            lookups: 1,
            ..Default::default()
        };
        match self.xadc.touch(key) {
            Touch::Hit => self.stats.xadc_hits += 1,
            Touch::Miss { evicted_dirty } => {
                self.stats.xadc_misses += 1;
                // Reconstructing the metadata requires walking the XADT in
                // memory: one access per entry lookup (§5.3.1).
                cost.memory_accesses += 1 + u32::from(evicted_dirty);
            }
        }

        let entry = self.xadt.entry(key);
        if entry.is_none() {
            self.stats.xf_false_positives += 1;
        } else {
            let is_write = kind == AccessKind::Write;
            outcome.conflicts = self.xadt.conflicting(
                key,
                requester,
                is_write,
                word,
                self.cfg.granularity.word_in_memory(),
            );
            self.stats.overflow_conflicts += outcome.conflicts.len() as u64;
            if kind == AccessKind::Read {
                outcome.deny_exclusive = self
                    .xadt
                    .entry(key)
                    .map(|e| e.readers.iter().any(|r| Some(*r) != requester))
                    .unwrap_or(false);
            }
        }

        outcome.done_at = cost.charge(now, self.cfg.lookup_latency, bus);
        outcome
    }

    /// Handles the eviction of a transactional line: the block's metadata
    /// (and, when dirty, its speculative data) moves into the XADT. `old`
    /// is the committed block image, logged for non-transactional conflict
    /// detection. Memory itself is *not* modified — that is the point.
    pub fn on_tx_eviction(
        &mut self,
        meta: &TxLineMeta,
        key: XadtKey,
        spec: Option<&SpecBlock>,
        old: [u8; BLOCK_SIZE],
        now: Cycle,
        bus: &mut SystemBus,
    ) -> Cycle {
        let key = (key.0, key.1.block_aligned());
        let tx = meta.tx;
        self.xf.insert(key.1);

        let mut cost = VtsCost {
            lookups: 1,
            ..Default::default()
        };
        match self.xadc.touch(key) {
            Touch::Hit => self.stats.xadc_hits += 1,
            Touch::Miss { evicted_dirty } => {
                self.stats.xadc_misses += 1;
                cost.memory_accesses += 1 + u32::from(evicted_dirty);
            }
        }
        self.xadc.mark_dirty(&key);

        if meta.read {
            self.xadt.record_read(key, tx, || old);
        }
        if meta.write {
            let spec = spec.expect("dirty eviction carries speculative data");
            self.xadt.record_write(key, tx, spec.clone(), || old);
            self.stats.dirty_overflows += 1;
            // Writing the XADT log entry (meta + old + new data).
            cost.memory_accesses += 2;
        } else {
            self.stats.clean_overflows += 1;
            cost.memory_accesses += 1;
        }
        self.stats.peak_xadt_entries = self.stats.peak_xadt_entries.max(self.xadt.peak() as u64);

        let done = bus.onchip_transfer(now);
        cost.charge(done, self.cfg.lookup_latency, bus)
    }

    /// Reads a word of `tx`'s overflowed speculative data, if it exists.
    pub fn read_spec_word(&self, tx: TxId, key: XadtKey, word: WordIdx) -> Option<u32> {
        self.xadt
            .read_spec_word((key.0, key.1.block_aligned()), tx, word)
    }

    /// Whether `tx` has write-overflowed the block.
    pub fn tx_wrote_overflowed(&self, tx: TxId, key: XadtKey) -> bool {
        self.xadt
            .entry((key.0, key.1.block_aligned()))
            .map(|e| e.writer == Some(tx))
            .unwrap_or(false)
    }

    /// Commits `tx`. The logical commit (XSW flip) is immediate; every
    /// dirty overflowed block must then be **copied from the XADT back to
    /// memory** — `translate` resolves each virtual block to its current
    /// physical location. Blocks held in the victim cache (VC-VTM) commit
    /// instantly and write back in the background; all others install stall
    /// windows until their copy lands. Returns the copy-back completion.
    pub fn commit<F>(
        &mut self,
        tx: TxId,
        mem: &mut PhysicalMemory,
        translate: F,
        now: Cycle,
        bus: &mut SystemBus,
    ) -> Cycle
    where
        F: Fn(VirtAddr) -> Option<PhysBlock>,
    {
        self.tstate.set_status(tx, TxStatus::Committing);
        let mut t = now;
        for key in self.xadt.blocks_of(tx) {
            let (spec, removed) = self.xadt.release(key, tx);
            if let Some(spec) = spec {
                let block = translate(key.1)
                    .unwrap_or_else(|| panic!("committing block {} is unmapped", key.1));
                let mut target = mem.read_block(block);
                ptm_mem::versions::apply_written_words(&mut target, &spec);
                mem.write_block(block, &target);
                self.stats.commit_copy_blocks += 1;

                let absorbed = self.cfg.victim_cache && self.xadc.touch(key).is_hit();
                if absorbed {
                    // Victim cache supplies the data meanwhile; write-back
                    // happens in the background (still consumes bandwidth).
                    self.stats.victim_absorbed_commits += 1;
                    let _ = bus.mem_access(now);
                } else {
                    // Copy is on the critical path of anyone touching the
                    // block: read the XADT entry, write memory, stall others.
                    t = bus.controller_mem_access(t);
                    t = bus.mem_access(t);
                    self.committing_blocks.insert(key, t);
                }
            }
            if removed {
                self.xf.remove(key.1);
                self.xadc.remove(&key);
            }
        }
        self.tstate.set_status(tx, TxStatus::Committed);
        self.stats.commits += 1;
        t
    }

    /// Aborts `tx`: buffered speculative data is simply discarded — VTM's
    /// cheap path. Returns the cleanup completion cycle.
    pub fn abort(&mut self, tx: TxId, now: Cycle, bus: &mut SystemBus) -> Cycle {
        self.tstate.set_status(tx, TxStatus::Aborting);
        let mut t = now;
        for key in self.xadt.blocks_of(tx) {
            let (_spec, removed) = self.xadt.release(key, tx);
            t = bus.controller_mem_access(t);
            if removed {
                self.xf.remove(key.1);
                self.xadc.remove(&key);
            }
        }
        self.tstate.set_status(tx, TxStatus::Aborted);
        self.stats.aborts += 1;
        t
    }

    /// Crash recovery: discard every live transaction without any timing
    /// model. Speculative data lives only in the XADT, so home memory is
    /// already committed-clean — releasing each live transaction's entries
    /// (and the XF counts and XADC tags that shadow them) is the whole job.
    /// Pending commit copy-backs finished atomically inside their commit
    /// step, so `committing_blocks` holds only stall windows, which die with
    /// the machine. Returns `(transactions discarded, blocks released)`.
    /// Idempotent: a second call finds nothing live.
    pub fn recover(&mut self) -> (u64, u64) {
        let mut live = self.tstate.live_transactions();
        live.sort();
        let mut released = 0u64;
        for tx in &live {
            for key in self.xadt.blocks_of(*tx) {
                let (_spec, removed) = self.xadt.release(key, *tx);
                released += 1;
                if removed {
                    self.xf.remove(key.1);
                    self.xadc.remove(&key);
                }
            }
            self.tstate.set_status(*tx, TxStatus::Aborted);
            self.stats.aborts += 1;
        }
        self.committing_blocks.clear();
        (live.len() as u64, released)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_cache::BusTimings;
    use ptm_types::{BlockIdx, ProcessId, WordMask};

    const PID: ProcessId = ProcessId(0);

    fn bus() -> SystemBus {
        SystemBus::new(BusTimings::default())
    }

    fn key(addr: u64) -> XadtKey {
        (PID, VirtAddr::new(addr))
    }

    fn spec(word: u8, value: u32) -> SpecBlock {
        let mut data = [0u8; BLOCK_SIZE];
        data[word as usize * 4..word as usize * 4 + 4].copy_from_slice(&value.to_le_bytes());
        let mut written = WordMask::EMPTY;
        written.set(WordIdx(word));
        SpecBlock { data, written }
    }

    fn dirty_meta(tx: TxId) -> TxLineMeta {
        let mut m = TxLineMeta::new(tx);
        m.record_write(WordIdx(0));
        m
    }

    fn read_meta(tx: TxId) -> TxLineMeta {
        let mut m = TxLineMeta::new(tx);
        m.record_read(WordIdx(0));
        m
    }

    #[test]
    fn memory_untouched_until_commit() {
        let mut vtm = VtmSystem::new(VtmConfig::baseline());
        let mut mem = PhysicalMemory::new(4);
        let frame = mem.alloc().unwrap();
        let block = PhysBlock::new(frame, BlockIdx(0));
        mem.write_word(block.addr(), 111);

        let mut b = bus();
        vtm.begin(TxId(0));
        vtm.on_tx_eviction(
            &dirty_meta(TxId(0)),
            key(0x1000),
            Some(&spec(0, 222)),
            mem.read_block(block),
            0,
            &mut b,
        );
        assert_eq!(
            mem.read_word(block.addr()),
            111,
            "speculative data buffered, not in memory"
        );
        assert_eq!(
            vtm.read_spec_word(TxId(0), key(0x1000), WordIdx(0)),
            Some(222)
        );

        vtm.commit(TxId(0), &mut mem, |_| Some(block), 100, &mut b);
        assert_eq!(mem.read_word(block.addr()), 222, "commit copies back");
        assert_eq!(vtm.stats().commit_copy_blocks, 1);
        assert!(!vtm.has_overflows());
    }

    #[test]
    fn abort_discards_buffered_data_cheaply() {
        let mut vtm = VtmSystem::new(VtmConfig::baseline());
        let mut mem = PhysicalMemory::new(4);
        let frame = mem.alloc().unwrap();
        let block = PhysBlock::new(frame, BlockIdx(0));
        mem.write_word(block.addr(), 111);

        let mut b = bus();
        vtm.begin(TxId(0));
        vtm.on_tx_eviction(
            &dirty_meta(TxId(0)),
            key(0x1000),
            Some(&spec(0, 222)),
            mem.read_block(block),
            0,
            &mut b,
        );
        vtm.abort(TxId(0), 10, &mut b);
        assert_eq!(mem.read_word(block.addr()), 111, "no restore needed");
        assert_eq!(vtm.stats().commit_copy_blocks, 0);
        assert!(!vtm.has_overflows());
    }

    #[test]
    fn xf_filters_unrelated_addresses() {
        let mut vtm = VtmSystem::new(VtmConfig::baseline());
        let mut b = bus();
        vtm.begin(TxId(0));
        let out = vtm.check_conflict(
            Some(TxId(1)),
            key(0x9000),
            WordIdx(0),
            AccessKind::Read,
            0,
            &mut b,
        );
        assert!(out.conflicts.is_empty());
        assert_eq!(out.done_at, 0, "filtered check is free");
        assert_eq!(vtm.stats().xf_filtered, 1);
    }

    #[test]
    fn conflict_detection_through_filter() {
        let mut vtm = VtmSystem::new(VtmConfig::baseline());
        let mut b = bus();
        vtm.begin(TxId(0));
        vtm.on_tx_eviction(
            &dirty_meta(TxId(0)),
            key(0x1000),
            Some(&spec(0, 1)),
            [0; BLOCK_SIZE],
            0,
            &mut b,
        );

        let out = vtm.check_conflict(
            Some(TxId(1)),
            key(0x1000),
            WordIdx(0),
            AccessKind::Read,
            5,
            &mut b,
        );
        assert_eq!(out.conflicts, vec![TxId(0)], "RAW through XADT");
        let own = vtm.check_conflict(
            Some(TxId(0)),
            key(0x1000),
            WordIdx(0),
            AccessKind::Read,
            5,
            &mut b,
        );
        assert!(own.conflicts.is_empty());
    }

    #[test]
    fn reader_overflow_denies_exclusivity_and_wars_writers() {
        let mut vtm = VtmSystem::new(VtmConfig::baseline());
        let mut b = bus();
        vtm.begin(TxId(0));
        vtm.on_tx_eviction(
            &read_meta(TxId(0)),
            key(0x2000),
            None,
            [0; BLOCK_SIZE],
            0,
            &mut b,
        );
        let rd = vtm.check_conflict(
            Some(TxId(1)),
            key(0x2000),
            WordIdx(0),
            AccessKind::Read,
            5,
            &mut b,
        );
        assert!(rd.conflicts.is_empty());
        assert!(rd.deny_exclusive);
        let wr = vtm.check_conflict(
            Some(TxId(1)),
            key(0x2000),
            WordIdx(0),
            AccessKind::Write,
            5,
            &mut b,
        );
        assert_eq!(wr.conflicts, vec![TxId(0)]);
    }

    #[test]
    fn commit_installs_stall_windows_for_baseline() {
        let mut vtm = VtmSystem::new(VtmConfig::baseline());
        let mut mem = PhysicalMemory::new(4);
        let frame = mem.alloc().unwrap();
        let block = PhysBlock::new(frame, BlockIdx(0));
        let mut b = bus();
        vtm.begin(TxId(0));
        vtm.on_tx_eviction(
            &dirty_meta(TxId(0)),
            key(0x1000),
            Some(&spec(0, 1)),
            [0; BLOCK_SIZE],
            0,
            &mut b,
        );
        let done = vtm.commit(TxId(0), &mut mem, |_| Some(block), 1000, &mut b);
        assert!(done > 1000);
        vtm.begin(TxId(1));
        let out = vtm.check_conflict(
            Some(TxId(1)),
            key(0x1000),
            WordIdx(0),
            AccessKind::Read,
            1001,
            &mut b,
        );
        assert_eq!(
            out.stall_until,
            Some(done),
            "copy-back blocks other transactions"
        );
    }

    #[test]
    fn victim_cache_absorbs_commit_stalls() {
        let mut vtm = VtmSystem::new(VtmConfig::victim());
        let mut mem = PhysicalMemory::new(4);
        let frame = mem.alloc().unwrap();
        let block = PhysBlock::new(frame, BlockIdx(0));
        let mut b = bus();
        vtm.begin(TxId(0));
        vtm.on_tx_eviction(
            &dirty_meta(TxId(0)),
            key(0x1000),
            Some(&spec(0, 9)),
            [0; BLOCK_SIZE],
            0,
            &mut b,
        );
        let done = vtm.commit(TxId(0), &mut mem, |_| Some(block), 1000, &mut b);
        assert_eq!(done, 1000, "victim hit: commit completes instantly");
        assert_eq!(vtm.stats().victim_absorbed_commits, 1);
        vtm.begin(TxId(1));
        let out = vtm.check_conflict(
            Some(TxId(1)),
            key(0x1000),
            WordIdx(0),
            AccessKind::Read,
            1001,
            &mut b,
        );
        assert_eq!(out.stall_until, None, "no stall window");
        assert_eq!(mem.read_word(block.addr()), 9, "data still copied back");
    }

    #[test]
    fn different_processes_never_share_entries() {
        let mut vtm = VtmSystem::new(VtmConfig::baseline());
        let mut b = bus();
        vtm.begin(TxId(0));
        vtm.on_tx_eviction(
            &dirty_meta(TxId(0)),
            key(0x1000),
            Some(&spec(0, 1)),
            [0; BLOCK_SIZE],
            0,
            &mut b,
        );
        // Same virtual address in another process: VTM sees no conflict —
        // the PTM paper's inter-process argument (§5.3).
        let other = (ProcessId(1), VirtAddr::new(0x1000));
        let out = vtm.check_conflict(
            Some(TxId(1)),
            other,
            WordIdx(0),
            AccessKind::Write,
            5,
            &mut b,
        );
        assert!(out.conflicts.is_empty());
    }
}
