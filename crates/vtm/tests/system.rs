//! Extended VTM system tests: XADC pressure, victim-cache behaviour, filter
//! hygiene over long churn, and multi-transaction interleavings.

use ptm_cache::{BusTimings, SystemBus, TxLineMeta};
use ptm_core::system::AccessKind;
use ptm_mem::{PhysicalMemory, SpecBlock};
use ptm_types::{BlockIdx, PhysBlock, ProcessId, TxId, VirtAddr, WordIdx, WordMask, BLOCK_SIZE};
use ptm_vtm::{VtmConfig, VtmSystem};

const PID: ProcessId = ProcessId(0);

fn bus() -> SystemBus {
    SystemBus::new(BusTimings::default())
}

fn key(addr: u64) -> (ProcessId, VirtAddr) {
    (PID, VirtAddr::new(addr))
}

fn spec(word: u8, value: u32) -> SpecBlock {
    let mut data = [0u8; BLOCK_SIZE];
    data[word as usize * 4..word as usize * 4 + 4].copy_from_slice(&value.to_le_bytes());
    let mut written = WordMask::EMPTY;
    written.set(WordIdx(word));
    SpecBlock { data, written }
}

fn dirty(tx: TxId) -> TxLineMeta {
    let mut m = TxLineMeta::new(tx);
    m.record_write(WordIdx(0));
    m
}

fn read_meta(tx: TxId) -> TxLineMeta {
    let mut m = TxLineMeta::new(tx);
    m.record_read(WordIdx(0));
    m
}

#[test]
fn xadc_pressure_forces_walks() {
    let cfg = VtmConfig {
        xadc_entries: 2,
        ..VtmConfig::baseline()
    };
    let mut vtm = VtmSystem::new(cfg);
    let mut b = bus();
    vtm.begin(TxId(0));
    for i in 0..6u64 {
        vtm.on_tx_eviction(
            &dirty(TxId(0)),
            key(0x1000 + i * 64),
            Some(&spec(0, i as u32)),
            [0; BLOCK_SIZE],
            0,
            &mut b,
        );
    }
    // Sweep conflict checks across all six blocks twice: the 2-entry XADC
    // keeps missing.
    for _ in 0..2 {
        for i in 0..6u64 {
            let _ = vtm.check_conflict(
                Some(TxId(1)),
                key(0x1000 + i * 64),
                WordIdx(0),
                AccessKind::Read,
                100,
                &mut b,
            );
        }
    }
    assert!(
        vtm.stats().xadc_misses > 6,
        "XADC thrash: {}",
        vtm.stats().xadc_misses
    );
}

#[test]
fn commit_copies_every_dirty_block_back() {
    let mut vtm = VtmSystem::new(VtmConfig::baseline());
    let mut mem = PhysicalMemory::new(8);
    let frame = mem.alloc().unwrap();
    let mut b = bus();
    vtm.begin(TxId(0));
    for i in 0..8u64 {
        vtm.on_tx_eviction(
            &dirty(TxId(0)),
            key(0x1000 + i * 64),
            Some(&spec(0, 10 + i as u32)),
            [0; BLOCK_SIZE],
            0,
            &mut b,
        );
    }
    let translate = |va: VirtAddr| Some(PhysBlock::new(frame, va.block_in_page()));
    let done = vtm.commit(TxId(0), &mut mem, translate, 10_000, &mut b);
    assert_eq!(vtm.stats().commit_copy_blocks, 8);
    assert!(done > 10_000 + 8 * 100, "copy-back chains through memory");
    for i in 0..8u64 {
        let block = PhysBlock::new(frame, BlockIdx((0x1000u64 / 64 + i) as u8 % 64));
        assert_eq!(mem.read_word(block.addr()), 10 + i as u32);
    }
}

#[test]
fn victim_variant_absorbs_only_cached_blocks() {
    let cfg = VtmConfig {
        xadc_entries: 2,
        ..VtmConfig::victim()
    };
    let mut vtm = VtmSystem::new(cfg);
    let mut mem = PhysicalMemory::new(8);
    let frame = mem.alloc().unwrap();
    let mut b = bus();
    vtm.begin(TxId(0));
    // Six blocks through a 2-entry victim cache: only the most recent stay
    // buffered; older ones must take the stall path at commit.
    for i in 0..6u64 {
        vtm.on_tx_eviction(
            &dirty(TxId(0)),
            key(0x1000 + i * 64),
            Some(&spec(0, i as u32)),
            [0; BLOCK_SIZE],
            0,
            &mut b,
        );
    }
    let translate = |va: VirtAddr| Some(PhysBlock::new(frame, va.block_in_page()));
    vtm.commit(TxId(0), &mut mem, translate, 10_000, &mut b);
    let s = vtm.stats();
    assert_eq!(s.commit_copy_blocks, 6);
    assert!(s.victim_absorbed_commits >= 1, "recent blocks absorbed");
    assert!(
        s.victim_absorbed_commits < 6,
        "older blocks overflowed the victim cache: {}",
        s.victim_absorbed_commits
    );
}

#[test]
fn filter_stays_clean_over_many_generations() {
    // 200 transactions, each overflowing one block then committing: the
    // counting filter must keep returning to "definitely absent", or false
    // positives would accumulate forever.
    let mut vtm = VtmSystem::new(VtmConfig {
        xf_counters: 50_000,
        ..VtmConfig::baseline()
    });
    let mut mem = PhysicalMemory::new(8);
    let frame = mem.alloc().unwrap();
    let mut b = bus();
    for g in 0..200u64 {
        let tx = TxId(g);
        vtm.begin(tx);
        vtm.on_tx_eviction(
            &dirty(tx),
            key(0x1000),
            Some(&spec(0, g as u32)),
            [0; BLOCK_SIZE],
            g * 10,
            &mut b,
        );
        let translate = |va: VirtAddr| Some(PhysBlock::new(frame, va.block_in_page()));
        vtm.commit(tx, &mut mem, translate, g * 10 + 5, &mut b);
    }
    assert!(!vtm.has_overflows());
    // A check on the long-retired address must be filtered out.
    vtm.begin(TxId(1000));
    let before = vtm.stats().xf_filtered;
    let _ = vtm.check_conflict(
        Some(TxId(1000)),
        key(0x1000),
        WordIdx(0),
        AccessKind::Read,
        1_000_000,
        &mut b,
    );
    assert_eq!(vtm.stats().xf_filtered, before + 1, "filter fully drained");
}

#[test]
fn readers_release_without_copyback() {
    let mut vtm = VtmSystem::new(VtmConfig::baseline());
    let mut mem = PhysicalMemory::new(8);
    let frame = mem.alloc().unwrap();
    let mut b = bus();
    vtm.begin(TxId(0));
    vtm.begin(TxId(1));
    vtm.on_tx_eviction(
        &read_meta(TxId(0)),
        key(0x2000),
        None,
        [0; BLOCK_SIZE],
        0,
        &mut b,
    );
    vtm.on_tx_eviction(
        &read_meta(TxId(1)),
        key(0x2000),
        None,
        [0; BLOCK_SIZE],
        0,
        &mut b,
    );

    let translate = |va: VirtAddr| Some(PhysBlock::new(frame, va.block_in_page()));
    vtm.commit(TxId(0), &mut mem, translate, 100, &mut b);
    assert!(vtm.has_overflows(), "second reader still registered");
    vtm.commit(TxId(1), &mut mem, translate, 200, &mut b);
    assert!(!vtm.has_overflows());
    assert_eq!(vtm.stats().commit_copy_blocks, 0, "reads never copy back");
}

#[test]
fn abort_of_one_reader_preserves_the_other() {
    let mut vtm = VtmSystem::new(VtmConfig::baseline());
    let mut b = bus();
    vtm.begin(TxId(0));
    vtm.begin(TxId(1));
    vtm.on_tx_eviction(
        &read_meta(TxId(0)),
        key(0x2000),
        None,
        [0; BLOCK_SIZE],
        0,
        &mut b,
    );
    vtm.on_tx_eviction(
        &read_meta(TxId(1)),
        key(0x2000),
        None,
        [0; BLOCK_SIZE],
        0,
        &mut b,
    );
    vtm.abort(TxId(0), 10, &mut b);

    // Writer still conflicts with the surviving reader.
    let out = vtm.check_conflict(
        Some(TxId(2)),
        key(0x2000),
        WordIdx(0),
        AccessKind::Write,
        20,
        &mut b,
    );
    assert_eq!(out.conflicts, vec![TxId(1)]);
}

#[test]
fn spec_data_merges_across_repeated_overflows() {
    let mut vtm = VtmSystem::new(VtmConfig::baseline());
    let mut mem = PhysicalMemory::new(8);
    let frame = mem.alloc().unwrap();
    let mut b = bus();
    vtm.begin(TxId(0));
    vtm.on_tx_eviction(
        &dirty(TxId(0)),
        key(0x1000),
        Some(&spec(0, 1)),
        [0; BLOCK_SIZE],
        0,
        &mut b,
    );
    vtm.on_tx_eviction(
        &dirty(TxId(0)),
        key(0x1000),
        Some(&spec(3, 4)),
        [0; BLOCK_SIZE],
        10,
        &mut b,
    );
    assert_eq!(
        vtm.read_spec_word(TxId(0), key(0x1000), WordIdx(0)),
        Some(1)
    );
    assert_eq!(
        vtm.read_spec_word(TxId(0), key(0x1000), WordIdx(3)),
        Some(4)
    );

    let translate = |va: VirtAddr| Some(PhysBlock::new(frame, va.block_in_page()));
    vtm.commit(TxId(0), &mut mem, translate, 100, &mut b);
    let block = PhysBlock::new(frame, VirtAddr::new(0x1000).block_in_page());
    assert_eq!(mem.read_word(block.addr()), 1);
    assert_eq!(mem.read_word(ptm_types::PhysAddr(block.addr().0 + 12)), 4);
}

#[test]
fn peak_xadt_tracks_maximum_entries() {
    let mut vtm = VtmSystem::new(VtmConfig::baseline());
    let mut b = bus();
    vtm.begin(TxId(0));
    for i in 0..5u64 {
        vtm.on_tx_eviction(
            &dirty(TxId(0)),
            key(0x1000 + i * 64),
            Some(&spec(0, 1)),
            [0; BLOCK_SIZE],
            0,
            &mut b,
        );
    }
    vtm.abort(TxId(0), 10, &mut b);
    assert_eq!(vtm.stats().peak_xadt_entries, 5);
    assert!(!vtm.has_overflows());
}
