//! Criterion companion to the `table1` binary: times the characterization
//! run (Select-PTM) of each SPLASH-2 kernel. The regenerated table comes
//! from `cargo run -p ptm-bench --bin table1`.

use criterion::{criterion_group, criterion_main, Criterion};
use ptm_bench::table1_row;
use ptm_workloads::{splash2, Scale};

fn table1_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for w in splash2(Scale::Tiny) {
        group.bench_function(w.name, |b| {
            b.iter(|| {
                let row = table1_row(&w);
                std::hint::black_box((row.commits, row.pages, row.mop_per_evict))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table1_characterization);
criterion_main!(benches);
