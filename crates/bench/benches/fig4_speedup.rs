//! Criterion companion to the `fig4` binary: times a full simulated run of
//! each Figure 4 system on each SPLASH-2 kernel (Tiny scale so the suite
//! stays fast) and reports the simulated speedup as auxiliary output.
//!
//! The *figures themselves* come from `cargo run -p ptm-bench --bin fig4`;
//! this bench tracks the simulator's own performance per system, which is
//! proportional to the event counts each TM design generates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptm_bench::run_workload;
use ptm_sim::SystemKind;
use ptm_workloads::{splash2, Scale};

fn fig4_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for w in splash2(Scale::Tiny) {
        for kind in SystemKind::figure4() {
            group.bench_with_input(BenchmarkId::new(w.name, kind.label()), &kind, |b, &kind| {
                b.iter(|| {
                    let m = run_workload(&w, kind);
                    std::hint::black_box(m.stats().cycles)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig4_speedup);
criterion_main!(benches);
