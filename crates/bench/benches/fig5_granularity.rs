//! Criterion companion to the `fig5` binary: times simulated runs of the
//! word-granularity configurations. The regenerated figure comes from
//! `cargo run -p ptm-bench --bin fig5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptm_bench::run_workload;
use ptm_sim::SystemKind;
use ptm_workloads::{radix, splash2, Scale};

fn fig5_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for w in splash2(Scale::Tiny) {
        for kind in SystemKind::figure5() {
            group.bench_with_input(BenchmarkId::new(w.name, kind.label()), &kind, |b, &kind| {
                b.iter(|| {
                    let m = run_workload(&w, kind);
                    std::hint::black_box(m.stats().aborts)
                })
            });
        }
    }
    group.finish();

    // The paper's headline Figure 5 effect, asserted as a measurement:
    // radix aborts fall when moving to word granularity.
    let w = radix::workload(Scale::Tiny);
    let blk = run_workload(&w, SystemKind::SelectPtm(ptm_types::Granularity::Block));
    let wd = run_workload(
        &w,
        SystemKind::SelectPtm(ptm_types::Granularity::WordCacheMem),
    );
    eprintln!(
        "radix aborts: blk-only={} wd:cache+mem={}",
        blk.stats().aborts,
        wd.stats().aborts
    );
}

criterion_group!(benches, fig5_granularity);
criterion_main!(benches);
