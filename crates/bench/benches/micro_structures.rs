//! Microbenchmarks of the PTM/VTM hardware structures themselves: TAV
//! arena operations, selection-vector manipulation, the VTS LRU trackers,
//! the XF counting Bloom filter, and the two systems' conflict-check fast
//! paths. These quantify the per-event costs behind the end-to-end figures.

use criterion::{criterion_group, criterion_main, Criterion};
use ptm_cache::{BusTimings, SystemBus, TxLineMeta};
use ptm_core::system::AccessKind;
use ptm_core::vts::LruTracker;
use ptm_core::{PtmConfig, PtmSystem};
use ptm_mem::{PhysicalMemory, SpecBlock, SwapStore};
use ptm_types::{BlockIdx, BlockVec, FrameId, PhysBlock, TxId, VirtAddr, WordIdx, WordMask};
use ptm_vtm::CountingBloom;

fn bench_block_vec(c: &mut Criterion) {
    c.bench_function("blockvec/toggle+summary", |b| {
        let mut v = BlockVec(0x0123_4567_89ab_cdef);
        b.iter(|| {
            v.toggle(BlockIdx(17));
            std::hint::black_box(v.count())
        })
    });
}

fn bench_word_vec_kernels(c: &mut Criterion) {
    use ptm_types::WordVec;
    // The word-parallel kernels vs. their bit-at-a-time shape: one shifted
    // OR per block mask and four group tests per limb for the collapse.
    c.bench_function("wordvec/set-block-words+collapse", |b| {
        let mut v = WordVec::EMPTY;
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            v.set_block_words(BlockIdx(i % 64), WordMask(0x0f0f));
            std::hint::black_box(v.to_block_vec())
        })
    });
    // Reference loop for the same work, kept for before/after comparison:
    // per-word probes through the public single-bit API.
    c.bench_function("wordvec/set-block-words-bit-at-a-time", |b| {
        let mut v = WordVec::EMPTY;
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            let base = (i % 64) as usize * 16;
            let mask = WordMask(0x0f0f);
            for w in 0..16u8 {
                if mask.get(WordIdx(w)) {
                    v.set(base + w as usize);
                }
            }
            let mut bv = BlockVec::EMPTY;
            for blk in BlockIdx::all() {
                if !v.block_words(blk).is_empty() {
                    bv.set(blk);
                }
            }
            std::hint::black_box(bv)
        })
    });
}

fn bench_tav_cursor_step(c: &mut Criterion) {
    // The inlined TAV cursor step (`next_in_page` on the SoA link column)
    // chased down a 64-node list: dense u32 links, no Option<Box> hops.
    use ptm_core::tav::TavArena;
    let mut arena = TavArena::new();
    let mut head = None;
    for t in 0..64u64 {
        let r = arena.alloc(TxId(t), FrameId(0));
        arena.set_next_in_page(r, head);
        head = Some(r);
    }
    c.bench_function("tav/cursor-step-64-nodes", |b| {
        b.iter(|| {
            let mut n = 0u32;
            let mut cur = head;
            while let Some(r) = cur {
                n += 1;
                cur = arena.next_in_page(r);
            }
            std::hint::black_box(n)
        })
    });
}

fn bench_tav_arena(c: &mut Criterion) {
    c.bench_function("tav/alloc-record-free", |b| {
        let mut arena = ptm_core::tav::TavArena::new();
        b.iter(|| {
            let r = arena.alloc(TxId(1), FrameId(0));
            arena.record_write(r, BlockIdx(3), Some(WordMask(0xf)));
            let w = arena.write_summary(Some(r));
            arena.free(r);
            std::hint::black_box(w)
        })
    });
}

fn bench_lru_tracker(c: &mut Criterion) {
    c.bench_function("vts/lru-touch-512", |b| {
        let mut t: LruTracker<u32> = LruTracker::new(512);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            std::hint::black_box(t.touch(i % 700))
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    c.bench_function("xf/insert-query-remove", |b| {
        let mut xf = CountingBloom::new(100_000, 4);
        let mut i = 0u64;
        b.iter(|| {
            i += 64;
            let a = VirtAddr::new(i % (1 << 20));
            xf.insert(a);
            let hit = xf.may_contain(a);
            xf.remove(a);
            std::hint::black_box(hit)
        })
    });
}

fn bench_ptm_conflict_check(c: &mut Criterion) {
    // A page with four transactions' overflowed state: the common conflict-
    // check path (SPT cache hit, summary says maybe, TAV examination).
    let mut ptm = PtmSystem::new(PtmConfig::select());
    let mut mem = PhysicalMemory::new(64);
    let mut bus = SystemBus::new(BusTimings::default());
    for _ in 0..8 {
        let f = mem.alloc().unwrap();
        ptm.on_page_alloc(f);
    }
    for t in 0..4u64 {
        let tx = TxId(t);
        ptm.begin(tx, None);
        let mut meta = TxLineMeta::new(tx);
        meta.record_write(WordIdx(0));
        let spec = SpecBlock {
            data: [0; 64],
            written: WordMask(1),
        };
        ptm.on_tx_eviction(
            &meta,
            PhysBlock::new(FrameId(0), BlockIdx(t as u8)),
            Some(&spec),
            false,
            &mut mem,
            0,
            &mut bus,
        )
        .unwrap();
    }
    c.bench_function("ptm/conflict-check-hot", |b| {
        let mut now = 1000u64;
        b.iter(|| {
            now += 10;
            let out = ptm.check_conflict(
                Some(TxId(99)),
                PhysBlock::new(FrameId(0), BlockIdx(2)),
                WordIdx(0),
                AccessKind::Read,
                now,
                &mut bus,
            );
            std::hint::black_box(out.conflicts.len())
        })
    });
}

fn bench_ptm_conflict_check_filtered(c: &mut Criterion) {
    // Same page state as the hot check, but probing a block no live
    // transaction overflowed: the per-page summary vectors reject the
    // access in O(1) without touching the TAV list.
    let mut ptm = PtmSystem::new(PtmConfig::select());
    let mut mem = PhysicalMemory::new(64);
    let mut bus = SystemBus::new(BusTimings::default());
    for _ in 0..8 {
        let f = mem.alloc().unwrap();
        ptm.on_page_alloc(f);
    }
    for t in 0..4u64 {
        let tx = TxId(t);
        ptm.begin(tx, None);
        let mut meta = TxLineMeta::new(tx);
        meta.record_write(WordIdx(0));
        let spec = SpecBlock {
            data: [0; 64],
            written: WordMask(1),
        };
        ptm.on_tx_eviction(
            &meta,
            PhysBlock::new(FrameId(0), BlockIdx(t as u8)),
            Some(&spec),
            false,
            &mut mem,
            0,
            &mut bus,
        )
        .unwrap();
    }
    c.bench_function("ptm/conflict-check-summary-filtered", |b| {
        let mut now = 1000u64;
        b.iter(|| {
            now += 10;
            // Block 40 has no overflowed state: summary miss, fast path.
            let out = ptm.check_conflict(
                Some(TxId(99)),
                PhysBlock::new(FrameId(0), BlockIdx(40)),
                WordIdx(0),
                AccessKind::Read,
                now,
                &mut bus,
            );
            std::hint::black_box(out.conflicts.len())
        })
    });
}

fn bench_spt_direct_index(c: &mut Criterion) {
    // The SPT is a direct-indexed vector: entry lookup on the conflict path
    // is an array load, not a hash probe.
    use ptm_core::spt::ShadowPageTable;
    let mut spt = ShadowPageTable::new();
    for f in 0..512u32 {
        spt.on_page_alloc(FrameId(f));
    }
    c.bench_function("spt/direct-index-entry-512", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(97);
            std::hint::black_box(spt.entry(FrameId(i % 512)).is_some())
        })
    });
}

fn bench_tav_page_iter(c: &mut Criterion) {
    // Allocation-free horizontal walk of a 16-node page list.
    use ptm_core::tav::TavArena;
    let mut arena = TavArena::new();
    let mut head = None;
    for t in 0..16u64 {
        let r = arena.alloc(TxId(t), FrameId(0));
        arena.record_write(r, BlockIdx((t % 64) as u8), None);
        arena.set_next_in_page(r, head);
        head = Some(r);
    }
    c.bench_function("tav/page-iter-16-nodes", |b| {
        b.iter(|| {
            let mut touched = 0u32;
            for node in arena.page_iter(head) {
                if arena.write_vec(node).get(BlockIdx(3)) {
                    touched += 1;
                }
            }
            std::hint::black_box(touched)
        })
    });
}

fn bench_ptm_commit(c: &mut Criterion) {
    c.bench_function("ptm/overflow-commit-cycle", |b| {
        let mut ptm = PtmSystem::new(PtmConfig::select());
        let mut mem = PhysicalMemory::new(256);
        let mut bus = SystemBus::new(BusTimings::default());
        for _ in 0..16 {
            let f = mem.alloc().unwrap();
            ptm.on_page_alloc(f);
        }
        let mut t = 0u64;
        b.iter(|| {
            let tx = TxId(t);
            t += 1;
            ptm.begin(tx, None);
            let mut meta = TxLineMeta::new(tx);
            meta.record_write(WordIdx(0));
            let spec = SpecBlock {
                data: [t as u8; 64],
                written: WordMask(1),
            };
            for page in 0..4u32 {
                ptm.on_tx_eviction(
                    &meta,
                    PhysBlock::new(FrameId(page), BlockIdx((t % 64) as u8)),
                    Some(&spec),
                    false,
                    &mut mem,
                    t * 100,
                    &mut bus,
                )
                .unwrap();
            }
            std::hint::black_box(ptm.commit(
                tx,
                &mut mem,
                &mut SwapStore::new(),
                t * 100 + 50,
                &mut bus,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_block_vec,
    bench_word_vec_kernels,
    bench_tav_cursor_step,
    bench_tav_arena,
    bench_lru_tracker,
    bench_bloom,
    bench_ptm_conflict_check,
    bench_ptm_conflict_check_filtered,
    bench_spt_direct_index,
    bench_tav_page_iter,
    bench_ptm_commit
);

// ---------------------------------------------------------------------
// Appended: VTM and LogTM micro paths (overflow, conflict checks, commit).
// ---------------------------------------------------------------------

mod extra {
    use super::*;
    use ptm_sim::logtm::LogTmSystem;
    use ptm_types::ProcessId;
    use ptm_vtm::{VtmConfig, VtmSystem};

    pub fn bench_vtm_overflow_commit(c: &mut Criterion) {
        c.bench_function("vtm/overflow-commit-cycle", |b| {
            let mut vtm = VtmSystem::new(VtmConfig::baseline());
            let mut mem = PhysicalMemory::new(64);
            let frame = mem.alloc().unwrap();
            let mut bus = SystemBus::new(BusTimings::default());
            let mut t = 0u64;
            b.iter(|| {
                let tx = TxId(t);
                t += 1;
                vtm.begin(tx);
                let mut meta = TxLineMeta::new(tx);
                meta.record_write(WordIdx(0));
                let spec = SpecBlock {
                    data: [t as u8; 64],
                    written: WordMask(1),
                };
                for i in 0..4u64 {
                    vtm.on_tx_eviction(
                        &meta,
                        (ProcessId(0), VirtAddr::new(0x1000 + i * 64)),
                        Some(&spec),
                        [0; 64],
                        t * 100,
                        &mut bus,
                    );
                }
                std::hint::black_box(vtm.commit(
                    tx,
                    &mut mem,
                    |va| Some(PhysBlock::new(frame, va.block_in_page())),
                    t * 100 + 50,
                    &mut bus,
                ))
            })
        });
    }

    pub fn bench_vtm_filtered_check(c: &mut Criterion) {
        // The VTM fast path: XF says "definitely not overflowed".
        let mut vtm = VtmSystem::new(VtmConfig::baseline());
        vtm.begin(TxId(0));
        let mut bus = SystemBus::new(BusTimings::default());
        c.bench_function("vtm/xf-filtered-check", |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 64;
                std::hint::black_box(vtm.check_conflict(
                    Some(TxId(0)),
                    (ProcessId(0), VirtAddr::new(0x10_0000 + (i % 65536))),
                    WordIdx(0),
                    AccessKind::Read,
                    i,
                    &mut bus,
                ))
            })
        });
    }

    pub fn bench_logtm_log_and_abort(c: &mut Criterion) {
        c.bench_function("logtm/log16-abort", |b| {
            let mut mem = PhysicalMemory::new(8);
            let f = mem.alloc().unwrap();
            let mut bus = SystemBus::new(BusTimings::default());
            let mut t = 0u64;
            b.iter(|| {
                let mut sys = LogTmSystem::new();
                let tx = TxId(t);
                t += 1;
                sys.begin(tx);
                for w in 0..16u32 {
                    let addr = ptm_types::PhysAddr::from_frame(f, (w as usize) * 4);
                    sys.log_write(tx, addr, w);
                }
                std::hint::black_box(sys.abort(tx, &mut mem, t * 10, &mut bus))
            })
        });
    }
}

criterion_group!(
    extra_benches,
    extra::bench_vtm_overflow_commit,
    extra::bench_vtm_filtered_check,
    extra::bench_logtm_log_and_abort
);

// ---------------------------------------------------------------------
// Appended: the machine scheduler's index-min heap (the canonical-order
// oracle of both the sequential run loop and the epoch executor).
// ---------------------------------------------------------------------

mod sched {
    use super::*;
    use ptm_sim::ReadyHeap;

    pub fn bench_ready_heap_upsert(c: &mut Criterion) {
        // The per-step pattern of `Machine::run`: re-key the core that just
        // stepped, then peek the new minimum.
        c.bench_function("sched/ready-heap-upsert-peek-4", |b| {
            let mut h = ReadyHeap::new(4);
            for core in 0..4 {
                h.upsert(core, core as u64);
            }
            let mut now = 4u64;
            let mut core = 0usize;
            b.iter(|| {
                now += 7;
                core = (core + 1) % 4;
                h.upsert(core, now);
                std::hint::black_box(h.peek())
            })
        });
    }

    pub fn bench_ready_heap_upsert_wide(c: &mut Criterion) {
        // A wider machine (64 cores): the O(log n) re-key must stay far
        // below the O(n) min-scan it replaced.
        c.bench_function("sched/ready-heap-upsert-peek-64", |b| {
            let mut h = ReadyHeap::new(64);
            for core in 0..64 {
                h.upsert(core, core as u64);
            }
            let mut now = 64u64;
            let mut core = 0usize;
            b.iter(|| {
                now += 13;
                core = (core + 17) % 64;
                h.upsert(core, now);
                std::hint::black_box(h.peek())
            })
        });
    }

    pub fn bench_min_scan_baseline(c: &mut Criterion) {
        // The replaced pattern: linear min_by_key over every core's
        // ready_at, once per simulated step.
        c.bench_function("sched/min-scan-baseline-64", |b| {
            let mut ready: Vec<u64> = (0..64).collect();
            let mut now = 64u64;
            let mut core = 0usize;
            b.iter(|| {
                now += 13;
                core = (core + 17) % 64;
                ready[core] = now;
                std::hint::black_box(
                    ready
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, r)| (**r, *i))
                        .map(|(i, r)| (*r, i)),
                )
            })
        });
    }
}

criterion_group!(
    sched_benches,
    sched::bench_ready_heap_upsert,
    sched::bench_ready_heap_upsert_wide,
    sched::bench_min_scan_baseline
);
criterion_main!(benches, extra_benches, sched_benches);
