//! Shared harness code for the table/figure regeneration binaries and the
//! Criterion benches.

use ptm_sim::{run, serialize_programs, speedup_percent, Machine, SystemKind};
use ptm_workloads::{Scale, Workload};

pub mod crash;
pub mod durable;
pub mod faults;
pub mod history;
pub mod meta;
pub mod parallel;
pub mod parallel_sim;
pub mod service;
pub mod service_chaos;

/// One Table 1 row, as measured by a run under Select-PTM.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Exceptions delivered.
    pub exceptions: u64,
    /// Context switches delivered.
    pub context_switches: u64,
    /// Unique pages touched.
    pub pages: usize,
    /// Unique pages written transactionally.
    pub pg_x_wr: usize,
    /// Conservative shadow overhead (%).
    pub conservative_pct: f64,
    /// Ideal shadow overhead (%): peak live shadow pages over footprint.
    pub ideal_pct: f64,
    /// Memory operations per L2 eviction.
    pub mop_per_evict: f64,
}

/// Runs one benchmark under Select-PTM and extracts its Table 1 row.
pub fn table1_row(workload: &Workload) -> Table1Row {
    let m = run(
        workload.machine_config(),
        SystemKind::SelectPtm(Default::default()),
        workload.programs(),
    );
    let stats = m.stats();
    let ptm = m.backend().as_ptm().expect("Select-PTM run").stats();
    let pages = stats.pages.len();
    Table1Row {
        name: workload.name,
        commits: stats.commits,
        aborts: stats.aborts,
        exceptions: m.kernel_stats().exceptions,
        context_switches: m.kernel_stats().context_switches,
        pages,
        pg_x_wr: stats.tx_write_pages.len(),
        conservative_pct: stats.conservative_overhead() * 100.0,
        // "Ideal": shadow pages live at any instant if each transaction's
        // shadows were reclaimed the moment it commits — the average dirty
        // pages per transaction times the concurrency, over the footprint.
        ideal_pct: if pages == 0 {
            0.0
        } else {
            (ptm.avg_tx_dirty_pages() * 4.0 / pages as f64 * 100.0).min(100.0)
        },
        mop_per_evict: stats.mops_per_evict(),
    }
}

/// One Figure 4/5 bar: a system's % speedup over single-threaded execution.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupBar {
    /// The system.
    pub kind: SystemKind,
    /// Cycles of the parallel run.
    pub cycles: u64,
    /// % speedup over the serial baseline.
    pub speedup_pct: f64,
    /// Aborted attempts during the run.
    pub aborts: u64,
}

/// Runs the serial baseline once, then each system, for one workload.
///
/// Lock mode (and the serial baseline) runs the workload's original
/// lock-based program where it differs from the transactional rewrite,
/// matching the paper's methodology.
pub fn speedup_bars(workload: &Workload, systems: &[SystemKind]) -> (u64, Vec<SpeedupBar>) {
    let cfg = workload.machine_config();
    let serial_programs = serialize_programs(&workload.programs_for(SystemKind::Serial));
    let serial = run(cfg, SystemKind::Serial, serial_programs);
    let serial_cycles = serial.stats().cycles;
    let bars = systems
        .iter()
        .map(|&kind| {
            let m = run(cfg, kind, workload.programs_for(kind));
            SpeedupBar {
                kind,
                cycles: m.stats().cycles,
                speedup_pct: speedup_percent(serial_cycles, m.stats().cycles),
                aborts: m.stats().aborts,
            }
        })
        .collect();
    (serial_cycles, bars)
}

/// Runs one workload under one system (convenience for the benches).
pub fn run_workload(workload: &Workload, kind: SystemKind) -> Machine {
    run(workload.machine_config(), kind, workload.programs_for(kind))
}

/// Parses a scale name, case-insensitively. Unknown names are an error
/// naming the valid options — a typo must not silently downgrade a `full`
/// run to `small`.
pub fn parse_scale(name: &str) -> Result<Scale, String> {
    match name.to_ascii_lowercase().as_str() {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!(
            "unknown PTM_SCALE value {other:?}: expected one of tiny, small, full"
        )),
    }
}

/// The benchmark scale used by the regeneration binaries; override with the
/// `PTM_SCALE` environment variable (`tiny`, `small`, `full`, any case).
/// Defaults to `small` when unset.
///
/// # Panics
///
/// Panics on an unrecognized `PTM_SCALE` value.
pub fn scale_from_env() -> Scale {
    match std::env::var("PTM_SCALE") {
        Ok(v) => parse_scale(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => Scale::Small,
    }
}

/// Arithmetic mean, matching the "Average" bar of the paper's figures.
pub fn average(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_known_values() {
        assert_eq!(average(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(average(&[]), 0.0);
    }

    #[test]
    fn parse_scale_is_case_insensitive() {
        assert_eq!(parse_scale("tiny").unwrap(), Scale::Tiny);
        assert_eq!(parse_scale("Small").unwrap(), Scale::Small);
        assert_eq!(parse_scale("FULL").unwrap(), Scale::Full);
    }

    #[test]
    fn parse_scale_rejects_unknown_values() {
        let err = parse_scale("ful").unwrap_err();
        assert!(err.contains("ful"), "{err}");
        assert!(err.contains("tiny, small, full"), "{err}");
    }

    #[test]
    fn table1_row_extracts_counters() {
        let w = ptm_workloads::water::workload(Scale::Tiny);
        let row = table1_row(&w);
        assert_eq!(row.name, "water");
        assert!(row.commits > 0);
        assert!(row.pages > 0);
        assert!(row.pg_x_wr <= row.pages);
    }

    #[test]
    fn speedup_bars_cover_requested_systems() {
        let w = ptm_workloads::synthetic::quickstart();
        let systems = [SystemKind::Locks, SystemKind::SelectPtm(Default::default())];
        let (serial, bars) = speedup_bars(&w, &systems);
        assert!(serial > 0);
        assert_eq!(bars.len(), 2);
        assert_eq!(bars[0].kind, SystemKind::Locks);
    }
}
