//! Regenerates **Figure 4**: % speedup over single-threaded execution for
//! lock-based threading, VTM, Victim-VTM, Copy-PTM and Select-PTM on the
//! five SPLASH-2 kernels.
//!
//! ```text
//! cargo run -p ptm-bench --release --bin fig4
//! PTM_SCALE=tiny cargo run -p ptm-bench --bin fig4    # quick look
//! ```

use ptm_bench::{average, scale_from_env, speedup_bars};
use ptm_sim::SystemKind;
use ptm_workloads::splash2;

fn main() {
    let scale = scale_from_env();
    let mut systems: Vec<SystemKind> = SystemKind::figure4().to_vec();
    // PTM_EXTENSIONS=1 appends the LogTM extension backend as an extra bar.
    if std::env::var("PTM_EXTENSIONS").is_ok() {
        systems.push(SystemKind::LogTm);
    }
    println!("Figure 4 — % speedup over one thread (scale: {scale:?})\n");
    print!("{:<8}", "app");
    for s in &systems {
        print!("{:>14}", s.label());
    }
    println!();

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    for w in splash2(scale) {
        let (_serial, bars) = speedup_bars(&w, &systems);
        print!("{:<8}", w.name);
        for (i, b) in bars.iter().enumerate() {
            print!("{:>13.0}%", b.speedup_pct);
            columns[i].push(b.speedup_pct);
        }
        println!();
    }
    print!("{:<8}", "Average");
    for col in &columns {
        print!("{:>13.0}%", average(col));
    }
    println!();
    println!("\npaper averages: 4p-locks 134%, VTM (collapses on fft/ocean), VC-VTM 72%,");
    println!("                Copy-PTM 116%, Sel-PTM 220%");
    println!("expected shape: Sel-PTM > locks ≈ Copy-PTM > VC-VTM > VTM;");
    println!("                VTM worst on overflow/commit-heavy apps (fft, ocean)");
}
