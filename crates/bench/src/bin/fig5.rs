//! Regenerates **Figure 5**: the benefit of conflict detection at word
//! granularity — `blk-only` (Select-PTM), `wd:cache` (word-granular
//! coherence, block-granular overflow state) and `wd:cache+mem` (words
//! everywhere), against the lock baseline.
//!
//! ```text
//! cargo run -p ptm-bench --release --bin fig5
//! ```

use ptm_bench::{average, scale_from_env, speedup_bars};
use ptm_sim::SystemKind;
use ptm_workloads::splash2;

fn main() {
    let scale = scale_from_env();
    let systems = SystemKind::figure5();
    println!("Figure 5 — word-granularity conflict detection (scale: {scale:?})\n");
    print!("{:<8}", "app");
    for s in systems {
        print!("{:>14}", s.label());
    }
    println!("{:>14}", "blk aborts");

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    for w in splash2(scale) {
        let (_serial, bars) = speedup_bars(&w, &systems);
        print!("{:<8}", w.name);
        for (i, b) in bars.iter().enumerate() {
            print!("{:>13.0}%", b.speedup_pct);
            columns[i].push(b.speedup_pct);
        }
        // Show the abort delta that explains the gain (blk vs wd:cache+mem).
        print!("{:>8} → {:<4}", bars[1].aborts, bars[3].aborts);
        println!();
    }
    print!("{:<8}", "Average");
    for col in &columns {
        print!("{:>13.0}%", average(col));
    }
    println!();
    println!("\npaper: radix gains most (116% → 170%); wd:cache alone gives only minor");
    println!("speedups (an evicted block with multiple word-writers still aborts);");
    println!("the effect is benchmark-dependent and strongest where false sharing is.");
}
