//! Regenerates **Table 1**: transactional-memory execution behaviour of the
//! SPLASH-2 loop regions.
//!
//! ```text
//! cargo run -p ptm-bench --release --bin table1
//! PTM_SCALE=tiny cargo run -p ptm-bench --bin table1   # quick look
//! ```

use ptm_bench::{scale_from_env, table1_row};
use ptm_workloads::splash2;

/// One paper row: name, commits, aborts, exceptions, context switches,
/// pages, tx-written pages, conservative %, ideal %, mops/evict.
type PaperRow = (&'static str, u64, u64, u64, u64, u64, u64, f64, f64, f64);

/// The paper's Table 1 values, for side-by-side comparison.
const PAPER: &[PaperRow] = &[
    ("fft", 34, 5, 595, 52, 1041, 551, 52.9, 9.5, 87.5),
    ("lu", 656, 0, 17754, 1079, 2311, 2130, 92.2, 3.6, 95.3),
    ("radix", 70, 17, 615, 116, 771, 629, 81.6, 2.0, 246.3),
    ("ocean", 877, 282, 7417, 1421, 14966, 6769, 45.2, 0.2, 15.8),
    ("water", 59, 8, 32, 127, 241, 110, 45.6, 2.6, 4926.3),
];

fn main() {
    let scale = scale_from_env();
    println!("Table 1 — transactional execution behaviour (scale: {scale:?})");
    println!("(measured by this reproduction; paper values in parentheses — absolute");
    println!(" magnitudes differ with problem scale, orderings should match)\n");
    println!(
        "{:<7} {:>14} {:>12} {:>14} {:>14} {:>14} {:>14} {:>16} {:>18}",
        "app",
        "commit",
        "abort",
        "exception",
        "ctx-switch",
        "pages",
        "pg-x-wr",
        "conservative",
        "mop/evict"
    );
    let rows: Vec<_> = splash2(scale).iter().map(table1_row).collect();
    for r in &rows {
        let p = PAPER.iter().find(|p| p.0 == r.name).expect("known app");
        println!(
            "{:<7} {:>6} ({:>5}) {:>5} ({:>4}) {:>6} ({:>6}) {:>6} ({:>5}) {:>6} ({:>6}) {:>6} ({:>5}) {:>6.1}% ({:>4.1}%) {:>8.1} ({:>6.1})",
            r.name,
            r.commits, p.1,
            r.aborts, p.2,
            r.exceptions, p.3,
            r.context_switches, p.4,
            r.pages, p.5,
            r.pg_x_wr, p.6,
            r.conservative_pct, p.7,
            if r.mop_per_evict.is_finite() { r.mop_per_evict } else { 99999.0 }, p.9,
        );
    }
    println!("\n(a mop/evict of 99999.0 means the working set never evicted)");
    println!("(ideal shadow overhead: peak live shadow pages / footprint)");
    let paper_ideal = [9.5, 3.6, 2.0, 0.2, 2.6];
    for (r, p) in rows.iter().zip(paper_ideal) {
        println!(
            "  {:<7} ideal = {:>5.1}%  (paper: {p:.1}%)",
            r.name, r.ideal_pct
        );
    }
}
