//! The bench-history regression gate.
//!
//! Compares the *last* history entries of two benchmark reports — typically
//! base and head builds run on the same CI machine — and exits non-zero when
//! head regressed by more than the allowed fraction.
//!
//! ```text
//! bench_gate <base.json> <head.json> [--max-regression 0.10] [--parallel | --durable | --service]
//! ```
//!
//! The default mode gates the sequential cycle-loop throughput of
//! `BENCH_hotpath.json` trajectories. `--parallel` gates the parallel-pass
//! throughput of `BENCH_parallel_sim.json` trajectories instead, and
//! additionally refuses comparisons across differing worker counts.
//! `--durable` gates `BENCH_durable.json` trajectories and refuses
//! comparisons across differing log-force policies — commit latency is the
//! very thing the policies trade, so a cross-policy ratio would gate a
//! configuration change as a regression. `--service` gates
//! `BENCH_service.json` / `BENCH_service_chaos.json` trajectories,
//! refusing differing shard counts and mismatched force-policy tags (a
//! journaled chaos sweep never gates an unjournaled frontend sweep).
//!
//! The two runs must be comparable (same scale, cell count and host width);
//! comparing across hosts is refused rather than silently passed, because a
//! wall-clock ratio between different machines is noise, not a verdict.

use ptm_bench::history::{
    durable_ratio, entry_from_report, parallel_ratio, service_ratio, throughput_ratio,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut max_regression = 0.10f64;
    let mut parallel = false;
    let mut durable = false;
    let mut service = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regression" => {
                i += 1;
                max_regression = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--max-regression needs a fraction, e.g. 0.10"));
            }
            "--parallel" => parallel = true,
            "--durable" => durable = true,
            "--service" => service = true,
            f => files.push(f.to_string()),
        }
        i += 1;
    }
    if files.len() != 2 {
        die(
            "usage: bench_gate <base.json> <head.json> [--max-regression 0.10] \
             [--parallel | --durable | --service]",
        );
    }
    if (parallel as u8) + (durable as u8) + (service as u8) > 1 {
        die("--parallel, --durable and --service are mutually exclusive");
    }

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")))
    };
    let base = entry_from_report(&read(&files[0]))
        .unwrap_or_else(|| die(&format!("{}: no usable trajectory point", files[0])));
    let head = entry_from_report(&read(&files[1]))
        .unwrap_or_else(|| die(&format!("{}: no usable trajectory point", files[1])));

    // A `-dirty` point was measured on a tree that no longer exists; the
    // comparison still runs (the wall-clocks are real), but its verdict
    // cannot be reproduced, so say so.
    for (file, entry) in [(&files[0], &base), (&files[1], &head)] {
        if entry.git_rev.ends_with("-dirty") {
            eprintln!(
                "bench_gate: warning - {file} trajectory point {} was measured \
                 on a dirty working tree and cannot be rebuilt for comparison",
                entry.git_rev
            );
        }
    }

    let (what, ratio, base_t, head_t) = if service {
        let ratio = service_ratio(&base, &head).unwrap_or_else(|e| die(&e));
        (
            "service-sweep",
            ratio,
            base.throughput_cycles_per_s(),
            head.throughput_cycles_per_s(),
        )
    } else if durable {
        let ratio = durable_ratio(&base, &head).unwrap_or_else(|e| die(&e));
        (
            "durable-sweep",
            ratio,
            base.throughput_cycles_per_s(),
            head.throughput_cycles_per_s(),
        )
    } else if parallel {
        let ratio = parallel_ratio(&base, &head).unwrap_or_else(|e| die(&e));
        (
            "parallel-pass",
            ratio,
            base.parallel_throughput_cycles_per_s().unwrap_or(0),
            head.parallel_throughput_cycles_per_s().unwrap_or(0),
        )
    } else {
        let ratio = throughput_ratio(&base, &head).unwrap_or_else(|e| die(&e));
        (
            "cycle-loop",
            ratio,
            base.throughput_cycles_per_s(),
            head.throughput_cycles_per_s(),
        )
    };
    let floor = 1.0 - max_regression;
    println!(
        "bench_gate: {what} base {} @ {base_t} cyc/s, head {} @ {head_t} cyc/s \
         -> ratio {ratio:.3} (floor {floor:.3})",
        base.git_rev, head.git_rev,
    );
    if ratio < floor {
        eprintln!(
            "bench_gate: FAIL - {what} throughput regressed {:.1}% (> {:.1}% allowed)",
            (1.0 - ratio) * 100.0,
            max_regression * 100.0
        );
        std::process::exit(1);
    }
    println!("bench_gate: ok");
}

fn die(msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    std::process::exit(2);
}
