//! The bench-history regression gate.
//!
//! Compares the cycle-loop throughput of the *last* history entries of two
//! `BENCH_hotpath.json` reports — typically base and head builds run on the
//! same CI machine — and exits non-zero when head's throughput regressed by
//! more than the allowed fraction.
//!
//! ```text
//! bench_gate <base.json> <head.json> [--max-regression 0.10]
//! ```
//!
//! The two runs must be comparable (same scale, cell count and host width);
//! comparing across hosts is refused rather than silently passed, because a
//! wall-clock ratio between different machines is noise, not a verdict.

use ptm_bench::history::{entry_from_report, throughput_ratio};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut max_regression = 0.10f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regression" => {
                i += 1;
                max_regression = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--max-regression needs a fraction, e.g. 0.10"));
            }
            f => files.push(f.to_string()),
        }
        i += 1;
    }
    if files.len() != 2 {
        die("usage: bench_gate <base.json> <head.json> [--max-regression 0.10]");
    }

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")))
    };
    let base = entry_from_report(&read(&files[0]))
        .unwrap_or_else(|| die(&format!("{}: no usable trajectory point", files[0])));
    let head = entry_from_report(&read(&files[1]))
        .unwrap_or_else(|| die(&format!("{}: no usable trajectory point", files[1])));

    let ratio = throughput_ratio(&base, &head).unwrap_or_else(|e| die(&e));
    let floor = 1.0 - max_regression;
    println!(
        "bench_gate: base {} @ {} cyc/s, head {} @ {} cyc/s -> ratio {ratio:.3} (floor {floor:.3})",
        base.git_rev,
        base.throughput_cycles_per_s(),
        head.git_rev,
        head.throughput_cycles_per_s(),
    );
    if ratio < floor {
        eprintln!(
            "bench_gate: FAIL - cycle-loop throughput regressed {:.1}% (> {:.1}% allowed)",
            (1.0 - ratio) * 100.0,
            max_regression * 100.0
        );
        std::process::exit(1);
    }
    println!("bench_gate: ok");
}

fn die(msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    std::process::exit(2);
}
