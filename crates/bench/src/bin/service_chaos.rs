//! Service-chaos drill: crash-recovery sweep (force policies × log-fault
//! seed classes × every-K-steps, each point oracle-checked), shard-storm
//! degradation cells, and a bounded-queue backpressure flood. Emits
//! `BENCH_service_chaos.json` on the history-trajectory scheme with
//! `force_policy: "mixed"` (the sweep spans all policies; gate with
//! `bench_gate --service`).
//!
//! ```text
//! cargo run -p ptm-bench --release --bin service_chaos
//! PTM_SCALE=tiny PTM_CHAOS_K=23 cargo run -p ptm-bench --release --bin service_chaos
//! PTM_BENCH_OUT=/tmp/x.json cargo run -p ptm-bench --release --bin service_chaos
//! ```
//!
//! At `small` scale and the default stride the sweep exercises ≥ 200
//! crash points; the binary aborts if it does not.

use ptm_bench::history::{prior_entries, render_history_or_die, HistoryEntry};
use ptm_bench::scale_from_env;
use ptm_bench::service_chaos::{
    chaos_stream_config, run_backpressure, run_crash_sweep, run_degradation, BackpressureReport,
    ChaosCell, DegradationCell, FAULT_SEEDS, MAX_BATCH, POLICIES, SHARDS,
};
use ptm_workloads::Scale;
use std::fmt::Write as _;

/// Default crash-sweep stride (pipeline steps between crash points).
const DEFAULT_K: u64 = 12;

fn main() {
    let scale = scale_from_env();
    let every_k = match std::env::var("PTM_CHAOS_K") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("PTM_CHAOS_K must be a positive integer, got {v:?}")),
        Err(_) => DEFAULT_K,
    };
    let host_cores = ptm_bench::meta::host_cores();
    let wcfg = chaos_stream_config(scale);
    eprintln!(
        "service_chaos: {} policies x {} fault seeds at {scale:?} \
         ({} accounts, {} txs/stream, batch {MAX_BATCH}, stride {every_k}), {host_cores} host core(s)",
        POLICIES.len(),
        FAULT_SEEDS.len(),
        wcfg.accounts,
        wcfg.txs,
    );

    let t0 = std::time::Instant::now();
    let cells = run_crash_sweep(scale, every_k);
    let points: u64 = cells.iter().map(|c| c.points).sum();
    eprintln!(
        "service_chaos: {points} crash points oracle-clean across {} cells",
        cells.len()
    );
    if scale != Scale::Tiny && every_k <= DEFAULT_K {
        assert!(
            points >= 200,
            "acceptance floor: {points} crash points < 200 at {scale:?}"
        );
    }

    let degradation = run_degradation(scale);
    eprintln!(
        "service_chaos: {} storm cells completed every tx (degraded, never wedged)",
        degradation.len()
    );
    let backpressure = run_backpressure(scale);
    eprintln!(
        "service_chaos: flood shed {}/{} with retry hints <= {} ms",
        backpressure.shed, backpressure.offered, backpressure.max_retry_after_ms
    );
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let out =
        std::env::var("PTM_BENCH_OUT").unwrap_or_else(|_| "BENCH_service_chaos.json".to_string());
    let prior = match std::env::var("PTM_BENCH_HISTORY").as_deref() {
        Ok("none") => Vec::new(),
        Ok(path) => prior_entries(&std::fs::read_to_string(path).unwrap_or_default()),
        Err(_) => {
            let from_out = std::fs::read_to_string(&out).unwrap_or_default();
            let text = if prior_entries(&from_out).is_empty() {
                std::fs::read_to_string("BENCH_service_chaos.json").unwrap_or_default()
            } else {
                from_out
            };
            prior_entries(&text)
        }
    };

    // The trajectory's work metric: slowest-shard cycles of each cell's
    // clean pass, over the wall time of the whole drill. `force_policy`
    // is "mixed" — the sweep spans every policy, so the gate refuses a
    // comparison against any single-policy or unjournaled report.
    let total_cycles: u64 = cells.iter().map(|c| c.clean_cycles).sum();
    let entry = HistoryEntry {
        git_rev: ptm_bench::meta::git_rev(),
        rustc: ptm_bench::meta::rustc_version().to_string(),
        host_cores,
        scale: format!("{scale:?}"),
        workers: SHARDS,
        cells: cells.len(),
        total_cycles,
        seq_wall_ns: wall_ns,
        parallel_wall_ns: None,
        spec_commit_fraction: None,
        force_policy: Some("mixed".to_string()),
    };

    let json = render_json(
        scale,
        host_cores,
        every_k,
        &cells,
        &degradation,
        &backpressure,
        &render_history_or_die("service_chaos", &prior, &entry),
    );
    std::fs::write(&out, json).expect("write benchmark report");

    for c in &cells {
        eprintln!(
            "service_chaos: {:>6} x seed {}: {:>3} points, min recovered {:>3}/{}, \
             {} reexecuted, {} tail txs, {} append retries, {} forces",
            c.policy,
            c.fault_seed,
            c.points,
            c.min_recovered,
            c.txs,
            c.reexecuted,
            c.tail_txs,
            c.append_retries,
            c.forces,
        );
    }
    for d in &degradation {
        eprintln!(
            "service_chaos: storm seed {:>9}: {} blocks, {} retries, {} stalls, \
             {} escalations, {} degraded blocks",
            d.chaos_seed, d.blocks, d.retries, d.stalls, d.escalations, d.degraded_blocks,
        );
    }
    eprintln!("service_chaos: wrote {out}");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: Scale,
    host_cores: usize,
    every_k: u64,
    cells: &[ChaosCell],
    degradation: &[DegradationCell],
    backpressure: &BackpressureReport,
    history_block: &str,
) -> String {
    let wcfg = chaos_stream_config(scale);
    let points: u64 = cells.iter().map(|c| c.points).sum();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"host_cores\": {host_cores},");
    let _ = writeln!(s, "  \"git_rev\": \"{}\",", ptm_bench::meta::git_rev());
    let _ = writeln!(s, "  \"rustc\": \"{}\",", ptm_bench::meta::rustc_version());
    let _ = writeln!(s, "  \"accounts\": {},", wcfg.accounts);
    let _ = writeln!(s, "  \"txs_per_stream\": {},", wcfg.txs);
    let _ = writeln!(s, "  \"shards\": {SHARDS},");
    let _ = writeln!(s, "  \"max_batch\": {MAX_BATCH},");
    let _ = writeln!(s, "  \"crash_stride\": {every_k},");
    let _ = writeln!(s, "  \"force_policy\": \"mixed\",");
    s.push_str(history_block);
    let _ = writeln!(s, "  \"crash_cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"policy\": \"{}\", \"fault_seed\": {}, \"points\": {}, \
             \"txs\": {}, \"blocks\": {}, \"min_recovered\": {}, \
             \"reexecuted\": {}, \"tail_txs\": {}, \"append_retries\": {}, \
             \"forces\": {}, \"clean_cycles\": {}, \"wall_ns\": {}}}{comma}",
            c.policy,
            c.fault_seed,
            c.points,
            c.txs,
            c.blocks,
            c.min_recovered,
            c.reexecuted,
            c.tail_txs,
            c.append_retries,
            c.forces,
            c.clean_cycles,
            c.wall_ns,
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"degradation_cells\": [");
    for (i, d) in degradation.iter().enumerate() {
        let comma = if i + 1 == degradation.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"chaos_seed\": {}, \"blocks\": {}, \"txs\": {}, \
             \"retries\": {}, \"stalls\": {}, \"escalations\": {}, \
             \"degraded_blocks\": {}, \"wall_ns\": {}}}{comma}",
            d.chaos_seed,
            d.blocks,
            d.txs,
            d.retries,
            d.stalls,
            d.escalations,
            d.degraded_blocks,
            d.wall_ns,
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"backpressure\": {{");
    let _ = writeln!(s, "    \"queue_depth\": {},", backpressure.queue_depth);
    let _ = writeln!(s, "    \"bursts\": {},", backpressure.bursts);
    let _ = writeln!(s, "    \"offered\": {},", backpressure.offered);
    let _ = writeln!(s, "    \"admitted\": {},", backpressure.admitted);
    let _ = writeln!(s, "    \"shed\": {},", backpressure.shed);
    let _ = writeln!(
        s,
        "    \"max_retry_after_ms\": {}",
        backpressure.max_retry_after_ms
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"totals\": {{");
    let _ = writeln!(s, "    \"crash_points\": {points},");
    let _ = writeln!(
        s,
        "    \"phantom_receipts\": 0,\n    \"lost_acked_txs\": 0,\n    \
         \"recovery_idempotent\": true"
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"oracle_clean\": true");
    s.push_str("}\n");
    s
}
