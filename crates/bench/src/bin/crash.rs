//! The crash-recovery harness: for every transactional system kind, crashes
//! each workload at every K-th scheduler step (clean and torn), recovers
//! the durable image, and asserts word-identical committed memory against
//! the committed-prefix serializability oracle — plus idempotence of the
//! recovery pass. Emits `BENCH_crash.json`.
//!
//! ```text
//! cargo run -p ptm-bench --release --bin crash
//! PTM_SCALE=tiny cargo run -p ptm-bench --release --bin crash
//! PTM_CRASH_K=500 PTM_CRASH_SEED=7 PTM_BENCH_OUT=/tmp/c.json \
//!     cargo run -p ptm-bench --release --bin crash
//! ```

use ptm_bench::crash::{crash_cells, sweep_cell, CrashCellReport};
use ptm_bench::scale_from_env;
use std::fmt::Write as _;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

fn main() {
    let scale = scale_from_env();
    let seed = env_u64("PTM_CRASH_SEED").unwrap_or(0xC1A54);
    // Explicit K overrides the per-cell default of total/16.
    let stride = env_u64("PTM_CRASH_K");
    let extra = env_u64("PTM_CRASH_EXTRA").unwrap_or(4);
    let cells = crash_cells(scale);
    eprintln!(
        "crash: {} cells at {scale:?}, seed {seed:#x}, K={}",
        cells.len(),
        stride.map_or("auto".to_string(), |k| k.to_string()),
    );

    let reports: Vec<CrashCellReport> = cells
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            // Decorrelate the per-cell random extras while keeping the whole
            // sweep a pure function of the one reported seed.
            let cell_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let r = sweep_cell(spec, stride, cell_seed, extra);
            eprintln!(
                "crash: {}/{} — {} points ({} torn), {} discarded, worst restore {} blocks",
                r.spec.workload.name(),
                r.spec.kind.label(),
                r.points,
                r.torn_points,
                r.transactions_discarded,
                r.worst_blocks_restored,
            );
            r
        })
        .collect();

    for r in &reports {
        let ctx = format!("{}/{}", r.spec.workload.name(), r.spec.kind.label());
        assert_eq!(
            r.mismatches, 0,
            "{ctx}: recovered memory diverged from the committed-prefix oracle"
        );
        assert_eq!(r.non_idempotent, 0, "{ctx}: recovery was not idempotent");
    }
    let discarded: u64 = reports.iter().map(|r| r.transactions_discarded).sum();
    let torn: u64 = reports.iter().map(|r| r.torn_points).sum();
    assert!(
        discarded > 0,
        "no crash point ever caught a live transaction — the sweep is too coarse to mean anything"
    );
    assert!(
        torn > 0,
        "no torn point ever applied — the sweep never crashed mid-overflow on a PTM kind"
    );
    let points: u64 = reports.iter().map(|r| r.points).sum();
    eprintln!(
        "crash: all {} cells clean — {points} crash points, {torn} torn, {discarded} live \
         transactions discarded and recovered",
        reports.len()
    );

    let json = render_json(scale, seed, stride, extra, &reports);
    let out = std::env::var("PTM_BENCH_OUT").unwrap_or_else(|_| "BENCH_crash.json".to_string());
    std::fs::write(&out, json).expect("write benchmark report");
    eprintln!("crash: wrote {out}");
}

fn render_json(
    scale: ptm_workloads::Scale,
    seed: u64,
    stride: Option<u64>,
    extra: u64,
    reports: &[CrashCellReport],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&ptm_bench::meta::json_fields());
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"plan_seed\": {seed},");
    let _ = writeln!(
        s,
        "  \"stride\": {},",
        stride.map_or("\"auto\"".to_string(), |k| k.to_string())
    );
    let _ = writeln!(s, "  \"extra_random_points\": {extra},");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 == reports.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"family\": \"{}\", \"workload\": \"{}\", \"system\": \"{}\", \
             \"total_steps\": {}, \"stride\": {}, \"points\": {}, \"torn_points\": {}, \
             \"oracle_mismatches\": {}, \"non_idempotent\": {}, \
             \"transactions_discarded\": {}, \"blocks_restored\": {}, \
             \"worst_blocks_restored\": {}, \"torn_repaired\": {}, \
             \"recovery_wall_ns\": {}, \"worst_recovery_wall_ns\": {}, \
             \"plan_digest\": {}}}{comma}",
            r.spec.family,
            r.spec.workload.name(),
            r.spec.kind.label(),
            r.total_steps,
            r.stride,
            r.points,
            r.torn_points,
            r.mismatches,
            r.non_idempotent,
            r.transactions_discarded,
            r.blocks_restored,
            r.worst_blocks_restored,
            r.torn_repaired,
            r.recovery_wall_ns,
            r.worst_recovery_wall_ns,
            r.plan_digest,
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"totals\": {{");
    let _ = writeln!(s, "    \"cells\": {},", reports.len());
    let points: u64 = reports.iter().map(|r| r.points).sum();
    let torn: u64 = reports.iter().map(|r| r.torn_points).sum();
    let discarded: u64 = reports.iter().map(|r| r.transactions_discarded).sum();
    let restored: u64 = reports.iter().map(|r| r.blocks_restored).sum();
    let worst_restored = reports
        .iter()
        .map(|r| r.worst_blocks_restored)
        .max()
        .unwrap_or(0);
    let worst_rec_ns = reports
        .iter()
        .map(|r| r.worst_recovery_wall_ns)
        .max()
        .unwrap_or(0);
    let repaired: u64 = reports.iter().map(|r| r.torn_repaired).sum();
    let _ = writeln!(s, "    \"points\": {points},");
    let _ = writeln!(s, "    \"torn_points\": {torn},");
    let _ = writeln!(s, "    \"transactions_discarded\": {discarded},");
    let _ = writeln!(s, "    \"blocks_restored\": {restored},");
    let _ = writeln!(s, "    \"worst_blocks_restored\": {worst_restored},");
    let _ = writeln!(s, "    \"torn_repaired\": {repaired},");
    let _ = writeln!(s, "    \"worst_recovery_wall_ns\": {worst_rec_ns},");
    let _ = writeln!(s, "    \"oracle_mismatches\": 0,");
    let _ = writeln!(s, "    \"non_idempotent\": 0");
    let _ = writeln!(s, "  }}");
    s.push_str("}\n");
    s
}
