//! The speculative-executor harness: runs every independent
//! `(workload, system)` cell twice — once through the plain sequential
//! `Machine::run`, once through the speculative epoch executor
//! (`Machine::run_parallel`) — asserts the two passes produce bit-identical
//! simulated results on every cell, and emits `BENCH_parallel_sim.json`
//! with per-cell wall-clocks plus the executor's epoch/rollback counters.
//!
//! ```text
//! cargo run -p ptm-bench --release --bin parallel_sim
//! PTM_SCALE=tiny PTM_EXEC_THREADS=2 cargo run -p ptm-bench --release --bin parallel_sim
//! PTM_BENCH_OUT=/tmp/x.json cargo run -p ptm-bench --release --bin parallel_sim
//! ```

use ptm_bench::parallel::{assert_cells_match, cells_from_env, run_cells_sequential, CellResult};
use ptm_bench::parallel_sim::{
    amdahl_projection_ns, epoch_cycles_from_env, exec_threads_from_env, run_cells_executor,
};
use ptm_sim::{ExecStats, ExecutorConfig};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let (scale, specs) = cells_from_env();
    let exec = ExecutorConfig {
        threads: exec_threads_from_env(),
        epoch_cycles: epoch_cycles_from_env(),
    };
    let host_cores = ptm_bench::meta::host_cores();
    eprintln!(
        "parallel_sim: {} cells at {scale:?}, {} executor thread(s), epoch {} cycles, \
         {host_cores} host core(s)",
        specs.len(),
        exec.threads,
        exec.epoch_cycles,
    );

    let t0 = Instant::now();
    let seq = run_cells_sequential(&specs);
    let seq_wall = t0.elapsed().as_nanos() as u64;

    let t1 = Instant::now();
    let pairs = run_cells_executor(&specs, &exec);
    let par_wall = t1.elapsed().as_nanos() as u64;
    let par: Vec<CellResult> = pairs.iter().map(|(c, _)| c.clone()).collect();

    assert_cells_match(&seq, &par);
    eprintln!(
        "parallel_sim: executor pass matched sequential pass bit-for-bit on all {} cells",
        seq.len()
    );

    let mut totals = ExecStats::default();
    for (_, xs) in &pairs {
        totals.merge(xs);
    }
    let json = render_json(scale, &exec, &seq, &pairs, seq_wall, par_wall, &totals);
    let out =
        std::env::var("PTM_BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel_sim.json".to_string());
    std::fs::write(&out, json).expect("write benchmark report");

    let speedup = seq_wall as f64 / par_wall.max(1) as f64;
    let projected_4: u64 = seq
        .iter()
        .zip(&pairs)
        .map(|(s, (_, xs))| amdahl_projection_ns(s.wall_ns, xs.spec_commit_fraction(), 4))
        .sum();
    eprintln!(
        "parallel_sim: seq {:.2}s, executor {:.2}s ({speedup:.2}x measured on {host_cores} \
         host core(s); {:.2}x Amdahl projection at 4 threads)",
        seq_wall as f64 / 1e9,
        par_wall as f64 / 1e9,
        seq_wall as f64 / projected_4.max(1) as f64,
    );
    eprintln!(
        "parallel_sim: {} epochs, {} spec steps ({} consumed, {:.1}% of all steps), \
         {} rollbacks, {} re-executed, {} poison events",
        totals.epochs,
        totals.spec_steps,
        totals.committed_spec_steps,
        100.0 * totals.spec_commit_fraction(),
        totals.rollbacks,
        totals.reexecuted_steps,
        totals.poison_events,
    );
    eprintln!("parallel_sim: wrote {out}");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: ptm_workloads::Scale,
    exec: &ExecutorConfig,
    seq: &[CellResult],
    pairs: &[(CellResult, ExecStats)],
    seq_wall: u64,
    par_wall: u64,
    totals: &ExecStats,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&ptm_bench::meta::json_fields());
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"exec_threads\": {},", exec.threads);
    let _ = writeln!(s, "  \"epoch_cycles\": {},", exec.epoch_cycles);
    let _ = writeln!(s, "  \"cells\": [");
    for (i, (a, (b, xs))) in seq.iter().zip(pairs).enumerate() {
        let comma = if i + 1 == seq.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"family\": \"{}\", \"workload\": \"{}\", \"system\": \"{}\", \
             \"cycles\": {}, \"commits\": {}, \"aborts\": {}, \
             \"wall_seq_ns\": {}, \"wall_par_ns\": {}, \
             \"epochs\": {}, \"spec_runs\": {}, \"spec_steps\": {}, \
             \"committed_spec_steps\": {}, \"live_steps\": {}, \
             \"rollbacks\": {}, \"reexecuted_steps\": {}, \"poison_events\": {}, \
             \"spec_commit_fraction\": {:.4}, \
             \"checksums_match\": {}}}{comma}",
            a.spec.family,
            a.spec.workload.name(),
            a.spec.kind.label(),
            a.cycles,
            a.commits,
            a.aborts,
            a.wall_ns,
            b.wall_ns,
            xs.epochs,
            xs.spec_runs,
            xs.spec_steps,
            xs.committed_spec_steps,
            xs.live_steps,
            xs.rollbacks,
            xs.reexecuted_steps,
            xs.poison_events,
            xs.spec_commit_fraction(),
            a.checksums == b.checksums,
        );
    }
    let _ = writeln!(s, "  ],");
    let projected_4: u64 = seq
        .iter()
        .zip(pairs)
        .map(|(a, (_, xs))| amdahl_projection_ns(a.wall_ns, xs.spec_commit_fraction(), 4))
        .sum();
    let _ = writeln!(s, "  \"totals\": {{");
    let _ = writeln!(s, "    \"seq_wall_ns\": {seq_wall},");
    let _ = writeln!(s, "    \"par_wall_ns\": {par_wall},");
    let _ = writeln!(
        s,
        "    \"measured_speedup\": {:.3},",
        seq_wall as f64 / par_wall.max(1) as f64
    );
    let _ = writeln!(s, "    \"projected_amdahl_4threads_ns\": {projected_4},");
    let _ = writeln!(
        s,
        "    \"projected_speedup_4threads\": {:.3},",
        seq_wall as f64 / projected_4.max(1) as f64
    );
    let _ = writeln!(s, "    \"epochs\": {},", totals.epochs);
    let _ = writeln!(s, "    \"spec_runs\": {},", totals.spec_runs);
    let _ = writeln!(s, "    \"spec_steps\": {},", totals.spec_steps);
    let _ = writeln!(
        s,
        "    \"committed_spec_steps\": {},",
        totals.committed_spec_steps
    );
    let _ = writeln!(s, "    \"live_steps\": {},", totals.live_steps);
    let _ = writeln!(s, "    \"rollbacks\": {},", totals.rollbacks);
    let _ = writeln!(s, "    \"reexecuted_steps\": {},", totals.reexecuted_steps);
    let _ = writeln!(s, "    \"poison_events\": {},", totals.poison_events);
    let _ = writeln!(
        s,
        "    \"spec_commit_fraction\": {:.4}",
        totals.spec_commit_fraction()
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"checksums_match\": true");
    s.push_str("}\n");
    s
}
