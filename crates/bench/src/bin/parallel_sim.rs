//! The speculative-executor harness: runs every independent
//! `(workload, system)` cell twice — once through the plain sequential
//! `Machine::run`, once through the speculative epoch executor
//! (`Machine::run_parallel`) — asserts the two passes produce bit-identical
//! simulated results on every cell, and emits `BENCH_parallel_sim.json`
//! with per-cell wall-clocks plus the executor's epoch/rollback counters.
//!
//! ```text
//! cargo run -p ptm-bench --release --bin parallel_sim
//! PTM_SCALE=tiny PTM_EXEC_THREADS=2 cargo run -p ptm-bench --release --bin parallel_sim
//! PTM_BENCH_OUT=/tmp/x.json cargo run -p ptm-bench --release --bin parallel_sim
//! ```

use ptm_bench::history::{prior_entries, render_history_or_die, HistoryEntry};
use ptm_bench::parallel::{assert_cells_match, cells_from_env, run_cells_sequential, CellResult};
use ptm_bench::parallel_sim::{
    amdahl_projection_ns, epoch_cycles_from_env, exec_threads_from_env, run_cells_executor,
};
use ptm_sim::{ExecStats, ExecutorConfig};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let (scale, specs) = cells_from_env();
    let exec = ExecutorConfig {
        threads: exec_threads_from_env(),
        epoch_cycles: epoch_cycles_from_env(),
    };
    let host_cores = ptm_bench::meta::host_cores();
    eprintln!(
        "parallel_sim: {} cells at {scale:?}, {} executor thread(s), epoch {} cycles, \
         {host_cores} host core(s)",
        specs.len(),
        exec.threads,
        exec.epoch_cycles,
    );

    let t0 = Instant::now();
    let seq = run_cells_sequential(&specs);
    let seq_wall = t0.elapsed().as_nanos() as u64;

    let t1 = Instant::now();
    let pairs = run_cells_executor(&specs, &exec);
    let par_wall = t1.elapsed().as_nanos() as u64;
    let par: Vec<CellResult> = pairs.iter().map(|(c, _)| c.clone()).collect();

    assert_cells_match(&seq, &par);
    eprintln!(
        "parallel_sim: executor pass matched sequential pass bit-for-bit on all {} cells",
        seq.len()
    );

    let mut totals = ExecStats::default();
    for (_, xs) in &pairs {
        totals.merge(xs);
    }
    let out =
        std::env::var("PTM_BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel_sim.json".to_string());

    // The history trajectory: append this run to the entries of the prior
    // report. `PTM_BENCH_HISTORY` overrides where the prior entries come
    // from (default: the output file, falling back to the committed report);
    // `PTM_BENCH_HISTORY=none` starts a fresh trajectory.
    let prior = match std::env::var("PTM_BENCH_HISTORY").as_deref() {
        Ok("none") => Vec::new(),
        Ok(path) => prior_entries(&std::fs::read_to_string(path).unwrap_or_default()),
        Err(_) => {
            let from_out = std::fs::read_to_string(&out).unwrap_or_default();
            let text = if prior_entries(&from_out).is_empty() {
                std::fs::read_to_string("BENCH_parallel_sim.json").unwrap_or_default()
            } else {
                from_out
            };
            prior_entries(&text)
        }
    };
    let entry = HistoryEntry {
        git_rev: ptm_bench::meta::git_rev(),
        rustc: ptm_bench::meta::rustc_version().to_string(),
        host_cores,
        scale: format!("{scale:?}"),
        workers: exec.threads,
        cells: seq.len(),
        total_cycles: seq.iter().map(|c| c.cycles).sum(),
        seq_wall_ns: seq_wall,
        parallel_wall_ns: Some(par_wall),
        spec_commit_fraction: Some(totals.spec_commit_fraction()),
        force_policy: None,
    };
    let json = render_json(
        scale,
        &exec,
        host_cores,
        &seq,
        &pairs,
        seq_wall,
        par_wall,
        &totals,
        &render_history_or_die("parallel_sim", &prior, &entry),
    );
    std::fs::write(&out, json).expect("write benchmark report");

    let speedup = seq_wall as f64 / par_wall.max(1) as f64;
    let projected_4: u64 = seq
        .iter()
        .zip(&pairs)
        .map(|(s, (_, xs))| amdahl_projection_ns(s.wall_ns, xs.spec_commit_fraction(), 4))
        .sum();
    if host_cores == 1 {
        eprintln!(
            "parallel_sim: seq {:.2}s, executor {:.2}s (single host core: the {speedup:.2} \
             wall ratio measures executor overhead, not speedup; {:.2}x Amdahl projection \
             at 4 threads)",
            seq_wall as f64 / 1e9,
            par_wall as f64 / 1e9,
            seq_wall as f64 / projected_4.max(1) as f64,
        );
    } else {
        eprintln!(
            "parallel_sim: seq {:.2}s, executor {:.2}s ({speedup:.2}x measured on {host_cores} \
             host core(s); {:.2}x Amdahl projection at 4 threads)",
            seq_wall as f64 / 1e9,
            par_wall as f64 / 1e9,
            seq_wall as f64 / projected_4.max(1) as f64,
        );
    }
    // Opt-in speedup floor (`PTM_MIN_SPEEDUP=1.5`), for multi-core runners
    // that want the run to fail on lost parallelism. Skipped on a
    // single-core host, where the wall ratio is warm-up noise by
    // construction.
    if let Ok(min) = std::env::var("PTM_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("PTM_MIN_SPEEDUP must be a number");
        if host_cores == 1 {
            eprintln!("parallel_sim: skipping speedup assertion (1 host core)");
        } else {
            assert!(
                speedup >= min,
                "measured speedup {speedup:.2}x below the PTM_MIN_SPEEDUP={min} floor \
                 on {host_cores} host cores"
            );
        }
    }
    eprintln!(
        "parallel_sim: {} epochs, {} spec steps ({} consumed, {:.1}% of all steps), \
         {} rollbacks, {} re-executed, {} poison events",
        totals.epochs,
        totals.spec_steps,
        totals.committed_spec_steps,
        100.0 * totals.spec_commit_fraction(),
        totals.rollbacks,
        totals.reexecuted_steps,
        totals.poison_events,
    );
    eprintln!(
        "parallel_sim: {} spec txs ({} committed from runs), {} incarnations, \
         {} validation waves, {} word conflicts, {} estimate markers",
        totals.spec_txs,
        totals.spec_tx_commits,
        totals.incarnations,
        totals.validation_waves,
        totals.word_conflicts,
        totals.estimate_markers,
    );
    eprintln!(
        "parallel_sim: {} replayed steps ({} skews absorbed, {} mispredicts discarded)",
        totals.replayed_steps, totals.replay_skews, totals.replay_mispredicts,
    );
    let refusals: Vec<String> = ptm_sim::Refusal::LABELS
        .iter()
        .zip(totals.refusals)
        .map(|(l, n)| format!("{l}={n}"))
        .collect();
    eprintln!("parallel_sim: run stops: {}", refusals.join(" "));
    eprintln!("parallel_sim: wrote {out}");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: ptm_workloads::Scale,
    exec: &ExecutorConfig,
    host_cores: usize,
    seq: &[CellResult],
    pairs: &[(CellResult, ExecStats)],
    seq_wall: u64,
    par_wall: u64,
    totals: &ExecStats,
    history_block: &str,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&ptm_bench::meta::json_fields());
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"exec_threads\": {},", exec.threads);
    let _ = writeln!(s, "  \"epoch_cycles\": {},", exec.epoch_cycles);
    s.push_str(history_block);
    let _ = writeln!(s, "  \"cells\": [");
    for (i, (a, (b, xs))) in seq.iter().zip(pairs).enumerate() {
        let comma = if i + 1 == seq.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"family\": \"{}\", \"workload\": \"{}\", \"system\": \"{}\", \
             \"cycles\": {}, \"commits\": {}, \"aborts\": {}, \
             \"wall_seq_ns\": {}, \"wall_par_ns\": {}, \
             \"epochs\": {}, \"spec_runs\": {}, \"spec_steps\": {}, \
             \"committed_spec_steps\": {}, \"live_steps\": {}, \
             \"rollbacks\": {}, \"reexecuted_steps\": {}, \"poison_events\": {}, \
             \"spec_txs\": {}, \"spec_tx_commits\": {}, \"incarnations\": {}, \
             \"validation_waves\": {}, \"word_conflicts\": {}, \
             \"estimate_markers\": {}, \"replayed_steps\": {}, \
             \"replay_skews\": {}, \"replay_mispredicts\": {}, \
             \"spec_commit_fraction\": {:.4}, \
             \"checksums_match\": {}}}{comma}",
            a.spec.family,
            a.spec.workload.name(),
            a.spec.kind.label(),
            a.cycles,
            a.commits,
            a.aborts,
            a.wall_ns,
            b.wall_ns,
            xs.epochs,
            xs.spec_runs,
            xs.spec_steps,
            xs.committed_spec_steps,
            xs.live_steps,
            xs.rollbacks,
            xs.reexecuted_steps,
            xs.poison_events,
            xs.spec_txs,
            xs.spec_tx_commits,
            xs.incarnations,
            xs.validation_waves,
            xs.word_conflicts,
            xs.estimate_markers,
            xs.replayed_steps,
            xs.replay_skews,
            xs.replay_mispredicts,
            xs.spec_commit_fraction(),
            a.checksums == b.checksums,
        );
    }
    let _ = writeln!(s, "  ],");
    let projected_4: u64 = seq
        .iter()
        .zip(pairs)
        .map(|(a, (_, xs))| amdahl_projection_ns(a.wall_ns, xs.spec_commit_fraction(), 4))
        .sum();
    let _ = writeln!(s, "  \"totals\": {{");
    let _ = writeln!(s, "    \"seq_wall_ns\": {seq_wall},");
    let _ = writeln!(s, "    \"par_wall_ns\": {par_wall},");
    // On a single-core host the wall ratio measures executor overhead, not
    // parallelism: label it as such so downstream readers never mistake
    // warm-up noise for a measured speedup.
    let ratio_key = if host_cores == 1 {
        "single_core_wall_ratio"
    } else {
        "measured_speedup"
    };
    let _ = writeln!(
        s,
        "    \"{ratio_key}\": {:.3},",
        seq_wall as f64 / par_wall.max(1) as f64
    );
    let _ = writeln!(s, "    \"projected_amdahl_4threads_ns\": {projected_4},");
    let _ = writeln!(
        s,
        "    \"projected_speedup_4threads\": {:.3},",
        seq_wall as f64 / projected_4.max(1) as f64
    );
    let _ = writeln!(s, "    \"epochs\": {},", totals.epochs);
    let _ = writeln!(s, "    \"spec_runs\": {},", totals.spec_runs);
    let _ = writeln!(s, "    \"spec_steps\": {},", totals.spec_steps);
    let _ = writeln!(
        s,
        "    \"committed_spec_steps\": {},",
        totals.committed_spec_steps
    );
    let _ = writeln!(s, "    \"live_steps\": {},", totals.live_steps);
    let _ = writeln!(s, "    \"rollbacks\": {},", totals.rollbacks);
    let _ = writeln!(s, "    \"reexecuted_steps\": {},", totals.reexecuted_steps);
    let _ = writeln!(s, "    \"poison_events\": {},", totals.poison_events);
    let _ = writeln!(s, "    \"spec_txs\": {},", totals.spec_txs);
    let _ = writeln!(s, "    \"spec_tx_commits\": {},", totals.spec_tx_commits);
    let _ = writeln!(s, "    \"incarnations\": {},", totals.incarnations);
    let _ = writeln!(s, "    \"validation_waves\": {},", totals.validation_waves);
    let _ = writeln!(s, "    \"word_conflicts\": {},", totals.word_conflicts);
    let _ = writeln!(s, "    \"estimate_markers\": {},", totals.estimate_markers);
    let _ = writeln!(s, "    \"replayed_steps\": {},", totals.replayed_steps);
    let _ = writeln!(s, "    \"replay_skews\": {},", totals.replay_skews);
    let _ = writeln!(
        s,
        "    \"replay_mispredicts\": {},",
        totals.replay_mispredicts
    );
    let refusals: Vec<String> = ptm_sim::Refusal::LABELS
        .iter()
        .zip(totals.refusals)
        .map(|(l, n)| format!("\"{l}\": {n}"))
        .collect();
    let _ = writeln!(s, "    \"refusals\": {{{}}},", refusals.join(", "));
    let _ = writeln!(
        s,
        "    \"spec_commit_fraction\": {:.4}",
        totals.spec_commit_fraction()
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"checksums_match\": true");
    s.push_str("}\n");
    s
}
