//! The fault-injection harness: runs every benchmark cell three times —
//! plain, under an *empty* fault plan (must be bit-identical: same
//! checksums, same stats display), and under a seeded adversarial plan
//! (forced switches and migrations, hot-page swap-outs on a slow swap
//! device, abort storms, frame-pool and TAV-arena exhaustion) — asserting
//! that every injected run stays serializable, satisfies the stats
//! identities, and that the resource pressure actually fired somewhere.
//! Emits `BENCH_faults.json`.
//!
//! ```text
//! cargo run -p ptm-bench --release --bin faults
//! PTM_SCALE=tiny cargo run -p ptm-bench --release --bin faults
//! PTM_FAULT_SEED=7 PTM_BENCH_OUT=/tmp/f.json cargo run -p ptm-bench --release --bin faults
//! ```

use ptm_bench::faults::{run_cell_plain, run_cell_under_plan, seeded_plan, FaultCellReport};
use ptm_bench::parallel::cells_from_env;
use ptm_sim::FaultPlan;
use std::fmt::Write as _;

fn main() {
    let (scale, specs) = cells_from_env();
    let seed = std::env::var("PTM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF4117);
    eprintln!(
        "faults: {} cells at {scale:?}, plan seed {seed:#x}",
        specs.len()
    );

    // Pass 1: plain runs — the bit-identity baseline.
    let plain: Vec<FaultCellReport> = specs.iter().map(run_cell_plain).collect();

    // Pass 2: empty plan. The harness is wired into the run loop
    // permanently, so an empty plan must change *nothing*.
    let empty_plan = FaultPlan::empty();
    let mut identical = 0usize;
    for (spec, base) in specs.iter().zip(&plain) {
        let e = run_cell_under_plan(spec, &empty_plan);
        let ctx = format!("{}/{}", spec.workload.name(), spec.kind.label());
        assert_eq!(
            base.checksums, e.checksums,
            "{ctx}: checksums diverged under an empty plan"
        );
        assert_eq!(
            base.stats, e.stats,
            "{ctx}: stats diverged under an empty plan"
        );
        identical += 1;
    }
    eprintln!("faults: empty plan bit-identical on all {identical} cells");

    // Pass 3: the seeded adversarial plan. Every run must finish (no
    // panics), pass the serializability oracle, and keep its accounting
    // identities; at least one cell must have taken the exhaustion path.
    let plan = seeded_plan(seed);
    let faulted: Vec<FaultCellReport> = specs
        .iter()
        .map(|s| run_cell_under_plan(s, &plan))
        .collect();
    for r in &faulted {
        let ctx = format!("{}/{}", r.spec.workload.name(), r.spec.kind.label());
        assert_eq!(
            r.mismatches, 0,
            "{ctx}: serializability oracle failed under the seeded plan"
        );
        assert_eq!(
            r.invariant_violation, None,
            "{ctx}: stats identity violated under the seeded plan"
        );
    }
    let exhausted = faulted
        .iter()
        .filter(|r| r.frame_exhaustions + r.tav_exhaustions > 0)
        .count();
    let swapped = faulted.iter().filter(|r| r.tx_swap_outs > 0).count();
    let recovery_aborts: u64 = faulted.iter().map(|r| r.exhaustion_aborts).sum();
    let recovery_retries: u64 = faulted.iter().map(|r| r.exhaustion_retries).sum();
    assert!(
        exhausted > 0,
        "the seeded plan never drove any cell into resource exhaustion"
    );
    eprintln!(
        "faults: seeded plan survived all {} cells — oracle clean, {exhausted} cell(s) \
         exhausted resources ({recovery_aborts} recovery aborts, {recovery_retries} retries), \
         {swapped} cell(s) swapped transactional pages",
        faulted.len()
    );

    let json = render_json(scale, seed, &plan, &plain, &faulted, exhausted, swapped);
    let out = std::env::var("PTM_BENCH_OUT").unwrap_or_else(|_| "BENCH_faults.json".to_string());
    std::fs::write(&out, json).expect("write benchmark report");
    eprintln!("faults: wrote {out}");
}

fn render_json(
    scale: ptm_workloads::Scale,
    seed: u64,
    plan: &FaultPlan,
    plain: &[FaultCellReport],
    faulted: &[FaultCellReport],
    exhausted: usize,
    swapped: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&ptm_bench::meta::json_fields());
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"plan_seed\": {seed},");
    let _ = writeln!(s, "  \"plan_digest\": {},", plan.digest());
    let _ = writeln!(s, "  \"plan_events\": {},", plan.events.len());
    let _ = writeln!(s, "  \"empty_plan_bit_identical\": true,");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, (p, f)) in plain.iter().zip(faulted).enumerate() {
        let comma = if i + 1 == plain.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"family\": \"{}\", \"workload\": \"{}\", \"system\": \"{}\", \
             \"plain_cycles\": {}, \"faulted_cycles\": {}, \
             \"plain_commits\": {}, \"faulted_commits\": {}, \
             \"plain_aborts\": {}, \"faulted_aborts\": {}, \
             \"frame_exhaustions\": {}, \"tav_exhaustions\": {}, \
             \"exhaustion_aborts\": {}, \"exhaustion_retries\": {}, \
             \"tx_swap_outs\": {}, \"tx_swap_ins\": {}, \
             \"oracle_mismatches\": {}}}{comma}",
            f.spec.family,
            f.spec.workload.name(),
            f.spec.kind.label(),
            p.cycles,
            f.cycles,
            p.commits,
            f.commits,
            p.aborts,
            f.aborts,
            f.frame_exhaustions,
            f.tav_exhaustions,
            f.exhaustion_aborts,
            f.exhaustion_retries,
            f.tx_swap_outs,
            f.tx_swap_ins,
            f.mismatches,
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"totals\": {{");
    let _ = writeln!(s, "    \"cells\": {},", faulted.len());
    let _ = writeln!(s, "    \"cells_exhausted\": {exhausted},");
    let _ = writeln!(s, "    \"cells_swapped_tx_pages\": {swapped},");
    let fx: u64 = faulted.iter().map(|r| r.frame_exhaustions).sum();
    let tx: u64 = faulted.iter().map(|r| r.tav_exhaustions).sum();
    let ea: u64 = faulted.iter().map(|r| r.exhaustion_aborts).sum();
    let er: u64 = faulted.iter().map(|r| r.exhaustion_retries).sum();
    let so: u64 = faulted.iter().map(|r| r.tx_swap_outs).sum();
    let si: u64 = faulted.iter().map(|r| r.tx_swap_ins).sum();
    let _ = writeln!(s, "    \"frame_exhaustions\": {fx},");
    let _ = writeln!(s, "    \"tav_exhaustions\": {tx},");
    let _ = writeln!(s, "    \"exhaustion_aborts\": {ea},");
    let _ = writeln!(s, "    \"exhaustion_retries\": {er},");
    let _ = writeln!(s, "    \"tx_swap_outs\": {so},");
    let _ = writeln!(s, "    \"tx_swap_ins\": {si}");
    let _ = writeln!(s, "  }}");
    s.push_str("}\n");
    s
}
