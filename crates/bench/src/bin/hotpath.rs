//! The hot-path harness: runs every independent `(workload, system)` cell
//! of the table1/fig4/fig5/ablation binaries twice — once sequentially,
//! once fanned across host threads — asserts the two passes produce
//! bit-identical simulated results, and emits `BENCH_hotpath.json` with
//! per-cell wall-clocks plus the TLB and conflict-filter counters the
//! hot-path work introduced.
//!
//! ```text
//! cargo run -p ptm-bench --release --bin hotpath
//! PTM_SCALE=tiny PTM_WORKERS=4 cargo run -p ptm-bench --release --bin hotpath
//! PTM_BENCH_OUT=/tmp/x.json cargo run -p ptm-bench --release --bin hotpath
//! ```

use ptm_bench::history::{prior_entries, render_history_or_die, HistoryEntry};
use ptm_bench::parallel::{
    assert_cells_match, cells_from_env, projected_makespan, run_cells_parallel,
    run_cells_sequential, workers_from_env, CellResult,
};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let (scale, specs) = cells_from_env();
    let workers = workers_from_env();
    let host_cores = ptm_bench::meta::host_cores();
    eprintln!(
        "hotpath: {} cells at {scale:?}, {workers} worker(s), {host_cores} host core(s)",
        specs.len()
    );

    let t0 = Instant::now();
    let seq = run_cells_sequential(&specs);
    let seq_wall = t0.elapsed().as_nanos() as u64;

    let t1 = Instant::now();
    let par = run_cells_parallel(&specs, workers);
    let par_wall = t1.elapsed().as_nanos() as u64;

    assert_cells_match(&seq, &par);
    eprintln!(
        "hotpath: parallel pass matched sequential pass on all {} cells",
        seq.len()
    );

    let walls: Vec<u64> = seq.iter().map(|c| c.wall_ns).collect();
    let projected_4 = projected_makespan(&walls, 4);
    let out = std::env::var("PTM_BENCH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".to_string());

    // The history trajectory: append this run to the entries of the prior
    // report. `PTM_BENCH_HISTORY` overrides where the prior entries come
    // from (default: the output file, falling back to the committed report);
    // `PTM_BENCH_HISTORY=none` starts a fresh trajectory.
    let prior = match std::env::var("PTM_BENCH_HISTORY").as_deref() {
        Ok("none") => Vec::new(),
        Ok(path) => prior_entries(&std::fs::read_to_string(path).unwrap_or_default()),
        Err(_) => {
            let from_out = std::fs::read_to_string(&out).unwrap_or_default();
            let text = if prior_entries(&from_out).is_empty() {
                std::fs::read_to_string("BENCH_hotpath.json").unwrap_or_default()
            } else {
                from_out
            };
            prior_entries(&text)
        }
    };
    let entry = HistoryEntry {
        git_rev: ptm_bench::meta::git_rev(),
        rustc: ptm_bench::meta::rustc_version().to_string(),
        host_cores,
        scale: format!("{scale:?}"),
        workers,
        cells: seq.len(),
        total_cycles: seq.iter().map(|c| c.cycles).sum(),
        seq_wall_ns: seq_wall,
        // The hotpath trajectory gates the sequential cycle loop; the
        // parallel-pass trajectory lives in BENCH_parallel_sim.json.
        parallel_wall_ns: None,
        spec_commit_fraction: None,
        force_policy: None,
    };

    let json = render_json(
        scale,
        workers,
        host_cores,
        &seq,
        &par,
        seq_wall,
        par_wall,
        projected_4,
        &render_history_or_die("hotpath", &prior, &entry),
    );
    std::fs::write(&out, json).expect("write benchmark report");

    let speedup = seq_wall as f64 / par_wall.max(1) as f64;
    let proj = seq_wall as f64 / projected_4.max(1) as f64;
    let fast: u64 = seq.iter().map(|c| c.conflict_checks_fast).sum();
    let slow: u64 = seq.iter().map(|c| c.conflict_checks_slow).sum();
    let hits: u64 = seq.iter().map(|c| c.tlb_hits).sum();
    let misses: u64 = seq.iter().map(|c| c.tlb_misses).sum();
    eprintln!(
        "hotpath: seq {:.2}s, par {:.2}s ({speedup:.2}x measured on {host_cores} core(s); \
         {proj:.2}x projected makespan at 4 workers)",
        seq_wall as f64 / 1e9,
        par_wall as f64 / 1e9,
    );
    eprintln!(
        "hotpath: conflict checks {fast} fast / {slow} slow ({:.1}% summary-filtered), \
         core TLB {hits}/{misses} ({:.1}% hit)",
        100.0 * fast as f64 / (fast + slow).max(1) as f64,
        100.0 * hits as f64 / (hits + misses).max(1) as f64,
    );
    eprintln!("hotpath: wrote {out}");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: ptm_workloads::Scale,
    workers: usize,
    host_cores: usize,
    seq: &[CellResult],
    par: &[CellResult],
    seq_wall: u64,
    par_wall: u64,
    projected_4: u64,
    history_block: &str,
) -> String {
    let mut s = String::new();
    let fast: u64 = seq.iter().map(|c| c.conflict_checks_fast).sum();
    let slow: u64 = seq.iter().map(|c| c.conflict_checks_slow).sum();
    let hits: u64 = seq.iter().map(|c| c.tlb_hits).sum();
    let misses: u64 = seq.iter().map(|c| c.tlb_misses).sum();
    let shoot: u64 = seq.iter().map(|c| c.tlb_shootdowns).sum();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"workers\": {workers},");
    let _ = writeln!(s, "  \"host_cores\": {host_cores},");
    let _ = writeln!(s, "  \"git_rev\": \"{}\",", ptm_bench::meta::git_rev());
    let _ = writeln!(s, "  \"rustc\": \"{}\",", ptm_bench::meta::rustc_version());
    s.push_str(history_block);
    let _ = writeln!(s, "  \"cells\": [");
    for (i, (a, b)) in seq.iter().zip(par).enumerate() {
        let comma = if i + 1 == seq.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"family\": \"{}\", \"workload\": \"{}\", \"system\": \"{}\", \
             \"cycles\": {}, \"commits\": {}, \"aborts\": {}, \
             \"wall_seq_ns\": {}, \"wall_par_ns\": {}, \
             \"tlb_hits\": {}, \"tlb_misses\": {}, \"tlb_shootdowns\": {}, \
             \"conflict_checks_fast\": {}, \"conflict_checks_slow\": {}, \
             \"checksums_match\": {}}}{comma}",
            a.spec.family,
            a.spec.workload.name(),
            a.spec.kind.label(),
            a.cycles,
            a.commits,
            a.aborts,
            a.wall_ns,
            b.wall_ns,
            a.tlb_hits,
            a.tlb_misses,
            a.tlb_shootdowns,
            a.conflict_checks_fast,
            a.conflict_checks_slow,
            a.checksums == b.checksums,
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"totals\": {{");
    let _ = writeln!(s, "    \"seq_wall_ns\": {seq_wall},");
    let _ = writeln!(s, "    \"par_wall_ns\": {par_wall},");
    let _ = writeln!(
        s,
        "    \"measured_speedup\": {:.3},",
        seq_wall as f64 / par_wall.max(1) as f64
    );
    let _ = writeln!(s, "    \"projected_makespan_4workers_ns\": {projected_4},");
    let _ = writeln!(
        s,
        "    \"projected_speedup_4workers\": {:.3},",
        seq_wall as f64 / projected_4.max(1) as f64
    );
    let _ = writeln!(s, "    \"tlb_hits\": {hits},");
    let _ = writeln!(s, "    \"tlb_misses\": {misses},");
    let _ = writeln!(s, "    \"tlb_shootdowns\": {shoot},");
    let _ = writeln!(s, "    \"conflict_checks_fast\": {fast},");
    let _ = writeln!(s, "    \"conflict_checks_slow\": {slow},");
    let _ = writeln!(
        s,
        "    \"conflict_fast_fraction\": {:.4}",
        fast as f64 / (fast + slow).max(1) as f64
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"checksums_match\": true");
    s.push_str("}\n");
    s
}
