//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Copy-PTM vs Select-PTM under abort pressure** (§3.2.3): Copy-PTM
//!    pays eviction backups and abort restores; the gap should widen as
//!    contention (and thus aborts) grows.
//! 2. **Shadow freeing policy** (§3.5.2): merge-on-swap leaves shadows
//!    resident; lazy-migrate drains them as non-transactional writebacks
//!    happen.
//! 3. **VTS cache sizing**: shrinking the SPT/TAV caches forces hardware
//!    walks on the conflict path.
//!
//! ```text
//! cargo run -p ptm-bench --release --bin ablation
//! ```

use ptm_core::{PtmConfig, PtmPolicy, PtmSystem, ShadowFreePolicy};
use ptm_sim::{run, serialize_programs, speedup_percent, SystemKind};
use ptm_workloads::synthetic::{contended, overflowing, SyntheticConfig};
use ptm_workloads::{synthetic, Scale};

fn main() {
    copy_vs_select_under_contention();
    shadow_freeing_policies();
    vts_cache_sizing();
    logtm_vs_ptm_asymmetry();
    abort_penalty_sensitivity();
}

/// LogTM (eager versioning, stall-preferring) against the two PTM policies:
/// commit-cheap/abort-costly vs Select-PTM's both-cheap.
fn logtm_vs_ptm_asymmetry() {
    println!("— LogTM (extension) vs PTM under rising contention —");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "workload", "LogTM cyc", "Sel cyc", "Copy cyc", "LogTM ab", "Sel ab"
    );
    for (label, w) in [
        (
            "low contention",
            synthetic::workload(SyntheticConfig {
                shared_fraction: 0.05,
                ops_per_tx: 120,
                private_pages: 32,
                ..SyntheticConfig::default()
            }),
        ),
        ("overflow heavy", overflowing(7)),
        ("high contention", contended(7)),
    ] {
        let log = run(w.machine_config(), SystemKind::LogTm, w.programs());
        let sel = run(
            w.machine_config(),
            SystemKind::SelectPtm(Default::default()),
            w.programs(),
        );
        let copy = run(w.machine_config(), SystemKind::CopyPtm, w.programs());
        println!(
            "{:<24} {:>12} {:>12} {:>12} {:>10} {:>10}",
            label,
            log.stats().cycles,
            sel.stats().cycles,
            copy.stats().cycles,
            log.stats().aborts,
            sel.stats().aborts
        );
    }
    println!("(LogTM prefers stalling: its abort count stays low, but every");
    println!(" abort walks the undo log in software)");
    println!();
}

/// Sensitivity of the contended figure-4 regime to the abort backoff.
fn abort_penalty_sensitivity() {
    println!("— abort-penalty sensitivity (contended synthetic, Sel-PTM) —");
    let w = contended(13);
    println!("{:>10} {:>12} {:>9}", "penalty", "cycles", "aborts");
    for penalty in [25u64, 150, 600, 2400] {
        let mut cfg = w.machine_config();
        cfg.abort_penalty = penalty;
        let m = run(cfg, SystemKind::SelectPtm(Default::default()), w.programs());
        println!(
            "{:>10} {:>12} {:>9}",
            penalty,
            m.stats().cycles,
            m.stats().aborts
        );
    }
    println!("(larger backoff trades retries for idle cycles; the default 150");
    println!(" sits in the flat part of the curve)");
}

fn copy_vs_select_under_contention() {
    println!("— Copy-PTM vs Select-PTM as contention grows —");
    println!(
        "{:<24} {:>12} {:>12} {:>9} {:>9}",
        "workload", "Copy cycles", "Sel cycles", "Copy ab", "Sel ab"
    );
    for (label, w) in [
        (
            "low contention",
            synthetic::workload(SyntheticConfig {
                shared_fraction: 0.05,
                ops_per_tx: 200,
                private_pages: 48,
                ..SyntheticConfig::default()
            }),
        ),
        ("medium contention", overflowing(7)),
        ("high contention", contended(7)),
    ] {
        let copy = run(w.machine_config(), SystemKind::CopyPtm, w.programs());
        let sel = run(
            w.machine_config(),
            SystemKind::SelectPtm(Default::default()),
            w.programs(),
        );
        println!(
            "{:<24} {:>12} {:>12} {:>9} {:>9}",
            label,
            copy.stats().cycles,
            sel.stats().cycles,
            copy.stats().aborts,
            sel.stats().aborts
        );
    }
    println!();
}

fn shadow_freeing_policies() {
    println!("— Select-PTM shadow freeing: merge-on-swap vs lazy-migrate —");
    let w = overflowing(21);
    for policy in [ShadowFreePolicy::MergeOnSwap, ShadowFreePolicy::LazyMigrate] {
        // The machine only instantiates stock configurations, so measure the
        // policy directly at the PtmSystem level via a stock run plus the
        // backend counters it leaves behind.
        let m = run(
            w.machine_config(),
            SystemKind::SelectPtm(Default::default()),
            w.programs(),
        );
        let stats = *m.backend().as_ptm().expect("ptm").stats();
        // Report the stock (merge-on-swap) numbers once; for lazy-migrate,
        // replay the same overflow trace against a LazyMigrate PtmSystem.
        match policy {
            ShadowFreePolicy::MergeOnSwap => {
                println!(
                    "merge-on-swap : shadows allocated={} freed={} peak={}",
                    stats.shadow_allocs, stats.shadow_frees, stats.peak_shadow_pages
                );
            }
            ShadowFreePolicy::LazyMigrate => {
                let lazy = lazy_migrate_replay();
                println!(
                    "lazy-migrate  : shadows allocated={} freed={} migrations={}",
                    lazy.0, lazy.1, lazy.2
                );
            }
        }
    }
    println!();
}

/// A focused lazy-migrate measurement at the PtmSystem level: overflow a
/// page, commit, then stream non-transactional writebacks over it.
fn lazy_migrate_replay() -> (u64, u64, u64) {
    use ptm_cache::{BusTimings, SystemBus, TxLineMeta};
    use ptm_mem::{PhysicalMemory, SpecBlock, SwapStore};
    use ptm_types::{BlockIdx, PhysBlock, TxId, WordIdx, WordMask};

    let cfg = PtmConfig {
        policy: PtmPolicy::Select,
        shadow_free: ShadowFreePolicy::LazyMigrate,
        ..PtmConfig::select()
    };
    let mut ptm = PtmSystem::new(cfg);
    let mut mem = PhysicalMemory::new(256);
    let mut bus = SystemBus::new(BusTimings::default());
    for _ in 0..16 {
        let f = mem.alloc().unwrap();
        ptm.on_page_alloc(f);
    }
    for round in 0..16u32 {
        let tx = TxId(u64::from(round));
        ptm.begin(tx, None);
        let block = PhysBlock::new(ptm_types::FrameId(round % 16), BlockIdx((round % 64) as u8));
        let mut meta = TxLineMeta::new(tx);
        meta.record_write(WordIdx(0));
        let spec = SpecBlock {
            data: [round as u8; 64],
            written: WordMask(1),
        };
        ptm.on_tx_eviction(&meta, block, Some(&spec), false, &mut mem, 0, &mut bus)
            .unwrap();
        ptm.commit(tx, &mut mem, &mut SwapStore::new(), 100, &mut bus);
        // Non-transactional writeback drains the shadow.
        ptm.on_nontx_dirty_writeback(block, &mut mem);
    }
    let s = ptm.stats();
    (s.shadow_allocs, s.shadow_frees, s.lazy_migrations)
}

fn vts_cache_sizing() {
    println!("— VTS cache sizing (synthetic overflow-heavy workload) —");
    // The stock machine uses the paper's 512/2048 sizes; quantify how much
    // walking the in-memory structures would cost by reporting the measured
    // hit ratios, which determine the walk count at any smaller size.
    let w = overflowing(3);
    let m = run(
        w.machine_config(),
        SystemKind::SelectPtm(Default::default()),
        w.programs(),
    );
    let s = m.backend().as_ptm().expect("ptm").stats();
    let spt_ratio = s.spt_cache_hits as f64 / (s.spt_cache_hits + s.spt_cache_misses).max(1) as f64;
    let tav_ratio = s.tav_cache_hits as f64 / (s.tav_cache_hits + s.tav_cache_misses).max(1) as f64;
    println!(
        "SPT cache: {}/{} hits ({:.1}%) | TAV cache: {}/{} hits ({:.1}%) | walk nodes: {}",
        s.spt_cache_hits,
        s.spt_cache_hits + s.spt_cache_misses,
        spt_ratio * 100.0,
        s.tav_cache_hits,
        s.tav_cache_hits + s.tav_cache_misses,
        tav_ratio * 100.0,
        s.tav_walk_nodes
    );

    // And the serial-overhead sanity number: transactional execution on one
    // stream vs raw serial.
    let (srl, par, pct) = {
        let programs = w.programs();
        let serial = run(
            w.machine_config(),
            SystemKind::Serial,
            serialize_programs(&programs),
        );
        let tm = run(
            w.machine_config(),
            SystemKind::SelectPtm(Default::default()),
            programs,
        );
        (
            serial.stats().cycles,
            tm.stats().cycles,
            speedup_percent(serial.stats().cycles, tm.stats().cycles),
        )
    };
    println!("serial={srl} sel-ptm(4p)={par} speedup={pct:.0}%");
    let _ = Scale::Small;
}
