//! PTM-as-a-service throughput sweep: sustained tx/s across Zipfian skew
//! {0.6, 0.9, 1.2} × shards {1, 2, 4} × strategy {sequential, parallel,
//! validate-only}, asserting on every cell that the Sequential and
//! Parallel passes produce bit-identical receipts. Emits
//! `BENCH_service.json` on the same history-trajectory scheme as the
//! other bench binaries (see `bench_gate`).
//!
//! ```text
//! cargo run -p ptm-bench --release --bin service
//! PTM_SCALE=tiny cargo run -p ptm-bench --release --bin service
//! PTM_BENCH_OUT=/tmp/x.json cargo run -p ptm-bench --release --bin service
//! ```

use ptm_bench::history::{prior_entries, render_history_or_die, HistoryEntry};
use ptm_bench::service::{run_sweep, ServiceCell, SHARDS, SKEWS};
use ptm_bench::{scale_from_env, service::stream_config};
use std::fmt::Write as _;

/// Admission batch size of the sweep.
const MAX_BATCH: usize = 256;

fn main() {
    let scale = scale_from_env();
    let host_cores = ptm_bench::meta::host_cores();
    let wcfg = stream_config(scale, SKEWS[0]);
    eprintln!(
        "service: {} skews x {} shard counts at {scale:?} ({} accounts, {} txs/stream, batch {MAX_BATCH}), {host_cores} host core(s)",
        SKEWS.len(),
        SHARDS.len(),
        wcfg.accounts,
        wcfg.txs,
    );

    let cells = run_sweep(scale, MAX_BATCH);
    eprintln!(
        "service: sequential and parallel receipts bit-identical on all {} cells",
        cells.len()
    );

    let out = std::env::var("PTM_BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());
    let prior = match std::env::var("PTM_BENCH_HISTORY").as_deref() {
        Ok("none") => Vec::new(),
        Ok(path) => prior_entries(&std::fs::read_to_string(path).unwrap_or_default()),
        Err(_) => {
            let from_out = std::fs::read_to_string(&out).unwrap_or_default();
            let text = if prior_entries(&from_out).is_empty() {
                std::fs::read_to_string("BENCH_service.json").unwrap_or_default()
            } else {
                from_out
            };
            prior_entries(&text)
        }
    };

    // The trajectory gates the sequential strategy (index 0): simulated
    // cycles advanced per wall second of the sequential pass, the same
    // throughput metric as the hotpath trajectory.
    let seq_wall: u64 = cells.iter().map(|c| c.strategies[0].wall_ns).sum();
    let par_wall: u64 = cells.iter().map(|c| c.strategies[1].wall_ns).sum();
    let total_cycles: u64 = cells.iter().map(|c| c.strategies[0].shard_cycles).sum();
    let entry = HistoryEntry {
        git_rev: ptm_bench::meta::git_rev(),
        rustc: ptm_bench::meta::rustc_version().to_string(),
        host_cores,
        scale: format!("{scale:?}"),
        workers: 2,
        cells: cells.len(),
        total_cycles,
        seq_wall_ns: seq_wall,
        parallel_wall_ns: Some(par_wall),
        spec_commit_fraction: None,
        force_policy: None,
    };

    let json = render_json(
        scale,
        host_cores,
        &cells,
        &render_history_or_die("service", &prior, &entry),
    );
    std::fs::write(&out, json).expect("write benchmark report");

    for c in &cells {
        let seq = &c.strategies[0];
        let par = &c.strategies[1];
        eprintln!(
            "service: skew {:.1} x {} shard(s): seq {:>9.0} tx/s, par {:>9.0} tx/s, \
             abort rate {:.3}, shard skew {:.2}, {} cross-shard, {} ro-fast-path",
            c.skew,
            c.shards,
            seq.tx_per_sec,
            par.tx_per_sec,
            seq.abort_rate,
            c.shard_skew,
            c.cross_shard,
            c.read_only_hits,
        );
    }
    eprintln!("service: wrote {out}");
}

fn render_json(
    scale: ptm_workloads::Scale,
    host_cores: usize,
    cells: &[ServiceCell],
    history_block: &str,
) -> String {
    let wcfg = stream_config(scale, SKEWS[0]);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"host_cores\": {host_cores},");
    let _ = writeln!(s, "  \"git_rev\": \"{}\",", ptm_bench::meta::git_rev());
    let _ = writeln!(s, "  \"rustc\": \"{}\",", ptm_bench::meta::rustc_version());
    let _ = writeln!(s, "  \"accounts\": {},", wcfg.accounts);
    let _ = writeln!(s, "  \"txs_per_stream\": {},", wcfg.txs);
    let _ = writeln!(s, "  \"read_only_pct\": {},", wcfg.read_only_pct);
    let _ = writeln!(s, "  \"max_batch\": {MAX_BATCH},");
    s.push_str(history_block);
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"skew\": {:.1},", c.skew);
        let _ = writeln!(s, "      \"shards\": {},", c.shards);
        let _ = writeln!(s, "      \"txs\": {},", c.txs);
        let _ = writeln!(s, "      \"blocks\": {},", c.blocks);
        let _ = writeln!(s, "      \"cross_shard\": {},", c.cross_shard);
        let _ = writeln!(
            s,
            "      \"read_only_fastpath_hits\": {},",
            c.read_only_hits
        );
        let _ = writeln!(s, "      \"shard_skew\": {:.4},", c.shard_skew);
        let _ = writeln!(s, "      \"receipts_match\": true,");
        let _ = writeln!(s, "      \"strategies\": [");
        for (j, r) in c.strategies.iter().enumerate() {
            let comma = if j + 1 == c.strategies.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "        {{\"strategy\": \"{}\", \"wall_ns\": {}, \"tx_per_sec\": {:.1}, \
                 \"commits\": {}, \"aborts\": {}, \"abort_rate\": {:.4}, \
                 \"shard_cycles\": {}}}{comma}",
                r.strategy,
                r.wall_ns,
                r.tx_per_sec,
                r.commits,
                r.aborts,
                r.abort_rate,
                r.shard_cycles,
            );
        }
        let _ = writeln!(s, "      ]");
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let seq_wall: u64 = cells.iter().map(|c| c.strategies[0].wall_ns).sum();
    let par_wall: u64 = cells.iter().map(|c| c.strategies[1].wall_ns).sum();
    let txs: usize = cells.iter().map(|c| c.txs).sum();
    let _ = writeln!(s, "  \"totals\": {{");
    let _ = writeln!(s, "    \"seq_wall_ns\": {seq_wall},");
    let _ = writeln!(s, "    \"par_wall_ns\": {par_wall},");
    let _ = writeln!(
        s,
        "    \"seq_tx_per_sec\": {:.1},",
        txs as f64 / (seq_wall as f64 / 1e9).max(1e-9)
    );
    let _ = writeln!(
        s,
        "    \"par_tx_per_sec\": {:.1}",
        txs as f64 / (par_wall as f64 / 1e9).max(1e-9)
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"receipts_match\": true");
    s.push_str("}\n");
    s
}
