//! The durable-PTM crash sweep: attaches the write-behind log device to
//! every PTM cell, crosses crash-at-every-Kth-step (clean and torn) with
//! each log-force policy and each fault-plan seed, recovers, and asserts
//! the committed-prefix oracle, recovery idempotence and the log integrity
//! invariants (no phantom commits, no undo-replay mismatches, no missing
//! commit records under eager forcing, appends bounded by the retry
//! budget). Emits `BENCH_durable.json` with per-policy commit-latency
//! numbers, recovery-time-vs-log-size curves and the fault counters.
//!
//! ```text
//! cargo run -p ptm-bench --release --bin durable
//! PTM_SCALE=tiny cargo run -p ptm-bench --release --bin durable
//! PTM_FORCE_POLICY=group:8 PTM_LOG_FAULT_SEED=0x2a PTM_DURABLE_K=50 \
//!     cargo run -p ptm-bench --release --bin durable
//! ```

use ptm_bench::durable::{
    durable_cells, fault_seeds_from_env, force_policies_from_env, sweep_durable_cell,
    DurableCellReport,
};
use ptm_bench::history::{prior_entries, render_history_or_die, HistoryEntry};
use ptm_bench::scale_from_env;
use ptm_core::durability::ForcePolicy;
use ptm_types::rng::SplitMix64;
use std::fmt::Write as _;
use std::time::Instant;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

fn main() {
    let scale = scale_from_env();
    let stride = env_u64("PTM_DURABLE_K");
    let policies = force_policies_from_env();
    // Seed 0 (the fault-free device) always runs; the fault seeds cover
    // every injection kind by construction.
    let mut seeds = vec![0u64];
    seeds.extend(fault_seeds_from_env());
    let filtered =
        std::env::var("PTM_FORCE_POLICY").is_ok() || std::env::var("PTM_LOG_FAULT_SEED").is_ok();
    let cells = durable_cells(scale);
    eprintln!(
        "durable: {} cells x {} policies x {} seeds at {scale:?}, K={}",
        cells.len(),
        policies.len(),
        seeds.len(),
        stride.map_or("auto".to_string(), |k| k.to_string()),
    );

    let wall = Instant::now();
    let mut reports: Vec<DurableCellReport> = Vec::new();
    for spec in &cells {
        for &policy in &policies {
            for &seed in &seeds {
                let r = sweep_durable_cell(spec, policy, seed, stride);
                eprintln!(
                    "durable: {}/{} {} seed {:#x} — {} points ({} torn), \
                     {} commit records, avg commit latency {:.1} cyc, \
                     worst append attempts {}",
                    r.spec.workload.name(),
                    r.spec.kind.label(),
                    r.policy,
                    r.fault_seed,
                    r.points,
                    r.torn_points,
                    r.run_commit_records,
                    r.avg_commit_latency(),
                    r.max_append_attempts,
                );
                reports.push(r);
            }
        }
    }
    let seq_wall_ns = wall.elapsed().as_nanos() as u64;

    for r in &reports {
        let ctx = format!(
            "{}/{} {} seed {:#x}",
            r.spec.workload.name(),
            r.spec.kind.label(),
            r.policy,
            r.fault_seed
        );
        assert_eq!(
            r.mismatches, 0,
            "{ctx}: recovered memory diverged from the committed-prefix oracle"
        );
        assert_eq!(r.non_idempotent, 0, "{ctx}: recovery was not idempotent");
        assert_eq!(
            r.phantom_commits, 0,
            "{ctx}: the log holds commit records for transactions that never committed"
        );
        assert_eq!(
            r.replay_mismatches, 0,
            "{ctx}: a live transaction's undo pre-image contradicts recovered memory"
        );
        if r.policy == ForcePolicy::Eager {
            assert_eq!(
                r.commits_missing, 0,
                "{ctx}: eager forcing must persist every commit record"
            );
        }
    }

    // Coverage: with the default seed set, every fault kind must actually
    // fire somewhere and every torn-tail path must actually run. A
    // filtered run (single policy / single seed) exercises whatever the
    // knobs picked and skips the whole-matrix claims.
    if !filtered {
        let sum = |f: fn(&DurableCellReport) -> u64| reports.iter().map(f).sum::<u64>();
        assert!(
            sum(|r| r.run_transient_errors) > 0,
            "no transient append error ever fired across the sweep"
        );
        assert!(
            sum(|r| r.run_stall_events) > 0,
            "no full-device stall ever fired across the sweep"
        );
        assert!(
            sum(|r| r.run_throttle_events) > 0,
            "stalls never throttled a commit — the degradation path is untested"
        );
        assert!(
            sum(|r| r.run_reordered_completions) > 0,
            "no flush completion was ever reordered across the sweep"
        );
        assert!(
            sum(|r| r.torn_appends + r.lost_appends) > 0,
            "no in-flight append was ever torn or lost at a crash"
        );
        assert!(
            sum(|r| r.records_discarded) > 0,
            "the bounded tail scan never discarded a record — torn tails untested"
        );
        assert!(
            sum(|r| r.replay_verified) > 0,
            "no live transaction's undo pre-image was ever verified"
        );
    }
    let worst_attempts = reports
        .iter()
        .map(|r| r.max_append_attempts)
        .max()
        .unwrap_or(0);
    let points: u64 = reports.iter().map(|r| r.points).sum();
    eprintln!(
        "durable: all {} sweeps clean — {points} crash points, worst append attempts {worst_attempts}",
        reports.len()
    );

    let policy_label = match &policies[..] {
        [one] => one.label(),
        _ => "mixed".to_string(),
    };
    let out = std::env::var("PTM_BENCH_OUT").unwrap_or_else(|_| "BENCH_durable.json".to_string());
    let prior = match std::env::var("PTM_BENCH_HISTORY").as_deref() {
        Ok("none") => Vec::new(),
        Ok(path) => prior_entries(&std::fs::read_to_string(path).unwrap_or_default()),
        Err(_) => {
            let from_out = std::fs::read_to_string(&out).unwrap_or_default();
            let text = if prior_entries(&from_out).is_empty() {
                std::fs::read_to_string("BENCH_durable.json").unwrap_or_default()
            } else {
                from_out
            };
            prior_entries(&text)
        }
    };
    let entry = HistoryEntry {
        git_rev: ptm_bench::meta::git_rev(),
        rustc: ptm_bench::meta::rustc_version().to_string(),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        scale: format!("{scale:?}"),
        workers: 1,
        cells: reports.len(),
        total_cycles: reports.iter().map(|r| r.probe_cycles).sum(),
        seq_wall_ns,
        parallel_wall_ns: None,
        spec_commit_fraction: None,
        force_policy: Some(policy_label.clone()),
    };

    let json = render_json(
        scale,
        stride,
        &policy_label,
        &seeds,
        &reports,
        &render_history_or_die("durable", &prior, &entry),
    );
    std::fs::write(&out, json).expect("write benchmark report");
    eprintln!("durable: wrote {out}");
}

fn render_json(
    scale: ptm_workloads::Scale,
    stride: Option<u64>,
    policy_label: &str,
    seeds: &[u64],
    reports: &[DurableCellReport],
    history: &str,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&ptm_bench::meta::json_fields());
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"force_policy\": \"{policy_label}\",");
    let _ = writeln!(
        s,
        "  \"stride\": {},",
        stride.map_or("\"auto\"".to_string(), |k| k.to_string())
    );
    let seed_list: Vec<String> = seeds.iter().map(|x| x.to_string()).collect();
    let _ = writeln!(s, "  \"fault_seeds\": [{}],", seed_list.join(", "));
    let _ = writeln!(
        s,
        "  \"fault_seed_classes\": [{}],",
        seeds
            .iter()
            .map(|x| if *x == 0 {
                "\"none\"".to_string()
            } else {
                let c = SplitMix64::new(*x).next_u64() % 4;
                format!(
                    "\"{}\"",
                    ["transient", "stall", "reorder", "torn"][c as usize]
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    s.push_str(history);
    let _ = writeln!(s, "  \"cells\": [");
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 == reports.len() { "" } else { "," };
        let curve: Vec<String> = r
            .curve
            .iter()
            .map(|p| {
                format!(
                    "[{}, {}, {}, {}]",
                    p.step, p.log_bytes, p.records, p.recovery_ns
                )
            })
            .collect();
        let _ = writeln!(
            s,
            "    {{\"family\": \"{}\", \"workload\": \"{}\", \"system\": \"{}\", \
             \"policy\": \"{}\", \"fault_seed\": {}, \
             \"total_steps\": {}, \"cycles\": {}, \"stride\": {}, \"points\": {}, \
             \"torn_points\": {}, \"oracle_mismatches\": {}, \"non_idempotent\": {}, \
             \"phantom_commits\": {}, \"replay_mismatches\": {}, \"replay_verified\": {}, \
             \"commits_missing\": {}, \"records_discarded\": {}, \
             \"checksum_mismatches\": {}, \"bytes_truncated\": {}, \
             \"commit_records\": {}, \"abort_records\": {}, \"undo_records\": {}, \
             \"redo_records\": {}, \"torn_appends\": {}, \"lost_appends\": {}, \
             \"early_appends\": {}, \"run_commits\": {}, \"run_commit_records\": {}, \
             \"run_ro_fastpath\": {}, \"run_forces\": {}, \
             \"run_commit_latency_cycles\": {}, \"avg_commit_latency\": {:.2}, \
             \"run_log_retries\": {}, \"run_backoff_cycles\": {}, \
             \"run_throttle_events\": {}, \"run_throttle_cycles\": {}, \
             \"max_append_attempts\": {}, \"run_transient_errors\": {}, \
             \"run_stall_events\": {}, \"run_reordered_completions\": {}, \
             \"run_bytes_appended\": {}, \
             \"curve_step_logbytes_records_recns\": [{}], \
             \"plan_digest\": {}, \"wall_ns\": {}}}{comma}",
            r.spec.family,
            r.spec.workload.name(),
            r.spec.kind.label(),
            r.policy,
            r.fault_seed,
            r.total_steps,
            r.probe_cycles,
            r.stride,
            r.points,
            r.torn_points,
            r.mismatches,
            r.non_idempotent,
            r.phantom_commits,
            r.replay_mismatches,
            r.replay_verified,
            r.commits_missing,
            r.records_discarded,
            r.checksum_mismatches,
            r.bytes_truncated,
            r.commit_records,
            r.abort_records,
            r.undo_records,
            r.redo_records,
            r.torn_appends,
            r.lost_appends,
            r.early_appends,
            r.run_commits,
            r.run_commit_records,
            r.run_ro_fastpath,
            r.run_forces,
            r.run_commit_latency_cycles,
            r.avg_commit_latency(),
            r.run_log_retries,
            r.run_backoff_cycles,
            r.run_throttle_events,
            r.run_throttle_cycles,
            r.max_append_attempts,
            r.run_transient_errors,
            r.run_stall_events,
            r.run_reordered_completions,
            r.run_bytes_appended,
            curve.join(", "),
            r.plan_digest,
            r.wall_ns,
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"totals\": {{");
    let _ = writeln!(s, "    \"sweeps\": {},", reports.len());
    let sum = |f: fn(&DurableCellReport) -> u64| reports.iter().map(f).sum::<u64>();
    let _ = writeln!(s, "    \"points\": {},", sum(|r| r.points));
    let _ = writeln!(s, "    \"torn_points\": {},", sum(|r| r.torn_points));
    let _ = writeln!(s, "    \"commit_records\": {},", sum(|r| r.commit_records));
    let _ = writeln!(
        s,
        "    \"records_discarded\": {},",
        sum(|r| r.records_discarded)
    );
    let _ = writeln!(
        s,
        "    \"checksum_mismatches\": {},",
        sum(|r| r.checksum_mismatches)
    );
    let _ = writeln!(
        s,
        "    \"commits_missing\": {},",
        sum(|r| r.commits_missing)
    );
    let _ = writeln!(
        s,
        "    \"replay_verified\": {},",
        sum(|r| r.replay_verified)
    );
    let _ = writeln!(
        s,
        "    \"transient_errors\": {},",
        sum(|r| r.run_transient_errors)
    );
    let _ = writeln!(s, "    \"stall_events\": {},", sum(|r| r.run_stall_events));
    let _ = writeln!(
        s,
        "    \"throttle_events\": {},",
        sum(|r| r.run_throttle_events)
    );
    let _ = writeln!(
        s,
        "    \"reordered_completions\": {},",
        sum(|r| r.run_reordered_completions)
    );
    let _ = writeln!(
        s,
        "    \"torn_or_lost_appends\": {},",
        sum(|r| r.torn_appends + r.lost_appends)
    );
    let worst = reports
        .iter()
        .map(|r| r.max_append_attempts)
        .max()
        .unwrap_or(0);
    let _ = writeln!(s, "    \"max_append_attempts\": {worst},");
    let _ = writeln!(s, "    \"oracle_mismatches\": 0,");
    let _ = writeln!(s, "    \"non_idempotent\": 0,");
    let _ = writeln!(s, "    \"phantom_commits\": 0,");
    let _ = writeln!(s, "    \"replay_mismatches\": 0");
    let _ = writeln!(s, "  }}");
    s.push_str("}\n");
    s
}
