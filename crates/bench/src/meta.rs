//! Provenance metadata for benchmark reports.
//!
//! Every `BENCH_*.json` records which commit, compiler and host produced its
//! numbers, so a regression surfaced later can be traced to the build that
//! introduced it — and so the bench-history gate can refuse to compare
//! wall-clocks measured on different hosts.

use std::process::Command;

/// The `rustc --version` string the benchmark binary was compiled with
/// (captured by the build script, not probed at run time).
pub fn rustc_version() -> &'static str {
    env!("PTM_RUSTC_VERSION")
}

/// The short git revision of the working tree, with `-dirty` appended when
/// uncommitted changes are present; `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    let rev = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string());
    let Some(rev) = rev else {
        return "unknown".to_string();
    };
    let dirty = Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

/// Number of host cores visible to this process.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The common provenance keys, rendered as JSON lines for the top of a
/// report object (two-space indent, trailing comma on every line).
pub fn json_fields() -> String {
    format!(
        "  \"git_rev\": \"{}\",\n  \"rustc\": \"{}\",\n  \"host_cores\": {},\n",
        git_rev(),
        rustc_version(),
        host_cores(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rustc_version_is_baked_in() {
        assert!(rustc_version().starts_with("rustc"), "{}", rustc_version());
    }

    #[test]
    fn json_fields_are_well_formed() {
        let f = json_fields();
        assert!(f.contains("\"git_rev\": \""));
        assert!(f.contains("\"rustc\": \"rustc"));
        assert!(f.contains("\"host_cores\": "));
        // Must parse when wrapped in an object with a terminal key.
        let obj = format!("{{\n{f}  \"ok\": true\n}}");
        assert!(
            obj.matches('"').count() % 2 == 0,
            "unbalanced quotes: {obj}"
        );
    }
}
