//! Fault-injected benchmark cells (the `faults` binary's engine).
//!
//! Reuses the hot-path harness's [`CellSpec`] grid, but runs each cell
//! through [`Machine::run_with_faults`] and keeps everything the fault
//! acceptance criteria need: the full stats display (the bit-identity
//! comparator for empty plans), the serializability-oracle verdict, the
//! stats-identity check, and the exhaustion/swap counters that prove a
//! seeded plan actually hurt.

use crate::parallel::CellSpec;
use ptm_sim::{
    check_invariants, diff_against_machine, serialize_programs, FaultAction, FaultEvent, FaultPlan,
    Machine, SystemKind,
};
use std::time::Instant;

/// Everything one cell run produces under a fault plan (or plain `run`).
#[derive(Debug, Clone)]
pub struct FaultCellReport {
    /// The spec that produced this report.
    pub spec: CellSpec,
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Per-core read checksums.
    pub checksums: Vec<u64>,
    /// The full stats display — every counter the machine tracks.
    pub stats: String,
    /// Serializability-oracle mismatches (must be 0).
    pub mismatches: usize,
    /// First violated stats identity, if any (must be `None`).
    pub invariant_violation: Option<String>,
    /// Frame-pool exhaustions survived (PTM cells).
    pub frame_exhaustions: u64,
    /// TAV-arena exhaustions survived (PTM cells).
    pub tav_exhaustions: u64,
    /// Transactions aborted to free resources.
    pub exhaustion_aborts: u64,
    /// Accesses retried after an exhaustion recovery.
    pub exhaustion_retries: u64,
    /// Transactional pages swapped out (SPT→SIT migrations).
    pub tx_swap_outs: u64,
    /// Transactional pages swapped back in (SIT→SPT migrations).
    pub tx_swap_ins: u64,
    /// Host wall-clock for this cell, nanoseconds.
    pub wall_ns: u64,
}

fn report(
    spec: &CellSpec,
    m: &Machine,
    programs: &[ptm_sim::ThreadProgram],
    wall_ns: u64,
) -> FaultCellReport {
    let mismatches = diff_against_machine(m, programs).len();
    let invariant_violation = check_invariants(m).err();
    let (fx, tx, ea, er, so, si) = m
        .backend()
        .as_ptm()
        .map(|p| {
            let s = p.stats();
            (
                s.frame_exhaustions,
                s.tav_exhaustions,
                s.exhaustion_aborts,
                s.exhaustion_retries,
                s.tx_swap_outs,
                s.tx_swap_ins,
            )
        })
        .unwrap_or((0, 0, 0, 0, 0, 0));
    FaultCellReport {
        spec: *spec,
        cycles: m.stats().cycles,
        commits: m.stats().commits,
        aborts: m.stats().aborts,
        checksums: m.checksums(),
        stats: format!("{}", m.stats()),
        mismatches,
        invariant_violation,
        frame_exhaustions: fx,
        tav_exhaustions: tx,
        exhaustion_aborts: ea,
        exhaustion_retries: er,
        tx_swap_outs: so,
        tx_swap_ins: si,
        wall_ns,
    }
}

pub(crate) fn cell_machine(spec: &CellSpec) -> (Machine, Vec<ptm_sim::ThreadProgram>) {
    let w = spec.workload.build(spec.scale);
    let programs = if spec.kind == SystemKind::Serial {
        serialize_programs(&w.programs_for(SystemKind::Serial))
    } else {
        w.programs_for(spec.kind)
    };
    (
        Machine::new(w.machine_config(), spec.kind, programs.clone()),
        programs,
    )
}

/// Runs one cell through the plain [`Machine::run`] loop — the baseline the
/// empty-plan pass must reproduce bit-for-bit.
pub fn run_cell_plain(spec: &CellSpec) -> FaultCellReport {
    let (mut m, programs) = cell_machine(spec);
    let start = Instant::now();
    m.run();
    let wall_ns = start.elapsed().as_nanos() as u64;
    report(spec, &m, &programs, wall_ns)
}

/// Runs one cell through [`Machine::run_with_faults`] under `plan`.
pub fn run_cell_under_plan(spec: &CellSpec, plan: &FaultPlan) -> FaultCellReport {
    let (mut m, programs) = cell_machine(spec);
    let start = Instant::now();
    m.run_with_faults(plan);
    let wall_ns = start.elapsed().as_nanos() as u64;
    report(spec, &m, &programs, wall_ns)
}

/// The adversarial plan the `faults` binary runs: seed-driven background
/// noise over a long horizon, plus guaranteed early resource pressure so
/// even the shortest cell sees a drained frame pool, a capped TAV arena,
/// hot-page swap-outs on a slow swap device, and an abort storm.
pub fn seeded_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::from_seed(seed, 40_000, 12);
    let mut push = |step: u64, action: FaultAction| {
        plan.events.push(FaultEvent { step, action });
    };
    push(1, FaultAction::DelaySwapIns { delay: 800 });
    // Squeeze the frame pool dry early, while every cell is still running.
    push(150, FaultAction::SqueezeMemory { leave: 0 });
    push(700, FaultAction::ReleaseMemory);
    push(900, FaultAction::CapTavArena { slack: 0 });
    push(1_300, FaultAction::UncapTavArena);
    for i in 0..6u64 {
        push(300 + i * 400, FaultAction::SwapOutHotPage { nth: i as u8 });
    }
    push(1_500, FaultAction::AbortStorm { count: 2 });
    plan.normalize();
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::CellWorkload;
    use ptm_workloads::Scale;

    fn spec(kind: SystemKind) -> CellSpec {
        CellSpec {
            family: "test",
            workload: CellWorkload::SyntheticOverflowing(3),
            kind,
            scale: Scale::Tiny,
        }
    }

    #[test]
    fn empty_plan_reproduces_plain_run_bit_for_bit() {
        for kind in [
            SystemKind::CopyPtm,
            SystemKind::SelectPtm(Default::default()),
            SystemKind::Serial,
        ] {
            let s = spec(kind);
            let plain = run_cell_plain(&s);
            let empty = run_cell_under_plan(&s, &FaultPlan::empty());
            assert_eq!(plain.checksums, empty.checksums, "{kind:?} checksums");
            assert_eq!(plain.stats, empty.stats, "{kind:?} stats");
        }
    }

    #[test]
    fn seeded_plan_survives_and_exhausts() {
        let plan = seeded_plan(0xF4117);
        assert!(!plan.is_empty());
        let r = run_cell_under_plan(&spec(SystemKind::CopyPtm), &plan);
        assert_eq!(r.mismatches, 0, "oracle failed");
        assert_eq!(r.invariant_violation, None);
        assert!(
            r.frame_exhaustions + r.tav_exhaustions > 0,
            "the squeeze never bit: {}",
            r.stats
        );
    }
}
