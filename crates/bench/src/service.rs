//! The service sweep: sustained throughput of the PTM-as-a-service
//! frontend across Zipfian skew × shard count × execution strategy.
//!
//! Each `(skew, shards)` cell generates one client stream, chops it into
//! admission-sized blocks, and runs the block sequence under every
//! strategy, folding deltas forward between blocks exactly as the ingest
//! loop does. The Sequential and Parallel passes of a cell must produce
//! **bit-identical receipts and deltas** — that assertion is the sweep's
//! correctness spine, inherited from the epoch executor's determinism
//! guarantee.

use ptm_service::{fold_deltas, run_block, Receipt, ServiceConfig, Strategy};
use ptm_types::FastMap;
use ptm_workloads::{service::generate, ClientTx, Scale, ServiceWorkloadConfig};
use std::time::Instant;

/// The sweep axes: the ISSUE's 3 × 3 grid plus the three strategies.
pub const SKEWS: [f64; 3] = [0.6, 0.9, 1.2];
/// Shard counts swept per skew.
pub const SHARDS: [usize; 3] = [1, 2, 4];
/// Strategies swept per `(skew, shards)` cell.
pub const STRATEGIES: [Strategy; 3] = [
    Strategy::Sequential,
    Strategy::Parallel,
    Strategy::ValidateOnly,
];

/// One strategy's measurement within a cell.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// Strategy label.
    pub strategy: &'static str,
    /// Host wall time for the whole block sequence.
    pub wall_ns: u64,
    /// Sustained client transactions per second of host wall time.
    pub tx_per_sec: f64,
    /// Committed simulator transactions.
    pub commits: u64,
    /// Aborted-and-retried simulator transactions.
    pub aborts: u64,
    /// Aborts per attempt.
    pub abort_rate: f64,
    /// Simulated cycles of the slowest shard, summed over blocks.
    pub shard_cycles: u64,
    /// Receipts, for the bit-identity assertion.
    pub receipts: Vec<Receipt>,
}

/// One `(skew, shards)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct ServiceCell {
    /// Zipfian exponent of the client stream.
    pub skew: f64,
    /// Shard machines.
    pub shards: usize,
    /// Client transactions served.
    pub txs: usize,
    /// Blocks the stream sealed into.
    pub blocks: usize,
    /// Cross-shard transfers in the stream.
    pub cross_shard: u64,
    /// Read-only probes served on the fast path.
    pub read_only_hits: u64,
    /// Worst block-level load imbalance observed (max shard load / mean).
    pub shard_skew: f64,
    /// Per-strategy measurements, in [`STRATEGIES`] order.
    pub strategies: Vec<StrategyResult>,
}

/// Workload size for a sweep scale.
pub fn stream_config(scale: Scale, skew: f64) -> ServiceWorkloadConfig {
    ServiceWorkloadConfig::scaled(scale, skew)
}

/// Runs one strategy over the block sequence of a stream.
fn run_strategy(
    cfg: &ServiceConfig,
    stream: &[ClientTx],
    max_batch: usize,
) -> (StrategyResult, f64, u64, u64, usize) {
    let t0 = Instant::now();
    let mut balances: FastMap<u64, u32> = FastMap::default();
    let mut receipts = Vec::with_capacity(stream.len());
    let (mut commits, mut aborts, mut shard_cycles) = (0u64, 0u64, 0u64);
    let (mut cross, mut ro_hits) = (0u64, 0u64);
    let mut worst_skew = 0.0f64;
    let mut blocks = 0usize;
    for block in stream.chunks(max_batch) {
        let out = run_block(cfg, block, &balances);
        fold_deltas(&mut balances, &out.deltas);
        commits += out.stats.commits;
        aborts += out.stats.aborts;
        shard_cycles += out.stats.max_shard_cycles;
        cross += out.stats.cross_shard;
        ro_hits += out.stats.read_only_hits;
        worst_skew = worst_skew.max(out.stats.shard_skew);
        blocks += 1;
        receipts.extend(out.receipts);
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let attempts = commits + aborts;
    let result = StrategyResult {
        strategy: cfg.strategy.label(),
        wall_ns,
        tx_per_sec: stream.len() as f64 / (wall_ns as f64 / 1e9).max(1e-9),
        commits,
        aborts,
        abort_rate: if attempts == 0 {
            0.0
        } else {
            aborts as f64 / attempts as f64
        },
        shard_cycles,
        receipts,
    };
    (result, worst_skew, cross, ro_hits, blocks)
}

/// Runs one `(skew, shards)` cell under every strategy and asserts the
/// Sequential ≡ Parallel receipt identity.
pub fn run_cell(scale: Scale, skew: f64, shards: usize, max_batch: usize) -> ServiceCell {
    let wcfg = stream_config(scale, skew);
    let stream = generate(&wcfg);
    let mut cell = ServiceCell {
        skew,
        shards,
        txs: stream.len(),
        blocks: 0,
        cross_shard: 0,
        read_only_hits: 0,
        shard_skew: 0.0,
        strategies: Vec::new(),
    };
    for strategy in STRATEGIES {
        let mut cfg = ServiceConfig::new(wcfg.accounts, shards).with_strategy(strategy);
        cfg.max_batch = max_batch;
        let (result, worst_skew, cross, ro_hits, blocks) = run_strategy(&cfg, &stream, max_batch);
        if strategy != Strategy::ValidateOnly {
            cell.blocks = blocks;
            cell.cross_shard = cross;
            cell.read_only_hits = ro_hits;
            cell.shard_skew = cell.shard_skew.max(worst_skew);
        }
        cell.strategies.push(result);
    }
    let seq = &cell.strategies[0];
    let par = &cell.strategies[1];
    assert_eq!(
        seq.receipts, par.receipts,
        "sequential and parallel receipts diverged at skew {skew}, {shards} shard(s)"
    );
    assert_eq!(seq.commits, par.commits);
    assert_eq!(seq.aborts, par.aborts);
    assert_eq!(seq.shard_cycles, par.shard_cycles);
    cell
}

/// The full sweep: every skew × shard-count cell.
pub fn run_sweep(scale: Scale, max_batch: usize) -> Vec<ServiceCell> {
    let mut cells = Vec::new();
    for &skew in &SKEWS {
        for &shards in &SHARDS {
            eprintln!("service: skew {skew}, {shards} shard(s)...");
            cells.push(run_cell(scale, skew, shards, max_batch));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cell_asserts_identity_and_counts_everything() {
        let cell = run_cell(Scale::Tiny, 0.9, 2, 128);
        assert_eq!(cell.strategies.len(), 3);
        assert_eq!(cell.txs, stream_config(Scale::Tiny, 0.9).txs);
        assert!(cell.blocks >= cell.txs / 128);
        let seq = &cell.strategies[0];
        assert!(seq.commits > 0);
        assert_eq!(
            seq.receipts.len(),
            cell.txs,
            "every client tx gets a receipt"
        );
        assert!(cell.shard_skew >= 1.0, "skew {}", cell.shard_skew);
    }
}
