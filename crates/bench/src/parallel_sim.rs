//! Intra-machine speculative parallelism over benchmark cells.
//!
//! [`crate::parallel`] parallelises *across* independent cells; this module
//! parallelises *inside* one machine run, driving each cell through the
//! speculative epoch executor ([`ptm_sim::Machine::run_parallel`]) instead
//! of the plain sequential step loop. The executor is bit-identical to
//! sequential stepping by construction, so every simulated quantity in the
//! returned [`CellResult`] must match the sequential pass exactly —
//! [`crate::parallel::assert_cells_match`] applies unchanged.

use crate::parallel::{CellResult, CellSpec};
use ptm_sim::{run_parallel, serialize_programs, ExecStats, ExecutorConfig, SystemKind};
use std::time::Instant;

/// Runs one cell through the speculative epoch executor.
pub fn run_cell_executor(spec: &CellSpec, exec: &ExecutorConfig) -> (CellResult, ExecStats) {
    let w = spec.workload.build(spec.scale);
    let cfg = w.machine_config();
    let programs = if spec.kind == SystemKind::Serial {
        serialize_programs(&w.programs_for(SystemKind::Serial))
    } else {
        w.programs_for(spec.kind)
    };
    let start = Instant::now();
    let (m, xs) = run_parallel(cfg, spec.kind, programs, exec);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let (fast, slow) = m
        .backend()
        .as_ptm()
        .map(|p| {
            (
                p.stats().conflict_checks_fast,
                p.stats().conflict_checks_slow,
            )
        })
        .unwrap_or((0, 0));
    let result = CellResult {
        spec: *spec,
        cycles: m.stats().cycles,
        commits: m.stats().commits,
        aborts: m.stats().aborts,
        checksums: m.checksums(),
        tlb_hits: m.stats().tlb_hits,
        tlb_misses: m.stats().tlb_misses,
        tlb_shootdowns: m.stats().tlb_shootdowns,
        conflict_checks_fast: fast,
        conflict_checks_slow: slow,
        wall_ns,
    };
    (result, xs)
}

/// Runs every cell through the executor on the calling thread, in order.
/// (The parallelism lives *inside* each machine run.)
pub fn run_cells_executor(
    specs: &[CellSpec],
    exec: &ExecutorConfig,
) -> Vec<(CellResult, ExecStats)> {
    specs.iter().map(|s| run_cell_executor(s, exec)).collect()
}

/// The executor thread count: `PTM_EXEC_THREADS` if set, else the host's
/// parallelism.
pub fn exec_threads_from_env() -> usize {
    std::env::var("PTM_EXEC_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// The epoch length: `PTM_EPOCH_CYCLES` if set, else the executor default.
pub fn epoch_cycles_from_env() -> u64 {
    std::env::var("PTM_EPOCH_CYCLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(ExecutorConfig::DEFAULT_EPOCH_CYCLES)
        .max(1)
}

/// Amdahl-style projection of one cell's executor wall-clock on a host with
/// `threads` cores: the speculated-and-committed fraction `f` of steps
/// overlaps perfectly, the rest stays sequential.
pub fn amdahl_projection_ns(wall_ns: u64, spec_commit_fraction: f64, threads: usize) -> u64 {
    let f = spec_commit_fraction.clamp(0.0, 1.0);
    let t = threads.max(1) as f64;
    (wall_ns as f64 * ((1.0 - f) + f / t)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{assert_cells_match, run_cells_sequential, CellWorkload};
    use ptm_workloads::Scale;

    #[test]
    fn executor_cell_matches_sequential_cell() {
        let specs = [
            CellSpec {
                family: "test",
                workload: CellWorkload::SyntheticContended(5),
                kind: SystemKind::SelectPtm(Default::default()),
                scale: Scale::Tiny,
            },
            CellSpec {
                family: "test",
                workload: CellWorkload::SyntheticOverflowing(5),
                kind: SystemKind::LogTm,
                scale: Scale::Tiny,
            },
        ];
        let seq = run_cells_sequential(&specs);
        let exec = ExecutorConfig {
            threads: 2,
            epoch_cycles: 4096,
        };
        let par_pairs = run_cells_executor(&specs, &exec);
        let par: Vec<CellResult> = par_pairs.iter().map(|(c, _)| c.clone()).collect();
        assert_cells_match(&seq, &par);
    }

    #[test]
    fn amdahl_projection_bounds() {
        assert_eq!(amdahl_projection_ns(1000, 0.0, 4), 1000);
        assert_eq!(amdahl_projection_ns(1000, 1.0, 4), 250);
        let mid = amdahl_projection_ns(1000, 0.5, 4);
        assert!(mid > 250 && mid < 1000, "{mid}");
    }
}
