//! Durable-log crash sweep (the `durable` binary's engine).
//!
//! Crosses the crash grid with the durability seam: each cell runs a PTM
//! workload with a write-behind [`ptm_mem::LogDevice`] attached, under one
//! [`ForcePolicy`] and one [`LogFaultPlan`] seed, and crashes a fresh
//! machine at every K-th scheduler step (clean and torn). Every point must
//! satisfy the same committed-prefix oracle and idempotence checks as the
//! volatile crash sweep — durability adds latency, redundancy and log
//! reconciliation, never a different answer — plus the log-specific
//! integrity checks: zero phantom commits, zero undo-replay mismatches,
//! and (under eager forcing) zero missing commit records.
//!
//! The fault seeds exercise every injected fault kind: transient append
//! errors (absorbed by bounded retry + exponential backoff), full-device
//! stall windows (commits throttle, never deadlock — proven by the sweep
//! completing with `max_append_attempts` ≤ the retry bound), reordered
//! completions and torn/lost in-flight appends at the crash boundary.

use crate::faults::cell_machine;
use crate::parallel::{CellSpec, CellWorkload};
use ptm_core::durability::{DurabilityConfig, ForcePolicy, MAX_LOG_RETRIES};
use ptm_mem::{LogDevConfig, LogFaultPlan};
use ptm_sim::crash::CrashPlan;
use ptm_sim::SystemKind;
use ptm_types::rng::{Fnv1a64, SplitMix64};
use ptm_types::Granularity;
use ptm_workloads::Scale;
use std::time::Instant;

/// One point of the recovery-time-vs-log-size curve.
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    /// The crash step.
    pub step: u64,
    /// Bytes on the log media at the crash (before tail truncation).
    pub log_bytes: u64,
    /// Valid records the recovery scan accepted.
    pub records: u64,
    /// Host wall-clock of the recovery pass, nanoseconds.
    pub recovery_ns: u64,
}

/// Everything one durable cell's crash sweep produces.
#[derive(Debug, Clone)]
pub struct DurableCellReport {
    /// The spec that was swept.
    pub spec: CellSpec,
    /// The force policy under test.
    pub policy: ForcePolicy,
    /// The device fault-plan seed (0 = fault-free).
    pub fault_seed: u64,
    /// Total scheduler steps of the uninterrupted durable run.
    pub total_steps: u64,
    /// Simulated cycles of the uninterrupted durable run (the history
    /// trajectory's work metric).
    pub probe_cycles: u64,
    /// The stride between grid crash points.
    pub stride: u64,
    /// Crash points executed (grid + torn variants).
    pub points: u64,
    /// Points where the torn mode actually tore a live TAV publish.
    pub torn_points: u64,
    /// Oracle mismatches across all points (must be 0).
    pub mismatches: u64,
    /// Points where a second recovery was not a no-op (must be 0).
    pub non_idempotent: u64,
    /// Durable commit records naming uncommitted transactions (must be 0).
    pub phantom_commits: u64,
    /// Live-transaction undo payloads contradicting recovered memory
    /// (must be 0).
    pub replay_mismatches: u64,
    /// Live-transaction undo payloads verified word-identical.
    pub replay_verified: u64,
    /// Writing commits whose record did not survive, summed over points
    /// (must be 0 under eager; the lazy/group trade-off otherwise).
    pub commits_missing: u64,
    /// Torn-tail records discarded by the bounded scan, summed.
    pub records_discarded: u64,
    /// Discarded frames that failed their checksum, summed.
    pub checksum_mismatches: u64,
    /// Bytes truncated off log tails, summed.
    pub bytes_truncated: u64,
    /// Valid commit/abort/undo/redo records recovered, summed.
    pub commit_records: u64,
    /// Valid abort records recovered, summed.
    pub abort_records: u64,
    /// Valid undo records recovered, summed.
    pub undo_records: u64,
    /// Valid redo records recovered, summed.
    pub redo_records: u64,
    /// In-flight appends resolved torn at a crash, summed.
    pub torn_appends: u64,
    /// In-flight appends resolved lost at a crash, summed.
    pub lost_appends: u64,
    /// In-flight appends resolved durable (early) at a crash, summed.
    pub early_appends: u64,
    /// Full-run (uncrashed probe) committed transactions.
    pub run_commits: u64,
    /// Full-run commit records appended.
    pub run_commit_records: u64,
    /// Full-run read-only fast-path commits (no record, no force).
    pub run_ro_fastpath: u64,
    /// Full-run policy forces.
    pub run_forces: u64,
    /// Full-run extra commit latency charged by durability, cycles.
    pub run_commit_latency_cycles: u64,
    /// Full-run transient-error retries.
    pub run_log_retries: u64,
    /// Full-run backoff cycles after transient errors.
    pub run_backoff_cycles: u64,
    /// Full-run stall throttle events (deferred commits + waited appends).
    pub run_throttle_events: u64,
    /// Full-run cycles spent throttled on stalls.
    pub run_throttle_cycles: u64,
    /// Worst append attempts across the *entire sweep* — the bounded-retry
    /// proof (≤ [`MAX_LOG_RETRIES`], asserted).
    pub max_append_attempts: u32,
    /// Full-run device-side transient rejections.
    pub run_transient_errors: u64,
    /// Full-run device stall windows opened.
    pub run_stall_events: u64,
    /// Full-run out-of-order completions.
    pub run_reordered_completions: u64,
    /// Full-run bytes appended to the device.
    pub run_bytes_appended: u64,
    /// Recovery-time-vs-log-size curve, one point per grid crash.
    pub curve: Vec<CurvePoint>,
    /// FNV-1a digest over every executed plan plus the fault plan.
    pub plan_digest: u64,
    /// Host wall-clock for the whole sweep, nanoseconds.
    pub wall_ns: u64,
}

impl DurableCellReport {
    /// Mean extra commit latency a writing commit paid, cycles.
    pub fn avg_commit_latency(&self) -> f64 {
        self.run_commit_latency_cycles as f64 / self.run_commit_records.max(1) as f64
    }
}

/// The durable-sweep grid: both PTM policies at block granularity, on the
/// overflowing synthetic workload (the one that exercises undo logging).
pub fn durable_cells(scale: Scale) -> Vec<CellSpec> {
    [
        SystemKind::CopyPtm,
        SystemKind::SelectPtm(Granularity::Block),
    ]
    .into_iter()
    .map(|kind| CellSpec {
        family: "durable",
        workload: CellWorkload::SyntheticOverflowing(3),
        kind,
        scale,
    })
    .collect()
}

/// The three force policies every sweep crosses.
pub fn sweep_policies() -> [ForcePolicy; 3] {
    [ForcePolicy::Eager, ForcePolicy::Lazy, ForcePolicy::Group(4)]
}

/// One fault seed per emphasis class of [`LogFaultPlan::from_seed`] (the
/// generator rotates which fault kind dominates with the seed), so the
/// seed set provably covers transient, stall, reorder and torn injection.
pub fn default_fault_seeds() -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut found = [false; 4];
    let mut seed = 1u64;
    while found.iter().any(|f| !f) {
        let class = (SplitMix64::new(seed).next_u64() % 4) as usize;
        if !found[class] {
            found[class] = true;
            out[class] = seed;
        }
        seed += 1;
    }
    out
}

/// Parses a fault seed, decimal or `0x`-hex, case-insensitively. Unknown
/// values are a hard error naming the offender — a typo must not silently
/// run a different fault plan than the one under test.
pub fn parse_fault_seed(value: &str) -> Result<u64, String> {
    let lower = value.to_ascii_lowercase();
    let parsed = match lower.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => lower.parse(),
    };
    parsed.map_err(|_| {
        format!("invalid PTM_LOG_FAULT_SEED value {value:?}: expected a decimal or 0x-hex u64")
    })
}

/// The fault seeds to sweep: the provable-coverage defaults, or a single
/// seed from `PTM_LOG_FAULT_SEED`.
///
/// # Panics
///
/// Panics on an unparsable `PTM_LOG_FAULT_SEED`.
pub fn fault_seeds_from_env() -> Vec<u64> {
    match std::env::var("PTM_LOG_FAULT_SEED") {
        Ok(v) => vec![parse_fault_seed(&v).unwrap_or_else(|e| panic!("{e}"))],
        Err(_) => default_fault_seeds().to_vec(),
    }
}

/// The force policies to sweep: all three, or a single one from
/// `PTM_FORCE_POLICY` (case-insensitive; `eager`, `lazy`, `group`,
/// `group:N`).
///
/// # Panics
///
/// Panics on an unrecognized `PTM_FORCE_POLICY` value.
pub fn force_policies_from_env() -> Vec<ForcePolicy> {
    match std::env::var("PTM_FORCE_POLICY") {
        Ok(v) => vec![ptm_core::parse_force_policy(&v).unwrap_or_else(|e| panic!("{e}"))],
        Err(_) => sweep_policies().to_vec(),
    }
}

/// The device configuration the sweep runs: realistic latencies, so force
/// policies actually differ in commit cost.
fn sweep_device() -> DurabilityConfig {
    DurabilityConfig {
        policy: ForcePolicy::Eager, // overwritten per sweep
        dev: LogDevConfig::realistic(),
        faults: LogFaultPlan::none(),
    }
}

fn durable_machine(
    spec: &CellSpec,
    policy: ForcePolicy,
    fault_seed: u64,
) -> (ptm_sim::Machine, Vec<ptm_sim::ThreadProgram>) {
    let (mut m, programs) = cell_machine(spec);
    m.enable_durability(DurabilityConfig {
        policy,
        faults: LogFaultPlan::from_seed(fault_seed),
        ..sweep_device()
    });
    (m, programs)
}

/// Sweeps one durable cell: a full probe run for the per-policy commit
/// latency numbers and the step count, then a crash at every `stride`-th
/// step (PTM grid points double up with torn-metadata variants), recovery,
/// oracle check, idempotence check and log reconciliation.
///
/// # Panics
///
/// Panics if an append ever needs more than [`MAX_LOG_RETRIES`] attempts
/// (the bounded-retry contract) or a point's run stops making progress.
pub fn sweep_durable_cell(
    spec: &CellSpec,
    policy: ForcePolicy,
    fault_seed: u64,
    stride_override: Option<u64>,
) -> DurableCellReport {
    let sweep_start = Instant::now();

    // Probe: the uninterrupted durable run. Its counters are the
    // commit-latency-vs-policy data, and its step count sizes the grid.
    let (total_steps, probe) = {
        let (mut m, _) = durable_machine(spec, policy, fault_seed);
        let img = m.run_until_crash(&CrashPlan::at_step(u64::MAX));
        assert!(img.finished, "probe run must complete");
        let dur = *m.durable_stats().expect("durable machine");
        let dev = *m.log_dev_stats().expect("durable machine");
        let cycles = m.stats().cycles;
        (img.step, (img.commit_log.len() as u64, dur, dev, cycles))
    };
    let (run_commits, dur, dev, probe_cycles) = probe;
    let stride = stride_override.unwrap_or((total_steps / 8).max(1)).max(1);

    let mut plans = Vec::new();
    let mut step = 0;
    loop {
        plans.push(CrashPlan::at_step(step));
        plans.push(CrashPlan::torn_at_step(step));
        if step >= total_steps {
            break;
        }
        step = (step + stride).min(total_steps);
    }

    let faults = LogFaultPlan::from_seed(fault_seed);
    let mut digest = Fnv1a64::new();
    digest.write_u64(fault_seed);
    digest.write_u64(u64::from(faults.transient_pct));
    digest.write_u64(u64::from(faults.stall_pct));
    digest.write_u64(u64::from(faults.reorder_pct));
    digest.write_u64(u64::from(faults.torn_pct));

    let mut r = DurableCellReport {
        spec: *spec,
        policy,
        fault_seed,
        total_steps,
        probe_cycles,
        stride,
        points: 0,
        torn_points: 0,
        mismatches: 0,
        non_idempotent: 0,
        phantom_commits: 0,
        replay_mismatches: 0,
        replay_verified: 0,
        commits_missing: 0,
        records_discarded: 0,
        checksum_mismatches: 0,
        bytes_truncated: 0,
        commit_records: 0,
        abort_records: 0,
        undo_records: 0,
        redo_records: 0,
        torn_appends: 0,
        lost_appends: 0,
        early_appends: 0,
        run_commits,
        run_commit_records: dur.commit_records,
        run_ro_fastpath: dur.ro_fastpath_commits,
        run_forces: dur.policy_forces,
        run_commit_latency_cycles: dur.commit_latency_cycles,
        run_log_retries: dur.log_retries,
        run_backoff_cycles: dur.backoff_cycles,
        run_throttle_events: dur.throttle_events,
        run_throttle_cycles: dur.throttle_cycles,
        max_append_attempts: dur.max_append_attempts,
        run_transient_errors: dev.transient_errors,
        run_stall_events: dev.stall_events,
        run_reordered_completions: dev.reordered_completions,
        run_bytes_appended: dev.bytes_appended,
        curve: Vec::new(),
        plan_digest: 0,
        wall_ns: 0,
    };

    for plan in &plans {
        digest.write_u64(plan.digest());
        let (mut m, programs) = durable_machine(spec, policy, fault_seed);
        let mut img = m.run_until_crash(plan);
        let log = img.log.as_ref().expect("durable crash image carries a log");
        let log_bytes = log.bytes.len() as u64;
        r.torn_appends += log.torn_appends;
        r.lost_appends += log.lost_appends;
        r.early_appends += log.early_appends;
        let point_dur = img.dur.expect("durable crash image carries counters");
        r.max_append_attempts = r.max_append_attempts.max(point_dur.max_append_attempts);

        let rec_start = Instant::now();
        let stats = img.recover();
        let rec_ns = rec_start.elapsed().as_nanos() as u64;

        r.points += 1;
        r.torn_points += u64::from(img.torn.is_some());
        r.mismatches += img.diff_committed(&programs).len() as u64;
        r.non_idempotent += u64::from(!img.recover().is_noop());
        r.phantom_commits += stats.log_phantom_commits;
        r.replay_mismatches += stats.log_replay_mismatches;
        r.replay_verified += stats.log_replay_verified;
        r.commits_missing += stats.log_commits_missing;
        r.records_discarded += stats.log_records_discarded;
        r.checksum_mismatches += stats.log_checksum_mismatches;
        r.bytes_truncated += stats.log_bytes_truncated;
        r.commit_records += stats.log_commit_records;
        r.abort_records += stats.log_abort_records;
        r.undo_records += stats.log_undo_records;
        r.redo_records += stats.log_redo_records;
        if !plan.torn {
            r.curve.push(CurvePoint {
                step: plan.step.min(total_steps),
                log_bytes,
                records: stats.log_commit_records
                    + stats.log_abort_records
                    + stats.log_undo_records
                    + stats.log_redo_records,
                recovery_ns: rec_ns,
            });
        }
    }

    assert!(
        r.max_append_attempts <= MAX_LOG_RETRIES,
        "bounded-retry proof violated: an append took {} attempts (bound {MAX_LOG_RETRIES})",
        r.max_append_attempts
    );
    r.plan_digest = digest.finish();
    r.wall_ns = sweep_start.elapsed().as_nanos() as u64;
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CellSpec {
        CellSpec {
            family: "durable",
            workload: CellWorkload::SyntheticOverflowing(3),
            kind: SystemKind::SelectPtm(Granularity::Block),
            scale: Scale::Tiny,
        }
    }

    #[test]
    fn fault_seed_defaults_cover_every_emphasis_class() {
        let seeds = default_fault_seeds();
        let mut classes: Vec<u64> = seeds
            .iter()
            .map(|s| SplitMix64::new(*s).next_u64() % 4)
            .collect();
        classes.sort_unstable();
        assert_eq!(classes, vec![0, 1, 2, 3]);
        assert!(seeds.iter().all(|s| *s != 0), "0 is the fault-free plan");
    }

    #[test]
    fn parse_fault_seed_accepts_decimal_and_hex_and_hard_errors() {
        assert_eq!(parse_fault_seed("42"), Ok(42));
        assert_eq!(parse_fault_seed("0xFF"), Ok(255));
        assert_eq!(parse_fault_seed("0Xff"), Ok(255));
        let err = parse_fault_seed("bogus").unwrap_err();
        assert!(err.contains("bogus"), "error names the offender: {err}");
    }

    #[test]
    fn eager_zero_fault_sweep_is_fully_clean() {
        let r = sweep_durable_cell(&spec(), ForcePolicy::Eager, 0, None);
        assert_eq!(r.mismatches, 0, "oracle failed");
        assert_eq!(r.non_idempotent, 0, "recovery not idempotent");
        assert_eq!(r.phantom_commits, 0);
        assert_eq!(r.replay_mismatches, 0);
        assert_eq!(r.commits_missing, 0, "eager forcing lost a commit record");
        assert!(r.run_commit_records > 0, "the workload never wrote?");
        assert_eq!(r.run_forces, r.run_commit_records, "eager forces each");
        assert!(r.points > 0 && !r.curve.is_empty());
    }

    #[test]
    fn faulty_lazy_sweep_survives_with_bounded_retries() {
        // A seed from the coverage set: whatever it emphasizes, the sweep
        // must stay correct and the retry bound must hold.
        let seed = default_fault_seeds()[0];
        let r = sweep_durable_cell(&spec(), ForcePolicy::Lazy, seed, None);
        assert_eq!(r.mismatches, 0, "oracle failed under faults");
        assert_eq!(r.non_idempotent, 0);
        assert_eq!(r.phantom_commits, 0);
        assert_eq!(r.replay_mismatches, 0);
        assert!(r.max_append_attempts <= MAX_LOG_RETRIES);
        assert_eq!(r.run_forces, 0, "lazy never forces");
    }

    #[test]
    fn curve_log_sizes_are_monotone_in_the_crash_step() {
        let r = sweep_durable_cell(&spec(), ForcePolicy::Eager, 0, None);
        for w in r.curve.windows(2) {
            assert!(
                w[1].log_bytes >= w[0].log_bytes,
                "log can only grow with later crashes: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }
}
