//! Parallel execution of independent benchmark cells.
//!
//! The regeneration binaries (`table1`, `fig4`, `fig5`, `ablation`) all
//! decompose into *cells*: one `(workload, system)` machine run whose
//! result depends on nothing but its own spec. Machines are deterministic,
//! so the cells can fan out across host threads and must produce
//! bit-identical simulated results (checksums, cycles, counters) to a
//! sequential pass — which [`assert_cells_match`] verifies. Only the host
//! wall-clock changes.
//!
//! The scheduler is a work-stealing index: workers grab the next unclaimed
//! cell until none remain, so a straggler cell (serial ocean) never idles
//! the other workers.

use crate::scale_from_env;
use ptm_sim::{run, serialize_programs, SystemKind};
use ptm_workloads::{by_name, synthetic, Scale, SyntheticConfig, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Which workload a cell runs (rebuilt inside the worker — `Workload`
/// itself never crosses threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellWorkload {
    /// One of the five Table 1 benchmarks, by name.
    Splash2(&'static str),
    /// The ablation binary's low-contention synthetic workload.
    SyntheticLow,
    /// `synthetic::overflowing(seed)`.
    SyntheticOverflowing(u64),
    /// `synthetic::contended(seed)`.
    SyntheticContended(u64),
}

impl CellWorkload {
    /// A stable display name.
    pub fn name(&self) -> String {
        match self {
            CellWorkload::Splash2(n) => (*n).to_string(),
            CellWorkload::SyntheticLow => "syn-low".to_string(),
            CellWorkload::SyntheticOverflowing(s) => format!("syn-overflow-{s}"),
            CellWorkload::SyntheticContended(s) => format!("syn-contended-{s}"),
        }
    }

    pub(crate) fn build(&self, scale: Scale) -> Workload {
        match self {
            CellWorkload::Splash2(n) => by_name(n, scale).expect("known benchmark"),
            CellWorkload::SyntheticLow => synthetic::workload(SyntheticConfig {
                shared_fraction: 0.05,
                ops_per_tx: 120,
                private_pages: 32,
                ..SyntheticConfig::default()
            }),
            CellWorkload::SyntheticOverflowing(s) => synthetic::overflowing(*s),
            CellWorkload::SyntheticContended(s) => synthetic::contended(*s),
        }
    }
}

/// One independent unit of harness work.
#[derive(Debug, Clone, Copy)]
pub struct CellSpec {
    /// Which regeneration family the cell belongs to (`table1`, `fig4`,
    /// `fig5`, `ablation`, `serial`).
    pub family: &'static str,
    /// The workload to build.
    pub workload: CellWorkload,
    /// The system to run it under.
    pub kind: SystemKind,
    /// The problem scale.
    pub scale: Scale,
}

/// Everything a cell run produces: the simulated results that must be
/// schedule-invariant, plus the host wall-clock that must not be.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The spec that produced this result.
    pub spec: CellSpec,
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Per-core read checksums — the divergence detector.
    pub checksums: Vec<u64>,
    /// Core-TLB hits.
    pub tlb_hits: u64,
    /// Core-TLB misses.
    pub tlb_misses: u64,
    /// Core-TLB shootdowns.
    pub tlb_shootdowns: u64,
    /// Conflict checks resolved by the summary-vector fast path (PTM runs).
    pub conflict_checks_fast: u64,
    /// Conflict checks that walked the TAV list (PTM runs).
    pub conflict_checks_slow: u64,
    /// Host wall-clock for this cell, nanoseconds.
    pub wall_ns: u64,
}

/// Runs one cell to completion.
pub fn run_cell(spec: &CellSpec) -> CellResult {
    let w = spec.workload.build(spec.scale);
    let cfg = w.machine_config();
    let programs = if spec.kind == SystemKind::Serial {
        serialize_programs(&w.programs_for(SystemKind::Serial))
    } else {
        w.programs_for(spec.kind)
    };
    let start = Instant::now();
    let m = run(cfg, spec.kind, programs);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let (fast, slow) = m
        .backend()
        .as_ptm()
        .map(|p| {
            (
                p.stats().conflict_checks_fast,
                p.stats().conflict_checks_slow,
            )
        })
        .unwrap_or((0, 0));
    CellResult {
        spec: *spec,
        cycles: m.stats().cycles,
        commits: m.stats().commits,
        aborts: m.stats().aborts,
        checksums: m.checksums(),
        tlb_hits: m.stats().tlb_hits,
        tlb_misses: m.stats().tlb_misses,
        tlb_shootdowns: m.stats().tlb_shootdowns,
        conflict_checks_fast: fast,
        conflict_checks_slow: slow,
        wall_ns,
    }
}

/// The full hot-path cell list: Table 1 / Figure 4 / Figure 5 cells for the
/// five benchmarks (deduplicated across families) plus the ablation's
/// synthetic grid.
pub fn default_cells(scale: Scale) -> Vec<CellSpec> {
    let mut cells: Vec<CellSpec> = Vec::new();
    let mut push = |family: &'static str, workload: CellWorkload, kind: SystemKind| {
        if !cells
            .iter()
            .any(|c| c.workload == workload && c.kind == kind)
        {
            cells.push(CellSpec {
                family,
                workload,
                kind,
                scale,
            });
        }
    };
    for app in ["fft", "lu", "radix", "ocean", "water"] {
        let w = CellWorkload::Splash2(app);
        push("table1", w, SystemKind::SelectPtm(Default::default()));
        push("serial", w, SystemKind::Serial);
        for kind in SystemKind::figure4() {
            push("fig4", w, kind);
        }
        for kind in SystemKind::figure5() {
            push("fig5", w, kind);
        }
    }
    for workload in [
        CellWorkload::SyntheticLow,
        CellWorkload::SyntheticOverflowing(7),
        CellWorkload::SyntheticContended(7),
    ] {
        for kind in [
            SystemKind::CopyPtm,
            SystemKind::SelectPtm(Default::default()),
            SystemKind::LogTm,
        ] {
            push("ablation", workload, kind);
        }
    }
    cells
}

/// Runs every cell on the calling thread, in order.
pub fn run_cells_sequential(specs: &[CellSpec]) -> Vec<CellResult> {
    specs.iter().map(run_cell).collect()
}

/// Fans the cells across `workers` host threads (work-stealing index);
/// results come back in spec order regardless of completion order.
pub fn run_cells_parallel(specs: &[CellSpec], workers: usize) -> Vec<CellResult> {
    let workers = workers.max(1).min(specs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let result = run_cell(spec);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned slot").expect("cell ran"))
        .collect()
}

/// Asserts the parallel pass reproduced the sequential pass bit-for-bit on
/// every simulated quantity (wall-clock is exempt — that is the point).
///
/// # Panics
///
/// Panics on the first diverging cell.
pub fn assert_cells_match(seq: &[CellResult], par: &[CellResult]) {
    assert_eq!(seq.len(), par.len(), "cell count mismatch");
    for (a, b) in seq.iter().zip(par) {
        let ctx = format!("{}/{}", a.spec.workload.name(), a.spec.kind.label());
        assert_eq!(a.checksums, b.checksums, "{ctx}: checksums diverged");
        assert_eq!(a.cycles, b.cycles, "{ctx}: cycles diverged");
        assert_eq!(a.commits, b.commits, "{ctx}: commits diverged");
        assert_eq!(a.aborts, b.aborts, "{ctx}: aborts diverged");
        assert_eq!(
            (a.conflict_checks_fast, a.conflict_checks_slow),
            (b.conflict_checks_fast, b.conflict_checks_slow),
            "{ctx}: conflict-filter counters diverged"
        );
    }
}

/// Greedy longest-processing-time makespan for `walls` across `workers` —
/// the wall-clock a multi-core host achieves from these measured per-cell
/// times (host threads only redistribute cells; they cannot change them).
pub fn projected_makespan(walls: &[u64], workers: usize) -> u64 {
    let mut sorted = walls.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; workers.max(1)];
    for w in sorted {
        let i = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| **l)
            .expect("at least one worker")
            .0;
        loads[i] += w;
    }
    loads.into_iter().max().unwrap_or(0)
}

/// The worker count: `PTM_WORKERS` if set, else the host's parallelism.
pub fn workers_from_env() -> usize {
    std::env::var("PTM_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// The scale plus cell list the hotpath binary runs.
pub fn cells_from_env() -> (Scale, Vec<CellSpec>) {
    let scale = scale_from_env();
    (scale, default_cells(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cells() -> Vec<CellSpec> {
        vec![
            CellSpec {
                family: "test",
                workload: CellWorkload::SyntheticOverflowing(3),
                kind: SystemKind::SelectPtm(Default::default()),
                scale: Scale::Tiny,
            },
            CellSpec {
                family: "test",
                workload: CellWorkload::SyntheticContended(3),
                kind: SystemKind::CopyPtm,
                scale: Scale::Tiny,
            },
            CellSpec {
                family: "test",
                workload: CellWorkload::SyntheticContended(3),
                kind: SystemKind::Serial,
                scale: Scale::Tiny,
            },
        ]
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let specs = quick_cells();
        let seq = run_cells_sequential(&specs);
        let par = run_cells_parallel(&specs, 3);
        assert_cells_match(&seq, &par);
        assert!(
            seq.iter().any(|c| c.tlb_hits > 0),
            "TLB counters flow through"
        );
        assert!(
            seq.iter().any(|c| c.conflict_checks_fast > 0),
            "summary pre-filter counters flow through"
        );
    }

    #[test]
    fn default_cell_list_is_deduplicated() {
        let cells = default_cells(Scale::Tiny);
        for (i, a) in cells.iter().enumerate() {
            for b in &cells[i + 1..] {
                assert!(
                    !(a.workload == b.workload && a.kind == b.kind),
                    "duplicate cell {:?}/{:?}",
                    a.workload,
                    a.kind
                );
            }
        }
        // Every family is represented.
        for fam in ["table1", "serial", "fig4", "fig5", "ablation"] {
            assert!(cells.iter().any(|c| c.family == fam), "{fam} missing");
        }
    }

    #[test]
    fn makespan_projection_is_sane() {
        // 4 equal cells on 2 workers: two rounds.
        assert_eq!(projected_makespan(&[10, 10, 10, 10], 2), 20);
        // A dominant cell bounds the makespan from below.
        assert_eq!(projected_makespan(&[100, 10, 10, 10], 4), 100);
        assert_eq!(projected_makespan(&[], 4), 0);
    }
}
