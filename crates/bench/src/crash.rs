//! Crash-sweep benchmark cells (the `crash` binary's engine).
//!
//! For each cell, crashes a fresh machine at every K-th scheduler step of
//! the workload (clean and, on PTM kinds, torn), recovers the captured
//! image, and checks the recovered committed memory word-for-word against
//! the committed-prefix oracle ([`ptm_sim::reference::crash_reference`]) —
//! plus idempotence of the recovery pass itself. A seed adds extra
//! randomly-placed crash points, and the whole sweep is digested so the
//! report alone reproduces it.

use crate::faults::cell_machine;
use crate::parallel::{CellSpec, CellWorkload};
use ptm_sim::crash::CrashPlan;
use ptm_sim::SystemKind;
use ptm_types::rng::{Fnv1a64, SplitMix64};
use ptm_types::Granularity;
use ptm_workloads::Scale;
use std::time::Instant;

/// Everything one cell's crash sweep produces.
#[derive(Debug, Clone)]
pub struct CrashCellReport {
    /// The spec that was swept.
    pub spec: CellSpec,
    /// Total scheduler steps of the uninterrupted run.
    pub total_steps: u64,
    /// The stride between grid crash points.
    pub stride: u64,
    /// Crash points executed (grid + torn variants + seeded extras).
    pub points: u64,
    /// Points where the torn mode actually tore a live TAV publish.
    pub torn_points: u64,
    /// Oracle mismatches across all points (must be 0).
    pub mismatches: u64,
    /// Points where a second recovery was not a no-op (must be 0).
    pub non_idempotent: u64,
    /// Live transactions discarded, summed over all points.
    pub transactions_discarded: u64,
    /// Blocks restored, summed over all points.
    pub blocks_restored: u64,
    /// Worst single-point blocks restored.
    pub worst_blocks_restored: u64,
    /// Torn TAV nodes repaired, summed over all points.
    pub torn_repaired: u64,
    /// Recovery wall-clock, summed over all points, nanoseconds.
    pub recovery_wall_ns: u64,
    /// Worst single-point recovery wall-clock, nanoseconds.
    pub worst_recovery_wall_ns: u64,
    /// FNV-1a digest over every executed plan, in sweep order.
    pub plan_digest: u64,
    /// Host wall-clock for the whole sweep, nanoseconds.
    pub wall_ns: u64,
}

/// Whether the torn-metadata mode can apply to this kind.
fn is_ptm(kind: SystemKind) -> bool {
    matches!(kind, SystemKind::CopyPtm | SystemKind::SelectPtm(_))
}

/// The crash-sweep grid: the six transactional system kinds crossed with an
/// overflowing and a contended synthetic workload.
pub fn crash_cells(scale: Scale) -> Vec<CellSpec> {
    let kinds = [
        SystemKind::Vtm,
        SystemKind::VictimVtm,
        SystemKind::CopyPtm,
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::SelectPtm(Granularity::WordCache),
        SystemKind::SelectPtm(Granularity::WordCacheMem),
    ];
    let workloads = [
        CellWorkload::SyntheticOverflowing(3),
        CellWorkload::SyntheticContended(5),
    ];
    let mut cells = Vec::new();
    for workload in workloads {
        for kind in kinds {
            cells.push(CellSpec {
                family: "crash",
                workload,
                kind,
                scale,
            });
        }
    }
    cells
}

/// Sweeps one cell: crashes at every `stride`-th step (every K-th step; the
/// default stride lands ~16 grid points), runs each PTM grid point a second
/// time with the torn mode on, and adds `extra_random` seed-derived points.
///
/// # Panics
///
/// Panics if any point's run stops making progress before its crash step (a
/// simulator bug).
pub fn sweep_cell(
    spec: &CellSpec,
    stride_override: Option<u64>,
    seed: u64,
    extra_random: u64,
) -> CrashCellReport {
    let sweep_start = Instant::now();
    let total_steps = {
        let (mut probe, _) = cell_machine(spec);
        probe.run_until_crash(&CrashPlan::at_step(u64::MAX)).step
    };
    let stride = stride_override.unwrap_or((total_steps / 16).max(1)).max(1);

    let mut plans = Vec::new();
    let mut step = 0;
    loop {
        plans.push(CrashPlan::at_step(step));
        if is_ptm(spec.kind) {
            plans.push(CrashPlan::torn_at_step(step));
        }
        if step >= total_steps {
            break;
        }
        step = (step + stride).min(total_steps);
    }
    let mut rng = SplitMix64::new(seed);
    for _ in 0..extra_random {
        plans.push(CrashPlan {
            step: rng.next_u64() % (total_steps + 1),
            torn: is_ptm(spec.kind) && rng.next_u64() & 1 == 1,
        });
    }

    let mut digest = Fnv1a64::new();
    let mut report = CrashCellReport {
        spec: *spec,
        total_steps,
        stride,
        points: 0,
        torn_points: 0,
        mismatches: 0,
        non_idempotent: 0,
        transactions_discarded: 0,
        blocks_restored: 0,
        worst_blocks_restored: 0,
        torn_repaired: 0,
        recovery_wall_ns: 0,
        worst_recovery_wall_ns: 0,
        plan_digest: 0,
        wall_ns: 0,
    };

    for plan in &plans {
        digest.write_u64(plan.digest());
        let (mut m, programs) = cell_machine(spec);
        let mut img = m.run_until_crash(plan);
        let rec_start = Instant::now();
        let stats = img.recover();
        let rec_ns = rec_start.elapsed().as_nanos() as u64;

        report.points += 1;
        report.torn_points += u64::from(img.torn.is_some());
        report.mismatches += img.diff_committed(&programs).len() as u64;
        report.non_idempotent += u64::from(!img.recover().is_noop());
        report.transactions_discarded += stats.transactions_discarded;
        report.blocks_restored += stats.blocks_restored;
        report.worst_blocks_restored = report.worst_blocks_restored.max(stats.blocks_restored);
        report.torn_repaired += stats.torn_nodes_repaired;
        report.recovery_wall_ns += rec_ns;
        report.worst_recovery_wall_ns = report.worst_recovery_wall_ns.max(rec_ns);
    }

    report.plan_digest = digest.finish();
    report.wall_ns = sweep_start.elapsed().as_nanos() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: SystemKind) -> CellSpec {
        CellSpec {
            family: "crash",
            workload: CellWorkload::SyntheticOverflowing(3),
            kind,
            scale: Scale::Tiny,
        }
    }

    #[test]
    fn sweep_is_clean_and_covers_endpoints() {
        let r = sweep_cell(&spec(SystemKind::CopyPtm), None, 0xC1A54, 2);
        assert_eq!(r.mismatches, 0, "oracle failed somewhere in the sweep");
        assert_eq!(r.non_idempotent, 0, "recovery was not idempotent");
        // Grid points double up with torn variants on PTM kinds, plus the
        // two seeded extras.
        assert!(r.points > 2 * (r.total_steps / r.stride));
        assert!(r.total_steps > 0);
    }

    #[test]
    fn sweep_digest_is_reproducible_and_seed_sensitive() {
        let a = sweep_cell(&spec(SystemKind::Vtm), Some(10_000), 1, 2);
        let b = sweep_cell(&spec(SystemKind::Vtm), Some(10_000), 1, 2);
        let c = sweep_cell(&spec(SystemKind::Vtm), Some(10_000), 2, 2);
        assert_eq!(a.plan_digest, b.plan_digest);
        assert_ne!(a.plan_digest, c.plan_digest, "seeded extras must differ");
        assert_eq!(a.blocks_restored, b.blocks_restored);
    }
}
