//! The service-chaos sweep: crash-recovery, shard-fault degradation and
//! backpressure drills for the fault-tolerant PTM service frontend.
//!
//! Three drills, emitted together as `BENCH_service_chaos.json`:
//!
//! 1. **Crash sweep** — for every force policy × log-fault seed class,
//!    the journaled pipeline is killed at every K-th step and recovered;
//!    each crash point is held to the committed-prefix oracle (recovered
//!    transactions are a submission prefix, no durably-acked transaction
//!    is lost, force-covered blocks redeliver bit-identical receipts,
//!    balances equal the naive ledger fold, and recovery is idempotent).
//! 2. **Degradation cells** — shard storms (abort storms, memory
//!    squeezes, TAV caps) on every block; the service must complete every
//!    transaction, degraded and counted, never deadlocked.
//! 3. **Backpressure** — a bursty client floods the live service's
//!    bounded queue; overload must shed with `Busy { retry_after }`
//!    instead of growing the queue without bound.

use ptm_core::durability::ForcePolicy;
use ptm_mem::logdev::{LogDevConfig, LogFaultPlan};
use ptm_service::{
    recover, run_stream_with_crash, CrashRun, JournalConfig, Service, ServiceConfig,
    ServiceCrashImage, ServiceCrashPlan, ShardChaosConfig, SubmitError,
};
use ptm_workloads::{
    service::{generate, generate_bursts},
    BurstConfig, ClientTx, Scale, ServiceWorkloadConfig,
};
use std::collections::BTreeMap;
use std::time::Instant;

/// Force policies of the crash sweep, with their report labels.
pub const POLICIES: [(ForcePolicy, &str); 3] = [
    (ForcePolicy::Eager, "eager"),
    (ForcePolicy::Group(4), "group4"),
    (ForcePolicy::Lazy, "lazy"),
];

/// Log-device fault-seed classes: 0 is the fault-free device; 6, 1, 2
/// and 7 emphasize transient errors, stalls, reordered completions and
/// torn appends respectively (the same classes the durable sweep uses).
pub const FAULT_SEEDS: [u64; 5] = [0, 6, 1, 2, 7];

/// Shards of every chaos cell.
pub const SHARDS: usize = 2;

/// Admission batch size of every chaos cell.
pub const MAX_BATCH: usize = 8;

/// Client stream for the chaos drills at a scale. Deliberately smaller
/// than the throughput sweep's stream: a crash sweep replays the
/// pipeline prefix at every point, so the cost is quadratic in stream
/// length.
pub fn chaos_stream_config(scale: Scale) -> ServiceWorkloadConfig {
    let factor = scale.factor() as u64;
    ServiceWorkloadConfig {
        accounts: 1_000 * factor,
        skew: 0.9,
        seed: 0xC4A5_CA05 + factor,
        txs: 40 * factor as usize,
        read_only_pct: 20,
    }
}

/// The journaled service config of one crash-sweep cell.
pub fn cell_config(scale: Scale, policy: ForcePolicy, fault_seed: u64) -> ServiceConfig {
    let wcfg = chaos_stream_config(scale);
    let mut cfg = ServiceConfig::new(wcfg.accounts, SHARDS);
    cfg.max_batch = MAX_BATCH;
    // The realistic device keeps appends in flight long enough for the
    // torn/lost fault classes to actually bite.
    cfg.with_journal(JournalConfig {
        policy,
        dev: LogDevConfig::realistic(),
        faults: LogFaultPlan::from_seed(fault_seed),
    })
}

/// What one oracle-checked crash point contributed to a cell.
#[derive(Debug, Clone, Copy)]
pub struct OraclePoint {
    /// Client transactions that survived recovery.
    pub recovered: usize,
    /// Sealed-but-uncommitted blocks recovery had to re-execute.
    pub reexecuted: u64,
    /// Accepted-but-unsealed transactions recovery re-sealed.
    pub tail_txs: u64,
}

/// Recovers `image` and holds it to the committed-prefix oracle.
///
/// # Panics
///
/// Panics (failing the bench) on any violation: a phantom or duplicate
/// receipt, a lost durably-acked transaction, a durable block whose
/// redelivered receipts differ from the pre-crash delivery, a balance
/// diverging from the naive ledger fold, or a non-idempotent recovery.
pub fn oracle_check(
    cfg: &ServiceConfig,
    stream: &[ClientTx],
    image: &ServiceCrashImage,
) -> OraclePoint {
    let rec = recover(cfg, &image.journal);
    assert_eq!(rec.report.delta_mismatches, 0, "re-execution is pure");

    // (1) Committed prefix of the submission order, each tx exactly once.
    let mut recovered: Vec<u64> = rec
        .outcomes
        .iter()
        .flat_map(|o| o.receipts.iter().map(|r| r.tx_id))
        .collect();
    recovered.sort_unstable();
    recovered.windows(2).for_each(|w| {
        assert_ne!(w[0], w[1], "duplicate receipt for client tx {}", w[0]);
    });
    let n = recovered.len();
    assert!(n <= image.accepted.len(), "recovery cannot invent accepts");
    let mut expected: Vec<u64> = stream[..n].iter().map(|t| t.id).collect();
    expected.sort_unstable();
    assert_eq!(recovered, expected, "recovered set is a submission prefix");

    // (2) Durably acked ⊆ recovered: no lost accepted-and-acked tx.
    for id in &image.acked {
        assert!(
            recovered.binary_search(id).is_ok(),
            "acked tx {id} lost by recovery (step {})",
            image.at_step
        );
    }

    // (3) No phantom receipts: force-covered blocks recover committed,
    // bit-identical to what was delivered before the crash.
    for seq in &image.durable_blocks {
        let rec_block = rec
            .outcomes
            .iter()
            .find(|o| o.block_seq == *seq)
            .unwrap_or_else(|| panic!("durable block {seq} vanished"));
        if let Some(orig) = image.delivered.iter().find(|o| o.block_seq == *seq) {
            assert_eq!(
                orig.receipts, rec_block.receipts,
                "receipt redelivery for block {seq} must be bit-identical"
            );
            assert_eq!(orig.deltas, rec_block.deltas);
        }
    }

    // (4) Balances are the naive wrapping fold of the recovered prefix.
    let mut ledger: BTreeMap<u64, u32> = BTreeMap::new();
    for tx in stream[..n].iter().filter(|t| !t.read_only) {
        let e = ledger.entry(tx.from).or_insert(0);
        *e = e.wrapping_sub(tx.amount);
        let e = ledger.entry(tx.to).or_insert(0);
        *e = e.wrapping_add(tx.amount);
    }
    let expected_balances: Vec<(u64, u32)> = ledger.into_iter().filter(|&(_, b)| b != 0).collect();
    assert_eq!(rec.balances, expected_balances, "ledger fold mismatch");

    // (5) Idempotence: recovering the recovered journal is a no-op.
    let again = recover(cfg, &rec.crash_image());
    assert_eq!(again.balances, rec.balances);
    assert_eq!(again.report.blocks_reexecuted, 0, "everything is committed");
    assert_eq!(again.report.tail_txs, 0, "no tail remains");
    assert_eq!(again.outcomes.len(), rec.outcomes.len());

    OraclePoint {
        recovered: n,
        reexecuted: rec.report.blocks_reexecuted,
        tail_txs: rec.report.tail_txs,
    }
}

/// One (force policy × fault seed) cell of the crash sweep.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Force-policy label.
    pub policy: &'static str,
    /// Log-device fault seed class.
    pub fault_seed: u64,
    /// Crash points exercised (each oracle-checked).
    pub points: u64,
    /// Client transactions per stream.
    pub txs: usize,
    /// Blocks of the clean run.
    pub blocks: u64,
    /// Fewest transactions surviving any crash point.
    pub min_recovered: usize,
    /// Sealed-but-uncommitted blocks re-executed, summed over points.
    pub reexecuted: u64,
    /// Accepted-but-unsealed transactions re-sealed, summed over points.
    pub tail_txs: u64,
    /// Journal append retries of the clean run (fault absorption).
    pub append_retries: u64,
    /// Journal forces of the clean run.
    pub forces: u64,
    /// Slowest-shard simulated cycles of the clean run.
    pub clean_cycles: u64,
    /// Host wall time of the whole cell, nanoseconds.
    pub wall_ns: u64,
}

/// Sweeps the crash plan over one cell at stride `every_k`, oracle-
/// checking every point, and finishes with the clean (crash-free) run.
pub fn run_crash_cell(
    scale: Scale,
    policy: ForcePolicy,
    label: &'static str,
    fault_seed: u64,
    every_k: u64,
) -> ChaosCell {
    let t0 = Instant::now();
    let cfg = cell_config(scale, policy, fault_seed);
    let stream = generate(&chaos_stream_config(scale));
    let mut cell = ChaosCell {
        policy: label,
        fault_seed,
        points: 0,
        txs: stream.len(),
        blocks: 0,
        min_recovered: usize::MAX,
        reexecuted: 0,
        tail_txs: 0,
        append_retries: 0,
        forces: 0,
        clean_cycles: 0,
        wall_ns: 0,
    };
    let mut at_step = 0;
    loop {
        match run_stream_with_crash(cfg, &stream, Some(ServiceCrashPlan { at_step })) {
            CrashRun::Crashed(image) => {
                let point = oracle_check(&cfg, &stream, &image);
                cell.points += 1;
                cell.min_recovered = cell.min_recovered.min(point.recovered);
                cell.reexecuted += point.reexecuted;
                cell.tail_txs += point.tail_txs;
                at_step += every_k;
            }
            CrashRun::Completed(report) => {
                assert_eq!(report.txs, stream.len() as u64, "clean run serves all");
                assert_eq!(
                    report.acked_txs,
                    stream.len() as u64,
                    "clean shutdown force-acks everything"
                );
                let j = report.journal.expect("journaled cell");
                cell.blocks = report.blocks;
                cell.append_retries = j.retries;
                cell.forces = j.forces;
                cell.clean_cycles = report.shard_cycles;
                break;
            }
        }
    }
    assert!(cell.points > 0, "the sweep must actually crash somewhere");
    cell.min_recovered = cell.min_recovered.min(cell.txs);
    cell.wall_ns = t0.elapsed().as_nanos() as u64;
    cell
}

/// The full crash sweep: every force policy × fault-seed class.
pub fn run_crash_sweep(scale: Scale, every_k: u64) -> Vec<ChaosCell> {
    let mut cells = Vec::new();
    for (policy, label) in POLICIES {
        for &seed in &FAULT_SEEDS {
            eprintln!("service_chaos: crash sweep {label} x fault seed {seed}...");
            cells.push(run_crash_cell(scale, policy, label, seed, every_k));
        }
    }
    cells
}

/// One shard-storm degradation cell.
#[derive(Debug, Clone)]
pub struct DegradationCell {
    /// Storm seed.
    pub chaos_seed: u64,
    /// Blocks executed.
    pub blocks: u64,
    /// Client transactions served (must be the whole stream).
    pub txs: u64,
    /// Shard attempts retried after a fault.
    pub retries: u64,
    /// Shard attempts that blew their cycle budget.
    pub stalls: u64,
    /// Shards escalated to serial-irrevocable execution.
    pub escalations: u64,
    /// Blocks that completed degraded.
    pub degraded_blocks: u64,
    /// Host wall time, nanoseconds.
    pub wall_ns: u64,
}

/// Degradation-drill cells: `(storm seed, cycle_budget, max_retries)`.
/// A typical shard run at this block size costs ~1.6k simulated cycles,
/// so the three cells pin the three containment outcomes: a tight budget
/// with headroom to retry (stall → backoff → doubled budget → recover),
/// a starved budget with one retry (stall → escalate to
/// serial-irrevocable), and the 2M-cycle production default (storms
/// absorbed as plain aborts, no degradation).
pub const CHAOS_SEEDS: [(u64, u64, u32); 3] =
    [(77, 800, 3), (1234, 400, 1), (987_654_321, 2_000_000, 3)];

/// Runs the journaled pipeline under shard storms on every block: the
/// service must serve every transaction (degraded, never wedged) with a
/// conserved ledger.
pub fn run_degradation(scale: Scale) -> Vec<DegradationCell> {
    let stream = generate(&chaos_stream_config(scale));
    let mut cells = Vec::new();
    for &(seed, cycle_budget, max_retries) in &CHAOS_SEEDS {
        let t0 = Instant::now();
        let mut chaos = ShardChaosConfig::new(seed);
        chaos.cycle_budget = cycle_budget;
        chaos.max_retries = max_retries;
        let cfg = cell_config(scale, ForcePolicy::Group(4), 6).with_chaos(chaos);
        let CrashRun::Completed(report) = run_stream_with_crash(cfg, &stream, None) else {
            panic!("no crash plan, must complete");
        };
        assert_eq!(report.txs, stream.len() as u64, "degraded, not dropped");
        let sum = report
            .balances
            .iter()
            .fold(0u32, |acc, &(_, b)| acc.wrapping_add(b));
        assert_eq!(sum, 0, "ledger conserved under storms (seed {seed})");
        cells.push(DegradationCell {
            chaos_seed: seed,
            blocks: report.blocks,
            txs: report.txs,
            retries: report.shard_retries,
            stalls: report.shard_stalls,
            escalations: report.shard_escalations,
            degraded_blocks: report.degraded_blocks,
            wall_ns: t0.elapsed().as_nanos() as u64,
        });
    }
    cells
}

/// The backpressure drill's outcome.
#[derive(Debug, Clone)]
pub struct BackpressureReport {
    /// Bounded queue depth of the drill.
    pub queue_depth: usize,
    /// Arrival bursts offered.
    pub bursts: usize,
    /// Transactions offered across all bursts.
    pub offered: u64,
    /// Transactions admitted (served with a receipt).
    pub admitted: u64,
    /// Submissions shed with `Busy`.
    pub shed: u64,
    /// Largest `retry_after` hint observed, milliseconds.
    pub max_retry_after_ms: u64,
    /// Host wall time, nanoseconds.
    pub wall_ns: u64,
}

/// Floods a live service's bounded queue with bursty arrivals. Overload
/// must shed with a non-zero `retry_after` hint, the backlog must stay
/// within the configured depth, and every *admitted* transaction must be
/// served.
pub fn run_backpressure(scale: Scale) -> BackpressureReport {
    let t0 = Instant::now();
    let mut wcfg = chaos_stream_config(scale);
    wcfg.txs *= 4; // the flood wants volume, not journal coverage
    let mut cfg = ServiceConfig::new(wcfg.accounts, SHARDS);
    cfg.max_batch = MAX_BATCH;
    // A deliberately tiny queue against spiky arrivals: the drill is
    // about the shedding path, not sustained throughput.
    cfg.queue_depth = MAX_BATCH * 2;
    cfg.batch_deadline = std::time::Duration::from_millis(5);
    let bursts = generate_bursts(&wcfg, &BurstConfig::new(MAX_BATCH * 2));
    let mut svc = Service::start(cfg);
    let (mut offered, mut admitted, mut shed) = (0u64, 0u64, 0u64);
    let mut max_retry_after_ms = 0u64;
    for burst in &bursts {
        for tx in burst {
            offered += 1;
            match svc.submit(*tx) {
                Ok(()) => admitted += 1,
                Err(SubmitError::Busy { retry_after }) => {
                    shed += 1;
                    assert!(retry_after > std::time::Duration::ZERO, "honest hint");
                    max_retry_after_ms = max_retry_after_ms.max(retry_after.as_millis() as u64);
                }
                Err(SubmitError::Closed) => panic!("service is open"),
            }
            assert!(svc.backlog() <= cfg.queue_depth, "bounded means bounded");
        }
        // An overloaded client drains receipts between bursts but does
        // not wait out the hint — keeps the drill adversarial.
        while svc.outcomes().try_recv().is_ok() {}
    }
    let report = svc.shutdown().expect("flooding never kills the worker");
    assert_eq!(report.txs, admitted, "every admitted tx got a receipt");
    assert_eq!(report.shed, shed, "the report counts exactly the sheds");
    assert!(shed > 0, "the flood must overrun a depth-16 queue");
    BackpressureReport {
        queue_depth: cfg.queue_depth,
        bursts: bursts.len(),
        offered,
        admitted,
        shed,
        max_retry_after_ms,
        wall_ns: t0.elapsed().as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_crash_cell_is_oracle_clean_at_a_coarse_stride() {
        let cell = run_crash_cell(Scale::Tiny, ForcePolicy::Group(4), "group4", 6, 23);
        assert!(cell.points > 0);
        assert_eq!(cell.txs, chaos_stream_config(Scale::Tiny).txs);
        assert!(cell.blocks > 0);
        assert!(cell.min_recovered <= cell.txs);
        assert!(cell.forces > 0);
    }

    #[test]
    fn tiny_degradation_counts_the_storms_it_survives() {
        let cells = run_degradation(Scale::Tiny);
        assert_eq!(cells.len(), CHAOS_SEEDS.len());
        for c in &cells {
            assert_eq!(c.txs, chaos_stream_config(Scale::Tiny).txs as u64);
        }
        // The three cells pin the three containment outcomes; a drill
        // where none of them fires is a no-op.
        assert!(
            cells.iter().any(|c| c.retries > 0),
            "the tight-budget cell must retry: {cells:?}"
        );
        assert!(
            cells.iter().any(|c| c.escalations > 0),
            "the starved-budget cell must escalate: {cells:?}"
        );
    }

    #[test]
    fn tiny_backpressure_sheds_and_serves_the_rest() {
        let r = run_backpressure(Scale::Tiny);
        assert!(r.shed > 0);
        assert!(r.admitted > 0);
        assert_eq!(r.offered, r.admitted + r.shed);
        assert!(r.max_retry_after_ms > 0);
    }
}
