//! The benchmark-history trajectory embedded in `BENCH_hotpath.json`.
//!
//! Each hotpath run appends one [`HistoryEntry`] — commit, toolchain, host,
//! scale and the measured cycle-loop throughput — to the report's
//! `"history"` array, turning the committed JSON into a performance
//! trajectory instead of a single point. The `bench_gate` binary compares
//! the last entries of two reports (measured on the *same* host, e.g. a CI
//! runner building base and head) and fails on a throughput regression.
//!
//! The reports are hand-written JSON, so this module does the minimal
//! parsing the trajectory needs: verbatim extraction of the existing entry
//! objects by bracket scanning, and flat field lookups inside one entry.
//! Entries are flat objects (no nested arrays or objects, no brackets in
//! strings), which keeps both scans exact.

/// One point of the performance trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Short git revision the run was built from (`-dirty` if uncommitted).
    pub git_rev: String,
    /// `rustc --version` of the build.
    pub rustc: String,
    /// Host cores visible to the run.
    pub host_cores: usize,
    /// Benchmark scale (`Tiny`, `Small`, `Full`).
    pub scale: String,
    /// Worker threads of the parallel pass.
    pub workers: usize,
    /// Number of benchmark cells.
    pub cells: usize,
    /// Simulated cycles summed over all cells (the work done).
    pub total_cycles: u64,
    /// Wall time of the sequential pass, nanoseconds (the time it took).
    pub seq_wall_ns: u64,
    /// Wall time of the parallel/executor pass, nanoseconds. `None` for
    /// trajectories that only measure the sequential loop (hotpath).
    pub parallel_wall_ns: Option<u64>,
    /// Fraction of executed steps served from speculation in the parallel
    /// pass. `None` for sequential-only trajectories.
    pub spec_commit_fraction: Option<f64>,
    /// Log-force policy of a durable-sweep entry (`"eager"`, `"lazy"`,
    /// `"group4"`, or `"mixed"` for a whole-matrix sweep). `None` for
    /// non-durable trajectories. Durable entries are only gate-comparable
    /// against the same policy — commit latency is the very thing the
    /// policies trade, so a cross-policy ratio measures the configuration,
    /// not a regression.
    pub force_policy: Option<String>,
}

impl HistoryEntry {
    /// Cycle-loop throughput: simulated cycles advanced per wall second.
    pub fn throughput_cycles_per_s(&self) -> u64 {
        ((self.total_cycles as u128 * 1_000_000_000) / u128::from(self.seq_wall_ns.max(1))) as u64
    }

    /// Parallel-pass throughput, when the entry carries a parallel point.
    pub fn parallel_throughput_cycles_per_s(&self) -> Option<u64> {
        let wall = self.parallel_wall_ns?;
        Some(((self.total_cycles as u128 * 1_000_000_000) / u128::from(wall.max(1))) as u64)
    }

    /// Wall-clock speedup of the parallel pass over the sequential pass.
    /// Only meaningful when `host_cores > 1`; on a single-core host the
    /// ratio measures executor overhead, not parallelism. A hard error —
    /// not a panic — when the entry carries no parallel wall time (a
    /// hand-edited or pre-trajectory point), naming the entry so the
    /// refusal is actionable.
    pub fn speedup(&self) -> Result<f64, String> {
        let Some(wall) = self.parallel_wall_ns else {
            return Err(format!(
                "history entry {} ({} workers, {} cells at {}) carries no \
                 parallel_wall_ns — cannot compute a speedup",
                self.git_rev, self.workers, self.cells, self.scale
            ));
        };
        Ok(self.seq_wall_ns as f64 / wall.max(1) as f64)
    }

    /// Renders the entry as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"git_rev\": \"{}\", \"rustc\": \"{}\", \"host_cores\": {}, \
             \"scale\": \"{}\", \"workers\": {}, \"cells\": {}, \
             \"total_cycles\": {}, \"seq_wall_ns\": {}, \
             \"throughput_cycles_per_s\": {}",
            self.git_rev,
            self.rustc,
            self.host_cores,
            self.scale,
            self.workers,
            self.cells,
            self.total_cycles,
            self.seq_wall_ns,
            self.throughput_cycles_per_s(),
        );
        if let Some(wall) = self.parallel_wall_ns {
            // Computed from `wall` directly: `speedup()` is for readers
            // that must handle entries without a parallel point.
            s.push_str(&format!(
                ", \"parallel_wall_ns\": {wall}, \"speedup\": {:.4}",
                self.seq_wall_ns as f64 / wall.max(1) as f64
            ));
        }
        if let Some(f) = self.spec_commit_fraction {
            s.push_str(&format!(", \"spec_commit_fraction\": {f:.4}"));
        }
        if let Some(p) = &self.force_policy {
            s.push_str(&format!(", \"force_policy\": \"{p}\""));
        }
        s.push('}');
        s
    }

    /// Parses the fields back out of one entry object. Returns `None` if a
    /// required field is missing or malformed; the parallel fields are
    /// optional so sequential-only (hotpath) entries round-trip too.
    pub fn parse(entry: &str) -> Option<HistoryEntry> {
        Some(HistoryEntry {
            git_rev: string_field(entry, "git_rev")?,
            rustc: string_field(entry, "rustc")?,
            host_cores: number_field(entry, "host_cores")? as usize,
            scale: string_field(entry, "scale")?,
            workers: number_field(entry, "workers")? as usize,
            cells: number_field(entry, "cells")? as usize,
            total_cycles: number_field(entry, "total_cycles")?,
            seq_wall_ns: number_field(entry, "seq_wall_ns")?,
            parallel_wall_ns: number_field(entry, "parallel_wall_ns"),
            spec_commit_fraction: float_field(entry, "spec_commit_fraction"),
            force_policy: string_field(entry, "force_policy"),
        })
    }
}

/// Locates `"key":` in a flat JSON object and returns the raw value text.
fn raw_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = obj.find(&tag)? + tag.len();
    let rest = obj[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn string_field(obj: &str, key: &str) -> Option<String> {
    let raw = raw_field(obj, key)?;
    Some(raw.strip_prefix('"')?.strip_suffix('"')?.to_string())
}

fn number_field(obj: &str, key: &str) -> Option<u64> {
    raw_field(obj, key)?.parse().ok()
}

fn float_field(obj: &str, key: &str) -> Option<f64> {
    raw_field(obj, key)?.parse().ok()
}

/// Extracts the verbatim entry objects of a report's `"history"` array.
/// Returns an empty list when the report has no history (or `json` is not a
/// report at all) — the trajectory then starts fresh.
pub fn prior_entries(json: &str) -> Vec<String> {
    let Some(tag) = json.find("\"history\":") else {
        return Vec::new();
    };
    let Some(open) = json[tag..].find('[') else {
        return Vec::new();
    };
    let body = &json[tag + open + 1..];
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = start.take() {
                        entries.push(body[s..=i].to_string());
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    entries
}

/// The last entry of a report's history, parsed.
pub fn last_entry(json: &str) -> Option<HistoryEntry> {
    prior_entries(json)
        .last()
        .and_then(|e| HistoryEntry::parse(e))
}

/// The report's latest trajectory point — the last `"history"` entry when
/// one exists, otherwise an entry synthesized from the report's own fields
/// (pre-trajectory reports carried scale, host and wall times at the top
/// level and per-cell simulated cycles). Lets the gate compare against a
/// base build that predates the history array.
pub fn entry_from_report(json: &str) -> Option<HistoryEntry> {
    if let Some(e) = last_entry(json) {
        return Some(e);
    }
    let cells_open = json.find("\"cells\": [")?;
    let cells_body = &json[cells_open..];
    let cells_end = cells_body.find("\n  ],").unwrap_or(cells_body.len());
    let cells_body = &cells_body[..cells_end];
    let mut total_cycles = 0u64;
    let mut cells = 0usize;
    let mut rest = cells_body;
    while let Some(pos) = rest.find("\"cycles\":") {
        rest = &rest[pos..];
        total_cycles += number_field(rest, "cycles")?;
        cells += 1;
        rest = &rest[9..];
    }
    // The parallel numbers live in the totals block; scanning from there
    // skips the per-cell objects that repeat the same keys. Pre-trajectory
    // parallel_sim reports record the thread count as "exec_threads".
    let totals = json.find("\"totals\":").map_or("", |i| &json[i..]);
    Some(HistoryEntry {
        git_rev: string_field(json, "git_rev").unwrap_or_else(|| "unknown".into()),
        rustc: string_field(json, "rustc").unwrap_or_else(|| "unknown".into()),
        host_cores: number_field(json, "host_cores")? as usize,
        scale: string_field(json, "scale")?,
        workers: number_field(json, "workers")
            .or_else(|| number_field(json, "exec_threads"))
            .unwrap_or(1) as usize,
        cells,
        total_cycles,
        seq_wall_ns: number_field(json, "seq_wall_ns")?,
        parallel_wall_ns: number_field(totals, "par_wall_ns"),
        spec_commit_fraction: float_field(totals, "spec_commit_fraction"),
        // Durable reports carry the swept policy at the top level.
        force_policy: string_field(
            &json[..json.find("\"cells\": [").unwrap_or(json.len())],
            "force_policy",
        ),
    })
}

/// Environment variable that permits appending `-dirty` trajectory points.
pub const ALLOW_DIRTY_ENV: &str = "PTM_BENCH_ALLOW_DIRTY";

/// Whether the user explicitly opted into appending unreproducible points.
pub fn dirty_allowed() -> bool {
    std::env::var(ALLOW_DIRTY_ENV).is_ok_and(|v| v == "1")
}

/// Refuses a trajectory point that can never be rebuilt for comparison: a
/// `-dirty` revision has no checkout to re-measure, so committing it into a
/// BENCH_*.json pollutes the trajectory. `allow_dirty` (normally
/// [`dirty_allowed`]) overrides for local experimentation.
pub fn check_appendable(entry: &HistoryEntry, allow_dirty: bool) -> Result<(), String> {
    if entry.git_rev.ends_with("-dirty") && !allow_dirty {
        return Err(format!(
            "refusing to append history entry for {}: the working tree has \
             uncommitted changes, so this point can never be rebuilt for \
             comparison — commit first, or set {ALLOW_DIRTY_ENV}=1 to \
             record it anyway",
            entry.git_rev
        ));
    }
    Ok(())
}

/// Renders the `"history"` array block (prior entries plus the new one),
/// indented for the top level of a report object, ending in `,\n`.
/// Refuses (per [`check_appendable`]) to extend the trajectory with a
/// `-dirty` point unless `allow_dirty` is set.
pub fn render_history(
    prior: &[String],
    new_entry: &HistoryEntry,
    allow_dirty: bool,
) -> Result<String, String> {
    check_appendable(new_entry, allow_dirty)?;
    let mut s = String::from("  \"history\": [\n");
    for e in prior {
        s.push_str("    ");
        s.push_str(e);
        s.push_str(",\n");
    }
    s.push_str("    ");
    s.push_str(&new_entry.to_json());
    s.push_str("\n  ],\n");
    Ok(s)
}

/// Bin-side wrapper around [`render_history`]: renders the history block,
/// or exits 2 with the refusal message — the bench emitters' uniform
/// refuse-don't-pollute behavior. `bin` prefixes the message.
pub fn render_history_or_die(bin: &str, prior: &[String], entry: &HistoryEntry) -> String {
    render_history(prior, entry, dirty_allowed()).unwrap_or_else(|e| {
        eprintln!("{bin}: {e}");
        std::process::exit(2);
    })
}

/// Compares two trajectory points measured on the same host: `Ok(ratio)`
/// with `ratio = new/old` throughput when comparable, `Err` when the
/// points were measured under different conditions (scale, cell count or
/// host width) and a wall-clock comparison would be meaningless.
pub fn throughput_ratio(old: &HistoryEntry, new: &HistoryEntry) -> Result<f64, String> {
    if old.scale != new.scale || old.cells != new.cells {
        return Err(format!(
            "incomparable runs: {} cells at {} vs {} cells at {}",
            old.cells, old.scale, new.cells, new.scale
        ));
    }
    if old.host_cores != new.host_cores {
        return Err(format!(
            "incomparable hosts: {} cores vs {} cores",
            old.host_cores, new.host_cores
        ));
    }
    Ok(new.throughput_cycles_per_s() as f64 / old.throughput_cycles_per_s().max(1) as f64)
}

/// Compares the *parallel-pass* throughput of two trajectory points:
/// `Ok(ratio)` with `ratio = new/old` when comparable. On top of
/// [`throughput_ratio`]'s conditions, the two runs must use the same
/// worker count — a 1-worker vs 4-worker wall-clock ratio measures the
/// configuration change, not a regression — and both must actually carry a
/// parallel measurement.
pub fn parallel_ratio(old: &HistoryEntry, new: &HistoryEntry) -> Result<f64, String> {
    if old.scale != new.scale || old.cells != new.cells {
        return Err(format!(
            "incomparable runs: {} cells at {} vs {} cells at {}",
            old.cells, old.scale, new.cells, new.scale
        ));
    }
    if old.host_cores != new.host_cores {
        return Err(format!(
            "incomparable hosts: {} cores vs {} cores",
            old.host_cores, new.host_cores
        ));
    }
    if old.workers != new.workers {
        return Err(format!(
            "incomparable worker counts: {} vs {}",
            old.workers, new.workers
        ));
    }
    let Some(old_t) = old.parallel_throughput_cycles_per_s() else {
        return Err(format!(
            "base entry {} carries no parallel trajectory point \
             (missing parallel_wall_ns)",
            old.git_rev
        ));
    };
    let Some(new_t) = new.parallel_throughput_cycles_per_s() else {
        return Err(format!(
            "head entry {} carries no parallel trajectory point \
             (missing parallel_wall_ns)",
            new.git_rev
        ));
    };
    Ok(new_t as f64 / old_t.max(1) as f64)
}

/// Compares two *durable-sweep* trajectory points: `Ok(ratio)` with
/// `ratio = new/old` throughput when comparable. On top of
/// [`throughput_ratio`]'s conditions, both entries must carry a force
/// policy and the policies must match — eager/lazy/group trade commit
/// latency for durability by design, so a cross-policy ratio would gate a
/// configuration change as if it were a regression.
pub fn durable_ratio(old: &HistoryEntry, new: &HistoryEntry) -> Result<f64, String> {
    let (Some(old_p), Some(new_p)) = (&old.force_policy, &new.force_policy) else {
        return Err("a run carries no durable trajectory point (no force_policy)".into());
    };
    if old_p != new_p {
        return Err(format!(
            "incomparable force policies: {old_p} vs {new_p} — \
             commit latency is the policy trade-off, not a regression"
        ));
    }
    throughput_ratio(old, new)
}

/// Compares two *service* trajectory points (`BENCH_service.json` or
/// `BENCH_service_chaos.json`): `Ok(ratio)` with `ratio = new/old`
/// throughput when comparable. On top of [`throughput_ratio`]'s
/// conditions, the shard counts (recorded as `workers`) must match, and
/// the `force_policy` tags must agree exactly — a plain service report
/// carries none, a chaos report carries `"mixed"`, and comparing one
/// against the other would gate the journal's force cost as if it were a
/// frontend regression.
pub fn service_ratio(old: &HistoryEntry, new: &HistoryEntry) -> Result<f64, String> {
    if old.workers != new.workers {
        return Err(format!(
            "incomparable shard counts: {} vs {}",
            old.workers, new.workers
        ));
    }
    if old.force_policy != new.force_policy {
        let name = |p: &Option<String>| p.clone().unwrap_or_else(|| "none".into());
        return Err(format!(
            "incomparable service reports: force_policy {} vs {} — a journaled \
             chaos sweep cannot gate against an unjournaled frontend sweep",
            name(&old.force_policy),
            name(&new.force_policy)
        ));
    }
    throughput_ratio(old, new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(cycles: u64, wall: u64) -> HistoryEntry {
        HistoryEntry {
            git_rev: "abc123def456".into(),
            rustc: "rustc 1.95.0".into(),
            host_cores: 4,
            scale: "Tiny".into(),
            workers: 1,
            cells: 49,
            total_cycles: cycles,
            seq_wall_ns: wall,
            parallel_wall_ns: None,
            spec_commit_fraction: None,
            force_policy: None,
        }
    }

    fn parallel_entry(cycles: u64, seq_wall: u64, par_wall: u64) -> HistoryEntry {
        HistoryEntry {
            workers: 4,
            parallel_wall_ns: Some(par_wall),
            spec_commit_fraction: Some(0.5),
            ..entry(cycles, seq_wall)
        }
    }

    #[test]
    fn entry_round_trips_through_json() {
        let e = entry(123_456_789, 1_000_000_000);
        let parsed = HistoryEntry::parse(&e.to_json()).unwrap();
        assert_eq!(parsed, e);
        assert_eq!(parsed.throughput_cycles_per_s(), 123_456_789);
        assert_eq!(parsed.parallel_throughput_cycles_per_s(), None);
        let err = parsed.speedup().unwrap_err();
        assert!(
            err.contains("abc123def456") && err.contains("parallel_wall_ns"),
            "speedup refusal must name the entry: {err}"
        );
    }

    #[test]
    fn parallel_entry_round_trips_through_json() {
        let e = parallel_entry(1_000_000, 2_000_000_000, 1_000_000_000);
        let parsed = HistoryEntry::parse(&e.to_json()).unwrap();
        assert_eq!(parsed, e);
        assert_eq!(parsed.parallel_throughput_cycles_per_s(), Some(1_000_000));
        assert_eq!(parsed.speedup(), Ok(2.0));
        // A parallel entry still parses as a valid sequential point.
        assert_eq!(parsed.throughput_cycles_per_s(), 500_000);
    }

    #[test]
    fn history_extraction_survives_rewrites() {
        let e1 = entry(100, 10);
        let e2 = entry(200, 10);
        let report = format!(
            "{{\n  \"scale\": \"Tiny\",\n{}  \"totals\": {{\"x\": 1}}\n}}\n",
            render_history(&[e1.to_json()], &e2, false).unwrap()
        );
        let prior = prior_entries(&report);
        assert_eq!(prior.len(), 2);
        assert_eq!(HistoryEntry::parse(&prior[0]).unwrap(), e1);
        assert_eq!(last_entry(&report).unwrap(), e2);
        // Appending a third entry preserves the first two verbatim.
        let e3 = entry(300, 10);
        let report2 = format!(
            "{{\n{}  \"ok\": true\n}}\n",
            render_history(&prior, &e3, false).unwrap()
        );
        assert_eq!(prior_entries(&report2).len(), 3);
        assert_eq!(last_entry(&report2).unwrap(), e3);
    }

    #[test]
    fn missing_history_starts_fresh() {
        assert!(prior_entries("{\"scale\": \"Tiny\"}").is_empty());
        assert!(last_entry("not json at all").is_none());
    }

    #[test]
    fn legacy_reports_yield_a_synthesized_point() {
        // A pre-trajectory report: no "history" array, per-cell cycles only.
        let report = concat!(
            "{\n",
            "  \"scale\": \"Tiny\",\n",
            "  \"workers\": 2,\n",
            "  \"host_cores\": 4,\n",
            "  \"cells\": [\n",
            "    {\"family\": \"t1\", \"cycles\": 100, \"wall_seq_ns\": 5},\n",
            "    {\"family\": \"t1\", \"cycles\": 250, \"wall_seq_ns\": 5}\n",
            "  ],\n",
            "  \"totals\": {\n    \"seq_wall_ns\": 700\n  }\n",
            "}\n",
        );
        let e = entry_from_report(report).unwrap();
        assert_eq!(e.git_rev, "unknown");
        assert_eq!(e.scale, "Tiny");
        assert_eq!(e.workers, 2);
        assert_eq!(e.host_cores, 4);
        assert_eq!(e.cells, 2);
        assert_eq!(e.total_cycles, 350);
        assert_eq!(e.seq_wall_ns, 700);
        assert_eq!(e.parallel_wall_ns, None);

        // A pre-trajectory parallel_sim report: thread count under
        // "exec_threads", parallel wall and commit fraction in the totals
        // block (the per-cell copies of the same keys must be skipped).
        let parallel_report = concat!(
            "{\n",
            "  \"scale\": \"Tiny\",\n",
            "  \"exec_threads\": 2,\n",
            "  \"host_cores\": 4,\n",
            "  \"cells\": [\n",
            "    {\"family\": \"t1\", \"cycles\": 100, \"spec_commit_fraction\": 0.9000}\n",
            "  ],\n",
            "  \"totals\": {\n",
            "    \"seq_wall_ns\": 700,\n    \"par_wall_ns\": 350,\n",
            "    \"spec_commit_fraction\": 0.2500\n  }\n",
            "}\n",
        );
        let p = entry_from_report(parallel_report).unwrap();
        assert_eq!(p.workers, 2);
        assert_eq!(p.parallel_wall_ns, Some(350));
        assert_eq!(p.spec_commit_fraction, Some(0.25));
        assert_eq!(p.speedup(), Ok(2.0));

        // With a history array present, the last entry wins instead.
        let e2 = entry(42, 7);
        let with_history = format!(
            "{{\n{}  \"ok\": true\n}}\n",
            render_history(&[], &e2, false).unwrap()
        );
        assert_eq!(entry_from_report(&with_history).unwrap(), e2);
    }

    #[test]
    fn ratio_detects_regressions_and_refuses_apples_to_oranges() {
        let old = entry(1_000_000, 1_000_000_000);
        let new = entry(850_000, 1_000_000_000);
        let r = throughput_ratio(&old, &new).unwrap();
        assert!((r - 0.85).abs() < 1e-9);

        let mut other_scale = new.clone();
        other_scale.scale = "Full".into();
        assert!(throughput_ratio(&old, &other_scale).is_err());

        let mut other_host = new.clone();
        other_host.host_cores = 64;
        assert!(throughput_ratio(&old, &other_host).is_err());
    }

    #[test]
    fn durable_entry_round_trips_and_ratio_refuses_cross_policy() {
        let mut old = entry(1_000_000, 1_000_000_000);
        old.force_policy = Some("eager".into());
        let parsed = HistoryEntry::parse(&old.to_json()).unwrap();
        assert_eq!(parsed, old);

        let mut new = entry(900_000, 1_000_000_000);
        new.force_policy = Some("eager".into());
        let r = durable_ratio(&old, &new).unwrap();
        assert!((r - 0.9).abs() < 1e-9);

        let mut lazy = new.clone();
        lazy.force_policy = Some("lazy".into());
        let err = durable_ratio(&old, &lazy).unwrap_err();
        assert!(err.contains("eager") && err.contains("lazy"), "{err}");

        // A non-durable point cannot be durable-gated.
        assert!(durable_ratio(&entry(1, 1), &new).is_err());
        // The base throughput refusals still apply.
        let mut other_scale = new.clone();
        other_scale.scale = "Full".into();
        assert!(durable_ratio(&old, &other_scale).is_err());
    }

    #[test]
    fn dirty_entries_are_refused_unless_allowed() {
        let mut dirty = entry(100, 10);
        dirty.git_rev = "abc123def456-dirty".into();

        let err = check_appendable(&dirty, false).unwrap_err();
        assert!(
            err.contains("abc123def456-dirty") && err.contains(ALLOW_DIRTY_ENV),
            "refusal must name the entry and the override: {err}"
        );
        let err = render_history(&[], &dirty, false).unwrap_err();
        assert!(err.contains("-dirty"), "{err}");

        // The explicit override records the point anyway.
        check_appendable(&dirty, true).unwrap();
        let block = render_history(&[], &dirty, true).unwrap();
        assert!(block.contains("abc123def456-dirty"));

        // Clean entries append regardless.
        check_appendable(&entry(100, 10), false).unwrap();
    }

    #[test]
    fn parallel_ratio_refusal_names_the_entry_without_a_parallel_point() {
        let good = parallel_entry(1_000_000, 2_000_000_000, 1_000_000_000);
        let mut bare = good.clone();
        bare.git_rev = "feedfacecafe".into();
        bare.parallel_wall_ns = None;
        bare.spec_commit_fraction = None;

        let err = parallel_ratio(&good, &bare).unwrap_err();
        assert!(
            err.contains("feedfacecafe") && err.contains("parallel_wall_ns"),
            "head refusal must name the entry: {err}"
        );
        let err = parallel_ratio(&bare, &good).unwrap_err();
        assert!(
            err.contains("feedfacecafe") && err.contains("base"),
            "{err}"
        );
    }

    #[test]
    fn service_ratio_gates_shards_and_policy_tags() {
        let old = entry(1_000_000, 1_000_000_000);
        let new = entry(900_000, 1_000_000_000);
        let r = service_ratio(&old, &new).unwrap();
        assert!((r - 0.9).abs() < 1e-9);

        // Chaos reports (force_policy "mixed") only compare to chaos.
        let mut chaos_old = old.clone();
        chaos_old.force_policy = Some("mixed".into());
        let mut chaos_new = new.clone();
        chaos_new.force_policy = Some("mixed".into());
        assert!((service_ratio(&chaos_old, &chaos_new).unwrap() - 0.9).abs() < 1e-9);
        let err = service_ratio(&chaos_old, &new).unwrap_err();
        assert!(err.contains("mixed") && err.contains("none"), "{err}");

        let mut other_shards = new.clone();
        other_shards.workers = 8;
        assert!(service_ratio(&old, &other_shards).is_err());
        let mut other_scale = new.clone();
        other_scale.scale = "Full".into();
        assert!(service_ratio(&old, &other_scale).is_err());
    }

    #[test]
    fn parallel_ratio_gates_workers_and_presence() {
        let old = parallel_entry(1_000_000, 2_000_000_000, 1_000_000_000);
        let new = parallel_entry(1_000_000, 2_000_000_000, 2_000_000_000);
        let r = parallel_ratio(&old, &new).unwrap();
        assert!((r - 0.5).abs() < 1e-9, "half the parallel throughput: {r}");

        let mut other_workers = new.clone();
        other_workers.workers = 8;
        assert!(parallel_ratio(&old, &other_workers).is_err());

        let mut other_host = new.clone();
        other_host.host_cores = 64;
        assert!(parallel_ratio(&old, &other_host).is_err());

        // A sequential-only point (e.g. synthesized from a pre-trajectory
        // report) cannot be parallel-gated.
        assert!(parallel_ratio(&entry(1_000_000, 1), &new).is_err());
    }
}
