//! End-to-end determinism check: real benchmark cells (SPLASH-2 kernels and
//! the ablation synthetics, tiny scale) run through the speculative epoch
//! executor must reproduce the sequential pass bit-for-bit. Debug builds
//! also revalidate every consumed speculative step inside the machine.

use ptm_bench::parallel::{assert_cells_match, run_cells_sequential, CellSpec, CellWorkload};
use ptm_bench::parallel_sim::run_cells_executor;
use ptm_sim::{ExecutorConfig, SystemKind};
use ptm_workloads::Scale;

fn cells() -> Vec<CellSpec> {
    let mut v = vec![
        CellSpec {
            family: "test",
            workload: CellWorkload::Splash2("fft"),
            kind: SystemKind::SelectPtm(Default::default()),
            scale: Scale::Tiny,
        },
        CellSpec {
            family: "test",
            workload: CellWorkload::Splash2("water"),
            kind: SystemKind::Vtm,
            scale: Scale::Tiny,
        },
        CellSpec {
            family: "test",
            workload: CellWorkload::Splash2("radix"),
            kind: SystemKind::LogTm,
            scale: Scale::Tiny,
        },
        CellSpec {
            family: "test",
            workload: CellWorkload::Splash2("lu"),
            kind: SystemKind::Locks,
            scale: Scale::Tiny,
        },
        CellSpec {
            family: "test",
            workload: CellWorkload::Splash2("ocean"),
            kind: SystemKind::Serial,
            scale: Scale::Tiny,
        },
    ];
    v.push(CellSpec {
        family: "test",
        workload: CellWorkload::SyntheticLow,
        kind: SystemKind::CopyPtm,
        scale: Scale::Tiny,
    });
    v
}

#[test]
fn real_cells_are_bit_identical_through_the_executor() {
    let specs = cells();
    let seq = run_cells_sequential(&specs);
    for threads in [1, 2] {
        let exec = ExecutorConfig {
            threads,
            epoch_cycles: ExecutorConfig::DEFAULT_EPOCH_CYCLES,
        };
        let pairs = run_cells_executor(&specs, &exec);
        let par: Vec<_> = pairs.iter().map(|(c, _)| c.clone()).collect();
        assert_cells_match(&seq, &par);
    }
}

#[test]
fn real_cells_survive_tiny_epochs() {
    // 64-cycle epochs force constant validation/rollback churn.
    let specs = vec![
        CellSpec {
            family: "test",
            workload: CellWorkload::Splash2("fft"),
            kind: SystemKind::SelectPtm(Default::default()),
            scale: Scale::Tiny,
        },
        CellSpec {
            family: "test",
            workload: CellWorkload::SyntheticContended(11),
            kind: SystemKind::SelectPtm(Default::default()),
            scale: Scale::Tiny,
        },
    ];
    let seq = run_cells_sequential(&specs);
    let exec = ExecutorConfig {
        threads: 2,
        epoch_cycles: 64,
    };
    let pairs = run_cells_executor(&specs, &exec);
    let par: Vec<_> = pairs.iter().map(|(c, _)| c.clone()).collect();
    assert_cells_match(&seq, &par);
}
