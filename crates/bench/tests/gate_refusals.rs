//! End-to-end refusal semantics of the `bench_gate` binary.
//!
//! The gate has three verdicts: ok (exit 0), regression (exit 1), and
//! *refusal* (exit 2) when the two trajectory points cannot be compared.
//! These tests pin the contract the CI jobs rely on: a malformed or
//! hand-edited history entry — in particular a parallel entry missing
//! `parallel_wall_ns` — must produce an exit-2 refusal that names the
//! offending entry, never a panic; and comparing against a `-dirty` point
//! must warn on stderr without changing the verdict.

use std::process::{Command, Output};

fn entry_json(git_rev: &str, parallel_wall: Option<u64>) -> String {
    let mut s = format!(
        "{{\"git_rev\": \"{git_rev}\", \"rustc\": \"rustc 1.95.0\", \
         \"host_cores\": 4, \"scale\": \"Tiny\", \"workers\": 2, \
         \"cells\": 49, \"total_cycles\": 1000000, \"seq_wall_ns\": 2000000000"
    );
    if let Some(wall) = parallel_wall {
        s.push_str(&format!(", \"parallel_wall_ns\": {wall}"));
    }
    s.push('}');
    s
}

fn report(entry: &str) -> String {
    format!("{{\n  \"history\": [\n    {entry}\n  ],\n  \"ok\": true\n}}\n")
}

fn run_gate(base: &str, head: &str, extra: &[&str]) -> Output {
    let dir = std::env::temp_dir().join(format!(
        "ptm-gate-refusals-{}-{:p}",
        std::process::id(),
        &base as *const _
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let base_path = dir.join("base.json");
    let head_path = dir.join("head.json");
    std::fs::write(&base_path, base).unwrap();
    std::fs::write(&head_path, head).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .arg(&base_path)
        .arg(&head_path)
        .args(extra)
        .output()
        .expect("spawn bench_gate");
    std::fs::remove_dir_all(&dir).ok();
    out
}

#[test]
fn missing_parallel_wall_refuses_with_exit_2_naming_the_entry() {
    let base = report(&entry_json("aaaa11112222", Some(1_000_000_000)));
    // A hand-edited / pre-trajectory head entry: workers recorded, but no
    // parallel wall time. Before the fix this path crashed the gate.
    let head = report(&entry_json("feedfacecafe", None));
    let out = run_gate(&base, &head, &["--parallel"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected a refusal, got {:?}: {stderr}",
        out.status
    );
    assert!(
        stderr.contains("feedfacecafe") && stderr.contains("parallel_wall_ns"),
        "the refusal must name the offending entry: {stderr}"
    );
}

#[test]
fn comparable_parallel_entries_still_pass() {
    let base = report(&entry_json("aaaa11112222", Some(1_000_000_000)));
    let head = report(&entry_json("bbbb33334444", Some(1_000_000_000)));
    let out = run_gate(&base, &head, &["--parallel"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn dirty_trajectory_point_warns_without_changing_the_verdict() {
    let base = report(&entry_json("aaaa11112222-dirty", Some(1_000_000_000)));
    let head = report(&entry_json("bbbb33334444", Some(1_000_000_000)));
    let out = run_gate(&base, &head, &["--parallel"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(
        stderr.contains("warning") && stderr.contains("aaaa11112222-dirty"),
        "a dirty comparison must warn and name the point: {stderr}"
    );

    // Clean comparisons stay silent on the dirty channel.
    let clean = run_gate(&head, &head, &["--parallel"]);
    assert!(!String::from_utf8_lossy(&clean.stderr).contains("dirty"));
}
