//! Deterministic pseudo-randomness and content digests for injection plans.
//!
//! The simulator must stay replayable bit-for-bit, so no OS entropy appears
//! anywhere: every fault plan and crash plan derives from a caller-supplied
//! seed through [`splitmix64`], and a committed JSON report can carry a
//! [`fnv1a64`] digest of the plan so a failing cell reproduces from the
//! report alone.

/// SplitMix64 — tiny, seedable, and good enough for plan generation.
///
/// The canonical generator from Steele, Lea & Flood ("Fast splittable
/// pseudorandom number generators", OOPSLA 2014): a 64-bit Weyl sequence
/// (`γ = 0x9E3779B97F4A7C15`) finalized with a variance of the MurmurHash3
/// mixer. Advances `state` and returns the next output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`splitmix64`] generator as a value, for call sites that want to pass
/// the stream around instead of threading `&mut u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose first output is `splitmix64(&mut seed)`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// FNV-1a 64-bit running digest over little-endian `u64` words.
///
/// Used to fingerprint injection plans inside benchmark reports: two plans
/// with the same digest were built from the same events, so a failing cell
/// in a committed `BENCH_*.json` is reproducible without the binary that
/// wrote it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a64 {
    hash: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    /// A digest at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a64 {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds one `u64` into the digest, byte by byte (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.hash ^= u64::from(byte);
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds a byte slice into the digest (canonical FNV-1a over bytes;
    /// `write_bytes(&v.to_le_bytes())` equals `write_u64(v)`).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for byte in bytes {
            self.hash ^= u64::from(*byte);
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference output stream for seed 0, as published with the
    /// original SplitMix64 code and reproduced by every faithful port.
    #[test]
    fn seed_zero_matches_reference_vectors() {
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    /// A second published vector set: seed 1234567.
    #[test]
    fn seed_1234567_matches_reference_vectors() {
        let mut state = 1234567u64;
        assert_eq!(splitmix64(&mut state), 0x599E_D017_FB08_FC85);
        assert_eq!(splitmix64(&mut state), 0x2C73_F084_5854_0FA5);
    }

    #[test]
    fn struct_form_matches_free_function() {
        let mut rng = SplitMix64::new(42);
        let mut state = 42u64;
        for _ in 0..16 {
            assert_eq!(rng.next_u64(), splitmix64(&mut state));
        }
    }

    /// FNV-1a's published test vector: hashing the bytes `"a"` from the
    /// offset basis yields 0xaf63dc4c8601ec8c. `write_u64` is byte-wise, so
    /// the single-byte case is recoverable by folding only the low byte.
    #[test]
    fn fnv1a_matches_published_single_byte_vector() {
        let mut h = Fnv1a64::new();
        // Fold just the byte 0x61 ('a') the way write_u64 folds each byte.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        hash ^= 0x61;
        hash = hash.wrapping_mul(0x100_0000_01b3);
        assert_eq!(hash, 0xaf63_dc4c_8601_ec8c);
        // And the full-width writer is deterministic and order-sensitive.
        h.write_u64(1);
        h.write_u64(2);
        let mut h2 = Fnv1a64::new();
        h2.write_u64(2);
        h2.write_u64(1);
        assert_ne!(h.finish(), h2.finish());
    }

    #[test]
    fn empty_digest_is_the_offset_basis() {
        assert_eq!(Fnv1a64::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
