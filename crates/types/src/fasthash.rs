//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 with per-instance random
//! keys) is designed to resist hash-flooding from untrusted input. Nothing
//! in this workspace hashes untrusted input — keys are small fixed-size
//! simulator identifiers (frame numbers, transaction IDs, block addresses)
//! — so the hot paths pay SipHash's long dependency chain for nothing.
//!
//! [`FastHasher`] is a Fibonacci-multiply folding hash over 8-byte chunks
//! (the same family as rustc's FxHash): one rotate, one xor and one
//! multiply per word of key. It is deterministic across processes, which
//! std's `RandomState` is not; the simulator never lets map iteration order
//! reach an observable result (every order-sensitive walk sorts first), so
//! the only visible effect of the swap is speed.
//!
//! # Examples
//!
//! ```
//! use ptm_types::fasthash::FastMap;
//!
//! let mut m: FastMap<u32, &str> = FastMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m[&7], "seven");
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / φ, the Fibonacci hashing multiplier: odd, and high bits of the
/// product depend on all bits of the input.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// A folding multiplicative [`Hasher`] for small trusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline(always)]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(26) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length tag so "ab" and "ab\0" differ.
            buf[7] = rest.len() as u8;
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, n: u8) {
        self.fold(u64::from(n));
    }

    #[inline(always)]
    fn write_u16(&mut self, n: u16) {
        self.fold(u64::from(n));
    }

    #[inline(always)]
    fn write_u32(&mut self, n: u32) {
        self.fold(u64::from(n));
    }

    #[inline(always)]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline(always)]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }

    #[inline(always)]
    fn finish(&self) -> u64 {
        // One final mix so low output bits (the bucket index) depend on the
        // high bits the multiplies pushed the entropy into.
        let h = self.hash;
        h ^ (h >> 32)
    }
}

/// `BuildHasher` for [`FastHasher`]; deterministic (no per-map state).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&(3u32, 4u8)), hash_of(&(3u32, 4u8)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hashes: Vec<u64> = (0u64..256).map(|i| hash_of(&i)).collect();
        let mut deduped = hashes.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), hashes.len(), "sequential keys collide");
        // Low bits (bucket index) must spread too.
        let low: HashSet<u64> = hashes.iter().map(|h| h & 0x7f).collect();
        assert!(low.len() > 96, "low bits too clustered: {}", low.len());
    }

    #[test]
    fn byte_slices_respect_length() {
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<(u32, u8), u32> = FastMap::default();
        for i in 0..100u32 {
            m.insert((i, (i % 7) as u8), i * 3);
        }
        for i in 0..100u32 {
            assert_eq!(m[&(i, (i % 7) as u8)], i * 3);
        }
        let mut s: FastSet<u64> = FastSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }
}
