//! The fixed-size bit vectors PTM packs per-page transactional state into.
//!
//! PTM reduces each overflowed cache block's state to boolean bits packed
//! into per-page vectors (§1): the **selection vector** and the TAV
//! **read/write access vectors** are [`BlockVec`]s (one bit per 64-byte block,
//! 64 blocks per page — exactly a `u64`). The word-granularity study of
//! Figure 5 needs per-*word* vectors, [`WordVec`] (1024 bits per page), and
//! per-block word masks, [`WordMask`] (16 bits).

use crate::addr::{BlockIdx, WordIdx, BLOCKS_PER_PAGE, WORDS_PER_BLOCK, WORDS_PER_PAGE};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor};

/// One bit per cache block of a page (64 bits).
///
/// Used for selection vectors, TAV read/write vectors, and the VTS summary
/// vectors.
///
/// # Examples
///
/// ```
/// use ptm_types::{BlockIdx, BlockVec};
///
/// let mut v = BlockVec::EMPTY;
/// v.set(BlockIdx(5));
/// assert!(v.get(BlockIdx(5)));
/// assert_eq!(v.count(), 1);
/// v.toggle(BlockIdx(5));
/// assert!(v.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BlockVec(pub u64);

impl BlockVec {
    /// The vector with no bits set.
    pub const EMPTY: BlockVec = BlockVec(0);
    /// The vector with every block bit set.
    pub const FULL: BlockVec = BlockVec(u64::MAX);

    /// Returns the bit for `block`.
    #[inline(always)]
    pub fn get(self, block: BlockIdx) -> bool {
        debug_assert!((block.0 as usize) < BLOCKS_PER_PAGE);
        (self.0 >> block.0) & 1 == 1
    }

    /// Sets the bit for `block`.
    #[inline(always)]
    pub fn set(&mut self, block: BlockIdx) {
        debug_assert!((block.0 as usize) < BLOCKS_PER_PAGE);
        self.0 |= 1u64 << block.0;
    }

    /// Clears the bit for `block`.
    #[inline(always)]
    pub fn clear(&mut self, block: BlockIdx) {
        debug_assert!((block.0 as usize) < BLOCKS_PER_PAGE);
        self.0 &= !(1u64 << block.0);
    }

    /// Toggles the bit for `block` — the Select-PTM commit operation on a
    /// selection vector.
    #[inline(always)]
    pub fn toggle(&mut self, block: BlockIdx) {
        debug_assert!((block.0 as usize) < BLOCKS_PER_PAGE);
        self.0 ^= 1u64 << block.0;
    }

    /// Returns `true` if no bit is set.
    #[inline(always)]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of set bits.
    #[inline(always)]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over the indices of set bits, ascending.
    #[inline]
    pub fn iter(self) -> BlockVecIter {
        BlockVecIter(self.0)
    }

    /// Returns `true` if any bit of `self` overlaps a bit of `other`.
    #[inline(always)]
    pub fn intersects(self, other: BlockVec) -> bool {
        self.0 & other.0 != 0
    }
}

impl BitOr for BlockVec {
    type Output = BlockVec;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        BlockVec(self.0 | rhs.0)
    }
}

impl BitAnd for BlockVec {
    type Output = BlockVec;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        BlockVec(self.0 & rhs.0)
    }
}

impl BitXor for BlockVec {
    type Output = BlockVec;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        BlockVec(self.0 ^ rhs.0)
    }
}

impl fmt::Binary for BlockVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Display for BlockVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blocks[{:#018x}]", self.0)
    }
}

impl FromIterator<BlockIdx> for BlockVec {
    fn from_iter<I: IntoIterator<Item = BlockIdx>>(iter: I) -> Self {
        let mut v = BlockVec::EMPTY;
        for b in iter {
            v.set(b);
        }
        v
    }
}

/// Iterator over set block indices of a [`BlockVec`].
#[derive(Debug, Clone)]
pub struct BlockVecIter(u64);

impl Iterator for BlockVecIter {
    type Item = BlockIdx;

    fn next(&mut self) -> Option<BlockIdx> {
        if self.0 == 0 {
            return None;
        }
        let tz = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(BlockIdx(tz as u8))
    }
}

/// One bit per 4-byte word of a cache block (16 bits).
///
/// Tracks which words of a block a transaction touched, for the
/// word-granularity coherence of Figure 5 (`wd:cache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WordMask(pub u16);

impl WordMask {
    /// The mask with no words set.
    pub const EMPTY: WordMask = WordMask(0);
    /// The mask with every word of the block set.
    pub const FULL: WordMask = WordMask(u16::MAX);

    /// Returns the bit for `word`.
    #[inline(always)]
    pub fn get(self, word: WordIdx) -> bool {
        debug_assert!((word.0 as usize) < WORDS_PER_BLOCK);
        (self.0 >> word.0) & 1 == 1
    }

    /// Sets the bit for `word`.
    #[inline(always)]
    pub fn set(&mut self, word: WordIdx) {
        debug_assert!((word.0 as usize) < WORDS_PER_BLOCK);
        self.0 |= 1u16 << word.0;
    }

    /// Clears the bit for `word`.
    #[inline(always)]
    pub fn clear(&mut self, word: WordIdx) {
        debug_assert!((word.0 as usize) < WORDS_PER_BLOCK);
        self.0 &= !(1u16 << word.0);
    }

    /// Toggles the bit for `word`.
    #[inline(always)]
    pub fn toggle(&mut self, word: WordIdx) {
        debug_assert!((word.0 as usize) < WORDS_PER_BLOCK);
        self.0 ^= 1u16 << word.0;
    }

    /// Returns `true` if no word bit is set.
    #[inline(always)]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if any word overlaps `other` — a *true* (word-level)
    /// conflict, as opposed to block-level false sharing.
    #[inline(always)]
    pub fn intersects(self, other: WordMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of set word bits.
    #[inline(always)]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over the indices of set word bits, ascending — the
    /// word-parallel replacement for testing all 16 bits one at a time.
    #[inline]
    pub fn iter(self) -> WordMaskIter {
        WordMaskIter(self.0)
    }
}

impl BitOr for WordMask {
    type Output = WordMask;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        WordMask(self.0 | rhs.0)
    }
}

impl BitAnd for WordMask {
    type Output = WordMask;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        WordMask(self.0 & rhs.0)
    }
}

impl BitXor for WordMask {
    type Output = WordMask;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        WordMask(self.0 ^ rhs.0)
    }
}

/// Iterator over set word indices of a [`WordMask`], via `trailing_zeros`.
#[derive(Debug, Clone)]
pub struct WordMaskIter(u16);

impl Iterator for WordMaskIter {
    type Item = WordIdx;

    #[inline]
    fn next(&mut self) -> Option<WordIdx> {
        if self.0 == 0 {
            return None;
        }
        let tz = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(WordIdx(tz as u8))
    }
}

impl fmt::Display for WordMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "words[{:#06x}]", self.0)
    }
}

/// One bit per 4-byte word of a page (1024 bits).
///
/// The `wd:cache+mem` configuration of Figure 5 tracks *overflowed*
/// transactional state at word granularity too: the TAV read/write vectors
/// become `WordVec`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordVec([u64; WORDS_PER_PAGE / 64]);

impl WordVec {
    /// The vector with no bits set.
    pub const EMPTY: WordVec = WordVec([0; WORDS_PER_PAGE / 64]);

    /// Returns the bit for the `word`-th word of the page.
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_PAGE`.
    #[inline]
    pub fn get(self, word: usize) -> bool {
        assert!(word < WORDS_PER_PAGE, "word index {word} out of range");
        (self.0[word / 64] >> (word % 64)) & 1 == 1
    }

    /// Sets the bit for the `word`-th word of the page.
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_PAGE`.
    #[inline]
    pub fn set(&mut self, word: usize) {
        assert!(word < WORDS_PER_PAGE, "word index {word} out of range");
        self.0[word / 64] |= 1u64 << (word % 64);
    }

    /// Sets the bits for the words of `block` given by `mask`.
    ///
    /// `WORDS_PER_BLOCK` (16) divides 64, so a block's mask occupies one
    /// 16-bit group of a single limb: the whole mask lands with one shifted
    /// OR instead of 16 bit-at-a-time probes.
    #[inline(always)]
    pub fn set_block_words(&mut self, block: BlockIdx, mask: WordMask) {
        let base = block.0 as usize * WORDS_PER_BLOCK;
        self.0[base / 64] |= (mask.0 as u64) << (base % 64);
    }

    /// Clears the bits for the words of `block` given by `mask`.
    #[inline(always)]
    pub fn clear_block_words(&mut self, block: BlockIdx, mask: WordMask) {
        let base = block.0 as usize * WORDS_PER_BLOCK;
        self.0[base / 64] &= !((mask.0 as u64) << (base % 64));
    }

    /// Extracts the word mask for a single block.
    #[inline(always)]
    pub fn block_words(self, block: BlockIdx) -> WordMask {
        let base = block.0 as usize * WORDS_PER_BLOCK;
        let lane = self.0[base / 64];
        let shift = base % 64;
        WordMask(((lane >> shift) & 0xffff) as u16)
    }

    /// Returns `true` if no bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Returns `true` if any word bit overlaps `other`.
    #[inline]
    pub fn intersects(self, other: WordVec) -> bool {
        self.0.iter().zip(other.0.iter()).any(|(a, b)| a & b != 0)
    }

    /// Number of set word bits.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// ORs `other` into `self` in place — the allocation-free form of
    /// `self = self | other` for summary folds over TAV lists.
    #[inline]
    pub fn union_with(&mut self, other: &WordVec) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a |= b;
        }
    }

    /// Iterates over the indices of set word bits, ascending, skipping
    /// whole empty limbs and stepping set bits via `trailing_zeros`.
    #[inline]
    pub fn iter(self) -> WordVecIter {
        WordVecIter { vec: self, lane: 0 }
    }

    /// Collapses to block granularity: a block bit is set if any of its
    /// word bits is.
    ///
    /// Word-parallel: each limb covers four blocks (4 × 16-bit groups), so
    /// one limb test produces four block bits without touching per-block
    /// masks.
    pub fn to_block_vec(self) -> BlockVec {
        const BLOCKS_PER_LANE: usize = 64 / WORDS_PER_BLOCK;
        let mut out = 0u64;
        for (i, &lane) in self.0.iter().enumerate() {
            let mut bits = 0u64;
            bits |= u64::from(lane & 0xffff != 0);
            bits |= u64::from(lane & 0xffff_0000 != 0) << 1;
            bits |= u64::from(lane & 0xffff_0000_0000 != 0) << 2;
            bits |= u64::from(lane & 0xffff_0000_0000_0000 != 0) << 3;
            out |= bits << (BLOCKS_PER_LANE * i);
        }
        BlockVec(out)
    }
}

impl Default for WordVec {
    fn default() -> Self {
        WordVec::EMPTY
    }
}

impl BitOr for WordVec {
    type Output = WordVec;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        let mut out = self;
        for (a, b) in out.0.iter_mut().zip(rhs.0.iter()) {
            *a |= b;
        }
        out
    }
}

impl BitAnd for WordVec {
    type Output = WordVec;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        let mut out = self;
        for (a, b) in out.0.iter_mut().zip(rhs.0.iter()) {
            *a &= b;
        }
        out
    }
}

impl BitXor for WordVec {
    type Output = WordVec;
    #[inline]
    fn bitxor(self, rhs: Self) -> Self {
        let mut out = self;
        for (a, b) in out.0.iter_mut().zip(rhs.0.iter()) {
            *a ^= b;
        }
        out
    }
}

/// Iterator over set word indices of a [`WordVec`]: skips empty limbs and
/// walks set bits of the current limb via `trailing_zeros`.
#[derive(Debug, Clone)]
pub struct WordVecIter {
    vec: WordVec,
    lane: usize,
}

impl Iterator for WordVecIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.lane < WORDS_PER_PAGE / 64 {
            let limb = self.vec.0[self.lane];
            if limb == 0 {
                self.lane += 1;
                continue;
            }
            let tz = limb.trailing_zeros() as usize;
            self.vec.0[self.lane] &= limb - 1;
            return Some(self.lane * 64 + tz);
        }
        None
    }
}

impl fmt::Display for WordVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wordvec[{} set]", self.count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_vec_set_get_clear() {
        let mut v = BlockVec::EMPTY;
        assert!(v.is_empty());
        v.set(BlockIdx(0));
        v.set(BlockIdx(63));
        assert!(v.get(BlockIdx(0)));
        assert!(v.get(BlockIdx(63)));
        assert!(!v.get(BlockIdx(32)));
        assert_eq!(v.count(), 2);
        v.clear(BlockIdx(0));
        assert!(!v.get(BlockIdx(0)));
        assert_eq!(v.count(), 1);
    }

    #[test]
    fn block_vec_toggle_is_involutive() {
        let mut v = BlockVec(0xdead_beef);
        let before = v;
        v.toggle(BlockIdx(7));
        assert_ne!(v, before);
        v.toggle(BlockIdx(7));
        assert_eq!(v, before);
    }

    #[test]
    fn block_vec_iter_yields_ascending_set_bits() {
        let v: BlockVec = [BlockIdx(3), BlockIdx(1), BlockIdx(60)]
            .into_iter()
            .collect();
        let got: Vec<_> = v.iter().collect();
        assert_eq!(got, vec![BlockIdx(1), BlockIdx(3), BlockIdx(60)]);
    }

    #[test]
    fn block_vec_bit_ops() {
        let a = BlockVec(0b1100);
        let b = BlockVec(0b1010);
        assert_eq!((a | b).0, 0b1110);
        assert_eq!((a & b).0, 0b1000);
        assert_eq!((a ^ b).0, 0b0110);
        assert!(a.intersects(b));
        assert!(!BlockVec(0b01).intersects(BlockVec(0b10)));
    }

    #[test]
    fn word_mask_basics() {
        let mut m = WordMask::EMPTY;
        m.set(WordIdx(0));
        m.set(WordIdx(15));
        assert!(m.get(WordIdx(0)));
        assert!(m.get(WordIdx(15)));
        assert_eq!(m.count(), 2);
        assert!(m.intersects(WordMask(0x8000)));
        assert!(!m.intersects(WordMask(0x0002)));
    }

    #[test]
    fn word_vec_set_get_across_lanes() {
        let mut v = WordVec::EMPTY;
        // Word 100 lives in lane 1 (bits 64..128).
        v.set(100);
        assert!(v.get(100));
        assert!(!v.get(99));
        assert_eq!(v.count(), 1);
    }

    #[test]
    fn word_vec_block_words_round_trip() {
        let mut v = WordVec::EMPTY;
        let mask = WordMask(0b1010_0000_0000_0101);
        v.set_block_words(BlockIdx(17), mask);
        assert_eq!(v.block_words(BlockIdx(17)), mask);
        assert_eq!(v.block_words(BlockIdx(16)), WordMask::EMPTY);
        assert_eq!(v.count(), mask.count());
    }

    #[test]
    fn word_vec_collapses_to_block_vec() {
        let mut v = WordVec::EMPTY;
        v.set_block_words(BlockIdx(2), WordMask(0x1));
        v.set_block_words(BlockIdx(40), WordMask(0x8000));
        let bv = v.to_block_vec();
        assert!(bv.get(BlockIdx(2)));
        assert!(bv.get(BlockIdx(40)));
        assert_eq!(bv.count(), 2);
    }

    #[test]
    fn word_vec_or_and_intersect() {
        let mut a = WordVec::EMPTY;
        let mut b = WordVec::EMPTY;
        a.set(5);
        b.set(5);
        b.set(900);
        assert!(a.intersects(b));
        let c = a | b;
        assert!(c.get(5));
        assert!(c.get(900));
        assert_eq!(c.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn word_vec_rejects_out_of_range() {
        let mut v = WordVec::EMPTY;
        v.set(WORDS_PER_PAGE);
    }

    #[test]
    fn false_sharing_is_distinguishable_at_word_level() {
        // Two transactions touching different words of the same block:
        // block-level vectors conflict, word-level masks do not.
        let mut t1 = WordMask::EMPTY;
        let mut t2 = WordMask::EMPTY;
        t1.set(WordIdx(0));
        t2.set(WordIdx(8));
        assert!(!t1.intersects(t2), "no true conflict at word granularity");

        let mut b1 = BlockVec::EMPTY;
        let mut b2 = BlockVec::EMPTY;
        b1.set(BlockIdx(4));
        b2.set(BlockIdx(4));
        assert!(b1.intersects(b2), "false conflict at block granularity");
    }
}
