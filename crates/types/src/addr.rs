//! Addresses and machine geometry.
//!
//! The geometry matches the paper's evaluation platform: 4 KiB pages,
//! 64-byte cache blocks (so 64 blocks per page — one `u64` bit vector spans
//! a page), and 4-byte words (16 words per block) for the word-granularity
//! conflict-detection study of Figure 5.

use std::fmt;

/// Size of a virtual-memory page in bytes (4 KiB, as simulated in the paper).
pub const PAGE_SIZE: usize = 4096;
/// Size of a cache block in bytes (64 B, the paper's outermost block size).
pub const BLOCK_SIZE: usize = 64;
/// Number of cache blocks per page (64 — one bit of a `u64` per block).
pub const BLOCKS_PER_PAGE: usize = PAGE_SIZE / BLOCK_SIZE;
/// Size of a machine word in bytes (4 B, the granularity of Figure 5).
pub const WORD_SIZE: usize = 4;
/// Number of words per cache block (16).
pub const WORDS_PER_BLOCK: usize = BLOCK_SIZE / WORD_SIZE;
/// Number of words per page (1024).
pub const WORDS_PER_PAGE: usize = PAGE_SIZE / WORD_SIZE;

const PAGE_SHIFT: u32 = PAGE_SIZE.trailing_zeros();
const BLOCK_SHIFT: u32 = BLOCK_SIZE.trailing_zeros();
const WORD_SHIFT: u32 = WORD_SIZE.trailing_zeros();

/// A virtual address in a simulated process address space.
///
/// # Examples
///
/// ```
/// use ptm_types::VirtAddr;
///
/// let va = VirtAddr::new(0x2000 + 0x4c);
/// assert_eq!(va.vpn().0, 2);
/// assert_eq!(va.block_in_page().0, 1);
/// assert_eq!(va.word_in_block().0, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Creates a virtual address from a raw 64-bit value.
    pub fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// The virtual page number containing this address.
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    pub fn page_offset(self) -> usize {
        (self.0 as usize) & (PAGE_SIZE - 1)
    }

    /// Index of the cache block within the page (0..64).
    pub fn block_in_page(self) -> BlockIdx {
        BlockIdx((self.page_offset() >> BLOCK_SHIFT) as u8)
    }

    /// Index of the word within the cache block (0..16).
    pub fn word_in_block(self) -> WordIdx {
        WordIdx(((self.page_offset() >> WORD_SHIFT) % WORDS_PER_BLOCK) as u8)
    }

    /// Index of the word within the page (0..1024).
    pub fn word_in_page(self) -> usize {
        self.page_offset() >> WORD_SHIFT
    }

    /// The address rounded down to its containing word.
    pub fn word_aligned(self) -> VirtAddr {
        VirtAddr(self.0 & !((WORD_SIZE as u64) - 1))
    }

    /// The address rounded down to its containing block.
    pub fn block_aligned(self) -> VirtAddr {
        VirtAddr(self.0 & !((BLOCK_SIZE as u64) - 1))
    }

    /// Offsets the address by `bytes`.
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The base virtual address of this page.
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// The address of the `block`-th cache block of the page.
    pub fn block_addr(self, block: BlockIdx) -> VirtAddr {
        VirtAddr((self.0 << PAGE_SHIFT) + ((block.0 as u64) << BLOCK_SHIFT))
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A physical memory address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Creates a physical address from a frame and a byte offset within it.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= PAGE_SIZE`.
    pub fn from_frame(frame: FrameId, offset: usize) -> Self {
        assert!(offset < PAGE_SIZE, "offset {offset} outside page");
        PhysAddr(((frame.0 as u64) << PAGE_SHIFT) | offset as u64)
    }

    /// The physical frame (page) containing this address.
    pub fn frame(self) -> FrameId {
        FrameId((self.0 >> PAGE_SHIFT) as u32)
    }

    /// Byte offset within the frame.
    pub fn page_offset(self) -> usize {
        (self.0 as usize) & (PAGE_SIZE - 1)
    }

    /// Index of the cache block within the frame.
    pub fn block_in_page(self) -> BlockIdx {
        BlockIdx((self.page_offset() >> BLOCK_SHIFT) as u8)
    }

    /// The physical block containing this address.
    pub fn block(self) -> PhysBlock {
        PhysBlock::new(self.frame(), self.block_in_page())
    }

    /// Index of the word within the cache block (0..16).
    pub fn word_in_block(self) -> WordIdx {
        WordIdx(((self.page_offset() >> WORD_SHIFT) % WORDS_PER_BLOCK) as u8)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

/// A physical page frame number.
///
/// PTM's Shadow Page Table is indexed by `FrameId`; the Swap Index Table by
/// [`SwapSlot`]. The paper calls these the "physical page number" and the
/// "swap index number".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameId(pub u32);

impl FrameId {
    /// The base physical address of this frame.
    pub fn base(self) -> PhysAddr {
        PhysAddr((self.0 as u64) << PAGE_SHIFT)
    }

    /// The physical address of the `block`-th cache block of the frame.
    pub fn block_addr(self, block: BlockIdx) -> PhysAddr {
        PhysAddr(((self.0 as u64) << PAGE_SHIFT) + ((block.0 as u64) << BLOCK_SHIFT))
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame:{:#x}", self.0)
    }
}

/// A slot in the simulated swap file.
///
/// When the operating system swaps a home page out, its Shadow Page Table
/// entry is moved to the Swap Index Table, indexed by this slot number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SwapSlot(pub u32);

impl fmt::Display for SwapSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "swap:{:#x}", self.0)
    }
}

/// Index of a cache block within a page (0..[`BLOCKS_PER_PAGE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockIdx(pub u8);

impl BlockIdx {
    /// Iterates over all block indices of a page.
    pub fn all() -> impl Iterator<Item = BlockIdx> {
        (0..BLOCKS_PER_PAGE as u8).map(BlockIdx)
    }
}

impl fmt::Display for BlockIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{}", self.0)
    }
}

/// Index of a word within a cache block (0..[`WORDS_PER_BLOCK`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordIdx(pub u8);

impl fmt::Display for WordIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "word:{}", self.0)
    }
}

/// A physical cache-block address: a frame plus a block index within it.
///
/// This is the granularity at which the coherence protocol, the caches, and
/// PTM's conflict detection all operate.
///
/// # Examples
///
/// ```
/// use ptm_types::{BlockIdx, FrameId, PhysBlock};
///
/// let b = PhysBlock::new(FrameId(7), BlockIdx(3));
/// assert_eq!(b.frame(), FrameId(7));
/// assert_eq!(b.index(), BlockIdx(3));
/// assert_eq!(b.addr().page_offset(), 3 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysBlock {
    frame: FrameId,
    block: BlockIdx,
}

impl PhysBlock {
    /// Creates a physical block address.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range for a page.
    pub fn new(frame: FrameId, block: BlockIdx) -> Self {
        assert!(
            (block.0 as usize) < BLOCKS_PER_PAGE,
            "block index {} out of range",
            block.0
        );
        PhysBlock { frame, block }
    }

    /// The frame this block lives in.
    pub fn frame(self) -> FrameId {
        self.frame
    }

    /// The block index within the frame.
    pub fn index(self) -> BlockIdx {
        self.block
    }

    /// The base physical address of the block.
    pub fn addr(self) -> PhysAddr {
        self.frame.block_addr(self.block)
    }

    /// The same block offset relocated onto another frame.
    ///
    /// PTM keeps the speculative and non-speculative versions of a block at
    /// the *same page offset* on the home and shadow pages; this is the
    /// relocation that rule implies.
    pub fn on_frame(self, frame: FrameId) -> PhysBlock {
        PhysBlock {
            frame,
            block: self.block,
        }
    }
}

impl fmt::Display for PhysBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.frame, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(PAGE_SIZE % BLOCK_SIZE, 0);
        assert_eq!(BLOCK_SIZE % WORD_SIZE, 0);
        assert_eq!(BLOCKS_PER_PAGE, 64);
        assert_eq!(WORDS_PER_BLOCK, 16);
        assert_eq!(WORDS_PER_PAGE, BLOCKS_PER_PAGE * WORDS_PER_BLOCK);
    }

    #[test]
    fn virt_addr_decomposition() {
        let va = VirtAddr::new(3 * PAGE_SIZE as u64 + 5 * BLOCK_SIZE as u64 + 2 * WORD_SIZE as u64);
        assert_eq!(va.vpn(), Vpn(3));
        assert_eq!(va.block_in_page(), BlockIdx(5));
        assert_eq!(va.word_in_block(), WordIdx(2));
        assert_eq!(va.word_in_page(), 5 * WORDS_PER_BLOCK + 2);
    }

    #[test]
    fn virt_addr_alignment() {
        let va = VirtAddr::new(0x1237);
        assert_eq!(va.word_aligned().0, 0x1234);
        assert_eq!(va.block_aligned().0, 0x1200);
    }

    #[test]
    fn vpn_round_trip() {
        let vpn = Vpn(42);
        assert_eq!(vpn.base().vpn(), vpn);
        let addr = vpn.block_addr(BlockIdx(63));
        assert_eq!(addr.vpn(), vpn);
        assert_eq!(addr.block_in_page(), BlockIdx(63));
    }

    #[test]
    fn phys_addr_decomposition() {
        let pa = PhysAddr::from_frame(FrameId(9), 17 * BLOCK_SIZE + WORD_SIZE);
        assert_eq!(pa.frame(), FrameId(9));
        assert_eq!(pa.block_in_page(), BlockIdx(17));
        assert_eq!(pa.word_in_block(), WordIdx(1));
        assert_eq!(pa.block(), PhysBlock::new(FrameId(9), BlockIdx(17)));
    }

    #[test]
    #[should_panic(expected = "outside page")]
    fn phys_addr_rejects_large_offset() {
        let _ = PhysAddr::from_frame(FrameId(0), PAGE_SIZE);
    }

    #[test]
    fn frame_block_addr_round_trip() {
        let f = FrameId(100);
        for b in BlockIdx::all() {
            let pa = f.block_addr(b);
            assert_eq!(pa.frame(), f);
            assert_eq!(pa.block_in_page(), b);
        }
    }

    #[test]
    fn phys_block_relocation_preserves_offset() {
        let b = PhysBlock::new(FrameId(1), BlockIdx(33));
        let moved = b.on_frame(FrameId(2));
        assert_eq!(moved.index(), b.index());
        assert_eq!(moved.frame(), FrameId(2));
        assert_eq!(moved.addr().page_offset(), b.addr().page_offset());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn phys_block_rejects_bad_index() {
        let _ = PhysBlock::new(FrameId(0), BlockIdx(BLOCKS_PER_PAGE as u8));
    }

    #[test]
    fn block_idx_all_covers_page() {
        let v: Vec<_> = BlockIdx::all().collect();
        assert_eq!(v.len(), BLOCKS_PER_PAGE);
        assert_eq!(v[0], BlockIdx(0));
        assert_eq!(v[63], BlockIdx(63));
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", VirtAddr::new(0)).is_empty());
        assert!(!format!("{}", Vpn(0)).is_empty());
        assert!(!format!("{}", PhysAddr(0)).is_empty());
        assert!(!format!("{}", FrameId(0)).is_empty());
        assert!(!format!("{}", SwapSlot(0)).is_empty());
        assert!(!format!("{}", PhysBlock::default()).is_empty());
    }
}
