//! Core types shared by every crate in the PTM reproduction.
//!
//! This crate defines the *vocabulary* of the system reproduced from
//! "Unbounded Page-Based Transactional Memory" (ASPLOS 2006): virtual and
//! physical addresses, machine geometry (4 KiB pages, 64-byte blocks,
//! 4-byte words), transaction / core / thread identifiers, and the fixed-size
//! bit vectors PTM packs its per-page transactional state into.
//!
//! # Examples
//!
//! ```
//! use ptm_types::{VirtAddr, BLOCKS_PER_PAGE, PAGE_SIZE};
//!
//! let va = VirtAddr::new(0x1234_5678);
//! assert_eq!(va.page_offset() as u64, 0x678);
//! assert_eq!(PAGE_SIZE, 4096);
//! assert_eq!(BLOCKS_PER_PAGE, 64);
//! ```

pub mod addr;
pub mod bitvec;
pub mod fasthash;
pub mod ids;
pub mod rng;

pub use addr::{
    BlockIdx, FrameId, PhysAddr, PhysBlock, SwapSlot, VirtAddr, Vpn, WordIdx, BLOCKS_PER_PAGE,
    BLOCK_SIZE, PAGE_SIZE, WORDS_PER_BLOCK, WORDS_PER_PAGE, WORD_SIZE,
};
pub use bitvec::{BlockVec, WordMask, WordVec};
pub use fasthash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use ids::{CoreId, ProcessId, ThreadId, TxId};
pub use rng::{splitmix64, Fnv1a64, SplitMix64};

/// Conflict-detection granularity (§6.3, Figure 5).
///
/// * [`Granularity::Block`] — everything at 64-byte block granularity
///   (`blk-only` in the paper).
/// * [`Granularity::WordCache`] — cache coherence tracks per-word access
///   masks, but overflowed PTM structures stay block-granular (`wd:cache`).
///   Evicting a block with multiple word-writers still aborts, because the
///   overflow structures can record only one writer per block.
/// * [`Granularity::WordCacheMem`] — both the caches and the overflowed
///   structures track words (`wd:cache+mem`), eliminating false conflicts
///   entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// Block-granular conflicts everywhere (the paper's default).
    #[default]
    Block,
    /// Word-granular in-cache conflicts, block-granular overflow state.
    WordCache,
    /// Word-granular conflicts in cache and in overflow state.
    WordCacheMem,
}

impl Granularity {
    /// Whether in-cache conflict checks compare word masks.
    pub fn word_in_cache(self) -> bool {
        !matches!(self, Granularity::Block)
    }

    /// Whether overflowed (TAV) state tracks word vectors.
    pub fn word_in_memory(self) -> bool {
        matches!(self, Granularity::WordCacheMem)
    }
}

/// A simulated clock cycle count.
///
/// Cycles are plain `u64` values throughout the simulator: they participate
/// in heavy arithmetic (latency accumulation, occupancy windows) where a
/// newtype would add friction without preventing realistic bugs — addresses,
/// the other numeric quantity in play, are already newtyped.
pub type Cycle = u64;
