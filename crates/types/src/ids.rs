//! Identifiers for transactions, cores, threads and processes.

use std::fmt;

/// A globally unique transaction identifier.
///
/// The paper (§4.4.3) generates identifiers *sequentially at transaction
/// start* so that the identifier doubles as the transaction's age: on a
/// conflict the **oldest transaction always wins**, which guarantees forward
/// progress. The same sequence also encodes the program-defined commit order
/// of *ordered* transactions. A transaction keeps its original identifier
/// across aborts and re-executions.
///
/// # Examples
///
/// ```
/// use ptm_types::TxId;
///
/// let older = TxId(3);
/// let younger = TxId(9);
/// assert!(older.wins_against(younger));
/// assert!(!younger.wins_against(older));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxId(pub u64);

impl TxId {
    /// Returns `true` if this transaction wins arbitration against `other`
    /// (i.e. it is older; lower identifiers are older).
    pub fn wins_against(self, other: TxId) -> bool {
        self.0 < other.0
    }

    /// Returns `true` if this transaction is older than `other`.
    pub fn is_older_than(self, other: TxId) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx:{}", self.0)
    }
}

/// A processor core identifier (the evaluation platform has 4 cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u8);

impl CoreId {
    /// Iterates over the first `n` core identifiers.
    pub fn first(n: usize) -> impl Iterator<Item = CoreId> {
        (0..n as u8).map(CoreId)
    }

    /// The core id as a `usize`, for indexing per-core tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core:{}", self.0)
    }
}

/// A software thread identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The thread id as a `usize`, for indexing per-thread tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread:{}", self.0)
    }
}

/// A process identifier.
///
/// PTM indexes its structures by *physical* page, so conflicts between
/// transactions in different processes sharing a physical page are detected
/// (§3.5.3). The simulator carries process identifiers so that the
/// inter-process shared-memory tests can exercise exactly that path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u16);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// Issues sequential [`TxId`]s, encoding age and ordered-commit order.
///
/// # Examples
///
/// ```
/// use ptm_types::ids::TxIdSource;
///
/// let mut src = TxIdSource::new();
/// let a = src.next_id();
/// let b = src.next_id();
/// assert!(a.is_older_than(b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TxIdSource {
    next: u64,
}

impl TxIdSource {
    /// Creates a source that starts at transaction id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues the next (younger) transaction identifier.
    pub fn next_id(&mut self) -> TxId {
        let id = TxId(self.next);
        self.next += 1;
        id
    }

    /// Number of identifiers issued so far.
    pub fn issued(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_wins_is_total_and_antisymmetric() {
        let a = TxId(1);
        let b = TxId(2);
        assert!(a.wins_against(b));
        assert!(!b.wins_against(a));
        assert!(!a.wins_against(a), "a transaction never races itself");
    }

    #[test]
    fn tx_id_source_is_monotonic() {
        let mut src = TxIdSource::new();
        let ids: Vec<_> = (0..100).map(|_| src.next_id()).collect();
        for w in ids.windows(2) {
            assert!(w[0].is_older_than(w[1]));
        }
        assert_eq!(src.issued(), 100);
    }

    #[test]
    fn core_id_enumeration() {
        let cores: Vec<_> = CoreId::first(4).collect();
        assert_eq!(cores.len(), 4);
        assert_eq!(cores[3].index(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TxId(7)), "tx:7");
        assert_eq!(format!("{}", CoreId(1)), "core:1");
        assert_eq!(format!("{}", ThreadId(2)), "thread:2");
        assert_eq!(format!("{}", ProcessId(3)), "pid:3");
    }
}
