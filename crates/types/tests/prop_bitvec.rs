//! Model-based property tests for the bit vectors PTM state is packed into.

use proptest::prelude::*;
use ptm_types::{
    BlockIdx, BlockVec, VirtAddr, WordIdx, WordMask, WordVec, BLOCKS_PER_PAGE, WORDS_PER_BLOCK,
    WORDS_PER_PAGE,
};
use std::collections::HashSet;

fn block_idx() -> impl Strategy<Value = BlockIdx> {
    (0..BLOCKS_PER_PAGE as u8).prop_map(BlockIdx)
}

#[derive(Debug, Clone)]
enum VecOp {
    Set(BlockIdx),
    Clear(BlockIdx),
    Toggle(BlockIdx),
}

fn vec_op() -> impl Strategy<Value = VecOp> {
    prop_oneof![
        block_idx().prop_map(VecOp::Set),
        block_idx().prop_map(VecOp::Clear),
        block_idx().prop_map(VecOp::Toggle),
    ]
}

proptest! {
    #[test]
    fn block_vec_matches_set_model(ops in prop::collection::vec(vec_op(), 0..200)) {
        let mut v = BlockVec::EMPTY;
        let mut model: HashSet<u8> = HashSet::new();
        for op in ops {
            match op {
                VecOp::Set(b) => {
                    v.set(b);
                    model.insert(b.0);
                }
                VecOp::Clear(b) => {
                    v.clear(b);
                    model.remove(&b.0);
                }
                VecOp::Toggle(b) => {
                    v.toggle(b);
                    if !model.remove(&b.0) {
                        model.insert(b.0);
                    }
                }
            }
            prop_assert_eq!(v.count() as usize, model.len());
        }
        for b in BlockIdx::all() {
            prop_assert_eq!(v.get(b), model.contains(&b.0));
        }
        let from_iter: Vec<u8> = v.iter().map(|b| b.0).collect();
        let mut expected: Vec<u8> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(from_iter, expected, "iter yields ascending set bits");
    }

    #[test]
    fn block_vec_ops_are_bitwise(a in any::<u64>(), b in any::<u64>()) {
        let (va, vb) = (BlockVec(a), BlockVec(b));
        prop_assert_eq!((va | vb).0, a | b);
        prop_assert_eq!((va & vb).0, a & b);
        prop_assert_eq!((va ^ vb).0, a ^ b);
        prop_assert_eq!(va.intersects(vb), a & b != 0);
    }

    #[test]
    fn word_vec_round_trips_block_masks(
        entries in prop::collection::vec((0..BLOCKS_PER_PAGE as u8, any::<u16>()), 0..32)
    ) {
        let mut v = WordVec::EMPTY;
        let mut model = [0u16; BLOCKS_PER_PAGE];
        for (b, m) in entries {
            v.set_block_words(BlockIdx(b), WordMask(m));
            model[b as usize] |= m;
        }
        for b in BlockIdx::all() {
            prop_assert_eq!(v.block_words(b).0, model[b.0 as usize]);
        }
        let total: u32 = model.iter().map(|m| m.count_ones()).sum();
        prop_assert_eq!(v.count(), total);
        // Collapse to block granularity.
        let bv = v.to_block_vec();
        for b in BlockIdx::all() {
            prop_assert_eq!(bv.get(b), model[b.0 as usize] != 0);
        }
    }

    #[test]
    fn word_vec_or_is_union(xs in prop::collection::vec(0..WORDS_PER_PAGE, 0..64),
                            ys in prop::collection::vec(0..WORDS_PER_PAGE, 0..64)) {
        let mut a = WordVec::EMPTY;
        let mut b = WordVec::EMPTY;
        for &x in &xs { a.set(x); }
        for &y in &ys { b.set(y); }
        let u = a | b;
        for w in 0..WORDS_PER_PAGE {
            prop_assert_eq!(u.get(w), xs.contains(&w) || ys.contains(&w));
        }
        prop_assert_eq!(a.intersects(b), xs.iter().any(|x| ys.contains(x)));
    }

    #[test]
    fn address_decomposition_reassembles(raw in any::<u64>()) {
        let va = VirtAddr::new(raw & 0x0000_ffff_ffff_ffff);
        let rebuilt = va.vpn().base().0 + va.page_offset() as u64;
        prop_assert_eq!(rebuilt, va.0);
        // Block/word decomposition is consistent with the page offset.
        let off = va.page_offset();
        prop_assert_eq!(va.block_in_page().0 as usize, off / 64);
        prop_assert_eq!(va.word_in_block().0 as usize, (off / 4) % WORDS_PER_BLOCK);
        prop_assert_eq!(va.word_in_page(), off / 4);
    }

    #[test]
    fn word_idx_never_exceeds_block(raw in any::<u64>()) {
        let va = VirtAddr::new(raw >> 1);
        prop_assert!((va.word_in_block().0 as usize) < WORDS_PER_BLOCK);
        prop_assert!((va.block_in_page().0 as usize) < BLOCKS_PER_PAGE);
        let _ = WordIdx(va.word_in_block().0);
    }
}
