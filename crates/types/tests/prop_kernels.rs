//! Property tests pinning the word-parallel bit-vector kernels to
//! bit-at-a-time reference implementations.
//!
//! The hot path relies on single-lane and limb-parallel shortcuts
//! (`set_block_words` as one shifted OR, `to_block_vec` as four group tests
//! per limb, `iter` via `trailing_zeros`). Each shortcut is checked here
//! against the obvious loop over individual bits, so a lane-math mistake
//! fails a property rather than silently corrupting TAV state.

use proptest::prelude::*;
use ptm_types::{
    BlockIdx, BlockVec, WordIdx, WordMask, WordVec, BLOCKS_PER_PAGE, WORDS_PER_BLOCK,
    WORDS_PER_PAGE,
};

fn block_idx() -> impl Strategy<Value = BlockIdx> {
    (0..BLOCKS_PER_PAGE as u8).prop_map(BlockIdx)
}

fn word_idx() -> impl Strategy<Value = WordIdx> {
    (0..WORDS_PER_BLOCK as u8).prop_map(WordIdx)
}

/// Bit-at-a-time reference for `WordVec`: a plain bool-per-word array.
#[derive(Clone)]
struct RefWordVec([bool; WORDS_PER_PAGE]);

impl RefWordVec {
    fn empty() -> Self {
        RefWordVec([false; WORDS_PER_PAGE])
    }

    fn set_block_words(&mut self, block: BlockIdx, mask: WordMask) {
        for w in 0..WORDS_PER_BLOCK {
            if (mask.0 >> w) & 1 == 1 {
                self.0[block.0 as usize * WORDS_PER_BLOCK + w] = true;
            }
        }
    }

    fn clear_block_words(&mut self, block: BlockIdx, mask: WordMask) {
        for w in 0..WORDS_PER_BLOCK {
            if (mask.0 >> w) & 1 == 1 {
                self.0[block.0 as usize * WORDS_PER_BLOCK + w] = false;
            }
        }
    }

    fn block_words(&self, block: BlockIdx) -> u16 {
        let mut m = 0u16;
        for w in 0..WORDS_PER_BLOCK {
            if self.0[block.0 as usize * WORDS_PER_BLOCK + w] {
                m |= 1 << w;
            }
        }
        m
    }

    fn count(&self) -> u32 {
        self.0.iter().filter(|&&b| b).count() as u32
    }

    fn set_words(&self) -> Vec<usize> {
        (0..WORDS_PER_PAGE).filter(|&w| self.0[w]).collect()
    }

    fn to_blocks(&self) -> Vec<bool> {
        (0..BLOCKS_PER_PAGE)
            .map(|b| (0..WORDS_PER_BLOCK).any(|w| self.0[b * WORDS_PER_BLOCK + w]))
            .collect()
    }
}

#[derive(Debug, Clone)]
enum WvOp {
    SetBlockWords(BlockIdx, WordMask),
    ClearBlockWords(BlockIdx, WordMask),
    SetWord(usize),
}

fn wv_op() -> impl Strategy<Value = WvOp> {
    prop_oneof![
        (block_idx(), any::<u16>()).prop_map(|(b, m)| WvOp::SetBlockWords(b, WordMask(m))),
        (block_idx(), any::<u16>()).prop_map(|(b, m)| WvOp::ClearBlockWords(b, WordMask(m))),
        (0..WORDS_PER_PAGE).prop_map(WvOp::SetWord),
    ]
}

proptest! {
    #[test]
    fn word_vec_ops_match_bit_at_a_time_reference(
        ops in prop::collection::vec(wv_op(), 0..120)
    ) {
        let mut v = WordVec::EMPTY;
        let mut model = RefWordVec::empty();
        for op in ops {
            match op {
                WvOp::SetBlockWords(b, m) => {
                    v.set_block_words(b, m);
                    model.set_block_words(b, m);
                }
                WvOp::ClearBlockWords(b, m) => {
                    v.clear_block_words(b, m);
                    model.clear_block_words(b, m);
                }
                WvOp::SetWord(w) => {
                    v.set(w);
                    model.0[w] = true;
                }
            }
        }
        for w in 0..WORDS_PER_PAGE {
            prop_assert_eq!(v.get(w), model.0[w]);
        }
        for b in BlockIdx::all() {
            prop_assert_eq!(v.block_words(b).0, model.block_words(b));
        }
        prop_assert_eq!(v.count(), model.count());
        prop_assert_eq!(v.is_empty(), model.count() == 0);
        // iter yields exactly the set words, ascending.
        let got: Vec<usize> = v.iter().collect();
        prop_assert_eq!(got, model.set_words());
        // to_block_vec collapses exactly like the per-word reference.
        let bv = v.to_block_vec();
        let ref_blocks = model.to_blocks();
        for b in BlockIdx::all() {
            prop_assert_eq!(bv.get(b), ref_blocks[b.0 as usize]);
        }
    }

    #[test]
    fn word_vec_bulk_ops_match_per_word_ops(
        xs in prop::collection::vec(0..WORDS_PER_PAGE, 0..80),
        ys in prop::collection::vec(0..WORDS_PER_PAGE, 0..80),
    ) {
        let mut a = WordVec::EMPTY;
        let mut b = WordVec::EMPTY;
        for &x in &xs { a.set(x); }
        for &y in &ys { b.set(y); }
        let union = a | b;
        let inter = a & b;
        let sym = a ^ b;
        let mut in_place = a;
        in_place.union_with(&b);
        for w in 0..WORDS_PER_PAGE {
            let (ia, ib) = (xs.contains(&w), ys.contains(&w));
            prop_assert_eq!(union.get(w), ia || ib);
            prop_assert_eq!(inter.get(w), ia && ib);
            prop_assert_eq!(sym.get(w), ia != ib);
            prop_assert_eq!(in_place.get(w), ia || ib);
        }
        prop_assert_eq!(a.intersects(b), !inter.is_empty());
    }

    #[test]
    fn word_mask_ops_match_reference(a in any::<u16>(), b in any::<u16>(), w in word_idx()) {
        let (ma, mb) = (WordMask(a), WordMask(b));
        prop_assert_eq!((ma | mb).0, a | b);
        prop_assert_eq!((ma & mb).0, a & b);
        prop_assert_eq!((ma ^ mb).0, a ^ b);
        prop_assert_eq!(ma.intersects(mb), a & b != 0);
        prop_assert_eq!(ma.count(), a.count_ones());

        let mut m = ma;
        m.set(w);
        prop_assert_eq!(m.0, a | (1 << w.0));
        m.clear(w);
        prop_assert_eq!(m.0, a & !(1 << w.0));
        m.toggle(w);
        prop_assert_eq!(m.0, (a & !(1 << w.0)) ^ (1 << w.0));

        // iter yields the set bits ascending, and round-trips.
        let rebuilt = ma.iter().fold(WordMask::EMPTY, |mut acc, i| {
            acc.set(i);
            acc
        });
        prop_assert_eq!(rebuilt, ma);
        let idxs: Vec<u8> = ma.iter().map(|i| i.0).collect();
        let expected: Vec<u8> = (0..16).filter(|i| (a >> i) & 1 == 1).collect();
        prop_assert_eq!(idxs, expected);
    }

    #[test]
    fn block_vec_clear_toggle_iter_round_trip(bits in any::<u64>(), b in block_idx()) {
        let v = BlockVec(bits);
        // iter/FromIterator round-trip.
        let rebuilt: BlockVec = v.iter().collect();
        prop_assert_eq!(rebuilt, v);
        prop_assert_eq!(v.count(), bits.count_ones());

        let mut m = v;
        m.clear(b);
        prop_assert_eq!(m.0, bits & !(1u64 << b.0));
        m.set(b);
        prop_assert_eq!(m.0, bits | (1u64 << b.0));
        m.toggle(b);
        prop_assert_eq!(m.0, (bits | (1u64 << b.0)) ^ (1u64 << b.0));
    }

    #[test]
    fn set_block_words_never_leaks_into_neighbors(b in block_idx(), m in any::<u16>()) {
        let mut v = WordVec::EMPTY;
        v.set_block_words(b, WordMask(m));
        for other in BlockIdx::all() {
            if other == b {
                prop_assert_eq!(v.block_words(other).0, m);
            } else {
                prop_assert_eq!(v.block_words(other), WordMask::EMPTY);
            }
        }
    }
}
