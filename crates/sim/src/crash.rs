//! Crash-stop injection and the durable crash image.
//!
//! A [`CrashPlan`] halts a [`Machine`] at an arbitrary scheduler-step
//! boundary, the way a hostile power cut would: nothing gets to flush,
//! nothing gets to finish. [`Machine::run_until_crash`] captures a
//! [`CrashImage`] — exactly the state the durable substrates would hold at
//! that instant:
//!
//! * physical memory and the swap device (functional data is write-through,
//!   so no cache flush is owed — caches and TLBs are timing-only);
//! * the OS page tables (inside the cloned [`Kernel`]);
//! * the backend's transactional metadata: PTM's SPT/SIT/TAV/T-State
//!   tables, VTM's XADT, LogTM's undo logs.
//!
//! Speculative buffers, VTS caches and other cache-like state are volatile
//! and simply absent from the image. The optional *torn* mode additionally
//! truncates the youngest in-flight transaction's last TAV publish (see
//! [`ptm_core::recovery`]) — the model's only multi-word metadata update
//! that can be caught halfway.
//!
//! [`CrashImage::recover`] runs the per-backend recovery pass and
//! [`CrashImage::assert_matches_reference`] checks the recovered committed
//! memory word-for-word against the committed-prefix oracle
//! ([`crate::reference::crash_reference`]).

use crate::backend::{Backend, SystemKind};
use crate::kernel::Kernel;
use crate::machine::Machine;
use crate::program::ThreadProgram;
use crate::reference::{crash_reference, Mismatch};
use crate::stats::CommittedTx;
use ptm_core::durability::{
    decode_undo_payload, decode_word_undo_payload, undo_payload_checksum, DurStats, LogRecord,
    LogRecordKind,
};
use ptm_core::recovery::{self, RecoveryStats};
use ptm_mem::{LogImage, PhysicalMemory};
use ptm_types::rng::{Fnv1a64, SplitMix64};
use ptm_types::{
    FastMap, FastSet, FrameId, Granularity, PhysAddr, ProcessId, ThreadId, TxId, VirtAddr,
    BLOCK_SIZE, WORD_SIZE,
};
use std::collections::{HashMap, HashSet};

/// Where (and how) to crash a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The scheduler step *before* which the machine halts: step `0` crashes
    /// before any work, a step past the end of the run crashes a finished
    /// machine.
    pub step: u64,
    /// Whether to additionally tear the youngest in-flight TAV publish in
    /// the captured image (PTM backends only; a no-op when nothing is
    /// in flight).
    pub torn: bool,
}

impl CrashPlan {
    /// A clean crash-stop at `step`.
    pub fn at_step(step: u64) -> Self {
        CrashPlan { step, torn: false }
    }

    /// A crash-stop at `step` with the torn-metadata mode on.
    pub fn torn_at_step(step: u64) -> Self {
        CrashPlan { step, torn: true }
    }

    /// Derives a plan from a seed: a step in `0..=max_step` and a coin flip
    /// for the torn mode, both from the shared SplitMix64 stream.
    pub fn from_seed(seed: u64, max_step: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        CrashPlan {
            step: rng.next_u64() % (max_step + 1),
            torn: rng.next_u64() & 1 == 1,
        }
    }

    /// FNV-1a digest of the plan, recorded in bench reports so a sweep is
    /// reproducible from its JSON alone.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        h.write_u64(self.step);
        h.write_u64(u64::from(self.torn));
        h.finish()
    }
}

/// The durable state a crash-stop leaves behind. See the module docs for
/// what is captured and why.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// The system that was running.
    pub kind: SystemKind,
    /// The step actually reached (equals the plan's step unless the run
    /// finished first).
    pub step: u64,
    /// Whether the run completed before the crash point.
    pub finished: bool,
    /// The transaction whose TAV publish was torn, if the plan asked for it
    /// and a live overflowed transaction existed.
    pub torn: Option<TxId>,
    /// Commit order up to the crash (durable: commits are atomic steps).
    pub commit_log: Vec<CommittedTx>,
    /// Per-thread durability watermark: the first pc whose effects were not
    /// durable at the crash.
    pub watermarks: HashMap<ThreadId, usize>,
    /// Physical memory as the crash left it.
    pub mem: PhysicalMemory,
    /// OS state: page tables and the swap device.
    pub kernel: Kernel,
    /// The backend's durable metadata.
    pub backend: Backend,
    /// The write-behind log device's media image, when the machine ran
    /// with a durable log attached. In-flight appends have been resolved
    /// to their crash fates (durable / torn / lost).
    pub log: Option<LogImage>,
    /// Caller-side durability counters at the crash. Harness bookkeeping
    /// like `watermarks`, not recovery input.
    pub dur: Option<DurStats>,
    /// Transactions that committed via the read-only fast path and so
    /// wrote no commit record by design. Harness bookkeeping: lets log
    /// reconciliation tell a fast-path commit from a lost record.
    pub ro_commits: FastSet<TxId>,
    /// Checksums of each transaction's *current* undo payloads (logged by
    /// its latest incarnation — an abort voids the earlier ones). Harness
    /// bookkeeping: lets undo replay skip stale pre-images from aborted
    /// incarnations instead of miscounting them as corruption.
    pub undo_sums: FastMap<TxId, Vec<u64>>,
}

impl Machine {
    /// Runs until the plan's crash step (or completion, whichever comes
    /// first) and captures the durable [`CrashImage`]. The machine itself is
    /// left at the crash point and should be discarded — a crash-stop has no
    /// "afterwards".
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making progress before the crash step (a
    /// simulator bug, not a workload property).
    pub fn run_until_crash(&mut self, plan: &CrashPlan) -> CrashImage {
        let mut guard: u64 = 0;
        let limit = self.progress_limit();
        let mut heap = self.build_ready_heap();
        let mut finished = true;
        while let Some((_, idx)) = heap.peek() {
            if guard >= plan.step {
                finished = false;
                break;
            }
            self.step(idx);
            self.sync_heap(&mut heap, idx);
            guard += 1;
            if guard >= limit {
                self.progress_panic();
            }
        }
        self.finalize_stats();

        let transactional = self.kind.is_transactional();
        let watermarks = self
            .cores
            .iter()
            .map(|c| {
                let wm = if transactional {
                    c.prog.tx_begin_pc().unwrap_or(c.prog.pc())
                } else {
                    // Locks and serial execution have no rollback: every
                    // executed operation is already durable.
                    c.prog.pc()
                };
                (c.prog.thread(), wm)
            })
            .collect();

        // Only the durable subset may survive into the image: the clones
        // drop caches, TLBs and deferred-cleanup queues, and the asserts
        // keep that contract honest if new volatile state grows later.
        let mut backend = self.backend.durable_clone();
        if let Backend::Ptm(p) = &backend {
            assert!(
                p.volatile_state_is_empty(),
                "durable PTM clone leaked volatile VTS state into the crash image"
            );
        }
        let kernel = self.kernel.durable_clone();
        assert!(
            kernel.volatile_state_is_empty(),
            "durable kernel clone leaked volatile TLB state into the crash image"
        );
        let torn = if plan.torn {
            match &mut backend {
                Backend::Ptm(p) => recovery::tear_youngest_tav_tail(p),
                _ => None,
            }
        } else {
            None
        };
        if self.durable.is_some() {
            if let Backend::LogTm(l) = &mut backend {
                // With a unified durable log attached, LogTM's software
                // undo log is ordinary DRAM and does not survive the
                // crash; recovery replays the device's forced word-undo
                // records instead. (The T-State table stays: transaction
                // status is write-through metadata, as for PTM.)
                l.drop_logs();
            }
        }

        let (log, dur, ro_commits, undo_sums) = match &self.durable {
            Some(d) => (
                Some(d.crash_image(self.stats.cycles)),
                Some(*d.stats()),
                d.ro_committed().clone(),
                d.undo_checksums().clone(),
            ),
            None => (None, None, FastSet::default(), FastMap::default()),
        };

        CrashImage {
            kind: self.kind,
            step: guard,
            finished,
            torn,
            commit_log: self.stats.commit_log.clone(),
            watermarks,
            mem: self.mem.clone(),
            kernel,
            backend,
            log,
            dur,
            ro_commits,
            undo_sums,
        }
    }
}

impl CrashImage {
    /// Recovers the image in place: scans the durable log (when one was
    /// captured), truncating its torn tail; runs the backend's recovery
    /// pass, discarding every transaction that was live at the crash — for
    /// durable LogTM machines that pass *replays the log's word-undo
    /// records*, the single unified log standing in for the volatile
    /// software undo logs; and finally reconciles the log records against
    /// the commit log and the recovered memory. Idempotent: a second call
    /// reports [`RecoveryStats::is_noop`] (the first pass repaired the log
    /// image, and no transaction is live anymore).
    ///
    /// For LogTM, `blocks_restored` counts undo words rolled back; VTM
    /// discards speculative XADT blocks without restoring anything, so it
    /// reports only `transactions_discarded`.
    pub fn recover(&mut self) -> RecoveryStats {
        // Capture the live set before the backend pass discards it: log
        // reconciliation and the unified word-undo replay below apply
        // exactly to transactions that were still live at the crash.
        let live: Vec<TxId> = match &self.backend {
            Backend::Ptm(p) => p.tstate().live_transactions(),
            Backend::LogTm(l) => l.tstate().live_transactions(),
            _ => Vec::new(),
        };
        // Scan and truncate the device log up front: LogTM's unified
        // recovery consumes its word-undo records in place of the volatile
        // software log the crash destroyed.
        let mut stats = RecoveryStats::default();
        let records = match &mut self.log {
            Some(img) => recovery::recover_log(img, &mut stats),
            None => Vec::new(),
        };
        let backend_pass = match &mut self.backend {
            Backend::Ptm(p) => recovery::recover(p, &mut self.mem, &mut self.kernel.swap),
            Backend::Vtm(v) => {
                let (discarded, _released) = v.recover();
                RecoveryStats {
                    transactions_discarded: discarded,
                    ..Default::default()
                }
            }
            Backend::LogTm(l) if self.log.is_some() => {
                // Unified durable log: one reverse replay of the forced
                // word-undo records does exactly what the lost software
                // undo logs would have.
                let restored = replay_word_undo(&records, &live, &mut self.mem);
                RecoveryStats {
                    transactions_discarded: l.discard_live(),
                    blocks_restored: restored,
                    ..Default::default()
                }
            }
            Backend::LogTm(l) => {
                let (discarded, restored) = l.recover(&mut self.mem);
                RecoveryStats {
                    transactions_discarded: discarded,
                    blocks_restored: restored,
                    ..Default::default()
                }
            }
            Backend::Serial | Backend::Locks(_) => RecoveryStats::default(),
        };
        stats.transactions_discarded += backend_pass.transactions_discarded;
        stats.blocks_restored += backend_pass.blocks_restored;
        stats.torn_nodes_repaired += backend_pass.torn_nodes_repaired;
        stats.shadow_pages_freed += backend_pass.shadow_pages_freed;
        stats.tav_nodes_freed += backend_pass.tav_nodes_freed;
        if self.log.is_some() {
            self.reconcile_log(&records, &live, &mut stats);
        }
        stats
    }

    /// Reconciles the log's valid records against the machine's durable
    /// commit log and the recovered committed memory.
    ///
    /// * a durable commit record for a transaction the machine never
    ///   committed is a *phantom* (corruption — must be zero);
    /// * a writing commit whose record did not survive counts as
    ///   *missing* — zero under eager forcing, a legitimate trade under
    ///   lazy/group (read-only fast-path commits are exempt: they wrote no
    ///   record by design);
    /// * each live-at-crash transaction's *current* undo payload must
    ///   match the recovered committed memory word for word — block
    ///   granularity only, since word granularities admit co-writers whose
    ///   commits legitimately change other words of an undo-logged block.
    ///   "Current" is decided by checksum against the image's `undo_sums`:
    ///   an aborted incarnation's pre-image can be stale (the same `TxId`
    ///   retries, and other transactions may commit in between), so those
    ///   records count as `log_undo_stale`, not corruption.
    fn reconcile_log(&self, records: &[LogRecord], live: &[TxId], stats: &mut RecoveryStats) {
        let committed: HashSet<TxId> = self.commit_log.iter().map(|c| c.tx).collect();
        let logged: HashSet<TxId> = records
            .iter()
            .filter(|r| r.kind == LogRecordKind::Commit)
            .map(|r| r.tx)
            .collect();
        stats.log_phantom_commits +=
            logged.iter().filter(|t| !committed.contains(t)).count() as u64;
        stats.log_commits_missing += committed
            .iter()
            .filter(|t| !self.ro_commits.contains(t) && !logged.contains(t))
            .count() as u64;

        if self.kind.granularity() != Granularity::Block {
            return;
        }
        let live: HashSet<TxId> = live.iter().copied().collect();
        for r in records
            .iter()
            .filter(|r| r.kind == LogRecordKind::Undo && live.contains(&r.tx))
        {
            let current = self
                .undo_sums
                .get(&r.tx)
                .is_some_and(|sums| sums.contains(&undo_payload_checksum(&r.payload)));
            if !current {
                stats.log_undo_stale += 1;
                continue;
            }
            let Some(p) = decode_undo_payload(&r.payload) else {
                // A checksummed record with a malformed payload is
                // corruption, not a torn tail.
                stats.log_replay_mismatches += 1;
                continue;
            };
            let base = p.vpn.block_addr(p.block);
            let verified = (0..BLOCK_SIZE / WORD_SIZE).all(|w| {
                let expect = u32::from_le_bytes(
                    p.data[w * WORD_SIZE..(w + 1) * WORD_SIZE]
                        .try_into()
                        .expect("word in block"),
                );
                self.read_committed(p.pid, VirtAddr(base.0 + (w * WORD_SIZE) as u64)) == expect
            });
            if verified {
                stats.log_replay_verified += 1;
            } else {
                stats.log_replay_mismatches += 1;
            }
        }
    }

    /// Reads the committed value of a word from the image, the same way
    /// [`Machine::read_committed`] does on a live machine.
    pub fn read_committed(&self, pid: ProcessId, va: VirtAddr) -> u32 {
        if let Some(frame) = self.kernel.frame_of(pid, va.vpn()) {
            let pa = PhysAddr::from_frame(frame, va.page_offset());
            return match &self.backend {
                Backend::Ptm(p) => {
                    let f = p.committed_frame(pa.block());
                    self.mem
                        .read_word(PhysAddr::from_frame(f, pa.page_offset()))
                }
                _ => self.mem.read_word(pa),
            };
        }
        let Some(slot) = self.kernel.swap_slot_of(pid, va.vpn()) else {
            return 0;
        };
        let img_slot = match &self.backend {
            Backend::Ptm(p) => {
                let idx = PhysAddr::from_frame(FrameId(0), va.page_offset())
                    .block()
                    .index();
                p.committed_swap_slot(slot, idx)
            }
            _ => slot,
        };
        let img = self.kernel.swap.peek(img_slot);
        let off = va.page_offset();
        u32::from_le_bytes(img[off..off + WORD_SIZE].try_into().expect("word in page"))
    }

    /// Compares every word the committed-prefix oracle wrote against the
    /// image's committed memory. Call after [`CrashImage::recover`]; before
    /// recovery, LogTM's eager speculative writes are still in place.
    pub fn diff_committed(&self, programs: &[ThreadProgram]) -> Vec<Mismatch> {
        let reference = crash_reference(programs, &self.commit_log, &self.watermarks);
        let mut mismatches: Vec<Mismatch> = reference
            .into_iter()
            .filter_map(|((pid, va), expected)| {
                let actual = self.read_committed(pid, va);
                (actual != expected).then_some(Mismatch {
                    key: (pid, va),
                    expected,
                    actual,
                })
            })
            .collect();
        mismatches.sort_by_key(|m| m.key);
        mismatches
    }

    /// Panics with a readable report if the recovered image diverged from
    /// the committed-prefix oracle.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch — recovery resurrected or lost data.
    pub fn assert_matches_reference(&self, programs: &[ThreadProgram]) {
        let mismatches = self.diff_committed(programs);
        assert!(
            mismatches.is_empty(),
            "recovered image diverged from committed-prefix oracle under {} at step {} \
             (torn={:?}): {} mismatches, first: {:?}",
            self.kind,
            self.step,
            self.torn,
            mismatches.len(),
            mismatches.first()
        );
    }
}

/// Replays the unified durable log's word-undo records for the
/// transactions live at the crash: the same backward walk LogTM's software
/// abort handler performs, driven by the device log instead of the (lost)
/// DRAM structures. A forward pass first drops records a commit or abort
/// record retired — a retried `TxId`'s earlier incarnation; the abort was
/// *forced* after that incarnation's last word-undo, so it always sits in
/// the log's valid prefix ahead of any later incarnation's records.
/// Surviving records are restored in global reverse order, undoing the
/// interleaved in-place stores youngest-first. Returns words restored.
fn replay_word_undo(records: &[LogRecord], live: &[TxId], mem: &mut PhysicalMemory) -> u64 {
    let live: HashSet<TxId> = live.iter().copied().collect();
    let mut current: FastMap<TxId, Vec<usize>> = FastMap::default();
    for (i, r) in records.iter().enumerate() {
        match r.kind {
            LogRecordKind::WordUndo if live.contains(&r.tx) => {
                current.entry(r.tx).or_default().push(i);
            }
            LogRecordKind::Commit | LogRecordKind::Abort => {
                current.remove(&r.tx);
            }
            _ => {}
        }
    }
    let mut idxs: Vec<usize> = current.into_values().flatten().collect();
    idxs.sort_unstable();
    let mut restored = 0u64;
    for i in idxs.into_iter().rev() {
        if let Some((pa, old)) = decode_word_undo_payload(&records[i].payload) {
            mem.write_word(pa, old);
            restored += 1;
        }
    }
    restored
}
