//! Crash-stop injection and the durable crash image.
//!
//! A [`CrashPlan`] halts a [`Machine`] at an arbitrary scheduler-step
//! boundary, the way a hostile power cut would: nothing gets to flush,
//! nothing gets to finish. [`Machine::run_until_crash`] captures a
//! [`CrashImage`] — exactly the state the durable substrates would hold at
//! that instant:
//!
//! * physical memory and the swap device (functional data is write-through,
//!   so no cache flush is owed — caches and TLBs are timing-only);
//! * the OS page tables (inside the cloned [`Kernel`]);
//! * the backend's transactional metadata: PTM's SPT/SIT/TAV/T-State
//!   tables, VTM's XADT, LogTM's undo logs.
//!
//! Speculative buffers, VTS caches and other cache-like state are volatile
//! and simply absent from the image. The optional *torn* mode additionally
//! truncates the youngest in-flight transaction's last TAV publish (see
//! [`ptm_core::recovery`]) — the model's only multi-word metadata update
//! that can be caught halfway.
//!
//! [`CrashImage::recover`] runs the per-backend recovery pass and
//! [`CrashImage::assert_matches_reference`] checks the recovered committed
//! memory word-for-word against the committed-prefix oracle
//! ([`crate::reference::crash_reference`]).

use crate::backend::{Backend, SystemKind};
use crate::kernel::Kernel;
use crate::machine::Machine;
use crate::program::ThreadProgram;
use crate::reference::{crash_reference, Mismatch};
use crate::stats::CommittedTx;
use ptm_core::recovery::{self, RecoveryStats};
use ptm_mem::PhysicalMemory;
use ptm_types::rng::{Fnv1a64, SplitMix64};
use ptm_types::{FrameId, PhysAddr, ProcessId, ThreadId, TxId, VirtAddr, WORD_SIZE};
use std::collections::HashMap;

/// Where (and how) to crash a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The scheduler step *before* which the machine halts: step `0` crashes
    /// before any work, a step past the end of the run crashes a finished
    /// machine.
    pub step: u64,
    /// Whether to additionally tear the youngest in-flight TAV publish in
    /// the captured image (PTM backends only; a no-op when nothing is
    /// in flight).
    pub torn: bool,
}

impl CrashPlan {
    /// A clean crash-stop at `step`.
    pub fn at_step(step: u64) -> Self {
        CrashPlan { step, torn: false }
    }

    /// A crash-stop at `step` with the torn-metadata mode on.
    pub fn torn_at_step(step: u64) -> Self {
        CrashPlan { step, torn: true }
    }

    /// Derives a plan from a seed: a step in `0..=max_step` and a coin flip
    /// for the torn mode, both from the shared SplitMix64 stream.
    pub fn from_seed(seed: u64, max_step: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        CrashPlan {
            step: rng.next_u64() % (max_step + 1),
            torn: rng.next_u64() & 1 == 1,
        }
    }

    /// FNV-1a digest of the plan, recorded in bench reports so a sweep is
    /// reproducible from its JSON alone.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        h.write_u64(self.step);
        h.write_u64(u64::from(self.torn));
        h.finish()
    }
}

/// The durable state a crash-stop leaves behind. See the module docs for
/// what is captured and why.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// The system that was running.
    pub kind: SystemKind,
    /// The step actually reached (equals the plan's step unless the run
    /// finished first).
    pub step: u64,
    /// Whether the run completed before the crash point.
    pub finished: bool,
    /// The transaction whose TAV publish was torn, if the plan asked for it
    /// and a live overflowed transaction existed.
    pub torn: Option<TxId>,
    /// Commit order up to the crash (durable: commits are atomic steps).
    pub commit_log: Vec<CommittedTx>,
    /// Per-thread durability watermark: the first pc whose effects were not
    /// durable at the crash.
    pub watermarks: HashMap<ThreadId, usize>,
    /// Physical memory as the crash left it.
    pub mem: PhysicalMemory,
    /// OS state: page tables and the swap device.
    pub kernel: Kernel,
    /// The backend's durable metadata.
    pub backend: Backend,
}

impl Machine {
    /// Runs until the plan's crash step (or completion, whichever comes
    /// first) and captures the durable [`CrashImage`]. The machine itself is
    /// left at the crash point and should be discarded — a crash-stop has no
    /// "afterwards".
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making progress before the crash step (a
    /// simulator bug, not a workload property).
    pub fn run_until_crash(&mut self, plan: &CrashPlan) -> CrashImage {
        let mut guard: u64 = 0;
        let limit = self.progress_limit();
        let mut heap = self.build_ready_heap();
        let mut finished = true;
        while let Some((_, idx)) = heap.peek() {
            if guard >= plan.step {
                finished = false;
                break;
            }
            self.step(idx);
            self.sync_heap(&mut heap, idx);
            guard += 1;
            if guard >= limit {
                self.progress_panic();
            }
        }
        self.finalize_stats();

        let transactional = self.kind.is_transactional();
        let watermarks = self
            .cores
            .iter()
            .map(|c| {
                let wm = if transactional {
                    c.prog.tx_begin_pc().unwrap_or(c.prog.pc())
                } else {
                    // Locks and serial execution have no rollback: every
                    // executed operation is already durable.
                    c.prog.pc()
                };
                (c.prog.thread(), wm)
            })
            .collect();

        let mut backend = self.backend.clone();
        let torn = if plan.torn {
            match &mut backend {
                Backend::Ptm(p) => recovery::tear_youngest_tav_tail(p),
                _ => None,
            }
        } else {
            None
        };

        CrashImage {
            kind: self.kind,
            step: guard,
            finished,
            torn,
            commit_log: self.stats.commit_log.clone(),
            watermarks,
            mem: self.mem.clone(),
            kernel: self.kernel.clone(),
            backend,
        }
    }
}

impl CrashImage {
    /// Runs the backend's recovery pass in place, discarding every
    /// transaction that was live at the crash. Idempotent: a second call
    /// reports [`RecoveryStats::is_noop`].
    ///
    /// For LogTM, `blocks_restored` counts undo-log words rolled back; VTM
    /// discards speculative XADT blocks without restoring anything, so it
    /// reports only `transactions_discarded`.
    pub fn recover(&mut self) -> RecoveryStats {
        match &mut self.backend {
            Backend::Ptm(p) => recovery::recover(p, &mut self.mem, &mut self.kernel.swap),
            Backend::Vtm(v) => {
                let (discarded, _released) = v.recover();
                RecoveryStats {
                    transactions_discarded: discarded,
                    ..Default::default()
                }
            }
            Backend::LogTm(l) => {
                let (discarded, restored) = l.recover(&mut self.mem);
                RecoveryStats {
                    transactions_discarded: discarded,
                    blocks_restored: restored,
                    ..Default::default()
                }
            }
            Backend::Serial | Backend::Locks(_) => RecoveryStats::default(),
        }
    }

    /// Reads the committed value of a word from the image, the same way
    /// [`Machine::read_committed`] does on a live machine.
    pub fn read_committed(&self, pid: ProcessId, va: VirtAddr) -> u32 {
        if let Some(frame) = self.kernel.frame_of(pid, va.vpn()) {
            let pa = PhysAddr::from_frame(frame, va.page_offset());
            return match &self.backend {
                Backend::Ptm(p) => {
                    let f = p.committed_frame(pa.block());
                    self.mem
                        .read_word(PhysAddr::from_frame(f, pa.page_offset()))
                }
                _ => self.mem.read_word(pa),
            };
        }
        let Some(slot) = self.kernel.swap_slot_of(pid, va.vpn()) else {
            return 0;
        };
        let img_slot = match &self.backend {
            Backend::Ptm(p) => {
                let idx = PhysAddr::from_frame(FrameId(0), va.page_offset())
                    .block()
                    .index();
                p.committed_swap_slot(slot, idx)
            }
            _ => slot,
        };
        let img = self.kernel.swap.peek(img_slot);
        let off = va.page_offset();
        u32::from_le_bytes(img[off..off + WORD_SIZE].try_into().expect("word in page"))
    }

    /// Compares every word the committed-prefix oracle wrote against the
    /// image's committed memory. Call after [`CrashImage::recover`]; before
    /// recovery, LogTM's eager speculative writes are still in place.
    pub fn diff_committed(&self, programs: &[ThreadProgram]) -> Vec<Mismatch> {
        let reference = crash_reference(programs, &self.commit_log, &self.watermarks);
        let mut mismatches: Vec<Mismatch> = reference
            .into_iter()
            .filter_map(|((pid, va), expected)| {
                let actual = self.read_committed(pid, va);
                (actual != expected).then_some(Mismatch {
                    key: (pid, va),
                    expected,
                    actual,
                })
            })
            .collect();
        mismatches.sort_by_key(|m| m.key);
        mismatches
    }

    /// Panics with a readable report if the recovered image diverged from
    /// the committed-prefix oracle.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch — recovery resurrected or lost data.
    pub fn assert_matches_reference(&self, programs: &[ThreadProgram]) {
        let mismatches = self.diff_committed(programs);
        assert!(
            mismatches.is_empty(),
            "recovered image diverged from committed-prefix oracle under {} at step {} \
             (torn={:?}): {} mismatches, first: {:?}",
            self.kind,
            self.step,
            self.torn,
            mismatches.len(),
            mismatches.first()
        );
    }
}
