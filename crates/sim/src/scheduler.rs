//! The canonical-order scheduler: an index-min heap over core `ready_at`
//! times.
//!
//! [`Machine::run`](crate::machine::Machine::run) processes cores in global
//! time order — smallest `ready_at` first, ties broken by lowest core index
//! (the order a stable `min_by_key` scan produces). The heap replaces that
//! O(cores) scan per step with an O(log cores) update, and doubles as the
//! *canonical-order oracle* for the epoch executor: whatever core the heap
//! yields next is, by definition, the core the sequential schedule would
//! step next, so speculative work is validated against heap order.
//!
//! Entries are keyed lexicographically by `(ready_at, core)`; every key is
//! unique (one entry per core), so ordering is total and deterministic.

use ptm_types::Cycle;

/// An index-min binary heap of `(ready_at, core)` pairs with a position map
/// for O(log n) re-keying of an arbitrary core.
///
/// # Examples
///
/// ```
/// use ptm_sim::scheduler::ReadyHeap;
///
/// let mut h = ReadyHeap::new(3);
/// h.upsert(0, 10);
/// h.upsert(1, 5);
/// h.upsert(2, 10);
/// assert_eq!(h.peek(), Some((5, 1)));
/// h.upsert(1, 40); // re-key
/// assert_eq!(h.peek(), Some((10, 0)), "ties break toward the lowest core");
/// h.remove(0);
/// assert_eq!(h.peek(), Some((10, 2)));
/// ```
#[derive(Debug, Clone)]
pub struct ReadyHeap {
    /// Heap array of `(ready_at, core)`, min at index 0.
    heap: Vec<(Cycle, usize)>,
    /// `pos[core]` = heap index + 1; 0 means the core is not in the heap.
    pos: Vec<usize>,
}

impl ReadyHeap {
    /// An empty heap sized for `cores` cores.
    pub fn new(cores: usize) -> Self {
        ReadyHeap {
            heap: Vec::with_capacity(cores),
            pos: vec![0; cores],
        }
    }

    /// Number of cores currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no cores are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `core` is queued.
    pub fn contains(&self, core: usize) -> bool {
        self.pos[core] != 0
    }

    /// The earliest `(ready_at, core)`, without removing it.
    pub fn peek(&self) -> Option<(Cycle, usize)> {
        self.heap.first().copied()
    }

    /// The second-earliest key: the smaller of the root's two children (the
    /// heap property puts the runner-up there). The run-ahead dispatcher
    /// keeps stepping the current core while its key stays strictly below
    /// this bound, skipping all heap traffic for same-core bursts.
    #[inline]
    pub fn runner_up(&self) -> Option<(Cycle, usize)> {
        match (self.heap.get(1), self.heap.get(2)) {
            (Some(&l), Some(&r)) => Some(l.min(r)),
            (Some(&l), None) => Some(l),
            _ => None,
        }
    }

    /// Inserts `core` with key `ready_at`, or re-keys it if already queued.
    pub fn upsert(&mut self, core: usize, ready_at: Cycle) {
        match self.pos[core] {
            0 => {
                self.heap.push((ready_at, core));
                let i = self.heap.len() - 1;
                self.pos[core] = i + 1;
                self.sift_up(i);
            }
            p => {
                let i = p - 1;
                let old = self.heap[i].0;
                self.heap[i].0 = ready_at;
                if (ready_at, core) < (old, core) {
                    self.sift_up(i);
                } else {
                    self.sift_down(i);
                }
            }
        }
    }

    /// Removes `core` from the heap (no-op if absent).
    pub fn remove(&mut self, core: usize) {
        let p = self.pos[core];
        if p == 0 {
            return;
        }
        let i = p - 1;
        let last = self.heap.len() - 1;
        self.heap.swap(i, last);
        self.pos[self.heap[i].1] = i + 1;
        self.pos[core] = 0;
        self.heap.pop();
        if i < self.heap.len() {
            // The swapped-in entry may violate either direction.
            self.sift_up(i);
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.key(i) < self.key(parent) {
                self.swap_entries(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.heap.len() && self.key(l) < self.key(smallest) {
                smallest = l;
            }
            if r < self.heap.len() && self.key(r) < self.key(smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap_entries(i, smallest);
            i = smallest;
        }
    }

    #[inline]
    fn key(&self, i: usize) -> (Cycle, usize) {
        self.heap[i]
    }

    #[inline]
    fn swap_entries(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1] = a + 1;
        self.pos[self.heap[b].1] = b + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: the `min_by_key` scan the heap replaces.
    fn scan_min(ready: &[Option<Cycle>]) -> Option<(Cycle, usize)> {
        ready
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|r| (r, i)))
            .min()
    }

    #[test]
    fn matches_min_by_key_scan_under_random_updates() {
        // Deterministic xorshift stream: no external RNG needed.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 9;
        let mut heap = ReadyHeap::new(n);
        let mut ready: Vec<Option<Cycle>> = vec![None; n];
        for _ in 0..5_000 {
            let core = (rnd() % n as u64) as usize;
            match rnd() % 4 {
                0 => {
                    heap.remove(core);
                    ready[core] = None;
                }
                _ => {
                    let t = rnd() % 1_000;
                    heap.upsert(core, t);
                    ready[core] = Some(t);
                }
            }
            assert_eq!(heap.peek(), scan_min(&ready));
            assert_eq!(heap.len(), ready.iter().flatten().count());
            // The runner-up must be the scan's second-smallest key.
            let second = {
                let mut keys: Vec<(Cycle, usize)> = ready
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.map(|r| (r, i)))
                    .collect();
                keys.sort();
                keys.get(1).copied()
            };
            assert_eq!(heap.runner_up(), second);
        }
    }

    #[test]
    fn ties_break_toward_lowest_core_index() {
        let mut h = ReadyHeap::new(4);
        for core in (0..4).rev() {
            h.upsert(core, 7);
        }
        assert_eq!(h.peek(), Some((7, 0)));
        h.remove(0);
        assert_eq!(h.peek(), Some((7, 1)));
        h.upsert(0, 7);
        assert_eq!(h.peek(), Some((7, 0)), "re-inserted core 0 wins the tie");
    }

    #[test]
    fn upsert_rekeys_in_both_directions() {
        let mut h = ReadyHeap::new(3);
        h.upsert(0, 10);
        h.upsert(1, 20);
        h.upsert(2, 30);
        h.upsert(2, 1); // decrease
        assert_eq!(h.peek(), Some((1, 2)));
        h.upsert(2, 100); // increase
        assert_eq!(h.peek(), Some((10, 0)));
        h.remove(0);
        h.remove(1);
        assert_eq!(h.peek(), Some((100, 2)));
        h.remove(2);
        assert!(h.is_empty());
        h.remove(2); // removing an absent core is a no-op
        assert!(h.is_empty());
    }
}
