//! The canonical-order scheduler: an index-min heap over core `ready_at`
//! times.
//!
//! [`Machine::run`](crate::machine::Machine::run) processes cores in global
//! time order — smallest `ready_at` first, ties broken by lowest core index
//! (the order a stable `min_by_key` scan produces). The heap replaces that
//! O(cores) scan per step with an O(log cores) update, and doubles as the
//! *canonical-order oracle* for the epoch executor: whatever core the heap
//! yields next is, by definition, the core the sequential schedule would
//! step next, so speculative work is validated against heap order.
//!
//! Entries are keyed lexicographically by `(ready_at, core)`; every key is
//! unique (one entry per core), so ordering is total and deterministic.

use crate::mvmap::TxnVersion;
use ptm_types::Cycle;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// An index-min binary heap of `(ready_at, core)` pairs with a position map
/// for O(log n) re-keying of an arbitrary core.
///
/// # Examples
///
/// ```
/// use ptm_sim::scheduler::ReadyHeap;
///
/// let mut h = ReadyHeap::new(3);
/// h.upsert(0, 10);
/// h.upsert(1, 5);
/// h.upsert(2, 10);
/// assert_eq!(h.peek(), Some((5, 1)));
/// h.upsert(1, 40); // re-key
/// assert_eq!(h.peek(), Some((10, 0)), "ties break toward the lowest core");
/// h.remove(0);
/// assert_eq!(h.peek(), Some((10, 2)));
/// ```
#[derive(Debug, Clone)]
pub struct ReadyHeap {
    /// Heap array of `(ready_at, core)`, min at index 0.
    heap: Vec<(Cycle, usize)>,
    /// `pos[core]` = heap index + 1; 0 means the core is not in the heap.
    pos: Vec<usize>,
}

impl ReadyHeap {
    /// An empty heap sized for `cores` cores.
    pub fn new(cores: usize) -> Self {
        ReadyHeap {
            heap: Vec::with_capacity(cores),
            pos: vec![0; cores],
        }
    }

    /// Number of cores currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no cores are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `core` is queued.
    pub fn contains(&self, core: usize) -> bool {
        self.pos[core] != 0
    }

    /// The earliest `(ready_at, core)`, without removing it.
    pub fn peek(&self) -> Option<(Cycle, usize)> {
        self.heap.first().copied()
    }

    /// The second-earliest key: the smaller of the root's two children (the
    /// heap property puts the runner-up there). The run-ahead dispatcher
    /// keeps stepping the current core while its key stays strictly below
    /// this bound, skipping all heap traffic for same-core bursts.
    #[inline]
    pub fn runner_up(&self) -> Option<(Cycle, usize)> {
        match (self.heap.get(1), self.heap.get(2)) {
            (Some(&l), Some(&r)) => Some(l.min(r)),
            (Some(&l), None) => Some(l),
            _ => None,
        }
    }

    /// Inserts `core` with key `ready_at`, or re-keys it if already queued.
    pub fn upsert(&mut self, core: usize, ready_at: Cycle) {
        match self.pos[core] {
            0 => {
                self.heap.push((ready_at, core));
                let i = self.heap.len() - 1;
                self.pos[core] = i + 1;
                self.sift_up(i);
            }
            p => {
                let i = p - 1;
                let old = self.heap[i].0;
                self.heap[i].0 = ready_at;
                if (ready_at, core) < (old, core) {
                    self.sift_up(i);
                } else {
                    self.sift_down(i);
                }
            }
        }
    }

    /// Removes `core` from the heap (no-op if absent).
    pub fn remove(&mut self, core: usize) {
        let p = self.pos[core];
        if p == 0 {
            return;
        }
        let i = p - 1;
        let last = self.heap.len() - 1;
        self.heap.swap(i, last);
        self.pos[self.heap[i].1] = i + 1;
        self.pos[core] = 0;
        self.heap.pop();
        if i < self.heap.len() {
            // The swapped-in entry may violate either direction.
            self.sift_up(i);
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.key(i) < self.key(parent) {
                self.swap_entries(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.heap.len() && self.key(l) < self.key(smallest) {
                smallest = l;
            }
            if r < self.heap.len() && self.key(r) < self.key(smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap_entries(i, smallest);
            i = smallest;
        }
    }

    #[inline]
    fn key(&self, i: usize) -> (Cycle, usize) {
        self.heap[i]
    }

    #[inline]
    fn swap_entries(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1] = a + 1;
        self.pos[self.heap[b].1] = b + 1;
    }
}

// ---------------------------------------------------------------------
// The Block-STM task scheduler
// ---------------------------------------------------------------------

/// A unit of Block-STM work handed to a host thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Execute (or re-execute) the given incarnation.
    Execution(TxnVersion),
    /// Validate the read set of the given executed incarnation.
    Validation(TxnVersion),
    /// Nothing to hand out right now; ask again.
    Retry,
    /// Every transaction is executed and validated: workers may exit.
    Done,
}

/// Lifecycle of one transaction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    ReadyToExecute,
    Executing,
    Executed,
    Aborting,
}

/// The lock-free-ish Block-STM scheduler: two atomic counters dispense
/// Execution and Validation tasks over a preset transaction order,
/// validation preferred. A validation failure re-incarnates its
/// transaction (incarnation + 1) and *decreases* the validation counter so
/// every higher-indexed transaction revalidates — the "validation wave"
/// that makes optimistic execution converge on the sequential semantics.
/// `Done` is detected when both counters have run off the end with no task
/// still in flight.
///
/// Per-slot status transitions sit behind one tiny mutex each (status +
/// incarnation move together); the dispatch counters themselves are
/// plain atomics, so idle workers never serialize on a global lock.
#[derive(Debug)]
pub struct Scheduler {
    /// Preset number of transactions in the block.
    num_txns: usize,
    /// Next transaction index to hand out for execution.
    execution_idx: AtomicUsize,
    /// Next transaction index to hand out for validation.
    validation_idx: AtomicUsize,
    /// Times the validation counter was decreased (wave count).
    decrease_cnt: AtomicUsize,
    /// Tasks currently checked out by workers.
    num_active_tasks: AtomicUsize,
    /// Latched once `done()` first observes completion.
    done_marker: AtomicBool,
    /// `(incarnation, status)` per transaction slot.
    txn_status: Vec<Mutex<(u32, Status)>>,
}

impl Scheduler {
    /// A scheduler over `num_txns` transactions in preset order.
    pub fn new(num_txns: usize) -> Self {
        Scheduler {
            num_txns,
            execution_idx: AtomicUsize::new(0),
            validation_idx: AtomicUsize::new(0),
            decrease_cnt: AtomicUsize::new(0),
            num_active_tasks: AtomicUsize::new(0),
            done_marker: AtomicBool::new(false),
            txn_status: (0..num_txns)
                .map(|_| Mutex::new((0, Status::ReadyToExecute)))
                .collect(),
        }
    }

    /// Whether every transaction is executed and validated.
    pub fn done(&self) -> bool {
        if self.done_marker.load(Ordering::Acquire) {
            return true;
        }
        let finished = self.execution_idx.load(Ordering::Acquire) >= self.num_txns
            && self.validation_idx.load(Ordering::Acquire) >= self.num_txns
            && self.num_active_tasks.load(Ordering::Acquire) == 0;
        if finished {
            self.done_marker.store(true, Ordering::Release);
        }
        finished
    }

    /// Validation waves triggered so far (counter decreases).
    pub fn validation_waves(&self) -> usize {
        self.decrease_cnt.load(Ordering::Relaxed)
    }

    /// The current incarnation number of a transaction slot.
    pub fn incarnation(&self, tx_index: u32) -> u32 {
        self.txn_status[tx_index as usize].lock().unwrap().0
    }

    /// Dispenses the next task, preferring validation (lower indices
    /// revalidate before higher indices execute further ahead).
    pub fn next_task(&self) -> Task {
        if self.done() {
            return Task::Done;
        }
        let val = self.validation_idx.load(Ordering::Acquire);
        let exec = self.execution_idx.load(Ordering::Acquire);
        if val < exec {
            if let Some(v) = self.next_version_to_validate() {
                return Task::Validation(v);
            }
        }
        if let Some(v) = self.next_version_to_execute() {
            return Task::Execution(v);
        }
        if self.done() {
            Task::Done
        } else {
            Task::Retry
        }
    }

    fn next_version_to_execute(&self) -> Option<TxnVersion> {
        if self.execution_idx.load(Ordering::Acquire) >= self.num_txns {
            return None;
        }
        self.num_active_tasks.fetch_add(1, Ordering::AcqRel);
        let idx = self.execution_idx.fetch_add(1, Ordering::AcqRel);
        if idx >= self.num_txns {
            self.num_active_tasks.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        match self.try_incarnate(idx as u32) {
            Some(v) => Some(v),
            None => {
                self.num_active_tasks.fetch_sub(1, Ordering::AcqRel);
                None
            }
        }
    }

    fn next_version_to_validate(&self) -> Option<TxnVersion> {
        if self.validation_idx.load(Ordering::Acquire) >= self.num_txns {
            return None;
        }
        self.num_active_tasks.fetch_add(1, Ordering::AcqRel);
        let idx = self.validation_idx.fetch_add(1, Ordering::AcqRel);
        if idx < self.num_txns {
            let (incarnation, status) = *self.txn_status[idx].lock().unwrap();
            if status == Status::Executed {
                return Some(TxnVersion {
                    tx_index: idx as u32,
                    incarnation,
                });
            }
        }
        self.num_active_tasks.fetch_sub(1, Ordering::AcqRel);
        None
    }

    /// Claims `tx_index` for execution if it is ready, returning the
    /// version to run.
    fn try_incarnate(&self, tx_index: u32) -> Option<TxnVersion> {
        let mut st = self.txn_status[tx_index as usize].lock().unwrap();
        if st.1 == Status::ReadyToExecute {
            st.1 = Status::Executing;
            Some(TxnVersion {
                tx_index,
                incarnation: st.0,
            })
        } else {
            None
        }
    }

    /// Marks an execution finished. `wrote_new_location` reports whether
    /// this incarnation wrote somewhere its previous incarnation did not —
    /// if so, every higher-indexed transaction must revalidate (counter
    /// decrease); otherwise validating just this transaction suffices and
    /// the task is returned directly to the finishing worker.
    pub fn finish_execution(&self, version: TxnVersion, wrote_new_location: bool) -> Task {
        {
            let mut st = self.txn_status[version.tx_index as usize].lock().unwrap();
            debug_assert_eq!(st.1, Status::Executing, "finish of a non-running version");
            st.1 = Status::Executed;
        }
        if self.validation_idx.load(Ordering::Acquire) > version.tx_index as usize {
            // The validation frontier already passed us: our writes landed
            // behind it, so revalidation is needed — everything above us if
            // the write set grew, otherwise just this version (handed back
            // to the finishing worker without touching the counters).
            if wrote_new_location {
                self.decrease_validation_idx(version.tx_index as usize);
            } else {
                return Task::Validation(version);
            }
        }
        self.num_active_tasks.fetch_sub(1, Ordering::AcqRel);
        Task::Retry
    }

    /// Attempts to claim an executed incarnation for abort (exactly one
    /// concurrent validator wins). The winner re-incarnates it through
    /// [`Scheduler::finish_validation`].
    pub fn try_validation_abort(&self, version: TxnVersion) -> bool {
        let mut st = self.txn_status[version.tx_index as usize].lock().unwrap();
        if *st == (version.incarnation, Status::Executed) {
            st.1 = Status::Aborting;
            true
        } else {
            false
        }
    }

    /// Marks a validation finished. On abort (after a successful
    /// [`Scheduler::try_validation_abort`]) the transaction re-incarnates,
    /// the validation counter rewinds past it, and if execution has already
    /// run ahead the re-execution task is handed straight back.
    pub fn finish_validation(&self, version: TxnVersion, aborted: bool) -> Task {
        if aborted {
            {
                let mut st = self.txn_status[version.tx_index as usize].lock().unwrap();
                debug_assert_eq!(st.1, Status::Aborting, "abort without claim");
                *st = (version.incarnation + 1, Status::ReadyToExecute);
            }
            self.decrease_validation_idx(version.tx_index as usize + 1);
            if self.execution_idx.load(Ordering::Acquire) > version.tx_index as usize {
                if let Some(v) = self.try_incarnate(version.tx_index) {
                    return Task::Execution(v);
                }
            }
        }
        self.num_active_tasks.fetch_sub(1, Ordering::AcqRel);
        Task::Retry
    }

    /// Rewinds the validation frontier to `target`, forcing everything at
    /// or above it to revalidate (a decreasing validation wave).
    fn decrease_validation_idx(&self, target: usize) {
        self.validation_idx.fetch_min(target, Ordering::AcqRel);
        self.decrease_cnt.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: the `min_by_key` scan the heap replaces.
    fn scan_min(ready: &[Option<Cycle>]) -> Option<(Cycle, usize)> {
        ready
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|r| (r, i)))
            .min()
    }

    #[test]
    fn matches_min_by_key_scan_under_random_updates() {
        // Deterministic xorshift stream: no external RNG needed.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 9;
        let mut heap = ReadyHeap::new(n);
        let mut ready: Vec<Option<Cycle>> = vec![None; n];
        for _ in 0..5_000 {
            let core = (rnd() % n as u64) as usize;
            match rnd() % 4 {
                0 => {
                    heap.remove(core);
                    ready[core] = None;
                }
                _ => {
                    let t = rnd() % 1_000;
                    heap.upsert(core, t);
                    ready[core] = Some(t);
                }
            }
            assert_eq!(heap.peek(), scan_min(&ready));
            assert_eq!(heap.len(), ready.iter().flatten().count());
            // The runner-up must be the scan's second-smallest key.
            let second = {
                let mut keys: Vec<(Cycle, usize)> = ready
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.map(|r| (r, i)))
                    .collect();
                keys.sort();
                keys.get(1).copied()
            };
            assert_eq!(heap.runner_up(), second);
        }
    }

    #[test]
    fn ties_break_toward_lowest_core_index() {
        let mut h = ReadyHeap::new(4);
        for core in (0..4).rev() {
            h.upsert(core, 7);
        }
        assert_eq!(h.peek(), Some((7, 0)));
        h.remove(0);
        assert_eq!(h.peek(), Some((7, 1)));
        h.upsert(0, 7);
        assert_eq!(h.peek(), Some((7, 0)), "re-inserted core 0 wins the tie");
    }

    #[test]
    fn upsert_rekeys_in_both_directions() {
        let mut h = ReadyHeap::new(3);
        h.upsert(0, 10);
        h.upsert(1, 20);
        h.upsert(2, 30);
        h.upsert(2, 1); // decrease
        assert_eq!(h.peek(), Some((1, 2)));
        h.upsert(2, 100); // increase
        assert_eq!(h.peek(), Some((10, 0)));
        h.remove(0);
        h.remove(1);
        assert_eq!(h.peek(), Some((100, 2)));
        h.remove(2);
        assert!(h.is_empty());
        h.remove(2); // removing an absent core is a no-op
        assert!(h.is_empty());
    }

    /// Drives a scheduler to completion on the calling thread, executing
    /// and validating every dispensed task. `abort_once(v)` decides
    /// whether a validation should fail (each version at most once).
    fn drive(
        s: &Scheduler,
        mut abort_once: impl FnMut(TxnVersion) -> bool,
    ) -> (Vec<u32>, Vec<u32>) {
        let n = s.num_txns;
        let mut executed = vec![0u32; n];
        let mut validated = vec![0u32; n];
        let mut guard = 0;
        let mut task = s.next_task();
        while task != Task::Done {
            guard += 1;
            assert!(guard < 10_000, "scheduler failed to converge");
            task = match task {
                Task::Execution(v) => {
                    executed[v.tx_index as usize] += 1;
                    // First incarnations "write a new location".
                    s.finish_execution(v, v.incarnation == 0)
                }
                Task::Validation(v) => {
                    validated[v.tx_index as usize] += 1;
                    if abort_once(v) && s.try_validation_abort(v) {
                        s.finish_validation(v, true)
                    } else {
                        s.finish_validation(v, false)
                    }
                }
                Task::Retry => s.next_task(),
                Task::Done => unreachable!(),
            };
        }
        (executed, validated)
    }

    #[test]
    fn scheduler_runs_every_txn_once_without_conflicts() {
        let s = Scheduler::new(5);
        let (executed, validated) = drive(&s, |_| false);
        assert!(s.done());
        assert_eq!(executed, vec![1; 5]);
        assert!(validated.iter().all(|&v| v >= 1), "{validated:?}");
        assert_eq!((0..5).map(|i| s.incarnation(i)).max(), Some(0));
    }

    #[test]
    fn aborts_reincarnate_and_rewind_the_validation_wave() {
        let s = Scheduler::new(6);
        let mut aborted = false;
        let (executed, validated) = drive(&s, |v| {
            if v.tx_index == 2 && v.incarnation == 0 && !aborted {
                aborted = true;
                true
            } else {
                false
            }
        });
        assert!(s.done());
        assert_eq!(s.incarnation(2), 1, "aborted txn re-incarnated");
        assert_eq!(executed[2], 2, "re-executed after abort");
        assert!(validated[2] >= 2, "revalidated after re-execution");
        assert!(s.validation_waves() >= 1, "abort rewound the frontier");
        // Transactions above the abort revalidate at least once more than
        // the minimum when the wave passes them again.
        assert!(executed[3..].iter().all(|&e| e == 1));
    }

    #[test]
    fn stale_validation_abort_claims_fail() {
        let s = Scheduler::new(1);
        let v0 = match s.next_task() {
            Task::Execution(v) => v,
            t => panic!("expected execution, got {t:?}"),
        };
        let after = s.finish_execution(v0, false);
        // A claim against a later incarnation's version must fail.
        assert!(!s.try_validation_abort(TxnVersion {
            tx_index: 0,
            incarnation: 7
        }));
        // The real claim wins exactly once.
        assert!(s.try_validation_abort(v0));
        assert!(!s.try_validation_abort(v0));
        let reexec = s.finish_validation(v0, true);
        assert_eq!(
            reexec,
            Task::Execution(TxnVersion {
                tx_index: 0,
                incarnation: 1
            })
        );
        let _ = after;
    }

    #[test]
    fn scheduler_converges_under_host_concurrency() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let n = 64;
        let s = Scheduler::new(n);
        let abort_budget: Vec<AtomicU32> = (0..n)
            .map(|i| AtomicU32::new(u32::from(i % 7 == 3)))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut task = s.next_task();
                    let mut spins = 0u32;
                    while task != Task::Done {
                        task = match task {
                            Task::Execution(v) => s.finish_execution(v, v.incarnation == 0),
                            Task::Validation(v) => {
                                let want_abort = abort_budget[v.tx_index as usize]
                                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| {
                                        b.checked_sub(1)
                                    })
                                    .is_ok();
                                if want_abort && s.try_validation_abort(v) {
                                    s.finish_validation(v, true)
                                } else {
                                    s.finish_validation(v, false)
                                }
                            }
                            Task::Retry => {
                                spins += 1;
                                assert!(spins < 1_000_000, "livelock");
                                std::hint::spin_loop();
                                s.next_task()
                            }
                            Task::Done => unreachable!(),
                        };
                    }
                });
            }
        });
        assert!(s.done());
        for i in 0..n {
            let expect = u32::from(i % 7 == 3);
            assert!(
                s.incarnation(i as u32) >= expect,
                "txn {i} never re-incarnated"
            );
        }
    }
}
