//! The speculative epoch executor: Block-STM-style intra-machine
//! parallelism with bit-identical results.
//!
//! [`Machine::run`] steps cores strictly in canonical order (smallest
//! `(ready_at, core)` first). This module parallelizes the *computation* of
//! those steps without changing their *order*:
//!
//! 1. **Speculate (phase A).** Host worker threads share a frozen
//!    `&Machine` and run each core ahead through a bounded cycle window (an
//!    *epoch*), recording side-effect-free [`SpecRun`]s. A run only
//!    contains steps whose outcome is locally decidable — core-TLB hits
//!    that hit the private cache silently (no coherence, no conflict
//!    checks, no kernel) — plus pure compute; anything that could interact
//!    with another core stops the run.
//! 2. **Consume (phase B).** The canonical scheduler loop pops cores
//!    oldest-first as always. If the popped core has a pending, still-valid
//!    speculative step, its precomputed effect is applied directly (cheap);
//!    otherwise the step executes live. Every live step that *could* have
//!    invalidated speculation poisons the affected runs through
//!    [`ExecLog`]: cross-core mutations (commits, aborts, migrations,
//!    shootdowns, swap-ins, overflow creation) poison everything, a
//!    coherence supply poisons cores whose caches hold the block, and an
//!    epoch-local writers map catches same-block write/read ordering.
//!    Poisoned runs are rolled back (discarded) and their steps re-execute
//!    live — the sequential semantics are the only semantics.
//!
//! Because consumed steps apply their effects at exactly the canonical pop
//! points, and validation discards any step whose inputs a preceding step
//! changed, the final machine state — checksums, cycle counts,
//! commit/abort/conflict/TLB counters, every byte of memory — is
//! **bit-identical** to [`Machine::run`]. Debug builds additionally
//! re-verify every consumed step against the live state
//! (`debug_assertions`), so any gap in the poison rules fails loudly in
//! tests instead of skewing results.

use crate::backend::Backend;
use crate::machine::{trace_word, Machine};
use crate::ops::Op;
use ptm_cache::{Hit, Moesi};
use ptm_core::system::AccessKind;
use ptm_types::{
    Cycle, FastMap, FastSet, PhysAddr, PhysBlock, ProcessId, TxId, VirtAddr, WordIdx, BLOCK_SIZE,
};

/// Host-side knobs for [`Machine::run_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Host worker threads for the speculation phase. `1` keeps everything
    /// on the calling thread (still exercises the full epoch machinery).
    pub threads: usize,
    /// Cycle width of one epoch (the run-ahead window). Smaller epochs
    /// validate more often; `1` forces every speculative step through a
    /// fresh validation round (the rollback stress configuration).
    pub epoch_cycles: Cycle,
}

impl ExecutorConfig {
    /// Default epoch width: large enough to amortize the per-epoch barrier,
    /// small enough that a poison does not waste much run-ahead.
    pub const DEFAULT_EPOCH_CYCLES: Cycle = 16_384;

    /// One speculation worker per available host core.
    pub fn host_default() -> Self {
        ExecutorConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            epoch_cycles: Self::DEFAULT_EPOCH_CYCLES,
        }
    }

    /// A configuration with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        ExecutorConfig {
            threads,
            ..Self::host_default()
        }
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self::host_default()
    }
}

/// Counters describing one [`Machine::run_parallel`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Epochs executed (validation rounds).
    pub epochs: u64,
    /// Non-empty speculative runs produced by phase A.
    pub spec_runs: u64,
    /// Steps speculated in phase A.
    pub spec_steps: u64,
    /// Speculated steps whose effects were consumed at their canonical pop
    /// points (the parallel win).
    pub committed_spec_steps: u64,
    /// Steps executed live by phase B (never speculated, or re-executed
    /// after a rollback).
    pub live_steps: u64,
    /// Speculative runs discarded with unconsumed steps (validation
    /// failures and epoch-boundary leftovers).
    pub rollbacks: u64,
    /// Speculated-but-discarded steps that re-executed sequentially.
    pub reexecuted_steps: u64,
    /// Poison notifications raised by live steps (global + per-core).
    pub poison_events: u64,
}

impl ExecStats {
    /// Fraction of all executed steps that were served from speculation.
    pub fn spec_commit_fraction(&self) -> f64 {
        let total = self.committed_spec_steps + self.live_steps;
        if total == 0 {
            return 0.0;
        }
        self.committed_spec_steps as f64 / total as f64
    }

    /// Accumulates another run's counters into this one (for harness-level
    /// aggregation across benchmark cells).
    pub fn merge(&mut self, other: &ExecStats) {
        self.epochs += other.epochs;
        self.spec_runs += other.spec_runs;
        self.spec_steps += other.spec_steps;
        self.committed_spec_steps += other.committed_spec_steps;
        self.live_steps += other.live_steps;
        self.rollbacks += other.rollbacks;
        self.reexecuted_steps += other.reexecuted_steps;
        self.poison_events += other.poison_events;
    }
}

/// Epoch-validation state embedded in the machine. Inert (`active: false`)
/// during plain sequential runs, so the hooks sprinkled through the live
/// step paths cost one predictable branch each.
#[derive(Debug)]
pub(crate) struct ExecLog {
    /// Whether an epoch executor is driving this machine.
    pub(crate) active: bool,
    /// A cross-core mutation invalidated *every* pending run this epoch.
    poison_all: bool,
    /// Per-core poison (coherence supply touched a block this core's
    /// pending run may depend on).
    poisoned: Vec<bool>,
    /// Which cores still have unconsumed speculative steps this epoch.
    pending: Vec<bool>,
    /// Last core to write each block this epoch (consumed speculative
    /// writes and live functional writes alike). A consume against a block
    /// another core wrote is discarded.
    writers: FastMap<PhysBlock, usize>,
    /// Total poison notifications (for [`ExecStats::poison_events`]).
    pub(crate) poison_events: u64,
}

impl ExecLog {
    /// The inert log a freshly built machine carries.
    pub(crate) fn inactive() -> Self {
        ExecLog {
            active: false,
            poison_all: false,
            poisoned: Vec::new(),
            pending: Vec::new(),
            writers: FastMap::default(),
            poison_events: 0,
        }
    }

    fn activate(&mut self, cores: usize) {
        self.active = true;
        self.poison_all = false;
        self.poisoned = vec![false; cores];
        self.pending = vec![false; cores];
        self.writers.clear();
        self.poison_events = 0;
    }

    fn deactivate(&mut self) {
        self.active = false;
    }

    fn begin_epoch(&mut self, pending: &[bool]) {
        self.poison_all = false;
        self.poisoned.iter_mut().for_each(|p| *p = false);
        self.pending.copy_from_slice(pending);
        self.writers.clear();
    }

    /// A live step mutated state that any core's run may depend on.
    pub(crate) fn poison_all(&mut self) {
        if self.active && !self.poison_all {
            self.poison_all = true;
            self.poison_events += 1;
        }
    }

    /// A live step mutated state `core`'s pending run may depend on.
    pub(crate) fn poison_core(&mut self, core: usize) {
        if self.active && !self.poisoned[core] {
            self.poisoned[core] = true;
            self.poison_events += 1;
        }
    }

    /// Whether `core` still has unconsumed speculative steps this epoch.
    pub(crate) fn is_pending(&self, core: usize) -> bool {
        self.active && self.pending[core]
    }

    /// Records a functional write for same-epoch ordering validation.
    pub(crate) fn note_write(&mut self, block: PhysBlock, core: usize) {
        if self.active {
            self.writers.insert(block, core);
        }
    }

    fn run_poisoned(&self, core: usize) -> bool {
        self.poison_all || self.poisoned[core]
    }

    fn written_by_other(&self, block: PhysBlock, core: usize) -> bool {
        self.writers.get(&block).is_some_and(|&w| w != core)
    }

    fn set_consumed(&mut self, core: usize) {
        self.pending[core] = false;
    }
}

/// Where a speculated write lands when consumed.
#[derive(Debug)]
enum WriteTarget {
    /// PTM/VTM lazy versioning: the transaction's speculative buffer.
    /// `snapshot` is the pre-image for the transaction's first write to the
    /// block (precomputed from the frozen view).
    TxBuffer {
        snapshot: Option<Box<[u8; BLOCK_SIZE]>>,
    },
    /// LogTM eager versioning: log the old word, update memory in place.
    TxLog,
    /// Non-transactional store: `primary` is the committed location (PTM
    /// redirects through the selection vector), `mirror` a live
    /// word-granularity co-writer's speculative page to keep current.
    Mem {
        primary: PhysAddr,
        mirror: Option<PhysAddr>,
    },
}

/// One speculated step, carrying everything its consume needs.
#[derive(Debug)]
enum SpecStep {
    Compute {
        at: Cycle,
        cost: Cycle,
    },
    Access {
        at: Cycle,
        va: VirtAddr,
        pa: PhysAddr,
        kind: AccessKind,
        tx: Option<TxId>,
        /// The value the load observes (feeds the checksum and RMW deltas).
        old: u32,
        write: Option<(u32, WriteTarget)>,
        /// Hit latency (L1, or L1+L2 for an L1 miss that hits L2).
        latency: Cycle,
    },
}

impl SpecStep {
    fn at(&self) -> Cycle {
        match self {
            SpecStep::Compute { at, .. } | SpecStep::Access { at, .. } => *at,
        }
    }
}

/// A core's speculative run-ahead through one epoch. `steps` is stored in
/// reverse execution order so consuming pops from the back.
#[derive(Debug)]
struct SpecRun {
    core: usize,
    steps: Vec<SpecStep>,
}

impl SpecRun {
    fn remaining(&self) -> u64 {
        self.steps.len() as u64
    }
}

/// Run-local state layered over the frozen machine during speculation: the
/// effects this run's earlier steps will have had by the time a later step
/// consumes.
#[derive(Default)]
struct RunOverlay {
    /// Simulated L1 sets (`set index → (block, lru)` ways), lazily seeded
    /// from the frozen array and replayed with [`CacheArray::insert`]
    /// semantics so hit levels (and therefore latencies) stay exact.
    ///
    /// [`CacheArray::insert`]: ptm_cache::CacheArray::insert
    l1_sets: FastMap<usize, Vec<(PhysBlock, u64)>>,
    l1_clock: u64,
    /// MOESI overrides (this run's writes leave lines Modified).
    moesi: FastMap<PhysBlock, Moesi>,
    /// Functional words this run wrote.
    data: FastMap<(PhysBlock, WordIdx), u32>,
    /// Blocks whose first transactional buffer this run creates (later
    /// writes must not precompute another snapshot).
    buffered: FastSet<PhysBlock>,
}

/// Frozen-lru values stay below this; overlay insertions count up from it,
/// so simulated recency always orders after anything pre-existing.
const OVERLAY_LRU_BASE: u64 = u64::MAX / 2;

impl RunOverlay {
    fn l1_set<'a>(
        &'a mut self,
        m: &Machine,
        idx: usize,
        block: PhysBlock,
    ) -> &'a mut Vec<(PhysBlock, u64)> {
        let l1 = m.caches[idx].l1();
        let sets = l1.config().sets;
        let block_number = block.addr().0 / BLOCK_SIZE as u64;
        let set = (block_number as usize) & (sets - 1);
        self.l1_sets
            .entry(set)
            .or_insert_with(|| l1.set_view(block).collect())
    }

    fn l1_contains(&mut self, m: &Machine, idx: usize, block: PhysBlock) -> bool {
        self.l1_set(m, idx, block).iter().any(|(b, _)| *b == block)
    }

    /// Replays `CacheArray::insert` for the L1 presence refill `touch_mut`
    /// performs at consume time.
    fn l1_insert(&mut self, m: &Machine, idx: usize, block: PhysBlock) {
        let ways = m.caches[idx].l1().config().ways;
        self.l1_clock += 1;
        let clock = OVERLAY_LRU_BASE + self.l1_clock;
        let set = self.l1_set(m, idx, block);
        if let Some(way) = set.iter_mut().find(|(b, _)| *b == block) {
            way.1 = clock;
            return;
        }
        if set.len() < ways {
            set.push((block, clock));
            return;
        }
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, lru))| *lru)
            .map(|(i, _)| i)
            .expect("full set is non-empty");
        set[victim] = (block, clock);
    }
}

impl Machine {
    /// Runs every program to completion through the speculative epoch
    /// executor, producing **bit-identical** results to [`Machine::run`].
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making progress, like [`Machine::run`].
    pub fn run_parallel(&mut self, exec: &ExecutorConfig) -> ExecStats {
        let mut xs = ExecStats::default();
        let threads = exec.threads.max(1);
        let epoch_cycles = exec.epoch_cycles.max(1);
        // Word tracing prints from the live paths speculation skips; keep
        // traced runs fully sequential so the interleaving stays readable.
        let spec_enabled = trace_word().is_none();
        let mut guard: u64 = 0;
        let limit = self.progress_limit();
        let trace_progress = std::env::var("PTM_TRACE_PROGRESS").is_ok();

        let n = self.cores.len();
        self.exec_log.activate(n);
        let mut heap = self.build_ready_heap();
        let mut pending: Vec<Option<SpecRun>> = (0..n).map(|_| None).collect();
        let mut pend_flags = vec![false; n];

        while let Some((t0, _)) = heap.peek() {
            let window_end = t0.saturating_add(epoch_cycles);
            xs.epochs += 1;

            // Phase A: side-effect-free run-ahead against the frozen state.
            let runs = if spec_enabled {
                self.speculate(window_end, threads)
            } else {
                Vec::new()
            };
            pend_flags.iter_mut().for_each(|p| *p = false);
            for run in runs {
                if !run.steps.is_empty() {
                    xs.spec_runs += 1;
                    xs.spec_steps += run.remaining();
                    let core = run.core;
                    pend_flags[core] = true;
                    pending[core] = Some(run);
                }
            }
            self.exec_log.begin_epoch(&pend_flags);

            // Phase B: canonical-order consume/execute.
            while let Some((t, idx)) = heap.peek() {
                if t >= window_end {
                    break;
                }
                if !self.try_consume(idx, &mut pending, &mut xs) {
                    self.step(idx);
                    xs.live_steps += 1;
                }
                self.sync_heap(&mut heap, idx);
                guard += 1;
                if trace_progress && guard.is_multiple_of(20_000_000) {
                    let pcs: Vec<_> = self
                        .cores
                        .iter()
                        .map(|c| (c.prog.thread().0, c.prog.pc(), c.ready_at))
                        .collect();
                    eprintln!("[progress] steps={guard} {pcs:?}");
                }
                if guard >= limit {
                    self.progress_panic();
                }
            }

            // Epoch boundary: whatever survived unconsumed (poisoned right
            // at the end of the window) rolls back.
            for slot in pending.iter_mut() {
                if let Some(run) = slot.take() {
                    xs.rollbacks += 1;
                    xs.reexecuted_steps += run.remaining();
                }
            }
        }

        xs.poison_events = self.exec_log.poison_events;
        self.exec_log.deactivate();
        self.finalize_stats();
        xs
    }

    /// Attempts to consume core `idx`'s next speculative step. Returns
    /// `false` when the core has no valid pending step (the caller executes
    /// live). Discards the rest of the run on any validation failure.
    fn try_consume(
        &mut self,
        idx: usize,
        pending: &mut [Option<SpecRun>],
        xs: &mut ExecStats,
    ) -> bool {
        let Some(run) = pending[idx].as_mut() else {
            return false;
        };
        let discard = self.exec_log.run_poisoned(idx)
            || match run.steps.last() {
                Some(SpecStep::Access { pa, .. }) => {
                    self.exec_log.written_by_other(pa.block(), idx)
                }
                Some(SpecStep::Compute { .. }) => false,
                None => true,
            };
        if discard {
            let run = pending[idx].take().expect("pending run");
            if run.remaining() > 0 {
                xs.rollbacks += 1;
                xs.reexecuted_steps += run.remaining();
            }
            self.exec_log.set_consumed(idx);
            return false;
        }
        let step = run.steps.pop().expect("non-empty run");
        let done = run.steps.is_empty();
        self.apply_spec_step(idx, step);
        xs.committed_spec_steps += 1;
        if done {
            pending[idx] = None;
            self.exec_log.set_consumed(idx);
        }
        true
    }

    /// Applies a validated speculative step: the exact effects the live
    /// silent-hit path would have produced, minus the lookups.
    fn apply_spec_step(&mut self, idx: usize, step: SpecStep) {
        let now = self.cores[idx].ready_at;
        debug_assert_eq!(step.at(), now, "consume off the speculated schedule");
        match step {
            SpecStep::Compute { cost, .. } => {
                debug_assert!(matches!(
                    self.cores[idx].prog.current(),
                    Some(Op::Compute(_))
                ));
                self.cores[idx].prog.advance();
                self.cores[idx].ready_at = now + cost;
            }
            SpecStep::Access {
                va,
                pa,
                kind,
                tx,
                old,
                write,
                latency,
                ..
            } => {
                #[cfg(debug_assertions)]
                self.debug_validate_access(idx, va, pa, kind, tx, old, write.is_some());
                let block = pa.block();
                let word = pa.word_in_block();
                let pid = self.cores[idx].prog.pid();
                let is_write = write.is_some();

                // Timing-model effects of the silent hit.
                self.stats.tlb_hits += 1;
                self.caches[idx].l2_stats_mut().hits += 1;
                let line = self.caches[idx].touch_mut(block).expect("speculated hit");
                if is_write {
                    line.set_state(Moesi::Modified);
                }
                if let Some(tx) = tx {
                    let meta = line.tx_meta_for(tx);
                    match kind {
                        AccessKind::Read => meta.record_read(word),
                        AccessKind::Write => {
                            meta.record_read(word);
                            meta.record_write(word);
                        }
                    }
                }

                // Functional effects.
                self.cores[idx].checksum = self.cores[idx]
                    .checksum
                    .rotate_left(1)
                    .wrapping_add(u64::from(old));
                if let Some((value, target)) = write {
                    match target {
                        WriteTarget::TxBuffer { snapshot } => {
                            let tx = tx.expect("buffered write is transactional");
                            debug_assert_eq!(self.spec.has(tx, block), snapshot.is_none());
                            self.spec.write_word(tx, block, word, value, || {
                                *snapshot.expect("speculated snapshot")
                            });
                        }
                        WriteTarget::TxLog => {
                            let tx = tx.expect("logged write is transactional");
                            let old_word = self.mem.read_word(pa);
                            let Backend::LogTm(l) = &mut self.backend else {
                                unreachable!("TxLog target outside LogTM")
                            };
                            l.log_write(tx, pa, old_word);
                            self.mem.write_word(pa, value);
                        }
                        WriteTarget::Mem { primary, mirror } => {
                            self.mem.write_word(primary, value);
                            if let Some(m) = mirror {
                                self.mem.write_word(m, value);
                            }
                        }
                    }
                    self.exec_log.note_write(block, idx);
                    self.note_page_touch(idx, pid, va.vpn(), tx.is_some());
                } else {
                    self.note_page_touch(idx, pid, va.vpn(), false);
                }
                self.stats.mem_ops += 1;
                self.cores[idx].prog.advance();
                self.cores[idx].ready_at = now + latency.max(1);
            }
        }
    }

    /// Debug-build revalidation: re-runs every gate of the live silent-hit
    /// path against the *current* state. A failure here means a poison rule
    /// is missing — the safety net that turns such a gap into a loud test
    /// failure instead of silently skewed results.
    #[cfg(debug_assertions)]
    #[allow(clippy::too_many_arguments)]
    fn debug_validate_access(
        &self,
        idx: usize,
        va: VirtAddr,
        pa: PhysAddr,
        kind: AccessKind,
        tx: Option<TxId>,
        old: u32,
        is_write: bool,
    ) {
        let pid = self.cores[idx].prog.pid();
        let op = self.cores[idx].prog.current();
        assert_eq!(
            op.and_then(|o| o.addr()),
            Some(va),
            "speculated op diverged from the program"
        );
        assert_eq!(op.map(|o| o.is_write()), Some(is_write));
        assert_eq!(self.tx_context(idx), tx, "tx context changed unpoisoned");
        assert_eq!(
            self.tlb_lookup(idx, pid, va.vpn()),
            Some(pa.frame()),
            "translation changed unpoisoned"
        );
        let block = pa.block();
        let line = self.caches[idx].line(block).expect("line left the cache");
        assert!(
            line.tx_meta().is_none_or(|m| Some(m.tx) == tx),
            "foreign transactional metadata appeared"
        );
        if is_write {
            assert!(
                line.state().allows_silent_write(),
                "write lost silent-write rights"
            );
        }
        assert!(
            !self.hit_needs_overflow_check(idx, block, pa.word_in_block(), kind, tx),
            "overflow check became necessary"
        );
        assert_eq!(
            old,
            self.read_word_functional(tx, pid, va, pa),
            "speculated value diverged from the coherent view"
        );
    }

    /// Phase A: produce speculative runs for every eligible core,
    /// partitioned across `threads` host workers sharing the frozen
    /// machine.
    fn speculate(&self, window_end: Cycle, threads: usize) -> Vec<SpecRun> {
        let eligible: Vec<usize> = (0..self.cores.len())
            .filter(|&i| !self.cores[i].prog.is_finished() && self.cores[i].ready_at < window_end)
            .collect();
        if eligible.is_empty() {
            return Vec::new();
        }
        let workers = threads.min(eligible.len());
        if workers <= 1 {
            return eligible
                .iter()
                .map(|&i| self.speculate_core(i, window_end))
                .collect();
        }
        // &self is shared across the scope: speculation never mutates.
        std::thread::scope(|s| {
            let chunk = eligible.len().div_ceil(workers);
            let handles: Vec<_> = eligible
                .chunks(chunk)
                .map(|cores| {
                    s.spawn(move || {
                        cores
                            .iter()
                            .map(|&i| self.speculate_core(i, window_end))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("speculation worker panicked"))
                .collect()
        })
    }

    /// Runs core `idx` ahead through `[ready_at, window_end)` against the
    /// frozen machine, stopping at the first step whose outcome is not
    /// locally decidable.
    fn speculate_core(&self, idx: usize, window_end: Cycle) -> SpecRun {
        let core = &self.cores[idx];
        let pid = core.prog.pid();
        let tx = self.tx_context(idx);
        let mut now = core.ready_at;
        let mut pc = core.prog.pc();
        let mut steps = Vec::new();
        let mut ov = RunOverlay::default();

        // Injection timers fire live; stop short of either.
        while now < window_end && now < core.next_cs && now < core.next_exc {
            let Some(op) = core.prog.op_at(pc) else { break };
            let step = match op {
                Op::Compute(c) => Some(SpecStep::Compute {
                    at: now,
                    cost: Cycle::from(c.max(1)),
                }),
                Op::Read(va) => self.speculate_access(idx, pid, tx, now, va, None, &mut ov),
                Op::Write(va, v) => {
                    self.speculate_access(idx, pid, tx, now, va, Some(Ok(v)), &mut ov)
                }
                Op::Rmw(va, d) => {
                    self.speculate_access(idx, pid, tx, now, va, Some(Err(d)), &mut ov)
                }
                // Transaction boundaries, barriers and lock ops interact
                // with shared structures: live only.
                Op::Begin { .. } | Op::End | Op::Barrier(_) => None,
            };
            let Some(step) = step else { break };
            now += match &step {
                SpecStep::Compute { cost, .. } => *cost,
                SpecStep::Access { latency, .. } => (*latency).max(1),
            };
            pc += 1;
            steps.push(step);
        }
        steps.reverse(); // consume pops from the back
        SpecRun { core: idx, steps }
    }

    /// Speculates one memory access, or returns `None` where the live path
    /// could leave the silent-hit fast path. `write` is `Ok(const)` for
    /// stores, `Err(delta)` for read-modify-writes.
    #[allow(clippy::too_many_arguments)]
    fn speculate_access(
        &self,
        idx: usize,
        pid: ProcessId,
        tx: Option<TxId>,
        now: Cycle,
        va: VirtAddr,
        write: Option<Result<u32, i32>>,
        ov: &mut RunOverlay,
    ) -> Option<SpecStep> {
        let kind = if write.is_some() {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        // Core-TLB hit required: a miss goes through the kernel (faults,
        // allocation, swap) and can mutate global state.
        let frame = self.tlb_lookup(idx, pid, va.vpn())?;
        let pa = PhysAddr::from_frame(frame, va.page_offset());
        let block = pa.block();
        let word = pa.word_in_block();

        // Private-cache hit required (L2 presence is frozen for the run:
        // speculated steps never evict, and cross-core invalidations poison
        // the run before consume).
        let line = self.caches[idx].line(block)?;
        // Any metadata owned by a different transaction (or any metadata at
        // all for a non-transactional access) diverts the live path into
        // conflict resolution and displacement — even dead metadata is
        // displaced there.
        if line.tx_meta().is_some_and(|m| Some(m.tx) != tx) {
            return None;
        }
        let state = ov.moesi.get(&block).copied().unwrap_or(line.state());
        if kind == AccessKind::Write && !state.allows_silent_write() {
            return None; // upgrade: a real coherence transaction
        }
        // The silent hit must provably skip the overflow-structure check:
        // non-transactional hits always do; transactional hits do when no
        // migration can scatter own lines and the mode tracks whole blocks.
        if tx.is_some()
            && (self.cfg.kernel.migrate_on_cs || self.kind.granularity().word_in_cache())
        {
            return None;
        }

        // Functional read: this run's earlier writes first, then the frozen
        // coherent view (validation guarantees it is still current at
        // consume time).
        let old = ov
            .data
            .get(&(block, word))
            .copied()
            .unwrap_or_else(|| self.read_word_functional(tx, pid, va, pa));

        let hit = if ov.l1_contains(self, idx, block) {
            Hit::L1
        } else {
            Hit::L2
        };
        let latency = self.caches[idx].hit_latency(hit);

        let write = match write {
            None => None,
            Some(wv) => {
                let value = match wv {
                    Ok(v) => v,
                    Err(d) => old.wrapping_add(d as u32),
                };
                let target = match (tx, &self.backend) {
                    (Some(_), Backend::LogTm(_)) => WriteTarget::TxLog,
                    (Some(t), _) => {
                        let fresh = !self.spec.has(t, block) && !ov.buffered.contains(&block);
                        let snapshot =
                            fresh.then(|| Box::new(self.tx_block_snapshot(t, pid, va, block)));
                        if fresh {
                            ov.buffered.insert(block);
                        }
                        WriteTarget::TxBuffer { snapshot }
                    }
                    (None, Backend::Ptm(p)) => WriteTarget::Mem {
                        primary: PhysAddr::from_frame(p.committed_frame(block), pa.page_offset()),
                        mirror: p
                            .mirror_location(block, None)
                            .map(|m| PhysAddr::from_frame(m.frame(), pa.page_offset())),
                    },
                    (None, _) => WriteTarget::Mem {
                        primary: pa,
                        mirror: None,
                    },
                };
                ov.data.insert((block, word), value);
                ov.moesi.insert(block, Moesi::Modified);
                Some((value, target))
            }
        };

        // The consume's `touch_mut` refills L1; replay it for later probes.
        ov.l1_insert(self, idx, block);

        Some(SpecStep::Access {
            at: now,
            va,
            pa,
            kind,
            tx,
            old,
            write,
            latency,
        })
    }
}
