//! The transaction-level Block-STM executor: optimistic whole-transaction
//! speculation with bit-identical results.
//!
//! [`Machine::run`] steps cores strictly in canonical order (smallest
//! `(ready_at, core)` first). This module parallelizes the *computation* of
//! those steps without changing their *order*:
//!
//! 1. **Speculate (phase A).** A Block-STM [`Scheduler`](crate::scheduler::Scheduler)
//!    dispenses per-core execution tasks to host worker threads sharing a
//!    frozen `&Machine`. Each task runs its core ahead through a bounded
//!    cycle window (an *epoch*), recording a [`SpecRun`] — and, unlike the
//!    old step-granularity executor, the run carries **whole simulated
//!    transactions**: `Begin`/`End` boundaries become [`SpecStep::Boundary`]
//!    steps, transactional loads and stores inside a not-yet-begun
//!    transaction reference a slot in the run's transaction table (the real
//!    `TxId` is late-bound at the canonical `Begin`), and stores buffer
//!    through the run's overlay exactly as the live lazy-versioning path
//!    would. Anything whose outcome is not locally decidable — cache
//!    misses, upgrades, lock ops, ordered commits, barriers, injection
//!    timers — still stops the run; those steps (and everything
//!    non-transactional that follows them) fall back to the canonical
//!    sequential loop.
//! 2. **Consume (phase B).** The canonical scheduler loop pops cores
//!    oldest-first as always. A pending, still-valid speculative step is
//!    applied directly (cheap); `Boundary` steps execute the live
//!    `Begin`/commit at exactly their canonical points (binding slot
//!    transactions, draining buffers, publishing writes); everything else
//!    executes live. Validation is word-granular through the shared
//!    [`MvMap`]: every canonically-applied write (live or consumed)
//!    publishes a version keyed by `(core, incarnation)`, and a speculated
//!    step is discarded when a *foreign* version exists for a word it read
//!    (or for any word of a block whose snapshot it precomputed). Aborted
//!    eager-versioning (LogTM) transactions publish **ESTIMATE** markers
//!    for the words their rollback rewrote. Cross-core mutations that
//!    word-level tracking cannot scope — overflow processing, migrations,
//!    shootdowns, swap-ins, selection flips, word-granularity
//!    commits/aborts — still poison globally through [`ExecLog`], and a
//!    coherence supply poisons cores whose caches hold the block. A
//!    discarded run bumps its core's **incarnation**; the next epoch
//!    re-executes it against fresh state.
//!
//! Because consumed steps apply their effects at exactly the canonical pop
//! points, and validation discards any step whose inputs a preceding step
//! changed, the final machine state — checksums, cycle counts,
//! commit/abort/conflict/TLB counters, every byte of memory — is
//! **bit-identical** to [`Machine::run`]. Debug builds additionally
//! re-verify every consumed step against the live state
//! (`debug_assertions`), so any gap in the poison rules fails loudly in
//! tests instead of skewing results.

use crate::backend::Backend;
use crate::machine::{trace_word, Machine};
use crate::mvmap::{MvMap, TxnVersion};
use crate::ops::Op;
use crate::scheduler::{Scheduler, Task};
use crate::SystemKind;
use ptm_cache::{Hit, Moesi, ProbeResult};
use ptm_core::system::AccessKind;
use ptm_types::{
    Cycle, FastMap, FastSet, PhysAddr, PhysBlock, ProcessId, TxId, VirtAddr, WordIdx, BLOCK_SIZE,
    WORD_SIZE,
};
use std::sync::Mutex;

/// Host-side knobs for [`Machine::run_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Host worker threads for the speculation phase. `1` keeps everything
    /// on the calling thread (still exercises the full epoch machinery).
    pub threads: usize,
    /// Cycle width of one epoch (the run-ahead window). Smaller epochs
    /// validate more often; `1` forces every speculative step through a
    /// fresh validation round (the rollback stress configuration).
    pub epoch_cycles: Cycle,
}

impl ExecutorConfig {
    /// Default epoch width: large enough to amortize the per-epoch barrier,
    /// small enough that a poison does not waste much run-ahead.
    pub const DEFAULT_EPOCH_CYCLES: Cycle = 16_384;

    /// One speculation worker per available host core.
    pub fn host_default() -> Self {
        ExecutorConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            epoch_cycles: Self::DEFAULT_EPOCH_CYCLES,
        }
    }

    /// A configuration with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        ExecutorConfig {
            threads,
            ..Self::host_default()
        }
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self::host_default()
    }
}

/// Counters describing one [`Machine::run_parallel`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Epochs executed (validation rounds).
    pub epochs: u64,
    /// Non-empty speculative runs produced by phase A.
    pub spec_runs: u64,
    /// Steps speculated in phase A.
    pub spec_steps: u64,
    /// Speculated steps whose effects were consumed at their canonical pop
    /// points (the parallel win).
    pub committed_spec_steps: u64,
    /// Steps executed live by phase B (never speculated, or re-executed
    /// after a rollback).
    pub live_steps: u64,
    /// Speculative runs discarded with unconsumed steps (validation
    /// failures and epoch-boundary leftovers).
    pub rollbacks: u64,
    /// Speculated-but-discarded steps that re-executed sequentially.
    pub reexecuted_steps: u64,
    /// Poison notifications raised by live steps (global + per-core).
    pub poison_events: u64,
    /// Whole simulated transactions entered inside speculative runs
    /// (`Begin` boundaries speculated).
    pub spec_txs: u64,
    /// Whole simulated transactions whose commit was consumed at its
    /// canonical point from a speculative run (the transaction-granularity
    /// win: begin, body and commit all rode one run).
    pub spec_tx_commits: u64,
    /// Core re-incarnations: discarded runs whose cores re-executed under
    /// a bumped incarnation number in a later epoch.
    pub incarnations: u64,
    /// Decreasing validation waves triggered in the phase-A scheduler.
    pub validation_waves: u64,
    /// Speculative steps discarded by a word-granular MvMap conflict
    /// (foreign version or ESTIMATE marker on a word they read).
    pub word_conflicts: u64,
    /// ESTIMATE markers published by eager-versioning aborts.
    pub estimate_markers: u64,
    /// Speculated cache-miss/upgrade steps that executed through the live
    /// path at their canonical points (replays). A replay is live-cost
    /// work, but it keeps the run alive so the cheap steps behind the miss
    /// stay consumable.
    pub replayed_steps: u64,
    /// Replays that did not complete their op (a stall, a conflict
    /// self-abort, an injected system event) plus post-replay state
    /// re-verification failures: the run's tail was discarded.
    pub replay_mispredicts: u64,
    /// Replays whose live latency diverged from the frozen-bus prediction
    /// (contention from other cores' consumed traffic). The tail survives —
    /// speculated steps are time-shift invariant — rescheduled by the skew.
    pub replay_skews: u64,
    /// Why runs stopped speculating, indexed by [`Refusal`]. Diagnostic:
    /// shows which live-path behaviour bounds run length.
    pub refusals: [u64; Refusal::COUNT],
}

/// Reasons phase A stops a speculative run (indices into
/// [`ExecStats::refusals`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Refusal {
    /// Core-TLB miss: the live path enters the kernel.
    Tlb = 0,
    /// Block absent from the private cache *while overflow structures are
    /// live* (the fetch's conflict walk is unpredictable). Overflow-free
    /// misses become [`SpecStep::Replay`]s instead of stopping the run.
    CacheMiss = 1,
    /// Foreign (or dead) transactional metadata on the line.
    Meta = 2,
    /// Write needing an ownership upgrade while overflow structures are
    /// live. Overflow-free upgrades replay.
    Upgrade = 3,
    /// Transactional access under migration or word-granularity tracking.
    TxMode = 4,
    /// Unspeculable boundary (ordered/retry Begin, lock op, barrier).
    Boundary = 5,
}

impl Refusal {
    /// Number of refusal reasons.
    pub const COUNT: usize = 6;
    /// Short labels, index-aligned with [`ExecStats::refusals`].
    pub const LABELS: [&'static str; Self::COUNT] = [
        "tlb",
        "cache_miss",
        "meta",
        "upgrade",
        "tx_mode",
        "boundary",
    ];
}

impl ExecStats {
    /// Fraction of all executed steps that were served from speculation.
    pub fn spec_commit_fraction(&self) -> f64 {
        let total = self.committed_spec_steps + self.live_steps;
        if total == 0 {
            return 0.0;
        }
        self.committed_spec_steps as f64 / total as f64
    }

    /// Accumulates another run's counters into this one (for harness-level
    /// aggregation across benchmark cells).
    pub fn merge(&mut self, other: &ExecStats) {
        self.epochs += other.epochs;
        self.spec_runs += other.spec_runs;
        self.spec_steps += other.spec_steps;
        self.committed_spec_steps += other.committed_spec_steps;
        self.live_steps += other.live_steps;
        self.rollbacks += other.rollbacks;
        self.reexecuted_steps += other.reexecuted_steps;
        self.poison_events += other.poison_events;
        self.spec_txs += other.spec_txs;
        self.spec_tx_commits += other.spec_tx_commits;
        self.incarnations += other.incarnations;
        self.validation_waves += other.validation_waves;
        self.word_conflicts += other.word_conflicts;
        self.estimate_markers += other.estimate_markers;
        self.replayed_steps += other.replayed_steps;
        self.replay_mispredicts += other.replay_mispredicts;
        self.replay_skews += other.replay_skews;
        for (a, b) in self.refusals.iter_mut().zip(other.refusals) {
            *a += b;
        }
    }
}

/// Epoch-validation state embedded in the machine. Inert (`active: false`)
/// during plain sequential runs, so the hooks sprinkled through the live
/// step paths cost one predictable branch each.
#[derive(Debug)]
pub(crate) struct ExecLog {
    /// Whether an epoch executor is driving this machine.
    pub(crate) active: bool,
    /// A cross-core mutation invalidated *every* pending run this epoch.
    poison_all: bool,
    /// Per-core poison (coherence supply touched a block this core's
    /// pending run may depend on).
    poisoned: Vec<bool>,
    /// Which cores still have unconsumed speculative steps this epoch.
    pending: Vec<bool>,
    /// The epoch's multi-version map: every canonically-applied write
    /// (consumed speculative writes and live functional writes alike)
    /// publishes a version keyed by `(core, incarnation)`; ESTIMATE
    /// markers stand in for words an abort rolled back. A consume whose
    /// read word carries a *foreign* version is discarded.
    mv: MvMap,
    /// Per-core incarnation numbers: how many times each core's
    /// speculative run has been discarded and re-executed. Persist across
    /// epochs (an epoch is one execution wave).
    incarnations: Vec<u32>,
    /// Total poison notifications (for [`ExecStats::poison_events`]).
    pub(crate) poison_events: u64,
    /// ESTIMATE markers published (for [`ExecStats::estimate_markers`]).
    pub(crate) estimate_markers: u64,
}

impl ExecLog {
    /// The inert log a freshly built machine carries.
    pub(crate) fn inactive() -> Self {
        ExecLog {
            active: false,
            poison_all: false,
            poisoned: Vec::new(),
            pending: Vec::new(),
            mv: MvMap::new(),
            incarnations: Vec::new(),
            poison_events: 0,
            estimate_markers: 0,
        }
    }

    fn activate(&mut self, cores: usize) {
        self.active = true;
        self.poison_all = false;
        self.poisoned = vec![false; cores];
        self.pending = vec![false; cores];
        self.mv.clear();
        self.incarnations = vec![0; cores];
        self.poison_events = 0;
        self.estimate_markers = 0;
    }

    fn deactivate(&mut self) {
        self.active = false;
    }

    fn begin_epoch(&mut self, pending: &[bool]) {
        self.poison_all = false;
        self.poisoned.iter_mut().for_each(|p| *p = false);
        self.pending.copy_from_slice(pending);
        self.mv.clear();
    }

    /// A live step mutated state that any core's run may depend on.
    pub(crate) fn poison_all(&mut self) {
        if self.active && !self.poison_all {
            self.poison_all = true;
            self.poison_events += 1;
        }
    }

    /// A live step mutated state `core`'s pending run may depend on.
    pub(crate) fn poison_core(&mut self, core: usize) {
        if self.active && !self.poisoned[core] {
            self.poisoned[core] = true;
            self.poison_events += 1;
        }
    }

    /// Whether `core` still has unconsumed speculative steps this epoch.
    pub(crate) fn is_pending(&self, core: usize) -> bool {
        self.active && self.pending[core]
    }

    /// Publishes a canonically-applied functional write for word-granular
    /// same-epoch ordering validation.
    pub(crate) fn note_write(&mut self, block: PhysBlock, word: WordIdx, core: usize, value: u32) {
        if self.active {
            let version = self.version_of(core);
            self.mv.write((block, word), version, value);
        }
    }

    /// Publishes an ESTIMATE marker: an abort rolled this word back and the
    /// owner is likely to rewrite it on retry.
    pub(crate) fn note_estimate(&mut self, block: PhysBlock, word: WordIdx, core: usize) {
        if self.active {
            let version = self.version_of(core);
            self.mv.write_estimate((block, word), version);
            self.estimate_markers += 1;
        }
    }

    /// A core's run was discarded: its next execution is a new incarnation.
    pub(crate) fn note_rollback(&mut self, core: usize) {
        self.incarnations[core] += 1;
    }

    fn version_of(&self, core: usize) -> TxnVersion {
        TxnVersion {
            tx_index: core as u32,
            incarnation: self.incarnations[core],
        }
    }

    fn run_poisoned(&self, core: usize) -> bool {
        self.poison_all || self.poisoned[core]
    }

    /// Whether a foreign version (value or ESTIMATE) exists for one word.
    fn word_written_by_other(&self, block: PhysBlock, word: WordIdx, core: usize) -> bool {
        self.mv.latest_foreign((block, word), core as u32).is_some()
    }

    /// Whether a foreign version exists anywhere in `block` (invalidates
    /// precomputed whole-block snapshots).
    fn block_written_by_other(&self, block: PhysBlock, core: usize) -> bool {
        self.mv.block_has_foreign(block, core as u32)
    }

    fn set_consumed(&mut self, core: usize) {
        self.pending[core] = false;
    }
}

/// Where a speculated write lands when consumed.
#[derive(Debug)]
enum WriteTarget {
    /// PTM/VTM lazy versioning: the transaction's speculative buffer.
    /// `snapshot` is the pre-image for the transaction's first write to the
    /// block (precomputed from the frozen view).
    TxBuffer {
        snapshot: Option<Box<[u8; BLOCK_SIZE]>>,
    },
    /// LogTM eager versioning: log the old word, update memory in place.
    TxLog,
    /// Non-transactional store: `primary` is the committed location (PTM
    /// redirects through the selection vector), `mirror` a live
    /// word-granularity co-writer's speculative page to keep current.
    Mem {
        primary: PhysAddr,
        mirror: Option<PhysAddr>,
    },
}

/// The transaction context a speculated access runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxRef {
    /// Non-transactional.
    None,
    /// A transaction that was already in flight when the run was frozen —
    /// its `TxId` is known.
    Live(TxId),
    /// A transaction this run *itself* begins: the `TxId` is allocated by
    /// the live `Begin` at its canonical point and bound into the run's
    /// slot table ([`SpecRun::txs`]).
    Slot(usize),
}

/// A transaction boundary carried inside a speculative run. The boundary
/// executes **live** at its canonical consume point (allocating IDs,
/// draining buffers, committing against the real backend); the run only
/// pre-schedules it, which is sound because unordered boundaries never
/// stall: `Begin` costs exactly `begin_cost`, an unordered outermost `End`
/// exactly `commit_cost`, nested/serial boundaries exactly 1 cycle.
#[derive(Debug, Clone, Copy)]
enum BoundaryKind {
    /// Serial-mode or flattened-nested begin/end: advance + 1 cycle.
    Trivial,
    /// Outermost `Begin` of a fresh, unordered transaction. The live step
    /// allocates its `TxId`, which the consume binds to `slot`.
    Begin { slot: usize },
    /// Outermost unordered `End`: the live commit of the run's current
    /// transaction.
    Commit,
}

/// One speculated step, carrying everything its consume needs.
#[derive(Debug)]
enum SpecStep {
    Compute {
        at: Cycle,
        cost: Cycle,
    },
    Access {
        at: Cycle,
        va: VirtAddr,
        pa: PhysAddr,
        kind: AccessKind,
        tx: TxRef,
        /// The value the load observes (feeds the checksum and RMW deltas).
        old: u32,
        write: Option<(u32, WriteTarget)>,
        /// Hit latency (L1, or L1+L2 for an L1 miss that hits L2).
        latency: Cycle,
    },
    Boundary {
        at: Cycle,
        kind: BoundaryKind,
        /// Predicted `ready_at` advance of the live step (checked in debug
        /// builds; all speculated boundary flavours are constant-cost).
        cost: Cycle,
    },
    /// A step whose outcome phase A cannot compute from the frozen state —
    /// a cache-miss fill or an ownership upgrade. It executes **live** at
    /// its canonical point (full coherence transaction, conflict
    /// arbitration, fill, eviction), which is trivially bit-identical; the
    /// speculation is the *schedule*: `cost` predicts the live latency from
    /// the frozen bus so the steps behind the miss stay consumable. If the
    /// live step lands anywhere else (bus contention, a conflict abort, a
    /// stall), the rest of the run is discarded — yield lost, never
    /// correctness.
    Replay {
        at: Cycle,
        cost: Cycle,
    },
}

impl SpecStep {
    fn at(&self) -> Cycle {
        match self {
            SpecStep::Compute { at, .. }
            | SpecStep::Access { at, .. }
            | SpecStep::Boundary { at, .. }
            | SpecStep::Replay { at, .. } => *at,
        }
    }
}

/// A core's speculative run-ahead through one epoch. `steps` is stored in
/// reverse execution order so consuming pops from the back.
#[derive(Debug)]
struct SpecRun {
    core: usize,
    steps: Vec<SpecStep>,
    /// Late-bound `TxId`s of the transactions this run begins, indexed by
    /// [`TxRef::Slot`] / [`BoundaryKind::Begin`] slot number. Bound at the
    /// canonical `Begin`; `None` until then.
    txs: Vec<Option<TxId>>,
    /// Why the walk stopped, by [`Refusal`] (diagnostic, aggregated into
    /// [`ExecStats::refusals`]).
    refusals: [u64; Refusal::COUNT],
    /// Set once the consume executes one of this run's [`SpecStep::Replay`]
    /// steps. Before the first replay every prediction is provably exact
    /// (frozen state + own-effect overlay + poison rules); after it, the
    /// real fill's victim choice and supplied MOESI state are only
    /// *predicted*, so later `Access` consumes re-verify the live fast-path
    /// gates against the current cache ([`Machine::verify_spec_access`]),
    /// and the consume refuses once the core's clock crosses an injection
    /// timer (a skewed schedule could otherwise slide a speculated step
    /// past the point where the live path injects a system event).
    replayed: bool,
    /// Accumulated difference between each replay's live completion time
    /// and its frozen-bus prediction. Speculated steps only encode
    /// *durations* (`cost`/`latency`); their absolute schedule shifts by
    /// this skew without affecting validity, so the invariant
    /// `ready_at == step.at + skew` holds at every consume point (checked
    /// in debug builds).
    skew: i64,
}

impl SpecRun {
    fn remaining(&self) -> u64 {
        self.steps.len() as u64
    }
}

/// Run-local state layered over the frozen machine during speculation: the
/// effects this run's earlier steps will have had by the time a later step
/// consumes.
#[derive(Default)]
struct RunOverlay {
    /// Simulated L1 sets (`set index → (block, lru)` ways), lazily seeded
    /// from the frozen array and replayed with [`CacheArray::insert`]
    /// semantics so hit levels (and therefore latencies) stay exact.
    ///
    /// [`CacheArray::insert`]: ptm_cache::CacheArray::insert
    l1_sets: FastMap<usize, Vec<(PhysBlock, u64)>>,
    l1_clock: u64,
    /// MOESI overrides (this run's writes leave lines Modified).
    moesi: FastMap<PhysBlock, Moesi>,
    /// Functional words this run wrote.
    data: FastMap<(PhysBlock, WordIdx), u32>,
    /// Blocks whose first transactional buffer this run creates (later
    /// writes must not precompute another snapshot).
    buffered: FastSet<PhysBlock>,
    /// Blocks this run's replayed misses fill, keyed to the transaction
    /// context that will tag the new line — the frozen array does not
    /// contain them, so later probes resolve presence and metadata here
    /// (state lives in `moesi`).
    filled: FastMap<PhysBlock, TxRef>,
    /// Why this run's walk stopped, by [`Refusal`] (at most one is set).
    refusals: [u64; Refusal::COUNT],
}

/// Frozen-lru values stay below this; overlay insertions count up from it,
/// so simulated recency always orders after anything pre-existing.
const OVERLAY_LRU_BASE: u64 = u64::MAX / 2;

impl RunOverlay {
    /// Records why the walk stops; typed to chain as `return ov.refuse(r)`.
    fn refuse<T>(&mut self, r: Refusal) -> Option<T> {
        self.refusals[r as usize] += 1;
        None
    }

    fn l1_set<'a>(
        &'a mut self,
        m: &Machine,
        idx: usize,
        block: PhysBlock,
    ) -> &'a mut Vec<(PhysBlock, u64)> {
        let l1 = m.caches[idx].l1();
        let sets = l1.config().sets;
        let block_number = block.addr().0 / BLOCK_SIZE as u64;
        let set = (block_number as usize) & (sets - 1);
        self.l1_sets
            .entry(set)
            .or_insert_with(|| l1.set_view(block).collect())
    }

    fn l1_contains(&mut self, m: &Machine, idx: usize, block: PhysBlock) -> bool {
        self.l1_set(m, idx, block).iter().any(|(b, _)| *b == block)
    }

    /// Replays `CacheArray::insert` for the L1 presence refill `touch_mut`
    /// performs at consume time.
    fn l1_insert(&mut self, m: &Machine, idx: usize, block: PhysBlock) {
        let ways = m.caches[idx].l1().config().ways;
        self.l1_clock += 1;
        let clock = OVERLAY_LRU_BASE + self.l1_clock;
        let set = self.l1_set(m, idx, block);
        if let Some(way) = set.iter_mut().find(|(b, _)| *b == block) {
            way.1 = clock;
            return;
        }
        if set.len() < ways {
            set.push((block, clock));
            return;
        }
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, lru))| *lru)
            .map(|(i, _)| i)
            .expect("full set is non-empty");
        set[victim] = (block, clock);
    }
}

impl Machine {
    /// Runs every program to completion through the speculative epoch
    /// executor, producing **bit-identical** results to [`Machine::run`].
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making progress, like [`Machine::run`].
    pub fn run_parallel(&mut self, exec: &ExecutorConfig) -> ExecStats {
        assert!(
            self.durable.is_none(),
            "the epoch executor does not support a durable log: speculation \
             replays steps, which would double-append log records — use \
             Machine::run for durable machines"
        );
        let mut xs = ExecStats::default();
        let threads = exec.threads.max(1);
        let epoch_cycles = exec.epoch_cycles.max(1);
        // Word tracing prints from the live paths speculation skips; keep
        // traced runs fully sequential so the interleaving stays readable.
        let spec_enabled = trace_word().is_none();
        let mut guard: u64 = 0;
        let limit = self.progress_limit();
        let trace_progress = std::env::var("PTM_TRACE_PROGRESS").is_ok();

        let n = self.cores.len();
        self.exec_log.activate(n);
        let mut heap = self.build_ready_heap();
        let mut pending: Vec<Option<SpecRun>> = (0..n).map(|_| None).collect();
        let mut pend_flags = vec![false; n];

        // Consecutive unproductive epochs (nothing consumed). While cores
        // sit at unspeculable steps (miss bursts, barriers, contended
        // phases), re-speculating every few cycles is wasted overhead —
        // back the live window off exponentially until speculation lands
        // again, then snap back to eager re-freezing.
        let mut dry: u32 = 0;

        while let Some((t0, _)) = heap.peek() {
            let window = if dry == 0 {
                epoch_cycles
            } else {
                (128u64 << dry.min(16)).min(epoch_cycles)
            };
            let window_end = t0.saturating_add(window);
            xs.epochs += 1;

            // Phase A: side-effect-free run-ahead against the frozen state,
            // dispensed by the Block-STM scheduler.
            let runs = if spec_enabled {
                self.speculate(window_end, threads, &mut xs)
            } else {
                Vec::new()
            };
            pend_flags.iter_mut().for_each(|p| *p = false);
            for run in runs {
                if !run.steps.is_empty() {
                    xs.spec_runs += 1;
                    xs.spec_steps += run.remaining();
                    let core = run.core;
                    pend_flags[core] = true;
                    pending[core] = Some(run);
                }
            }
            self.exec_log.begin_epoch(&pend_flags);

            // Phase B: canonical-order consume/execute. The window bounds
            // the epoch, but a productive epoch ends as soon as every
            // speculative run is drained: re-freezing immediately lets the
            // next phase A pick up right after the miss/upgrade that
            // stopped the runs, instead of stepping the rest of the window
            // live. Unproductive epochs (nothing consumed) run their full
            // window so the speculation overhead stays amortized.
            let consumed0 = xs.committed_spec_steps;
            while let Some((t, idx)) = heap.peek() {
                if t >= window_end {
                    break;
                }
                if xs.committed_spec_steps > consumed0 && pending.iter().all(Option::is_none) {
                    break;
                }
                if !self.try_consume(idx, &mut pending, &mut xs) {
                    self.step(idx);
                    xs.live_steps += 1;
                }
                self.sync_heap(&mut heap, idx);
                guard += 1;
                if trace_progress && guard.is_multiple_of(20_000_000) {
                    let pcs: Vec<_> = self
                        .cores
                        .iter()
                        .map(|c| (c.prog.thread().0, c.prog.pc(), c.ready_at))
                        .collect();
                    eprintln!("[progress] steps={guard} {pcs:?}");
                }
                if guard >= limit {
                    self.progress_panic();
                }
            }

            // Epoch boundary: whatever survived unconsumed (poisoned right
            // at the end of the window) rolls back and re-incarnates.
            for slot in pending.iter_mut() {
                if let Some(run) = slot.take() {
                    xs.rollbacks += 1;
                    xs.reexecuted_steps += run.remaining();
                    self.exec_log.note_rollback(run.core);
                }
            }
            dry = if xs.committed_spec_steps > consumed0 {
                0
            } else {
                dry.saturating_add(1)
            };
        }

        xs.poison_events = self.exec_log.poison_events;
        xs.estimate_markers = self.exec_log.estimate_markers;
        xs.incarnations = self
            .exec_log
            .incarnations
            .iter()
            .map(|&i| u64::from(i))
            .sum();
        self.exec_log.deactivate();
        self.finalize_stats();
        xs
    }

    /// Attempts to consume core `idx`'s next speculative step. Returns
    /// `false` when the core has no valid pending step (the caller executes
    /// live). Discards the rest of the run on any validation failure.
    fn try_consume(
        &mut self,
        idx: usize,
        pending: &mut [Option<SpecRun>],
        xs: &mut ExecStats,
    ) -> bool {
        let Some(run) = pending[idx].as_mut() else {
            return false;
        };
        let mut word_conflict = false;
        let mut state_mispredict = false;
        // A replay-skewed schedule may slide a step onto (or past) an
        // injection timer; the live path would inject the system event
        // first, so the step must run live. Exact-schedule runs provably
        // stop short of both timers during speculation.
        let injection_due = run.replayed && {
            let c = &self.cores[idx];
            c.ready_at >= c.next_cs || c.ready_at >= c.next_exc
        };
        let discard = self.exec_log.run_poisoned(idx)
            || injection_due
            || match run.steps.last() {
                Some(SpecStep::Access {
                    pa,
                    kind,
                    tx,
                    write,
                    latency,
                    ..
                }) => {
                    // Word-granular validation: a foreign version (or
                    // ESTIMATE) on the word this step read means a
                    // preceding canonical step changed its input. A
                    // precomputed whole-block snapshot (first buffered
                    // write of a transaction) additionally requires the
                    // whole block clean of foreign versions.
                    let block = pa.block();
                    let snapshot_write = matches!(
                        write,
                        Some((_, WriteTarget::TxBuffer { snapshot: Some(_) }))
                    );
                    word_conflict =
                        self.exec_log
                            .word_written_by_other(block, pa.word_in_block(), idx)
                            || (snapshot_write && self.exec_log.block_written_by_other(block, idx));
                    // After a replay the run's cache-state predictions are
                    // no longer provably exact: re-run the live fast-path
                    // gates against the current hierarchy.
                    if !word_conflict && run.replayed {
                        let resolved = match tx {
                            TxRef::None => None,
                            TxRef::Live(t) => Some(*t),
                            TxRef::Slot(s) => {
                                Some(run.txs[*s].expect("slot bound by its Begin boundary"))
                            }
                        };
                        state_mispredict = !self.verify_spec_access(
                            idx,
                            *pa,
                            *kind,
                            resolved,
                            *latency,
                            write.is_some(),
                        );
                    }
                    word_conflict || state_mispredict
                }
                Some(SpecStep::Compute { .. })
                | Some(SpecStep::Boundary { .. })
                | Some(SpecStep::Replay { .. }) => false,
                None => true,
            };
        if discard {
            if word_conflict {
                xs.word_conflicts += 1;
            }
            if state_mispredict {
                xs.replay_mispredicts += 1;
            }
            let run = pending[idx].take().expect("pending run");
            if run.remaining() > 0 {
                xs.rollbacks += 1;
                xs.reexecuted_steps += run.remaining();
                self.exec_log.note_rollback(idx);
            }
            self.exec_log.set_consumed(idx);
            return false;
        }
        let skew = run.skew;
        let step = run.steps.pop().expect("non-empty run");
        let done = run.steps.is_empty();
        match step {
            SpecStep::Replay { at, cost } => {
                run.replayed = true;
                debug_assert_eq!(
                    self.cores[idx].ready_at,
                    at.wrapping_add_signed(run.skew),
                    "replay off schedule"
                );
                let predicted = self.cores[idx].ready_at + cost;
                let pc_before = self.cores[idx].prog.pc();
                self.step(idx);
                xs.replayed_steps += 1;
                xs.live_steps += 1;
                if self.cores[idx].prog.pc() != pc_before + 1 {
                    // The op did not complete (a stall, a conflict
                    // self-abort, an injected event): the tail no longer
                    // lines up with the program. Discard it — the replay
                    // itself was canonical work, nothing to undo.
                    xs.replay_mispredicts += 1;
                    let run = pending[idx].take().expect("pending run");
                    if run.remaining() > 0 {
                        xs.rollbacks += 1;
                        xs.reexecuted_steps += run.remaining();
                        self.exec_log.note_rollback(idx);
                    }
                    self.exec_log.set_consumed(idx);
                    return true;
                }
                // Completed off the predicted latency (bus contention from
                // other cores' consumed traffic): the tail stays valid —
                // speculated steps encode durations, not absolute times —
                // it just runs on a shifted schedule.
                let actual = self.cores[idx].ready_at;
                if actual != predicted {
                    xs.replay_skews += 1;
                    run.skew += actual as i64 - predicted as i64;
                }
            }
            SpecStep::Boundary { at, kind, cost } => {
                if !self.consume_boundary(idx, at, kind, cost, pending, xs) {
                    // The live boundary diverged from the prediction on a
                    // replay-perturbed run: the tail no longer lines up
                    // with the program. The boundary itself was canonical
                    // work, nothing to undo.
                    let run = pending[idx].take().expect("pending run");
                    if run.remaining() > 0 {
                        xs.rollbacks += 1;
                        xs.reexecuted_steps += run.remaining();
                        self.exec_log.note_rollback(idx);
                    }
                    self.exec_log.set_consumed(idx);
                    return true;
                }
                xs.committed_spec_steps += 1;
            }
            step => {
                // Resolve a slot reference through the run's (immutable
                // for this step) transaction table.
                let tx = match step {
                    SpecStep::Access { tx, .. } => match tx {
                        TxRef::None => None,
                        TxRef::Live(t) => Some(t),
                        TxRef::Slot(s) => Some(
                            pending[idx].as_ref().expect("pending run").txs[s]
                                .expect("slot bound by its Begin boundary"),
                        ),
                    },
                    _ => None,
                };
                self.apply_spec_step(idx, step, tx, skew);
                xs.committed_spec_steps += 1;
            }
        }
        if done {
            pending[idx] = None;
            self.exec_log.set_consumed(idx);
        }
        true
    }

    /// Consumes a transaction boundary: the op executes **live** at its
    /// canonical point (allocating the `TxId`, running the real backend
    /// begin/commit), then the prediction the rest of the run was built on
    /// is checked and `Begin` slots are bound. On an exact-schedule run the
    /// prediction is provably right (debug-asserted); after a replay the
    /// live boundary may land off the predicted latency — the divergence
    /// folds into the run's skew — or fail to advance at all, in which
    /// case the tail is invalid and `false` is returned so the caller
    /// discards it.
    fn consume_boundary(
        &mut self,
        idx: usize,
        at: Cycle,
        kind: BoundaryKind,
        cost: Cycle,
        pending: &mut [Option<SpecRun>],
        xs: &mut ExecStats,
    ) -> bool {
        let (replayed, skew) = {
            let run = pending[idx].as_ref().expect("pending run");
            (run.replayed, run.skew)
        };
        debug_assert_eq!(
            self.cores[idx].ready_at,
            at.wrapping_add_signed(skew),
            "boundary off schedule"
        );
        let predicted = self.cores[idx].ready_at + cost;
        let pc_before = self.cores[idx].prog.pc();
        self.step(idx);
        if self.cores[idx].prog.pc() != pc_before + 1 {
            debug_assert!(replayed, "exact-schedule boundary did not advance");
            xs.replay_mispredicts += 1;
            return false;
        }
        if let BoundaryKind::Commit = kind {
            xs.spec_tx_commits += 1;
        }
        if let BoundaryKind::Begin { slot } = kind {
            let tx = self.tx_context(idx).expect("begin bound a transaction");
            let run = pending[idx].as_mut().expect("pending run");
            run.txs[slot] = Some(tx);
        }
        let actual = self.cores[idx].ready_at;
        if actual != predicted {
            debug_assert!(
                replayed,
                "exact-schedule boundary cost diverged (kind {kind:?})"
            );
            xs.replay_skews += 1;
            let run = pending[idx].as_mut().expect("pending run");
            run.skew += actual as i64 - predicted as i64;
        }
        let _ = replayed;
        true
    }

    /// Applies a validated speculative step: the exact effects the live
    /// silent-hit path would have produced, minus the lookups. `tx` is the
    /// step's transaction context with any [`TxRef::Slot`] already resolved
    /// to the `TxId` its canonical `Begin` allocated.
    fn apply_spec_step(&mut self, idx: usize, step: SpecStep, tx: Option<TxId>, skew: i64) {
        let now = self.cores[idx].ready_at;
        debug_assert_eq!(
            step.at().wrapping_add_signed(skew),
            now,
            "consume off the speculated schedule"
        );
        let _ = skew;
        match step {
            SpecStep::Compute { cost, .. } => {
                debug_assert!(matches!(
                    self.cores[idx].prog.current(),
                    Some(Op::Compute(_))
                ));
                self.cores[idx].prog.advance();
                self.cores[idx].ready_at = now + cost;
            }
            SpecStep::Boundary { .. } => unreachable!("boundaries consume via consume_boundary"),
            SpecStep::Replay { .. } => unreachable!("replays execute live in try_consume"),
            SpecStep::Access {
                va,
                pa,
                kind,
                old,
                write,
                latency,
                ..
            } => {
                #[cfg(debug_assertions)]
                self.debug_validate_access(idx, va, pa, kind, tx, old, write.is_some());
                let block = pa.block();
                let word = pa.word_in_block();
                let pid = self.cores[idx].prog.pid();
                let is_write = write.is_some();

                // Timing-model effects of the silent hit.
                self.stats.tlb_hits += 1;
                self.caches[idx].l2_stats_mut().hits += 1;
                let line = self.caches[idx].touch_mut(block).expect("speculated hit");
                if is_write {
                    line.set_state(Moesi::Modified);
                }
                if let Some(tx) = tx {
                    let meta = line.tx_meta_for(tx);
                    match kind {
                        AccessKind::Read => meta.record_read(word),
                        AccessKind::Write => {
                            meta.record_read(word);
                            meta.record_write(word);
                        }
                    }
                }

                // Functional effects.
                self.cores[idx].checksum = self.cores[idx]
                    .checksum
                    .rotate_left(1)
                    .wrapping_add(u64::from(old));
                if let Some((value, target)) = write {
                    match target {
                        WriteTarget::TxBuffer { snapshot } => {
                            let tx = tx.expect("buffered write is transactional");
                            debug_assert_eq!(self.spec.has(tx, block), snapshot.is_none());
                            self.spec.write_word(tx, block, word, value, || {
                                *snapshot.expect("speculated snapshot")
                            });
                            // Buffered writes stay invisible until commit —
                            // no multi-version publication; the commit seam
                            // publishes the drained words instead.
                        }
                        WriteTarget::TxLog => {
                            let tx = tx.expect("logged write is transactional");
                            let old_word = self.mem.read_word(pa);
                            let Backend::LogTm(l) = &mut self.backend else {
                                unreachable!("TxLog target outside LogTM")
                            };
                            l.log_write(tx, pa, old_word);
                            self.mem.write_word(pa, value);
                            // Eager versioning writes memory in place:
                            // immediately visible, so publish the version.
                            self.exec_log.note_write(block, word, idx, value);
                        }
                        WriteTarget::Mem { primary, mirror } => {
                            self.mem.write_word(primary, value);
                            if let Some(m) = mirror {
                                self.mem.write_word(m, value);
                            }
                            self.exec_log.note_write(block, word, idx, value);
                        }
                    }
                    self.note_page_touch(idx, pid, va.vpn(), tx.is_some());
                } else {
                    self.note_page_touch(idx, pid, va.vpn(), false);
                }
                self.stats.mem_ops += 1;
                self.cores[idx].prog.advance();
                self.cores[idx].ready_at = now + latency.max(1);
            }
        }
    }

    /// Post-replay re-verification of a speculated silent hit against the
    /// *current* cache state, in all build profiles. Before a run's first
    /// replay every prediction is provably exact (frozen state, own-effect
    /// overlay, poison rules); a replayed fill's real victim cascade and
    /// supplied MOESI state, however, are only predicted, so every later
    /// `Access` of that run re-checks the gates the live fast path would
    /// take. A mismatch discards the run's tail — speculation yield lost,
    /// never correctness.
    fn verify_spec_access(
        &self,
        idx: usize,
        pa: PhysAddr,
        kind: AccessKind,
        tx: Option<TxId>,
        latency: Cycle,
        is_write: bool,
    ) -> bool {
        let block = pa.block();
        let Some(line) = self.caches[idx].line(block) else {
            return false;
        };
        let meta_ok = match tx {
            Some(t) => line.tx_meta().is_none_or(|m| m.tx == t),
            None => line.tx_meta().is_none(),
        };
        if !meta_ok || (is_write && !line.state().allows_silent_write()) {
            return false;
        }
        if self.hit_needs_overflow_check(idx, block, pa.word_in_block(), kind, tx) {
            return false;
        }
        match self.caches[idx].probe(block) {
            ProbeResult::Hit(h) => self.caches[idx].hit_latency(h) == latency,
            ProbeResult::Miss => false,
        }
    }

    /// Debug-build revalidation: re-runs every gate of the live silent-hit
    /// path against the *current* state. A failure here means a poison rule
    /// is missing — the safety net that turns such a gap into a loud test
    /// failure instead of silently skewed results.
    #[cfg(debug_assertions)]
    #[allow(clippy::too_many_arguments)]
    fn debug_validate_access(
        &self,
        idx: usize,
        va: VirtAddr,
        pa: PhysAddr,
        kind: AccessKind,
        tx: Option<TxId>,
        old: u32,
        is_write: bool,
    ) {
        let pid = self.cores[idx].prog.pid();
        let op = self.cores[idx].prog.current();
        assert_eq!(
            op.and_then(|o| o.addr()),
            Some(va),
            "speculated op diverged from the program"
        );
        assert_eq!(op.map(|o| o.is_write()), Some(is_write));
        assert_eq!(self.tx_context(idx), tx, "tx context changed unpoisoned");
        assert_eq!(
            self.tlb_lookup(idx, pid, va.vpn()),
            Some(pa.frame()),
            "translation changed unpoisoned"
        );
        let block = pa.block();
        let line = self.caches[idx].line(block).expect("line left the cache");
        assert!(
            line.tx_meta().is_none_or(|m| Some(m.tx) == tx),
            "foreign transactional metadata appeared"
        );
        if is_write {
            assert!(
                line.state().allows_silent_write(),
                "write lost silent-write rights"
            );
        }
        assert!(
            !self.hit_needs_overflow_check(idx, block, pa.word_in_block(), kind, tx),
            "overflow check became necessary"
        );
        assert_eq!(
            old,
            self.read_word_functional(tx, pid, va, pa),
            "speculated value diverged from the coherent view"
        );
    }

    /// Phase A: produce speculative runs for every eligible core. Each
    /// eligible core is one Block-STM transaction; `threads` host workers
    /// share the frozen machine and pull [`Task`]s from the [`Scheduler`]
    /// until its DONE marker latches.
    ///
    /// Speculation against the frozen snapshot is side-effect-free, so
    /// phase A itself never aborts an incarnation: the scheduler's
    /// validation tasks all pass and its role here is work dispensing and
    /// completion detection. The *real* validation — the one that aborts
    /// and re-incarnates — is phase B's canonical-order consume against the
    /// multi-version map (see DESIGN.md decision 21 for why this mapping
    /// preserves bit-identity).
    fn speculate(&self, window_end: Cycle, threads: usize, xs: &mut ExecStats) -> Vec<SpecRun> {
        let eligible: Vec<usize> = (0..self.cores.len())
            .filter(|&i| !self.cores[i].prog.is_finished() && self.cores[i].ready_at < window_end)
            .collect();
        if eligible.is_empty() {
            return Vec::new();
        }
        let workers = threads.min(eligible.len());
        let sched = Scheduler::new(eligible.len());
        let slots: Vec<Mutex<Option<SpecRun>>> =
            (0..eligible.len()).map(|_| Mutex::new(None)).collect();

        let drive = |sched: &Scheduler| {
            let mut task = sched.next_task();
            loop {
                task = match task {
                    Task::Execution(v) => {
                        let slot = v.tx_index as usize;
                        let run = self.speculate_core(eligible[slot], window_end);
                        *slots[slot].lock().expect("run slot") = Some(run);
                        sched.finish_execution(v, false)
                    }
                    Task::Validation(v) => sched.finish_validation(v, false),
                    Task::Retry => {
                        std::hint::spin_loop();
                        sched.next_task()
                    }
                    Task::Done => break,
                };
            }
        };

        if workers <= 1 {
            drive(&sched);
        } else {
            // &self is shared across the scope: speculation never mutates.
            std::thread::scope(|s| {
                let drive = &drive;
                let sched = &sched;
                for _ in 0..workers {
                    s.spawn(move || drive(sched));
                }
            });
        }

        xs.validation_waves += sched.validation_waves() as u64;
        let runs: Vec<SpecRun> = slots
            .into_iter()
            .filter_map(|m| m.into_inner().expect("run slot"))
            .collect();
        for run in &runs {
            for (a, b) in xs.refusals.iter_mut().zip(run.refusals) {
                *a += b;
            }
        }
        xs.spec_txs += runs
            .iter()
            .flat_map(|r| &r.steps)
            .filter(|s| {
                matches!(
                    s,
                    SpecStep::Boundary {
                        kind: BoundaryKind::Commit,
                        ..
                    }
                )
            })
            .count() as u64;
        runs
    }

    /// Runs core `idx` ahead through `[ready_at, window_end)` against the
    /// frozen machine, stopping at the first step whose outcome is not
    /// locally decidable. The walk speculates *through* transaction
    /// boundaries whose cost is provably constant (see [`BoundaryKind`]),
    /// tracking nesting depth and the transaction context each access runs
    /// under as [`TxRef`]s.
    fn speculate_core(&self, idx: usize, window_end: Cycle) -> SpecRun {
        let core = &self.cores[idx];
        let pid = core.prog.pid();
        // A rewound retry (aborted transaction back at its Begin) reuses
        // its old TxId and replays attempt accounting: live only.
        let frozen_retry = core.prog.cur_tx().is_some() && core.prog.nest() == 0;
        // Word-granularity modes poison every commit/abort (precomputed
        // mirror pointers go stale), and migration rebinds transaction
        // ownership mid-flight: no boundary speculation there.
        let boundaries_ok = self.kind.is_transactional()
            && !self.kind.granularity().word_in_cache()
            && !self.cfg.kernel.migrate_on_cs;
        let mut nest = core.prog.nest();
        let mut tx_ctx = if nest > 0 {
            TxRef::Live(core.prog.cur_tx().expect("nested implies a tx"))
        } else {
            TxRef::None
        };
        let mut now = core.ready_at;
        let mut pc = core.prog.pc();
        let mut steps = Vec::new();
        let mut txs: Vec<Option<TxId>> = Vec::new();
        let mut ov = RunOverlay::default();

        // Injection timers fire live; stop short of either.
        while now < window_end && now < core.next_cs && now < core.next_exc {
            let Some(op) = core.prog.op_at(pc) else { break };
            let step = match op {
                Op::Compute(c) => Some(SpecStep::Compute {
                    at: now,
                    cost: Cycle::from(c.max(1)),
                }),
                Op::Read(va) => self.speculate_access(idx, pid, tx_ctx, now, va, None, &mut ov),
                Op::Write(va, v) => {
                    self.speculate_access(idx, pid, tx_ctx, now, va, Some(Ok(v)), &mut ov)
                }
                Op::Rmw(va, d) => {
                    self.speculate_access(idx, pid, tx_ctx, now, va, Some(Err(d)), &mut ov)
                }
                Op::Begin { ordered, .. } => match self.kind {
                    // Serial begin: advance + 1 cycle, no shared state.
                    SystemKind::Serial => Some(SpecStep::Boundary {
                        at: now,
                        kind: BoundaryKind::Trivial,
                        cost: 1,
                    }),
                    // Lock acquisition is a contended RMW: live only.
                    SystemKind::Locks => ov.refuse(Refusal::Boundary),
                    _ if nest > 0 => {
                        // Flattened nesting: depth bump + 1 cycle.
                        nest += 1;
                        Some(SpecStep::Boundary {
                            at: now,
                            kind: BoundaryKind::Trivial,
                            cost: 1,
                        })
                    }
                    // Ordered transactions gate their End (it can stall);
                    // retries replay abort accounting: both live only.
                    _ if !boundaries_ok || ordered.is_some() || frozen_retry => {
                        ov.refuse(Refusal::Boundary)
                    }
                    _ => {
                        let slot = txs.len();
                        txs.push(None);
                        nest = 1;
                        tx_ctx = TxRef::Slot(slot);
                        // Speculative buffers are per-transaction: the new
                        // transaction starts with none.
                        ov.buffered.clear();
                        Some(SpecStep::Boundary {
                            at: now,
                            kind: BoundaryKind::Begin { slot },
                            cost: self.cfg.begin_cost,
                        })
                    }
                },
                Op::End => match self.kind {
                    SystemKind::Serial => Some(SpecStep::Boundary {
                        at: now,
                        kind: BoundaryKind::Trivial,
                        cost: 1,
                    }),
                    SystemKind::Locks => ov.refuse(Refusal::Boundary),
                    _ if nest > 1 => {
                        nest -= 1;
                        Some(SpecStep::Boundary {
                            at: now,
                            kind: BoundaryKind::Trivial,
                            cost: 1,
                        })
                    }
                    // Outermost end: an unordered commit never stalls and
                    // costs exactly commit_cost. `cur_ordered` is the frozen
                    // live transaction's flag; slot transactions are
                    // unordered by construction (ordered Begins refused).
                    _ if !boundaries_ok
                        || (matches!(tx_ctx, TxRef::Live(_)) && core.cur_ordered.is_some()) =>
                    {
                        ov.refuse(Refusal::Boundary)
                    }
                    _ if nest == 1 => {
                        nest = 0;
                        let was_live = matches!(tx_ctx, TxRef::Live(_));
                        // The live commit clears transactional tags on the
                        // committed transaction's lines (`commit_tx_lines`);
                        // mirror it on the run's own replay-filled blocks.
                        for fctx in ov.filled.values_mut() {
                            if *fctx == tx_ctx {
                                *fctx = TxRef::None;
                            }
                        }
                        tx_ctx = TxRef::None;
                        ov.buffered.clear();
                        let commit = SpecStep::Boundary {
                            at: now,
                            kind: BoundaryKind::Commit,
                            cost: self.cfg.commit_cost,
                        };
                        if was_live {
                            // A frozen-live transaction may hold buffered
                            // writes from *before* this window; the frozen
                            // committed view goes stale the moment they
                            // drain. End the run at the commit.
                            steps.push(commit);
                            break;
                        }
                        Some(commit)
                    }
                    // Unmatched End: let the live path handle it.
                    _ => ov.refuse(Refusal::Boundary),
                },
                // Barriers block on every other thread: live only.
                Op::Barrier(_) => ov.refuse(Refusal::Boundary),
            };
            let Some(step) = step else { break };
            now += match &step {
                SpecStep::Compute { cost, .. }
                | SpecStep::Boundary { cost, .. }
                | SpecStep::Replay { cost, .. } => (*cost).max(1),
                SpecStep::Access { latency, .. } => (*latency).max(1),
            };
            pc += 1;
            steps.push(step);
        }
        steps.reverse(); // consume pops from the back
        SpecRun {
            core: idx,
            steps,
            txs,
            refusals: ov.refusals,
            replayed: false,
            skew: 0,
        }
    }

    /// Speculates one memory access, or returns `None` where the live path
    /// could leave the silent-hit fast path. `write` is `Ok(const)` for
    /// stores, `Err(delta)` for read-modify-writes.
    #[allow(clippy::too_many_arguments)]
    fn speculate_access(
        &self,
        idx: usize,
        pid: ProcessId,
        tx: TxRef,
        now: Cycle,
        va: VirtAddr,
        write: Option<Result<u32, i32>>,
        ov: &mut RunOverlay,
    ) -> Option<SpecStep> {
        let kind = if write.is_some() {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        // Core-TLB hit required: a miss goes through the kernel (faults,
        // allocation, swap) and can mutate global state.
        let Some(frame) = self.tlb_lookup(idx, pid, va.vpn()) else {
            return ov.refuse(Refusal::Tlb);
        };
        let pa = PhysAddr::from_frame(frame, va.page_offset());
        let block = pa.block();
        let word = pa.word_in_block();

        // Transactional accesses under migration or word-granularity
        // tracking leave the fast path in too many places (overflow checks
        // on hits, contested-block marking, mirror maintenance): live only.
        if !matches!(tx, TxRef::None)
            && (self.cfg.kernel.migrate_on_cs || self.kind.granularity().word_in_cache())
        {
            return ov.refuse(Refusal::TxMode);
        }

        // Presence and line identity: the frozen hierarchy, or a block this
        // run's own replayed miss already fills. A genuinely absent block
        // becomes a *replay* — the miss executes live at its canonical
        // point, with a latency predicted from the frozen bus, and the run
        // keeps speculating behind it — unless overflow structures are live
        // (the fetch would take the conflict walk, whose stalls and VTS/XADT
        // traffic defeat any latency prediction).
        let cached = match self.caches[idx].line(block) {
            // Any metadata owned by a different transaction (or any
            // metadata at all for a non-transactional access or a
            // transaction whose TxId is not allocated yet) diverts the live
            // path into conflict resolution and displacement — even dead
            // metadata is displaced there.
            Some(line) => {
                let meta_ok = match tx {
                    TxRef::Live(t) => line.tx_meta().is_none_or(|m| m.tx == t),
                    TxRef::None | TxRef::Slot(_) => line.tx_meta().is_none(),
                };
                Some((line.state(), meta_ok))
            }
            None => ov.filled.get(&block).map(|&fctx| {
                let state = ov
                    .moesi
                    .get(&block)
                    .copied()
                    .expect("filled blocks carry a predicted state");
                (state, matches!(fctx, TxRef::None) || fctx == tx)
            }),
        };
        let Some((frozen_state, meta_ok)) = cached else {
            if self.backend.has_overflows() {
                return ov.refuse(Refusal::CacheMiss);
            }
            return self.speculate_replay(idx, pid, tx, now, va, pa, write, None, ov);
        };
        if !meta_ok {
            return ov.refuse(Refusal::Meta);
        }
        let state = ov.moesi.get(&block).copied().unwrap_or(frozen_state);
        if kind == AccessKind::Write && !state.allows_silent_write() {
            // A real coherence transaction (ownership upgrade): replay it
            // live when its latency is predictable, like a miss.
            if self.backend.has_overflows() {
                return ov.refuse(Refusal::Upgrade);
            }
            let hit = if ov.l1_contains(self, idx, block) {
                Hit::L1
            } else {
                Hit::L2
            };
            let hit_latency = self.caches[idx].hit_latency(hit);
            return self.speculate_replay(idx, pid, tx, now, va, pa, write, Some(hit_latency), ov);
        }

        // Functional read: this run's earlier writes first, then the frozen
        // coherent view (validation guarantees it is still current at
        // consume time). A slot transaction has no history, so its view is
        // the committed one.
        let read_ctx = match tx {
            TxRef::Live(t) => Some(t),
            TxRef::None | TxRef::Slot(_) => None,
        };
        let old = ov
            .data
            .get(&(block, word))
            .copied()
            .unwrap_or_else(|| self.read_word_functional(read_ctx, pid, va, pa));

        let hit = if ov.l1_contains(self, idx, block) {
            Hit::L1
        } else {
            Hit::L2
        };
        let latency = self.caches[idx].hit_latency(hit);

        let write = match write {
            None => None,
            Some(wv) => {
                let value = match wv {
                    Ok(v) => v,
                    Err(d) => old.wrapping_add(d as u32),
                };
                let target = match (tx, &self.backend) {
                    (TxRef::Live(_) | TxRef::Slot(_), Backend::LogTm(_)) => WriteTarget::TxLog,
                    (TxRef::Live(t), _) => {
                        let fresh = !self.spec.has(t, block) && !ov.buffered.contains(&block);
                        let snapshot = fresh.then(|| {
                            let mut snap = Box::new(self.tx_block_snapshot(t, pid, va, block));
                            patch_snapshot(&mut snap, ov, block);
                            snap
                        });
                        if fresh {
                            ov.buffered.insert(block);
                        }
                        WriteTarget::TxBuffer { snapshot }
                    }
                    (TxRef::Slot(_), _) => {
                        let fresh = !ov.buffered.contains(&block);
                        let snapshot = fresh.then(|| {
                            let mut snap = Box::new(self.committed_block_snapshot(block));
                            patch_snapshot(&mut snap, ov, block);
                            snap
                        });
                        if fresh {
                            ov.buffered.insert(block);
                        }
                        WriteTarget::TxBuffer { snapshot }
                    }
                    (TxRef::None, Backend::Ptm(p)) => WriteTarget::Mem {
                        primary: PhysAddr::from_frame(p.committed_frame(block), pa.page_offset()),
                        mirror: p
                            .mirror_location(block, None)
                            .map(|m| PhysAddr::from_frame(m.frame(), pa.page_offset())),
                    },
                    (TxRef::None, _) => WriteTarget::Mem {
                        primary: pa,
                        mirror: None,
                    },
                };
                ov.data.insert((block, word), value);
                ov.moesi.insert(block, Moesi::Modified);
                Some((value, target))
            }
        };

        // The consume's `touch_mut` refills L1; replay it for later probes.
        ov.l1_insert(self, idx, block);

        Some(SpecStep::Access {
            at: now,
            va,
            pa,
            kind,
            tx,
            old,
            write,
            latency,
        })
    }

    /// Emits a [`SpecStep::Replay`] for a cache miss (`upgrade == None`) or
    /// an ownership upgrade (`upgrade == Some(hit_latency)`): the step will
    /// execute through the full live path at its canonical point, so
    /// nothing here affects correctness. What *is* predicted — latency from
    /// the frozen bus, post-fill MOESI state, the functional value — only
    /// schedules the rest of the run; the consume discards the tail on any
    /// divergence.
    #[allow(clippy::too_many_arguments)]
    fn speculate_replay(
        &self,
        idx: usize,
        pid: ProcessId,
        tx: TxRef,
        now: Cycle,
        va: VirtAddr,
        pa: PhysAddr,
        write: Option<Result<u32, i32>>,
        upgrade: Option<Cycle>,
        ov: &mut RunOverlay,
    ) -> Option<SpecStep> {
        let block = pa.block();
        let word = pa.word_in_block();
        let is_write = write.is_some();

        // Timing: mirror `miss_conflicts_and_supply` step (f) against the
        // frozen bus — a snoop round, chained into the memory pipeline when
        // no remote cache can supply the block (upgrades never fetch data).
        let remote_holder =
            (0..self.caches.len()).any(|c| c != idx && self.caches[c].line(block).is_some());
        let cost = match upgrade {
            Some(hit_latency) => {
                hit_latency + (self.bus.peek_miss_fill(now, false).saturating_sub(now))
            }
            None => self
                .bus
                .peek_miss_fill(now, !remote_holder)
                .saturating_sub(now),
        }
        .max(1);

        // Post-state: mirror `supply` — writes take Modified (remote copies
        // invalidated), reads take Exclusive only while no other copy
        // exists.
        let new_state = if is_write {
            Moesi::Modified
        } else if remote_holder {
            Moesi::Shared
        } else {
            Moesi::Exclusive
        };

        // Functional prediction, same as a hit: the run's own effects over
        // the frozen coherent view (a fill does not change word values).
        let read_ctx = match tx {
            TxRef::Live(t) => Some(t),
            TxRef::None | TxRef::Slot(_) => None,
        };
        let old = ov
            .data
            .get(&(block, word))
            .copied()
            .unwrap_or_else(|| self.read_word_functional(read_ctx, pid, va, pa));
        if let Some(wv) = write {
            let value = match wv {
                Ok(v) => v,
                Err(d) => old.wrapping_add(d as u32),
            };
            ov.data.insert((block, word), value);
            // The live replay itself creates the transaction's speculative
            // buffer for this block; later speculated writes must not
            // precompute another snapshot.
            if !matches!(
                (tx, &self.backend),
                (TxRef::None, _) | (_, Backend::LogTm(_))
            ) {
                ov.buffered.insert(block);
            }
        }
        ov.moesi.insert(block, new_state);
        if upgrade.is_none() {
            ov.filled.insert(block, tx);
        }
        ov.l1_insert(self, idx, block);

        Some(SpecStep::Replay { at: now, cost })
    }
}

/// Overwrites `snap` with the words this run already wrote to `block`: a
/// precomputed fresh-buffer snapshot must reflect the run's own earlier
/// effects, not just the frozen view.
fn patch_snapshot(snap: &mut [u8; BLOCK_SIZE], ov: &RunOverlay, block: PhysBlock) {
    for (&(b, w), &v) in &ov.data {
        if b == block {
            let off = w.0 as usize * WORD_SIZE;
            snap[off..off + WORD_SIZE].copy_from_slice(&v.to_le_bytes());
        }
    }
}
