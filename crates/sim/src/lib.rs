//! Execution-driven CMP simulator for the PTM reproduction.
//!
//! This crate ties the substrates together into the paper's evaluation
//! platform (§6.1): four single-issue in-order cores with private L1/L2
//! caches on a snoopy MOESI bus, a memory controller hosting the VTS (PTM)
//! or the XADT machinery (VTM), an OS model with page tables, TLB, demand
//! paging and system-event injection — all driving one of six execution
//! modes ([`SystemKind`]): serial, fine-grained locks, VTM, Victim-VTM,
//! Copy-PTM, and Select-PTM at three conflict granularities.
//!
//! Workloads are per-thread [`ThreadProgram`]s of [`Op`]s; the
//! [`runner`] module provides the Figure 4 "% speedup over one thread"
//! computation, and [`mod@reference`] checks value-level serializability of
//! every run against a serial replay in commit order.
//!
//! # Examples
//!
//! ```
//! use ptm_sim::{Machine, MachineConfig, Op, SystemKind, ThreadProgram};
//! use ptm_types::{ProcessId, ThreadId, VirtAddr};
//!
//! let lock = VirtAddr::new(0x9000);
//! let prog = ThreadProgram::new(ProcessId(0), ThreadId(0), vec![
//!     Op::Begin { ordered: None, lock },
//!     Op::Rmw(VirtAddr::new(0x1000), 5),
//!     Op::End,
//! ]);
//! let mut m = Machine::new(MachineConfig::default(), SystemKind::SelectPtm(Default::default()), vec![prog]);
//! m.run();
//! assert_eq!(m.stats().commits, 1);
//! assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(0x1000)), 5);
//! ```

pub mod backend;
pub mod crash;
pub mod executor;
pub mod faults;
pub mod kernel;
pub mod locks;
pub mod logtm;
pub mod machine;
pub mod mvmap;
pub mod ops;
pub mod ordered;
pub mod program;
pub mod reference;
pub mod runner;
pub mod scheduler;
pub mod stats;

pub use backend::{Backend, SystemKind};
pub use crash::{CrashImage, CrashPlan};
pub use executor::{ExecStats, ExecutorConfig, Refusal};
pub use faults::{
    assert_invariants, check_invariants, FaultAction, FaultEvent, FaultInjector, FaultPlan,
};
pub use kernel::{Kernel, KernelConfig, KernelStats, Translation};
pub use machine::{Machine, MachineConfig};
pub use mvmap::{MvMap, ReadResult, TxnVersion};
pub use ops::{Op, OrderedSeq};
pub use program::ThreadProgram;
pub use reference::{assert_serializable, crash_reference, diff_against_machine, serial_reference};
pub use runner::{
    run, run_parallel, run_with_faults, serialize_programs, speedup_percent, speedup_vs_serial,
};
pub use scheduler::{ReadyHeap, Scheduler, Task};
pub use stats::{CommittedTx, MachineStats};
