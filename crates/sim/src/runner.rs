//! Convenience entry points: run a program set under a system, build the
//! single-threaded baseline, and compute the paper's speedup metric.

use crate::backend::SystemKind;
use crate::executor::{ExecStats, ExecutorConfig};
use crate::machine::{Machine, MachineConfig};
use crate::program::ThreadProgram;
use ptm_types::{ProcessId, ThreadId};

/// Runs `programs` to completion under `kind` and returns the machine for
/// inspection.
pub fn run(cfg: MachineConfig, kind: SystemKind, programs: Vec<ThreadProgram>) -> Machine {
    let mut m = Machine::new(cfg, kind, programs);
    m.run();
    m
}

/// Runs `programs` to completion under `kind` with a [`FaultPlan`]
/// interleaved (an empty plan is bit-identical to [`run`]) and returns the
/// machine for inspection. The service frontend's shard fault isolation
/// drives each shard machine through this entry point.
pub fn run_with_faults(
    cfg: MachineConfig,
    kind: SystemKind,
    programs: Vec<ThreadProgram>,
    plan: &crate::faults::FaultPlan,
) -> Machine {
    let mut m = Machine::new(cfg, kind, programs);
    m.run_with_faults(plan);
    m
}

/// Runs `programs` through the speculative epoch executor (bit-identical
/// results to [`run`]) and returns the machine plus the executor counters.
pub fn run_parallel(
    cfg: MachineConfig,
    kind: SystemKind,
    programs: Vec<ThreadProgram>,
    exec: &ExecutorConfig,
) -> (Machine, ExecStats) {
    let mut m = Machine::new(cfg, kind, programs);
    let xs = m.run_parallel(exec);
    (m, xs)
}

/// Builds the single-threaded baseline program: all threads' operations
/// concatenated into one stream, executed in [`SystemKind::Serial`] mode
/// where `Begin`/`End` cost one cycle each (no checkpointing, locking or
/// versioning overhead) — the denominator of Figure 4's "% Speedup".
pub fn serialize_programs(programs: &[ThreadProgram]) -> Vec<ThreadProgram> {
    let pid = programs.first().map(|p| p.pid()).unwrap_or(ProcessId(0));
    let mut ops = Vec::new();
    for p in programs {
        for pc in 0..p.len() {
            ops.push(p.op_at(pc).expect("in range"));
        }
    }
    vec![ThreadProgram::new(pid, ThreadId(0), ops)]
}

/// The paper's speedup metric: percent improvement over the single-threaded
/// run (300% = 4×).
pub fn speedup_percent(serial_cycles: u64, parallel_cycles: u64) -> f64 {
    assert!(parallel_cycles > 0, "parallel run must have executed");
    (serial_cycles as f64 / parallel_cycles as f64 - 1.0) * 100.0
}

/// Runs the single-threaded baseline and the given system, returning
/// `(serial_cycles, parallel_cycles, speedup_percent)`.
pub fn speedup_vs_serial(
    cfg: MachineConfig,
    kind: SystemKind,
    programs: Vec<ThreadProgram>,
) -> (u64, u64, f64) {
    let serial = run(cfg, SystemKind::Serial, serialize_programs(&programs));
    let parallel = run(cfg, kind, programs);
    let s = serial.stats().cycles;
    let p = parallel.stats().cycles;
    (s, p, speedup_percent(s, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;
    use ptm_types::VirtAddr;

    #[test]
    fn speedup_formula_matches_paper_convention() {
        assert_eq!(speedup_percent(400, 100), 300.0, "4x is 300%");
        assert_eq!(speedup_percent(100, 100), 0.0);
        assert!(speedup_percent(50, 100) < 0.0, "slowdown is negative");
    }

    #[test]
    fn serialization_concatenates_all_threads() {
        let a = ThreadProgram::new(ProcessId(0), ThreadId(0), vec![Op::Compute(1)]);
        let b = ThreadProgram::new(
            ProcessId(0),
            ThreadId(1),
            vec![Op::Read(VirtAddr::new(0)), Op::Compute(2)],
        );
        let s = serialize_programs(&[a, b]);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].len(), 3);
    }

    #[test]
    #[should_panic(expected = "must have executed")]
    fn zero_parallel_cycles_rejected() {
        let _ = speedup_percent(1, 0);
    }
}
