//! Ordered-transaction commit gating (§2.2).
//!
//! Ordered transactions within a group must commit in ascending sequence
//! order: a transaction reaching its `End` before its turn stalls until
//! every lower sequence number in the group has committed.

use crate::ops::OrderedSeq;

/// Tracks, per ordered group, the next sequence number allowed to commit.
///
/// # Examples
///
/// ```
/// use ptm_sim::ops::OrderedSeq;
/// use ptm_sim::ordered::OrderedGate;
///
/// let mut gate = OrderedGate::new();
/// let first = OrderedSeq { group: 0, seq: 0 };
/// let second = OrderedSeq { group: 0, seq: 1 };
/// assert!(!gate.may_commit(second));
/// assert!(gate.may_commit(first));
/// gate.committed(first);
/// assert!(gate.may_commit(second));
/// ```
#[derive(Debug, Default)]
pub struct OrderedGate {
    next: ptm_types::FastMap<u32, u64>,
}

impl OrderedGate {
    /// Creates an empty gate (every group starts at sequence 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the transaction with this constraint may commit now.
    pub fn may_commit(&self, seq: OrderedSeq) -> bool {
        self.next.get(&seq.group).copied().unwrap_or(0) == seq.seq
    }

    /// Records a commit, unblocking the group's next sequence number.
    ///
    /// # Panics
    ///
    /// Panics on out-of-order commit — the gate exists to prevent exactly
    /// that, so a violation is a simulator bug.
    pub fn committed(&mut self, seq: OrderedSeq) {
        let next = self.next.entry(seq.group).or_insert(0);
        assert_eq!(*next, seq.seq, "out-of-order commit in group {}", seq.group);
        *next += 1;
    }

    /// The next sequence number expected to commit in `group`.
    pub fn next_in(&self, group: u32) -> u64 {
        self.next.get(&group).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_are_independent() {
        let mut g = OrderedGate::new();
        g.committed(OrderedSeq { group: 0, seq: 0 });
        assert!(g.may_commit(OrderedSeq { group: 1, seq: 0 }));
        assert!(!g.may_commit(OrderedSeq { group: 1, seq: 1 }));
        assert_eq!(g.next_in(0), 1);
    }

    #[test]
    fn sequence_advances_in_order() {
        let mut g = OrderedGate::new();
        for s in 0..5 {
            let seq = OrderedSeq { group: 7, seq: s };
            assert!(g.may_commit(seq));
            g.committed(seq);
        }
        assert_eq!(g.next_in(7), 5);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_commit_panics() {
        let mut g = OrderedGate::new();
        g.committed(OrderedSeq { group: 0, seq: 3 });
    }
}
