//! Deterministic fault injection: adversarial schedule events driven by a
//! seed, replayable bit-for-bit.
//!
//! A [`FaultPlan`] is a sorted list of [`FaultEvent`]s, each firing at a
//! *step index* of the machine's scheduling loop (not a cycle — step
//! indices are stable across timing changes within a run, which is what
//! makes shrinking a failing plan meaningful). [`Machine::run_with_faults`]
//! interleaves the plan with the normal `run` loop; an **empty plan is
//! bit-identical to [`Machine::run`]** — same checksums, same stats — so
//! the harness can be left wired in permanently.
//!
//! The events model the hostile environments of §3.5/§4.7: forced context
//! switches and thread migrations mid-transaction, swap-outs of hot
//! transactional pages, abort storms, physical-memory squeezes (the frame
//! pool drains to almost nothing), TAV-arena caps, and slow swap devices.
//! Resource-pressure events always come in pairs (`SqueezeMemory` →
//! `ReleaseMemory`, `CapTavArena` → `UncapTavArena`) so a run can stall but
//! never deadlock; [`FaultInjector::teardown`] releases anything still held
//! when the run finishes early.

use crate::backend::Backend;
use crate::machine::Machine;
use crate::scheduler::ReadyHeap;
use ptm_cache::flush_non_tx_lines;
use ptm_types::rng::{splitmix64, Fnv1a64};
use ptm_types::{FrameId, PhysBlock, ProcessId, Vpn};

/// One adversarial event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Force a context switch on `core` (mod the core count) right now,
    /// regardless of the kernel's timer: pay the switch cost, flush
    /// non-transactional cache lines, and migrate if the config migrates on
    /// switches.
    ForceContextSwitch { core: u8 },
    /// Migrate the thread on `core` to its ring neighbour, even if the
    /// kernel config never migrates.
    ForceMigration { core: u8 },
    /// Swap out the `nth` hottest transactional page (one with live TAV
    /// state or a shadow page, if any exists) — §3.5's worst case: paging
    /// out a page with transactions in flight.
    SwapOutHotPage { nth: u8 },
    /// Abort up to `count` live transactions, youngest first.
    AbortStorm { count: u8 },
    /// Allocate hostage frames until at most `leave` frames remain free,
    /// forcing shadow allocation and swap-in down the exhaustion path.
    SqueezeMemory { leave: u8 },
    /// Free every hostage frame taken by earlier squeezes.
    ReleaseMemory,
    /// Cap the TAV arena at `live + slack` nodes.
    CapTavArena { slack: u8 },
    /// Remove the TAV-arena cap.
    UncapTavArena,
    /// Every subsequent swap-in takes `delay` extra cycles (a slow swap
    /// device widens the §3.5 race windows).
    DelaySwapIns { delay: u16 },
}

/// A [`FaultAction`] bound to the scheduling step it fires before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Scheduling-loop step index; the event fires before that step runs.
    pub step: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic schedule of adversarial events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Events; fired in `step` order (ties fire in list order).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no events: `run_with_faults` degenerates to `run`.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Generates `count` events spread over `[0, horizon)` steps from
    /// `seed`. Squeezes and caps are always paired with their release a
    /// bounded distance later, so generated plans cannot starve a run
    /// forever (stalled cores still consume steps, which is what advances
    /// the plan towards the release).
    pub fn from_seed(seed: u64, horizon: u64, count: usize) -> Self {
        let horizon = horizon.max(16);
        let mut rng = seed;
        let mut events = Vec::with_capacity(count * 2);
        for _ in 0..count {
            let step = splitmix64(&mut rng) % horizon;
            let r = splitmix64(&mut rng);
            let action = match r % 7 {
                0 => FaultAction::ForceContextSwitch {
                    core: (r >> 8) as u8,
                },
                1 => FaultAction::ForceMigration {
                    core: (r >> 8) as u8,
                },
                2 => FaultAction::SwapOutHotPage {
                    nth: (r >> 8) as u8,
                },
                3 => FaultAction::AbortStorm {
                    count: 1 + ((r >> 8) % 3) as u8,
                },
                4 => {
                    let release = step + 1 + splitmix64(&mut rng) % (horizon / 4 + 1);
                    events.push(FaultEvent {
                        step: release,
                        action: FaultAction::ReleaseMemory,
                    });
                    FaultAction::SqueezeMemory {
                        leave: ((r >> 8) % 3) as u8,
                    }
                }
                5 => {
                    let uncap = step + 1 + splitmix64(&mut rng) % (horizon / 4 + 1);
                    events.push(FaultEvent {
                        step: uncap,
                        action: FaultAction::UncapTavArena,
                    });
                    FaultAction::CapTavArena {
                        slack: ((r >> 8) % 4) as u8,
                    }
                }
                _ => FaultAction::DelaySwapIns {
                    delay: ((r >> 8) % 5_000) as u16,
                },
            };
            events.push(FaultEvent { step, action });
        }
        let mut plan = FaultPlan { events };
        plan.normalize();
        plan
    }

    /// The shard-chaos generator: abort storms and resource squeezes only —
    /// the fault classes a service frontend must isolate to a single shard
    /// (contention collapse and memory pressure), without the scheduling
    /// events (`ForceContextSwitch`/`ForceMigration`/`SwapOutHotPage`) that
    /// exercise the paging machinery instead. Squeezes and TAV caps come
    /// paired with their release a bounded distance later, exactly like
    /// [`FaultPlan::from_seed`], so a storm plan can stall a shard but never
    /// starve it forever.
    pub fn shard_storm(seed: u64, horizon: u64, count: usize) -> Self {
        let horizon = horizon.max(16);
        let mut rng = seed;
        let mut events = Vec::with_capacity(count * 2);
        for _ in 0..count {
            let step = splitmix64(&mut rng) % horizon;
            let r = splitmix64(&mut rng);
            let action = match r % 4 {
                0 | 1 => FaultAction::AbortStorm {
                    count: 1 + ((r >> 8) % 4) as u8,
                },
                2 => {
                    let release = step + 1 + splitmix64(&mut rng) % (horizon / 4 + 1);
                    events.push(FaultEvent {
                        step: release,
                        action: FaultAction::ReleaseMemory,
                    });
                    FaultAction::SqueezeMemory {
                        leave: 1 + ((r >> 8) % 3) as u8,
                    }
                }
                _ => {
                    let uncap = step + 1 + splitmix64(&mut rng) % (horizon / 4 + 1);
                    events.push(FaultEvent {
                        step: uncap,
                        action: FaultAction::UncapTavArena,
                    });
                    FaultAction::CapTavArena {
                        slack: 1 + ((r >> 8) % 4) as u8,
                    }
                }
            };
            events.push(FaultEvent { step, action });
        }
        let mut plan = FaultPlan { events };
        plan.normalize();
        plan
    }

    /// Sorts events by step, keeping the relative order of same-step events
    /// (so a `SqueezeMemory` generated before its same-step `ReleaseMemory`
    /// still squeezes first).
    pub fn normalize(&mut self) {
        let mut indexed: Vec<(usize, FaultEvent)> = self.events.drain(..).enumerate().collect();
        indexed.sort_by_key(|(i, e)| (e.step, *i));
        self.events = indexed.into_iter().map(|(_, e)| e).collect();
    }

    /// `true` if no events will ever fire.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// An FNV-1a fingerprint of the full event list (steps and every action
    /// payload). Recorded in benchmark reports so a committed JSON names
    /// the exact plan that produced it, independent of seed defaults.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        h.write_u64(self.events.len() as u64);
        for e in &self.events {
            h.write_u64(e.step);
            let (tag, arg) = match e.action {
                FaultAction::ForceContextSwitch { core } => (0, u64::from(core)),
                FaultAction::ForceMigration { core } => (1, u64::from(core)),
                FaultAction::SwapOutHotPage { nth } => (2, u64::from(nth)),
                FaultAction::AbortStorm { count } => (3, u64::from(count)),
                FaultAction::SqueezeMemory { leave } => (4, u64::from(leave)),
                FaultAction::ReleaseMemory => (5, 0),
                FaultAction::CapTavArena { slack } => (6, u64::from(slack)),
                FaultAction::UncapTavArena => (7, 0),
                FaultAction::DelaySwapIns { delay } => (8, u64::from(delay)),
            };
            h.write_u64(tag);
            h.write_u64(arg);
        }
        h.finish()
    }
}

/// Walks a [`FaultPlan`] alongside the machine's scheduling loop, holding
/// the resources (hostage frames) some events acquire.
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    cursor: usize,
    hostages: Vec<FrameId>,
    /// Events that fired (for tests asserting a plan actually did anything).
    pub fired: usize,
}

impl FaultInjector {
    /// An injector over a normalized copy of `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut plan = plan.clone();
        plan.normalize();
        FaultInjector {
            events: plan.events,
            cursor: 0,
            hostages: Vec::new(),
            fired: 0,
        }
    }

    /// Fires every event whose step is due at `step`, then re-keys the heap
    /// for any core whose readiness the events changed.
    pub(crate) fn apply_due(&mut self, m: &mut Machine, step: u64, heap: &mut ReadyHeap) {
        if self.cursor >= self.events.len() || self.events[self.cursor].step > step {
            return;
        }
        while self.cursor < self.events.len() && self.events[self.cursor].step <= step {
            let ev = self.events[self.cursor];
            self.cursor += 1;
            self.apply(m, ev.action);
            self.fired += 1;
        }
        // Events mutate ready times, finish/abort threads, and migrate
        // programs across cores: re-key every core rather than tracking the
        // blast radius of each action.
        m.ready_dirty.clear();
        for i in 0..m.cores.len() {
            m.sync_heap_core(heap, i);
        }
    }

    fn apply(&mut self, m: &mut Machine, action: FaultAction) {
        match action {
            FaultAction::ForceContextSwitch { core } => {
                let idx = core as usize % m.cores.len();
                if m.cores[idx].prog.is_finished() {
                    return;
                }
                let now = m.cores[idx].ready_at;
                m.cores[idx].ready_at = now + m.cfg.kernel.cs_cost;
                if let Some(interval) = m.cfg.kernel.cs_interval {
                    // Restart the timer exactly like a scheduled switch
                    // would, so the forced switch replaces the next natural
                    // one rather than stacking on top of it.
                    m.cores[idx].next_cs = m.cores[idx].ready_at + interval;
                }
                m.kernel.note_context_switch();
                flush_non_tx_lines(&mut m.caches[idx]);
                if m.cfg.kernel.migrate_on_cs && m.cores.len() > 1 {
                    m.migrate_thread(idx, now);
                }
            }
            FaultAction::ForceMigration { core } => {
                // LogTM's eager versioning cannot migrate in-flight
                // transactions (§5.2); single-core machines have nowhere to
                // migrate to.
                if m.cores.len() < 2 || m.kind == crate::backend::SystemKind::LogTm {
                    return;
                }
                let idx = core as usize % m.cores.len();
                if m.cores[idx].prog.is_finished() {
                    return;
                }
                let now = m.cores[idx].ready_at;
                m.migrate_thread(idx, now);
            }
            FaultAction::SwapOutHotPage { nth } => self.swap_out_hot_page(m, nth),
            FaultAction::AbortStorm { count } => {
                if !m.kind.is_transactional() {
                    return;
                }
                // Current transactions of all cores, youngest first. Sorted:
                // iteration order must not depend on core state layout.
                let mut live: Vec<_> = m
                    .cores
                    .iter()
                    .filter_map(|c| c.prog.cur_tx())
                    .filter(|t| m.is_live_tx(*t))
                    .collect();
                live.sort();
                for tx in live.into_iter().rev().take(count as usize) {
                    if !m.is_live_tx(tx) {
                        continue; // an earlier abort's fallout killed it
                    }
                    let owner = *m.tx_owner.get(&tx).expect("live tx has an owner");
                    let now = m.cores[owner].ready_at;
                    m.abort_tx(tx, now);
                }
            }
            FaultAction::SqueezeMemory { leave } => {
                while m.mem.free_frames() > leave as usize {
                    let Some(f) = m.mem.alloc() else { break };
                    self.hostages.push(f);
                }
            }
            FaultAction::ReleaseMemory => {
                for f in self.hostages.drain(..) {
                    m.mem.free(f);
                }
            }
            FaultAction::CapTavArena { slack } => {
                if let Backend::Ptm(p) = &mut m.backend {
                    let live = p.tav_arena().live();
                    p.set_tav_capacity(Some(live + slack as usize));
                }
            }
            FaultAction::UncapTavArena => {
                if let Backend::Ptm(p) = &mut m.backend {
                    p.set_tav_capacity(None);
                }
            }
            FaultAction::DelaySwapIns { delay } => {
                m.swap_in_delay = u64::from(delay);
            }
        }
    }

    /// Picks a resident page — preferring one with live PTM overflow state
    /// (a TAV list or a shadow page) — purges its cache lines through the
    /// normal eviction path, and swaps it out. PTM backends only: the whole
    /// point is exercising §3.5 with transactions in flight.
    fn swap_out_hot_page(&mut self, m: &mut Machine, nth: u8) {
        if m.backend.as_ptm().is_none() {
            return;
        }
        // rev_map iterates a hash map: sort before selecting.
        let mut resident: Vec<(FrameId, ProcessId, Vpn)> =
            m.rev_map.iter().map(|(f, (p, v))| (*f, *p, *v)).collect();
        resident.sort();
        if resident.is_empty() {
            return;
        }
        let hot: Vec<_> = resident
            .iter()
            .filter(|(f, _, _)| {
                m.backend
                    .as_ptm()
                    .and_then(|p| p.spt_entry(*f))
                    .is_some_and(|e| e.tav_head.is_some() || e.shadow.is_some())
            })
            .copied()
            .collect();
        let pool = if hot.is_empty() { &resident } else { &hot };
        let (frame, pid, vpn) = pool[nth as usize % pool.len()];
        // The page (and its shadow twin) is about to leave memory: every
        // cached line backed by either frame must take the normal eviction
        // path first, or stale lines would alias whoever reuses the frames.
        let mut doomed = vec![frame];
        if let Some(shadow) = m
            .backend
            .as_ptm()
            .and_then(|p| p.spt_entry(frame))
            .and_then(|e| e.shadow)
        {
            doomed.push(shadow);
        }
        let now = m.cores.iter().map(|c| c.ready_at).min().unwrap_or(0);
        let mut blocks: Vec<PhysBlock> = Vec::new();
        for h in &m.caches {
            for line in h.lines() {
                if doomed.contains(&line.block().frame()) {
                    blocks.push(line.block());
                }
            }
        }
        blocks.sort();
        blocks.dedup();
        for block in blocks {
            for i in 0..m.caches.len() {
                if let Some(line) = m.caches[i].invalidate(block) {
                    // No requester: the last-resort self-abort branch is
                    // unreachable, so the bool return is always false.
                    let _ = m.handle_eviction(line, now, None);
                }
            }
        }
        // Eviction processing may itself have swapped nothing but *aborted*
        // transactions whose cleanup freed the page's overflow state; the
        // page may even have been unmapped meanwhile. Re-check residency.
        if m.kernel.frame_of(pid, vpn) != Some(frame) {
            return;
        }
        m.exec_log.poison_all();
        m.force_swap_out(pid, vpn);
    }

    /// Releases everything the plan still holds: hostage frames, the TAV
    /// cap, and the swap-device delay. Called when the run loop exits, so
    /// plans whose release events land beyond the run's actual step count
    /// cannot leak pressure into a later run on the same machine.
    pub(crate) fn teardown(&mut self, m: &mut Machine) {
        for f in self.hostages.drain(..) {
            m.mem.free(f);
        }
        if let Backend::Ptm(p) = &mut m.backend {
            p.set_tav_capacity(None);
        }
        m.swap_in_delay = 0;
    }
}

impl Machine {
    /// [`Machine::run`] with a [`FaultPlan`] interleaved. With an empty
    /// plan this is bit-identical to `run` (same step loop, same stats,
    /// same checksums); with a non-empty plan, events fire before the step
    /// whose index they carry.
    pub fn run_with_faults(&mut self, plan: &FaultPlan) {
        let mut injector = FaultInjector::new(plan);
        let mut guard: u64 = 0;
        let limit = self.progress_limit();
        let trace_progress = std::env::var("PTM_TRACE_PROGRESS").is_ok();
        let mut heap = self.build_ready_heap();
        loop {
            injector.apply_due(self, guard, &mut heap);
            let Some((_, idx)) = heap.peek() else { break };
            self.step(idx);
            self.sync_heap(&mut heap, idx);
            guard += 1;
            if trace_progress && guard.is_multiple_of(20_000_000) {
                let pcs: Vec<_> = self
                    .cores
                    .iter()
                    .map(|c| (c.prog.thread().0, c.prog.pc(), c.ready_at))
                    .collect();
                eprintln!("[progress] steps={guard} {pcs:?}");
            }
            if guard >= limit {
                self.progress_panic();
            }
        }
        injector.teardown(self);
        self.finalize_stats();
    }
}

/// Cross-checks a finished machine's counters against the accounting
/// identities every run must satisfy, fault-injected or not. Returns the
/// first violated identity.
pub fn check_invariants(m: &Machine) -> Result<(), String> {
    let s = m.stats();
    if s.commits != s.commit_log.len() as u64 {
        return Err(format!(
            "commits ({}) != commit log length ({})",
            s.commits,
            s.commit_log.len()
        ));
    }
    if m.kind().is_transactional() && s.begins != s.commits + s.aborts {
        return Err(format!(
            "begins ({}) != commits ({}) + aborts ({})",
            s.begins, s.commits, s.aborts
        ));
    }
    if let Backend::Ptm(p) = m.backend() {
        let ps = p.stats();
        if ps.commits != s.commits {
            return Err(format!(
                "backend commits ({}) != machine commits ({})",
                ps.commits, s.commits
            ));
        }
        if ps.aborts != s.aborts {
            return Err(format!(
                "backend aborts ({}) != machine aborts ({})",
                ps.aborts, s.aborts
            ));
        }
        let live = p.tstate().live_transactions();
        if !live.is_empty() {
            return Err(format!("live transactions after the run: {live:?}"));
        }
        if p.tav_arena().live() != 0 {
            return Err(format!(
                "TAV nodes leaked: {} still live",
                p.tav_arena().live()
            ));
        }
        if ps.shadow_frees > ps.shadow_allocs {
            return Err(format!(
                "shadow frees ({}) > allocs ({})",
                ps.shadow_frees, ps.shadow_allocs
            ));
        }
        if ps.exhaustion_retries > ps.exhaustion_aborts {
            return Err(format!(
                "exhaustion retries ({}) > aborts ({})",
                ps.exhaustion_retries, ps.exhaustion_aborts
            ));
        }
    }
    Ok(())
}

/// Panicking wrapper around [`check_invariants`] for tests and benches.
pub fn assert_invariants(m: &Machine) {
    if let Err(e) = check_invariants(m) {
        panic!("stats invariant violated: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_sorted() {
        let a = FaultPlan::from_seed(42, 10_000, 8);
        let b = FaultPlan::from_seed(42, 10_000, 8);
        assert_eq!(a, b);
        assert!(a.events.windows(2).all(|w| w[0].step <= w[1].step));
        assert!(a.events.len() >= 8);
    }

    #[test]
    fn digest_distinguishes_plans() {
        let a = FaultPlan::from_seed(1, 10_000, 8);
        let b = FaultPlan::from_seed(2, 10_000, 8);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.clone().digest());
        assert_ne!(FaultPlan::empty().digest(), a.digest());
    }

    #[test]
    fn squeezes_and_caps_are_paired() {
        for seed in 0..32 {
            let plan = FaultPlan::from_seed(seed, 5_000, 12);
            let squeezes = plan
                .events
                .iter()
                .filter(|e| matches!(e.action, FaultAction::SqueezeMemory { .. }))
                .count();
            let releases = plan
                .events
                .iter()
                .filter(|e| matches!(e.action, FaultAction::ReleaseMemory))
                .count();
            assert_eq!(squeezes, releases, "seed {seed}");
            let caps = plan
                .events
                .iter()
                .filter(|e| matches!(e.action, FaultAction::CapTavArena { .. }))
                .count();
            let uncaps = plan
                .events
                .iter()
                .filter(|e| matches!(e.action, FaultAction::UncapTavArena))
                .count();
            assert_eq!(caps, uncaps, "seed {seed}");
        }
    }

    #[test]
    fn normalize_keeps_same_step_order() {
        let mut plan = FaultPlan {
            events: vec![
                FaultEvent {
                    step: 5,
                    action: FaultAction::SqueezeMemory { leave: 0 },
                },
                FaultEvent {
                    step: 2,
                    action: FaultAction::ReleaseMemory,
                },
                FaultEvent {
                    step: 5,
                    action: FaultAction::ReleaseMemory,
                },
            ],
        };
        plan.normalize();
        assert_eq!(plan.events[0].step, 2);
        assert!(matches!(
            plan.events[1].action,
            FaultAction::SqueezeMemory { .. }
        ));
        assert!(matches!(plan.events[2].action, FaultAction::ReleaseMemory));
    }
}
