//! Machine-level statistics — the raw material for Table 1.

use ptm_types::{Cycle, FastSet, ProcessId, ThreadId, TxId, Vpn};
use std::fmt;

/// A committed transaction, in commit order, with enough provenance to
/// replay it serially (the reference executor's input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommittedTx {
    /// The transaction.
    pub tx: TxId,
    /// The thread that ran it (stable across core migration).
    pub thread: ThreadId,
    /// The core it committed on.
    pub core: usize,
    /// Program index of the outermost `Begin`.
    pub begin_pc: usize,
    /// Program index of the final `End`.
    pub end_pc: usize,
    /// Commit cycle.
    pub at: Cycle,
}

/// Counters accumulated over a machine run.
#[derive(Debug, Clone, Default)]
pub struct MachineStats {
    /// Total simulated cycles (the slowest core's finish time).
    pub cycles: Cycle,
    /// Memory operations executed (committed or aborted work).
    pub mem_ops: u64,
    /// Transaction begin events (attempts, including retries).
    pub begins: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Cycles cores spent stalled on cleanup windows, ordered gates, lock
    /// spins and swap faults.
    pub stall_cycles: u64,
    /// Unique pages touched (transactional and not) — Table 1's "pages".
    pub pages: FastSet<(ProcessId, Vpn)>,
    /// Unique pages updated by transactional writes — Table 1's "pg-x-wr".
    pub tx_write_pages: FastSet<(ProcessId, Vpn)>,
    /// Core-TLB hits (translations served without consulting the kernel).
    pub tlb_hits: u64,
    /// Core-TLB misses (translations that went through the kernel's
    /// TLB/walk/fault model).
    pub tlb_misses: u64,
    /// Core-TLB entries invalidated by mapping-change shootdowns.
    pub tlb_shootdowns: u64,
    /// L2 demand misses across all cores.
    pub l2_misses: u64,
    /// L2 evictions across all cores (Table 1's "mop/evict" denominator).
    pub l2_evictions: u64,
    /// Commit log, in commit order.
    pub commit_log: Vec<CommittedTx>,
}

impl MachineStats {
    /// Memory operations per L2 eviction (Table 1's last column); `f64::INFINITY`
    /// when nothing was evicted.
    pub fn mops_per_evict(&self) -> f64 {
        if self.l2_evictions == 0 {
            f64::INFINITY
        } else {
            self.mem_ops as f64 / self.l2_evictions as f64
        }
    }

    /// Conservative shadow-page overhead (Table 1): the fraction of the
    /// footprint that transactional writes could have shadowed.
    pub fn conservative_overhead(&self) -> f64 {
        if self.pages.is_empty() {
            0.0
        } else {
            self.tx_write_pages.len() as f64 / self.pages.len() as f64
        }
    }
}

impl fmt::Display for MachineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} mem-ops={} begins={} commits={} aborts={} stalls={}",
            self.cycles, self.mem_ops, self.begins, self.commits, self.aborts, self.stall_cycles
        )?;
        write!(
            f,
            "pages={} tx-write-pages={} ({:.1}% conservative) tlb {}/{} shootdowns={} l2-miss={} evict={} mop/evict={:.1}",
            self.pages.len(),
            self.tx_write_pages.len(),
            self.conservative_overhead() * 100.0,
            self.tlb_hits,
            self.tlb_misses,
            self.tlb_shootdowns,
            self.l2_misses,
            self.l2_evictions,
            self.mops_per_evict()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mops_per_evict_handles_zero() {
        let s = MachineStats::default();
        assert!(s.mops_per_evict().is_infinite());
    }

    #[test]
    fn conservative_overhead_is_a_fraction() {
        let mut s = MachineStats::default();
        s.pages.insert((ProcessId(0), Vpn(0)));
        s.pages.insert((ProcessId(0), Vpn(1)));
        s.tx_write_pages.insert((ProcessId(0), Vpn(0)));
        assert!((s.conservative_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", MachineStats::default()).is_empty());
    }
}
