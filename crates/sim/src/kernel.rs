//! The operating-system model: per-process page tables, a TLB, demand
//! paging with a swap store, and injection of the system events Table 1
//! counts (context switches and exceptions).

use ptm_core::vts::{LruTracker, Touch};
use ptm_mem::{PageTable, PhysicalMemory, Pte, SwapStore};
use ptm_types::{Cycle, FastMap, FrameId, PhysAddr, ProcessId, SwapSlot, VirtAddr, Vpn};

/// OS-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// TLB capacity (the paper simulates a 512-entry fully associative TLB).
    pub tlb_entries: usize,
    /// Cycles for a hardware page-table walk on a TLB miss.
    pub tlb_miss_cost: Cycle,
    /// Cycles for a minor (allocation) page fault.
    pub minor_fault_cost: Cycle,
    /// Cycles for a major (swap-in) page fault, excluding PTM bookkeeping.
    pub swap_fault_cost: Cycle,
    /// Inject a context switch on each core every this many cycles.
    pub cs_interval: Option<Cycle>,
    /// On each injected context switch, also *migrate* the thread to the
    /// next core (§4.7: PTM's physically-indexed structures survive thread
    /// migration; cache lines left behind spill through the coherence
    /// protocol into the overflow structures).
    pub migrate_on_cs: bool,
    /// Cycles a context switch steals from the core.
    pub cs_cost: Cycle,
    /// Inject an exception on each core every this many cycles.
    pub exc_interval: Option<Cycle>,
    /// Cycles an exception executes for (inside the transaction, §2.3.2).
    pub exc_cost: Cycle,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            tlb_entries: 512,
            tlb_miss_cost: 60,
            minor_fault_cost: 800,
            swap_fault_cost: 8_000,
            cs_interval: None,
            migrate_on_cs: false,
            cs_cost: 3_000,
            exc_interval: None,
            exc_cost: 300,
        }
    }
}

/// Kernel event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// TLB misses (page-table walks).
    pub tlb_misses: u64,
    /// Minor faults (first touch of a page).
    pub minor_faults: u64,
    /// Major faults (page brought back from swap).
    pub swap_ins: u64,
    /// Pages pushed out to swap.
    pub swap_outs: u64,
    /// Context switches delivered.
    pub context_switches: u64,
    /// Exceptions delivered.
    pub exceptions: u64,
}

/// Result of a virtual-address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translation {
    /// Resident: physical address plus translation cost. `allocated` is the
    /// frame a minor fault just allocated (the caller must register it with
    /// the TM backend's page tables).
    Resident {
        /// The translated physical address.
        pa: PhysAddr,
        /// Translation latency (TLB, walk, fault handling).
        cost: Cycle,
        /// Frame allocated by a minor fault, if one occurred.
        allocated: Option<FrameId>,
    },
    /// The page is swapped out; the caller must swap it in (through the TM
    /// backend for PTM, or [`Kernel::plain_swap_in`] otherwise) and retry.
    SwappedOut {
        /// Where the page's data lives.
        slot: SwapSlot,
        /// Cost accrued so far (TLB miss + fault entry).
        cost: Cycle,
    },
    /// A minor fault found the frame pool empty. The caller must free
    /// memory (abort a transaction, release a hostage frame) and retry;
    /// nothing was mapped.
    OutOfMemory {
        /// Cost accrued so far (TLB miss + fault entry).
        cost: Cycle,
    },
}

/// The operating-system model.
///
/// `Clone` snapshots the whole OS state — page tables, swap store, TLB,
/// counters — which is how a [`crate::crash::CrashImage`] captures the
/// durable paging state at a crash point.
#[derive(Debug, Clone)]
pub struct Kernel {
    cfg: KernelConfig,
    page_tables: FastMap<ProcessId, PageTable>,
    /// The swap store (shared with the PTM paging hooks).
    pub swap: SwapStore,
    tlb: LruTracker<(ProcessId, Vpn)>,
    stats: KernelStats,
}

impl Kernel {
    /// Creates a kernel.
    pub fn new(cfg: KernelConfig) -> Self {
        Kernel {
            tlb: LruTracker::new(cfg.tlb_entries),
            page_tables: FastMap::default(),
            swap: SwapStore::new(),
            stats: KernelStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// A clone capturing only the *durable* OS state: page tables, swap
    /// store and event counters. The TLB is a cache — a crash loses it and
    /// every post-recovery translation re-walks the page tables — so the
    /// clone leaves it empty instead of copying it per sweep point.
    pub fn durable_clone(&self) -> Kernel {
        Kernel {
            cfg: self.cfg,
            page_tables: self.page_tables.clone(),
            swap: self.swap.clone(),
            tlb: LruTracker::new(self.cfg.tlb_entries),
            stats: self.stats,
        }
    }

    /// Whether the volatile (cache-like) OS state is empty. Crash images
    /// assert this: only durable state may be captured.
    pub fn volatile_state_is_empty(&self) -> bool {
        self.tlb.is_empty()
    }

    /// Event counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Counts a delivered context switch.
    pub fn note_context_switch(&mut self) {
        self.stats.context_switches += 1;
    }

    /// Counts a delivered exception.
    pub fn note_exception(&mut self) {
        self.stats.exceptions += 1;
    }

    fn table(&mut self, pid: ProcessId) -> &mut PageTable {
        self.page_tables.entry(pid).or_default()
    }

    /// Translates `va` in `pid`'s address space, allocating the page on
    /// first touch (minor fault). When the frame pool is empty the minor
    /// fault reports [`Translation::OutOfMemory`] instead of mapping
    /// anything; the caller recovers and retries.
    pub fn translate(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        mem: &mut PhysicalMemory,
    ) -> Translation {
        let vpn = va.vpn();
        let mut cost = 0;
        match self.tlb.touch((pid, vpn)) {
            Touch::Hit => {}
            Touch::Miss { .. } => {
                self.stats.tlb_misses += 1;
                cost += self.cfg.tlb_miss_cost;
            }
        }
        match self.table(pid).entry(vpn) {
            Some(Pte::Present(frame)) => Translation::Resident {
                pa: PhysAddr::from_frame(frame, va.page_offset()),
                cost,
                allocated: None,
            },
            Some(Pte::Swapped(slot)) => {
                // Drop the stale TLB entry; the retry re-inserts the new one.
                self.tlb.remove(&(pid, vpn));
                Translation::SwappedOut {
                    slot,
                    cost: cost + self.cfg.swap_fault_cost,
                }
            }
            None => {
                let Some(frame) = mem.alloc() else {
                    // Leave the page unmapped and drop the freshly touched
                    // TLB entry so the retry repeats the full walk.
                    self.tlb.remove(&(pid, vpn));
                    return Translation::OutOfMemory {
                        cost: cost + self.cfg.minor_fault_cost,
                    };
                };
                self.table(pid).map(vpn, frame);
                self.stats.minor_faults += 1;
                Translation::Resident {
                    pa: PhysAddr::from_frame(frame, va.page_offset()),
                    cost: cost + self.cfg.minor_fault_cost,
                    allocated: Some(frame),
                }
            }
        }
    }

    /// The resident frame of `(pid, vpn)`, if present.
    pub fn frame_of(&self, pid: ProcessId, vpn: Vpn) -> Option<FrameId> {
        self.page_tables
            .get(&pid)?
            .entry(vpn)
            .and_then(|pte| match pte {
                Pte::Present(f) => Some(f),
                Pte::Swapped(_) => None,
            })
    }

    /// The swap slot holding `(pid, vpn)`'s home image, if the page is
    /// swapped out.
    pub fn swap_slot_of(&self, pid: ProcessId, vpn: Vpn) -> Option<SwapSlot> {
        self.page_tables
            .get(&pid)?
            .entry(vpn)
            .and_then(|pte| match pte {
                Pte::Present(_) => None,
                Pte::Swapped(slot) => Some(slot),
            })
    }

    /// Maps `(pid, vpn)` onto an existing frame — inter-process shared
    /// memory (§3.5.3). The frame must already be allocated.
    pub fn map_shared(&mut self, pid: ProcessId, vpn: Vpn, frame: FrameId) {
        self.table(pid).map(vpn, frame);
    }

    /// Marks a page swapped out (the data movement and PTM bookkeeping were
    /// handled by the caller; `slot` is where the home page went).
    pub fn mark_swapped(&mut self, pid: ProcessId, vpn: Vpn, slot: SwapSlot) {
        self.table(pid).mark_swapped(vpn, slot);
        self.tlb.remove(&(pid, vpn));
        self.stats.swap_outs += 1;
    }

    /// Completes a swap-in: the page now lives in `frame`.
    pub fn complete_swap_in(&mut self, pid: ProcessId, vpn: Vpn, frame: FrameId) {
        self.table(pid).mark_resident(vpn, frame);
        self.stats.swap_ins += 1;
    }

    /// Swaps a page out *without* TM bookkeeping (for non-PTM backends):
    /// stores the frame data and updates the page table.
    pub fn plain_swap_out(
        &mut self,
        pid: ProcessId,
        vpn: Vpn,
        mem: &mut PhysicalMemory,
    ) -> SwapSlot {
        let frame = self
            .frame_of(pid, vpn)
            .unwrap_or_else(|| panic!("swapping non-resident page {vpn} of {pid}"));
        let slot = self.swap.store(mem.read_frame(frame));
        mem.free(frame);
        self.mark_swapped(pid, vpn, slot);
        slot
    }

    /// Swaps a page in *without* TM bookkeeping. Returns `None` — with the
    /// swap slot and page table untouched, so the fault can be retried —
    /// when the frame pool is empty.
    pub fn plain_swap_in(
        &mut self,
        pid: ProcessId,
        vpn: Vpn,
        slot: SwapSlot,
        mem: &mut PhysicalMemory,
    ) -> Option<FrameId> {
        let frame = mem.alloc()?;
        let data = self.swap.load(slot);
        mem.write_frame(frame, &data);
        self.complete_swap_in(pid, vpn, frame);
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> (Kernel, PhysicalMemory) {
        (Kernel::new(KernelConfig::default()), PhysicalMemory::new(8))
    }

    #[test]
    fn first_touch_minor_faults_then_hits() {
        let (mut k, mut mem) = kernel();
        let va = VirtAddr::new(0x1234);
        let t1 = k.translate(ProcessId(0), va, &mut mem);
        let Translation::Resident {
            pa,
            cost,
            allocated,
        } = t1
        else {
            panic!("expected resident");
        };
        assert!(allocated.is_some());
        assert!(cost >= k.config().minor_fault_cost);
        assert_eq!(pa.page_offset(), 0x234);
        assert_eq!(k.stats().minor_faults, 1);

        // Second touch: TLB hit, no fault, zero cost.
        let t2 = k.translate(ProcessId(0), va, &mut mem);
        let Translation::Resident {
            pa: pa2,
            cost: c2,
            allocated: a2,
        } = t2
        else {
            panic!("expected resident");
        };
        assert_eq!(pa2, pa);
        assert_eq!(c2, 0);
        assert!(a2.is_none());
    }

    #[test]
    fn tlb_miss_cost_charged_on_capacity_eviction() {
        let cfg = KernelConfig {
            tlb_entries: 2,
            ..Default::default()
        };
        let mut k = Kernel::new(cfg);
        let mut mem = PhysicalMemory::new(8);
        for page in 0..3u64 {
            k.translate(ProcessId(0), VirtAddr::new(page * 4096), &mut mem);
        }
        let misses = k.stats().tlb_misses;
        // Page 0 was evicted from the 2-entry TLB.
        let t = k.translate(ProcessId(0), VirtAddr::new(0), &mut mem);
        assert!(matches!(t, Translation::Resident { cost, .. } if cost == 60));
        assert_eq!(k.stats().tlb_misses, misses + 1);
    }

    #[test]
    fn address_spaces_are_separate() {
        let (mut k, mut mem) = kernel();
        let va = VirtAddr::new(0x1000);
        let Translation::Resident { pa: pa0, .. } = k.translate(ProcessId(0), va, &mut mem) else {
            panic!()
        };
        let Translation::Resident { pa: pa1, .. } = k.translate(ProcessId(1), va, &mut mem) else {
            panic!()
        };
        assert_ne!(pa0.frame(), pa1.frame(), "same VA, different frames");
    }

    #[test]
    fn shared_mapping_aliases_frames() {
        let (mut k, mut mem) = kernel();
        let Translation::Resident { pa, .. } =
            k.translate(ProcessId(0), VirtAddr::new(0x1000), &mut mem)
        else {
            panic!()
        };
        k.map_shared(ProcessId(1), Vpn(99), pa.frame());
        let Translation::Resident { pa: pa1, .. } =
            k.translate(ProcessId(1), VirtAddr::new(99 * 4096), &mut mem)
        else {
            panic!()
        };
        assert_eq!(pa1.frame(), pa.frame(), "physical sharing established");
    }

    #[test]
    fn plain_swap_round_trip_preserves_data() {
        let (mut k, mut mem) = kernel();
        let pid = ProcessId(0);
        let va = VirtAddr::new(0x2000);
        let Translation::Resident { pa, .. } = k.translate(pid, va, &mut mem) else {
            panic!()
        };
        mem.write_word(pa, 0xfeed);
        let slot = k.plain_swap_out(pid, va.vpn(), &mut mem);

        // Translation now reports the page swapped.
        let t = k.translate(pid, va, &mut mem);
        assert!(matches!(t, Translation::SwappedOut { slot: s, .. } if s == slot));

        let frame = k.plain_swap_in(pid, va.vpn(), slot, &mut mem).unwrap();
        let Translation::Resident { pa: pa2, .. } = k.translate(pid, va, &mut mem) else {
            panic!()
        };
        assert_eq!(pa2.frame(), frame);
        assert_eq!(mem.read_word(pa2), 0xfeed, "data survived the round trip");
        assert_eq!(k.stats().swap_outs, 1);
        assert_eq!(k.stats().swap_ins, 1);
    }
}
