//! Per-thread programs: an operation stream with transaction-aware rewind.

use crate::ops::Op;
use ptm_types::{ProcessId, ThreadId, TxId};

/// A thread's operation stream plus its execution cursor.
///
/// On abort the program *rewinds* to the outermost `Begin` — the simulator's
/// equivalent of restoring the register checkpoint — and re-executes with
/// the **same** transaction identifier, as the paper requires (§4.4.3).
///
/// # Examples
///
/// ```
/// use ptm_sim::{Op, ThreadProgram};
/// use ptm_types::{ProcessId, ThreadId, VirtAddr};
///
/// let prog = ThreadProgram::new(
///     ProcessId(0),
///     ThreadId(0),
///     vec![Op::Read(VirtAddr::new(0x1000))],
/// );
/// assert!(!prog.is_finished());
/// assert_eq!(prog.current(), Some(Op::Read(VirtAddr::new(0x1000))));
/// ```
#[derive(Debug, Clone)]
pub struct ThreadProgram {
    pid: ProcessId,
    thread: ThreadId,
    ops: Vec<Op>,
    pc: usize,
    /// Index of the outermost `Begin` of the transaction in flight.
    tx_begin_pc: Option<usize>,
    /// The transaction id in flight (kept across aborts).
    cur_tx: Option<TxId>,
    /// Flattened nesting depth, mirrored from the T-State for quick access.
    nest: u32,
    /// Aborted attempts of the current transaction.
    attempts: u32,
}

impl ThreadProgram {
    /// Creates a program at its first operation.
    pub fn new(pid: ProcessId, thread: ThreadId, ops: Vec<Op>) -> Self {
        ThreadProgram {
            pid,
            thread,
            ops,
            pc: 0,
            tx_begin_pc: None,
            cur_tx: None,
            nest: 0,
            attempts: 0,
        }
    }

    /// The owning process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The thread identifier.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The operation at the cursor, or `None` at end of program.
    pub fn current(&self) -> Option<Op> {
        self.ops.get(self.pc).copied()
    }

    /// Whether the program has run to completion.
    pub fn is_finished(&self) -> bool {
        self.pc >= self.ops.len()
    }

    /// Total number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Advances past the current operation.
    pub fn advance(&mut self) {
        self.pc += 1;
    }

    /// The transaction currently in flight, if any.
    pub fn cur_tx(&self) -> Option<TxId> {
        self.cur_tx
    }

    /// The execution cursor (operation index).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Program index of the in-flight transaction's outermost `Begin`.
    pub fn tx_begin_pc(&self) -> Option<usize> {
        self.tx_begin_pc
    }

    /// The operation at an arbitrary index (the reference executor replays
    /// committed ranges through this).
    pub fn op_at(&self, pc: usize) -> Option<Op> {
        self.ops.get(pc).copied()
    }

    /// Current flattened nesting depth.
    pub fn nest(&self) -> u32 {
        self.nest
    }

    /// Aborted attempts of the in-flight transaction.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Records an outermost transaction begin at the current cursor. Returns
    /// `true` if this is a *retry* of an aborted transaction (the identifier
    /// must be reused).
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already in flight (nested begins go
    /// through [`ThreadProgram::enter_nested`]).
    pub fn begin_outer(&mut self, tx: TxId) -> bool {
        assert_eq!(self.nest, 0, "outer begin while nested");
        let retry = self.cur_tx == Some(tx) && self.tx_begin_pc == Some(self.pc);
        if !retry {
            self.attempts = 0;
        }
        self.tx_begin_pc = Some(self.pc);
        self.cur_tx = Some(tx);
        self.nest = 1;
        retry
    }

    /// Enters a nested (flattened) transaction level.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction.
    pub fn enter_nested(&mut self) {
        assert!(self.nest > 0, "nested begin outside a transaction");
        self.nest += 1;
    }

    /// Leaves one nesting level; returns `true` when the outermost level
    /// ended (commit point).
    ///
    /// # Panics
    ///
    /// Panics on unbalanced `End`.
    pub fn leave(&mut self) -> bool {
        assert!(self.nest > 0, "unbalanced transaction end");
        self.nest -= 1;
        self.nest == 0
    }

    /// Completes the in-flight transaction (after a commit).
    pub fn finish_tx(&mut self) {
        self.tx_begin_pc = None;
        self.cur_tx = None;
        self.nest = 0;
        self.attempts = 0;
    }

    /// Rewinds to the outermost `Begin` after an abort; the transaction id
    /// is retained for the retry.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is in flight.
    pub fn rewind(&mut self) {
        let begin = self.tx_begin_pc.expect("rewind outside a transaction");
        self.pc = begin;
        self.nest = 0;
        self.attempts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::VirtAddr;

    fn begin() -> Op {
        Op::Begin {
            ordered: None,
            lock: VirtAddr::new(0),
        }
    }

    fn prog(ops: Vec<Op>) -> ThreadProgram {
        ThreadProgram::new(ProcessId(0), ThreadId(0), ops)
    }

    #[test]
    fn sequential_execution() {
        let mut p = prog(vec![Op::Compute(1), Op::Compute(2)]);
        assert_eq!(p.current(), Some(Op::Compute(1)));
        p.advance();
        assert_eq!(p.current(), Some(Op::Compute(2)));
        p.advance();
        assert!(p.is_finished());
        assert_eq!(p.current(), None);
    }

    #[test]
    fn begin_end_lifecycle() {
        let mut p = prog(vec![begin(), Op::Compute(1), Op::End]);
        let retry = p.begin_outer(TxId(5));
        assert!(!retry);
        assert_eq!(p.cur_tx(), Some(TxId(5)));
        p.advance(); // past begin
        p.advance(); // past compute
        assert!(p.leave(), "outermost end");
        p.finish_tx();
        assert_eq!(p.cur_tx(), None);
    }

    #[test]
    fn nested_flattening() {
        let mut p = prog(vec![begin(), begin(), Op::End, Op::End]);
        p.begin_outer(TxId(1));
        p.advance();
        p.enter_nested();
        p.advance();
        assert!(!p.leave(), "inner end does not commit");
        p.advance();
        assert!(p.leave(), "outer end commits");
    }

    #[test]
    fn rewind_restores_begin_and_keeps_id() {
        let mut p = prog(vec![begin(), Op::Compute(1), Op::End]);
        p.begin_outer(TxId(9));
        p.advance();
        p.advance();
        p.rewind();
        assert_eq!(p.current(), Some(begin()));
        assert_eq!(p.attempts(), 1);
        // Re-executing the begin is flagged as a retry.
        assert!(p.begin_outer(TxId(9)));
        assert_eq!(p.attempts(), 1, "retry does not reset the attempt count");
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_end_panics() {
        let mut p = prog(vec![Op::End]);
        p.leave();
    }

    #[test]
    #[should_panic(expected = "rewind outside")]
    fn rewind_without_tx_panics() {
        let mut p = prog(vec![Op::Compute(1)]);
        p.rewind();
    }
}
