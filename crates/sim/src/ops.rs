//! The operation stream executed by simulated cores.
//!
//! Workloads compile to per-thread sequences of [`Op`]s. Addresses are
//! virtual; transaction boundaries are explicit `Begin`/`End` markers (the
//! paper's added ISA instructions, §6.1). Data-dependent updates are
//! expressed as read-modify-write deltas ([`Op::Rmw`]) so that a transaction
//! replayed after an abort still computes meaningful values and functional
//! invariants (conserved sums, histogram totals) remain checkable.

use ptm_types::VirtAddr;
use std::fmt;

/// Commit-ordering constraint for ordered transactions (§2.2): transactions
/// in the same group must commit in ascending `seq` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderedSeq {
    /// The ordered loop this transaction belongs to.
    pub group: u32,
    /// Position in the programmer-defined commit order.
    pub seq: u64,
}

/// One operation of a thread's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Transaction begin. `ordered` constrains the commit order; `lock`
    /// names the fine-grained lock the *lock-based* execution mode acquires
    /// for this region instead of running it transactionally.
    Begin {
        /// Ordered-commit constraint, if this is an ordered transaction.
        ordered: Option<OrderedSeq>,
        /// Lock protecting this region under lock-based execution.
        lock: VirtAddr,
    },
    /// Transaction end (commit of the outermost level).
    End,
    /// Load a 4-byte word.
    Read(VirtAddr),
    /// Store a constant to a 4-byte word.
    Write(VirtAddr, u32),
    /// Read-modify-write: load the word, add the (wrapping) delta, store.
    Rmw(VirtAddr, i32),
    /// Busy computation for the given number of cycles.
    Compute(u32),
    /// Barrier synchronization: every thread must arrive at barrier `id`
    /// before any proceeds. SPLASH-2 kernels are barrier-synchronized
    /// between phases; the paper removed the *locks*, not the barriers.
    /// Each static barrier instance must use a fresh id. Not allowed inside
    /// a transaction.
    Barrier(u32),
}

impl Op {
    /// The virtual address this operation touches, if it is a memory op.
    pub fn addr(&self) -> Option<VirtAddr> {
        match self {
            Op::Read(a) | Op::Write(a, _) | Op::Rmw(a, _) => Some(*a),
            _ => None,
        }
    }

    /// Whether this operation writes memory.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write(..) | Op::Rmw(..))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Begin {
                ordered: Some(o), ..
            } => write!(f, "begin[{}#{}]", o.group, o.seq),
            Op::Begin { ordered: None, .. } => write!(f, "begin"),
            Op::End => write!(f, "end"),
            Op::Read(a) => write!(f, "ld {a}"),
            Op::Write(a, v) => write!(f, "st {a} <- {v}"),
            Op::Rmw(a, d) => write!(f, "rmw {a} += {d}"),
            Op::Compute(c) => write!(f, "compute {c}"),
            Op::Barrier(id) => write!(f, "barrier {id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_extraction() {
        assert_eq!(Op::Read(VirtAddr::new(8)).addr(), Some(VirtAddr::new(8)));
        assert_eq!(Op::Compute(5).addr(), None);
        assert_eq!(Op::End.addr(), None);
    }

    #[test]
    fn write_classification() {
        assert!(Op::Write(VirtAddr::new(0), 1).is_write());
        assert!(Op::Rmw(VirtAddr::new(0), -1).is_write());
        assert!(!Op::Read(VirtAddr::new(0)).is_write());
    }

    #[test]
    fn display_formats() {
        let b = Op::Begin {
            ordered: Some(OrderedSeq { group: 1, seq: 2 }),
            lock: VirtAddr::new(0),
        };
        assert_eq!(format!("{b}"), "begin[1#2]");
        assert_eq!(format!("{}", Op::End), "end");
    }
}
