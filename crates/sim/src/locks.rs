//! The lock-based execution baseline.
//!
//! The paper's Figure 4 compares against "default p-thread locks" with fine
//! granularity. In lock mode, each `Begin` acquires the region's lock word
//! (spinning while held) and `End` releases it; the body runs
//! non-transactionally, since mutual exclusion already serializes it.

use ptm_types::{Cycle, FastMap, ThreadId, VirtAddr};

/// Result of a lock acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockAttempt {
    /// The lock was free and is now held by the requester.
    Acquired,
    /// The lock is held by another thread; spin and retry.
    Busy,
}

/// A table of simulated fine-grained spin locks.
///
/// # Examples
///
/// ```
/// use ptm_sim::locks::{LockAttempt, LockTable};
/// use ptm_types::{ThreadId, VirtAddr};
///
/// let mut locks = LockTable::new();
/// let l = VirtAddr::new(0x100);
/// assert_eq!(locks.acquire(l, ThreadId(0), 0), LockAttempt::Acquired);
/// assert_eq!(locks.acquire(l, ThreadId(1), 5), LockAttempt::Busy);
/// locks.release(l, ThreadId(0));
/// assert_eq!(locks.acquire(l, ThreadId(1), 9), LockAttempt::Acquired);
/// ```
#[derive(Debug, Default, Clone)]
pub struct LockTable {
    held: FastMap<VirtAddr, (ThreadId, Cycle)>,
    stats: LockStats,
}

/// Lock contention counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Attempts that found the lock held (spin iterations).
    pub contended_attempts: u64,
}

impl LockTable {
    /// Creates an empty table (locks spring into existence on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire `lock` for `thread` at cycle `now`.
    ///
    /// Re-acquiring a lock the thread already holds succeeds (the simulated
    /// regions are not re-entrant in practice, but idempotence keeps retry
    /// paths simple).
    pub fn acquire(&mut self, lock: VirtAddr, thread: ThreadId, now: Cycle) -> LockAttempt {
        match self.held.get(&lock) {
            Some((owner, _)) if *owner != thread => {
                self.stats.contended_attempts += 1;
                LockAttempt::Busy
            }
            Some(_) => LockAttempt::Acquired,
            None => {
                self.held.insert(lock, (thread, now));
                self.stats.acquisitions += 1;
                LockAttempt::Acquired
            }
        }
    }

    /// Releases `lock`.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held by `thread` — that is a simulator bug,
    /// not a workload property.
    pub fn release(&mut self, lock: VirtAddr, thread: ThreadId) {
        match self.held.remove(&lock) {
            Some((owner, _)) if owner == thread => {}
            Some((owner, at)) => panic!("{thread} released {lock} held by {owner} since {at}"),
            None => panic!("{thread} released unheld {lock}"),
        }
    }

    /// Whether `lock` is currently held.
    pub fn is_held(&self, lock: VirtAddr) -> bool {
        self.held.contains_key(&lock)
    }

    /// Contention statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_lock_cycle() {
        let mut t = LockTable::new();
        let l = VirtAddr::new(64);
        assert_eq!(t.acquire(l, ThreadId(0), 0), LockAttempt::Acquired);
        assert!(t.is_held(l));
        t.release(l, ThreadId(0));
        assert!(!t.is_held(l));
        assert_eq!(t.stats().acquisitions, 1);
        assert_eq!(t.stats().contended_attempts, 0);
    }

    #[test]
    fn contention_counts_attempts() {
        let mut t = LockTable::new();
        let l = VirtAddr::new(64);
        t.acquire(l, ThreadId(0), 0);
        for _ in 0..3 {
            assert_eq!(t.acquire(l, ThreadId(1), 1), LockAttempt::Busy);
        }
        assert_eq!(t.stats().contended_attempts, 3);
    }

    #[test]
    fn reacquire_by_owner_is_idempotent() {
        let mut t = LockTable::new();
        let l = VirtAddr::new(64);
        t.acquire(l, ThreadId(0), 0);
        assert_eq!(t.acquire(l, ThreadId(0), 1), LockAttempt::Acquired);
        assert_eq!(t.stats().acquisitions, 1);
    }

    #[test]
    fn independent_locks_do_not_contend() {
        let mut t = LockTable::new();
        t.acquire(VirtAddr::new(64), ThreadId(0), 0);
        assert_eq!(
            t.acquire(VirtAddr::new(128), ThreadId(1), 0),
            LockAttempt::Acquired
        );
    }

    #[test]
    #[should_panic(expected = "released unheld")]
    fn release_of_unheld_lock_panics() {
        let mut t = LockTable::new();
        t.release(VirtAddr::new(64), ThreadId(0));
    }
}
