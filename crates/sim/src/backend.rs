//! The pluggable concurrency-control backend of the machine.

use crate::locks::LockTable;
use crate::logtm::LogTmSystem;
use ptm_core::{PtmConfig, PtmSystem};
use ptm_types::Granularity;
use ptm_vtm::{VtmConfig, VtmSystem};
use std::fmt;

/// Which system to run — the x-axis families of Figures 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Single-threaded / uncontrolled execution (the speedup baseline's
    /// denominator, and the mode used when a workload has one thread).
    Serial,
    /// Fine-grained lock-based execution (`4p` in the figures).
    Locks,
    /// Baseline VTM.
    Vtm,
    /// Victim-cache VTM (`VC-VTM`).
    VictimVtm,
    /// Copy-PTM.
    CopyPtm,
    /// Select-PTM at the given conflict granularity (`Block` is the Figure 4
    /// configuration; the word granularities are Figure 5's `wd:cache` and
    /// `wd:cache+mem`).
    SelectPtm(Granularity),
    /// LogTM-style eager versioning with stall-preferring resolution — an
    /// extension beyond the paper's evaluated systems (§5.2 related work).
    /// Bounded: no paging or migration support, as in the original.
    LogTm,
}

impl SystemKind {
    /// The display label the paper's figures use.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Serial => "serial",
            SystemKind::Locks => "4p-locks",
            SystemKind::Vtm => "VTM",
            SystemKind::VictimVtm => "VC-VTM",
            SystemKind::CopyPtm => "Copy-PTM",
            SystemKind::SelectPtm(Granularity::Block) => "Sel-PTM",
            SystemKind::SelectPtm(Granularity::WordCache) => "wd:cache",
            SystemKind::SelectPtm(Granularity::WordCacheMem) => "wd:cache+mem",
            SystemKind::LogTm => "LogTM",
        }
    }

    /// Whether this mode executes `Begin`/`End` as transactions (as opposed
    /// to locks or nothing).
    pub fn is_transactional(self) -> bool {
        matches!(
            self,
            SystemKind::Vtm
                | SystemKind::VictimVtm
                | SystemKind::CopyPtm
                | SystemKind::SelectPtm(_)
                | SystemKind::LogTm
        )
    }

    /// The conflict granularity this mode runs at.
    pub fn granularity(self) -> Granularity {
        match self {
            SystemKind::SelectPtm(g) => g,
            _ => Granularity::Block,
        }
    }

    /// All five Figure 4 systems, in the paper's bar order.
    pub fn figure4() -> [SystemKind; 5] {
        [
            SystemKind::Locks,
            SystemKind::Vtm,
            SystemKind::VictimVtm,
            SystemKind::CopyPtm,
            SystemKind::SelectPtm(Granularity::Block),
        ]
    }

    /// The Figure 5 configurations, in the paper's bar order.
    pub fn figure5() -> [SystemKind; 4] {
        [
            SystemKind::Locks,
            SystemKind::SelectPtm(Granularity::Block),
            SystemKind::SelectPtm(Granularity::WordCache),
            SystemKind::SelectPtm(Granularity::WordCacheMem),
        ]
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The backend instance owned by a machine.
// One Backend exists per machine and it never moves after construction, so
// the variant size spread costs nothing; boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Backend {
    /// No concurrency control (serial execution).
    Serial,
    /// Fine-grained locks.
    Locks(LockTable),
    /// PTM (Copy or Select per its configuration).
    Ptm(PtmSystem),
    /// VTM (baseline or victim-cache per its configuration).
    Vtm(VtmSystem),
    /// LogTM-style eager versioning (extension).
    LogTm(LogTmSystem),
}

impl Backend {
    /// Instantiates the backend for a system kind.
    pub fn for_kind(kind: SystemKind) -> Backend {
        match kind {
            SystemKind::Serial => Backend::Serial,
            SystemKind::Locks => Backend::Locks(LockTable::new()),
            SystemKind::Vtm => Backend::Vtm(VtmSystem::new(VtmConfig::baseline())),
            SystemKind::VictimVtm => Backend::Vtm(VtmSystem::new(VtmConfig::victim())),
            SystemKind::CopyPtm => Backend::Ptm(PtmSystem::new(PtmConfig::copy())),
            SystemKind::SelectPtm(g) => {
                Backend::Ptm(PtmSystem::new(PtmConfig::select_with_granularity(g)))
            }
            SystemKind::LogTm => Backend::LogTm(LogTmSystem::new()),
        }
    }

    /// The PTM system, if this backend is PTM.
    pub fn as_ptm(&self) -> Option<&PtmSystem> {
        match self {
            Backend::Ptm(p) => Some(p),
            _ => None,
        }
    }

    /// The VTM system, if this backend is VTM.
    pub fn as_vtm(&self) -> Option<&VtmSystem> {
        match self {
            Backend::Vtm(v) => Some(v),
            _ => None,
        }
    }

    /// The LogTM system, if this backend is LogTM.
    pub fn as_logtm(&self) -> Option<&LogTmSystem> {
        match self {
            Backend::LogTm(l) => Some(l),
            _ => None,
        }
    }

    /// Clones only the durable subset of the backend for a crash image.
    ///
    /// PTM's VTS caches and deferred-cleanup queue are volatile controller
    /// state (DESIGN decision 19) and are reset to empty in the copy; every
    /// other backend keeps its full write-through state.
    pub fn durable_clone(&self) -> Backend {
        match self {
            Backend::Ptm(p) => Backend::Ptm(p.durable_clone()),
            other => other.clone(),
        }
    }

    /// Whether any transactional block has overflowed the caches.
    pub fn has_overflows(&self) -> bool {
        match self {
            Backend::Ptm(p) => p.has_overflows(),
            Backend::Vtm(v) => v.has_overflows(),
            Backend::LogTm(l) => l.has_overflows(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::PtmPolicy;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(SystemKind::Locks.label(), "4p-locks");
        assert_eq!(SystemKind::SelectPtm(Granularity::Block).label(), "Sel-PTM");
        assert_eq!(
            SystemKind::SelectPtm(Granularity::WordCacheMem).label(),
            "wd:cache+mem"
        );
    }

    #[test]
    fn figure_lists_are_ordered_like_the_paper() {
        let f4 = SystemKind::figure4();
        assert_eq!(f4[0], SystemKind::Locks);
        assert_eq!(f4[4], SystemKind::SelectPtm(Granularity::Block));
        let f5 = SystemKind::figure5();
        assert_eq!(f5[1].granularity(), Granularity::Block);
        assert_eq!(f5[3].granularity(), Granularity::WordCacheMem);
    }

    #[test]
    fn backend_instantiation_matches_kind() {
        assert!(Backend::for_kind(SystemKind::CopyPtm).as_ptm().is_some());
        assert!(Backend::for_kind(SystemKind::VictimVtm).as_vtm().is_some());
        assert!(matches!(
            Backend::for_kind(SystemKind::Serial),
            Backend::Serial
        ));
        let copy = Backend::for_kind(SystemKind::CopyPtm);
        assert_eq!(copy.as_ptm().unwrap().config().policy, PtmPolicy::Copy);
    }

    #[test]
    fn transactional_classification() {
        assert!(!SystemKind::Locks.is_transactional());
        assert!(!SystemKind::Serial.is_transactional());
        assert!(SystemKind::Vtm.is_transactional());
        assert!(SystemKind::CopyPtm.is_transactional());
    }
}
