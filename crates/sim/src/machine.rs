//! The chip-multiprocessor machine: cores, caches, bus, memory, OS and a
//! pluggable TM backend, executing thread programs to completion.
//!
//! The timing model is quasi-cycle-accurate: cores are processed in global
//! time order (smallest `ready_at` first); each operation resolves its full
//! memory-system path immediately, charging latencies and advancing shared
//! resources (bus occupancy, memory pipeline, VTS cleanup windows) so that
//! contention between cores is modeled. The machine is simultaneously
//! *functional*: pages hold real bytes, speculative versions really live in
//! buffers/shadow pages/XADT entries, and commits/aborts really move or
//! discard data — which the serial reference executor verifies.

use crate::backend::{Backend, SystemKind};
use crate::executor::ExecLog;
use crate::kernel::{Kernel, KernelConfig, Translation};
use crate::locks::LockAttempt;
use crate::ops::{Op, OrderedSeq};
use crate::ordered::OrderedGate;
use crate::program::ThreadProgram;
use crate::scheduler::ReadyHeap;
use crate::stats::{CommittedTx, MachineStats};
use ptm_cache::{
    abort_tx_lines, commit_tx_lines, flush_non_tx_lines, peek_remote_tx_use, supply, BusTimings,
    CacheConfig, CacheLine, DataSource, Hierarchy, ProbeResult, SystemBus,
};
use ptm_core::durability::{DurStats, DurabilityConfig, DurableLog, UndoPayload};
use ptm_core::system::AccessKind;
use ptm_mem::{LogDevStats, PhysicalMemory, SpecBuffers};
use ptm_types::ids::TxIdSource;
use ptm_types::{
    Cycle, FastMap, FrameId, PhysAddr, PhysBlock, ProcessId, TxId, VirtAddr, Vpn, WordIdx,
    BLOCK_SIZE, WORD_SIZE,
};
use std::sync::OnceLock;

/// Hard cap on exhaustion abort-and-retry rounds. Each round aborts one live
/// transaction, so a recovery that loops past the largest plausible live set
/// is cycling, not converging — fail loudly instead of spinning forever.
const MAX_EXHAUSTION_RETRIES: u32 = 64;

/// Debug tracing: set `PTM_TRACE_WORD=<word-aligned virtual address>` to log
/// every event touching that word's block (accesses, evictions, commits,
/// aborts) to stderr. Zero cost when unset.
pub(crate) fn trace_word() -> Option<u64> {
    static WORD: OnceLock<Option<u64>> = OnceLock::new();
    *WORD.get_or_init(|| {
        std::env::var("PTM_TRACE_WORD")
            .ok()
            .and_then(|s| s.parse().ok())
    })
}

/// Debug tracing: set `PTM_TRACE_STALL` to log every access stall to stderr.
/// Read once — the stall path sits inside the simulator's hottest loop.
pub(crate) fn trace_stall() -> bool {
    static STALL: OnceLock<bool> = OnceLock::new();
    *STALL.get_or_init(|| std::env::var("PTM_TRACE_STALL").is_ok())
}

/// Machine configuration (defaults follow §6.1).
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Physical memory size in frames.
    pub mem_frames: usize,
    /// L1 configuration.
    pub l1: CacheConfig,
    /// L2 configuration.
    pub l2: CacheConfig,
    /// Bus and memory timings.
    pub bus: BusTimings,
    /// OS parameters (TLB, faults, event injection).
    pub kernel: KernelConfig,
    /// Per-core hardware TLB entries (direct-mapped, `(pid, vpn)`-tagged).
    /// A hit serves the translation without consulting the kernel at all;
    /// the kernel's own TLB/walk model is only exercised on core-TLB misses.
    /// `0` disables the core TLB (every access goes through the kernel).
    pub core_tlb_entries: usize,
    /// Cycles to take a register checkpoint at transaction begin.
    pub begin_cost: Cycle,
    /// Cycles for the logical (atomic) commit.
    pub commit_cost: Cycle,
    /// Base penalty after an abort before the retry starts (grows linearly
    /// with the attempt count as a deterministic backoff).
    pub abort_penalty: Cycle,
    /// Polling interval while stalled (lock spins, ordered gate, cleanup
    /// windows).
    pub retry_poll: Cycle,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mem_frames: 1 << 15, // 128 MiB
            l1: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            bus: BusTimings::default(),
            kernel: KernelConfig::default(),
            core_tlb_entries: 64,
            begin_cost: 8,
            commit_cost: 20,
            abort_penalty: 150,
            retry_poll: 40,
        }
    }
}

#[derive(Debug)]
pub(crate) struct CoreState {
    pub(crate) prog: ThreadProgram,
    pub(crate) ready_at: Cycle,
    pub(crate) next_cs: Cycle,
    pub(crate) next_exc: Cycle,
    pub(crate) cur_ordered: Option<OrderedSeq>,
    lock_stack: Vec<VirtAddr>,
    pub(crate) checksum: u64,
    /// Stats-dedup memos: the last `(pid, vpn)` this core inserted into
    /// `stats.pages` / `stats.tx_write_pages`. Consecutive ops overwhelmingly
    /// touch the same page, so the memo skips the idempotent hash insert.
    /// Purely a fast path — a stale memo only re-inserts an existing key.
    last_stat_page: Option<(ProcessId, Vpn)>,
    last_tx_write_page: Option<(ProcessId, Vpn)>,
    /// Direct-mapped hardware TLB, indexed by `vpn % len`. Entries are
    /// `(pid, vpn)`-tagged, so they need no flush on context switch or
    /// thread migration — only a mapping *change* (swap-out, remap)
    /// invalidates them, via [`Machine::tlb_shootdown`].
    tlb: Vec<Option<TlbEntry>>,
}

/// One core-TLB entry: a cached `(pid, vpn) → frame` translation.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    pid: ProcessId,
    vpn: Vpn,
    frame: FrameId,
}

// The epoch executor's speculation workers share a frozen `&Machine` across
// host threads and exchange per-core state between them; both bounds are
// load-bearing and must never regress silently.
fn _assert_thread_safety() {
    fn is_sync<T: Sync>() {}
    fn is_send<T: Send>() {}
    is_sync::<Machine>();
    is_send::<CoreState>();
}

/// What an access attempt resolved to.
pub(crate) enum AccessEffect {
    /// Completed; the op's latency in cycles.
    Done(Cycle),
    /// Must retry the same op at the given cycle (cleanup window, swap-in).
    Stall(Cycle),
    /// The requester's own transaction lost arbitration and was aborted;
    /// its program has been rewound.
    SelfAborted,
}

/// The simulated CMP.
///
/// Build one with [`Machine::new`], run it to completion with
/// [`Machine::run`], then read [`Machine::stats`] and the backend counters.
#[derive(Debug)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) kind: SystemKind,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) caches: Vec<Hierarchy>,
    pub(crate) bus: SystemBus,
    pub(crate) mem: PhysicalMemory,
    pub(crate) kernel: Kernel,
    pub(crate) backend: Backend,
    pub(crate) spec: SpecBuffers,
    /// Write-behind durable log (commit records, undo/redo payloads).
    /// `None` by default: volatile machines pay zero cycles and zero
    /// bookkeeping, keeping every pre-existing run bit-identical.
    pub(crate) durable: Option<DurableLog>,
    tx_src: TxIdSource,
    gate: OrderedGate,
    pub(crate) tx_owner: FastMap<TxId, usize>,
    pub(crate) rev_map: FastMap<FrameId, (ProcessId, Vpn)>,
    barriers: FastMap<u32, BarrierState>,
    pub(crate) stats: MachineStats,
    /// Extra cycles every swap-in stalls for — zero except under an active
    /// `DelaySwapIns` fault, so plain runs are timing-identical.
    pub(crate) swap_in_delay: Cycle,
    /// Cores whose `ready_at` (or program) was changed by a step acting on
    /// a *different* core (abort penalties, thread migration). The run
    /// loops drain this to re-key the ready heap.
    pub(crate) ready_dirty: Vec<usize>,
    /// Epoch-executor validation log (inert while [`ExecLog::active`] is
    /// false, i.e. during plain sequential runs).
    pub(crate) exec_log: ExecLog,
}

/// Arrival/release bookkeeping for one in-flight barrier. Arrivals are
/// keyed by *thread* (stable across core migration), not by core.
#[derive(Debug)]
struct BarrierState {
    arrived: std::collections::HashSet<u32>,
    release_at: Option<Cycle>,
    passed: std::collections::HashSet<u32>,
}

impl Machine {
    /// Creates a machine running `programs` (one per core) under the given
    /// system.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn new(cfg: MachineConfig, kind: SystemKind, programs: Vec<ThreadProgram>) -> Self {
        assert!(!programs.is_empty(), "machine needs at least one thread");
        assert!(
            !(kind == SystemKind::LogTm && cfg.kernel.migrate_on_cs),
            "LogTM does not support thread migration (§5.2)"
        );
        let n = programs.len();
        let cs0 = cfg.kernel.cs_interval.unwrap_or(u64::MAX);
        let exc0 = cfg.kernel.exc_interval.unwrap_or(u64::MAX);
        Machine {
            cores: programs
                .into_iter()
                .enumerate()
                .map(|(i, prog)| CoreState {
                    prog,
                    ready_at: 0,
                    // Stagger injections slightly so cores do not all stall
                    // on the same cycle.
                    next_cs: cs0.saturating_add(137 * i as u64),
                    next_exc: exc0.saturating_add(61 * i as u64),
                    cur_ordered: None,
                    lock_stack: Vec::new(),
                    checksum: 0,
                    last_stat_page: None,
                    last_tx_write_page: None,
                    tlb: vec![None; cfg.core_tlb_entries],
                })
                .collect(),
            caches: (0..n).map(|_| Hierarchy::new(cfg.l1, cfg.l2)).collect(),
            bus: SystemBus::new(cfg.bus),
            mem: PhysicalMemory::new(cfg.mem_frames),
            kernel: Kernel::new(cfg.kernel),
            backend: Backend::for_kind(kind),
            spec: SpecBuffers::new(),
            durable: None,
            tx_src: TxIdSource::new(),
            gate: OrderedGate::new(),
            tx_owner: FastMap::default(),
            rev_map: FastMap::default(),
            barriers: FastMap::default(),
            stats: MachineStats::default(),
            swap_in_delay: 0,
            ready_dirty: Vec::new(),
            exec_log: ExecLog::inactive(),
            cfg,
            kind,
        }
    }

    /// The system this machine runs.
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// Run statistics (complete after [`Machine::run`]).
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// The backend (PTM/VTM counters live there).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Attaches a durable write-behind log. Call before running: commits
    /// append records (and force per the policy), dirty overflows append
    /// undo pre-images, and crash images capture the device state.
    pub fn enable_durability(&mut self, cfg: DurabilityConfig) {
        let mut log = DurableLog::new(cfg);
        // LogTM's eager in-place stores make the durable log a write-ahead
        // log: word pre-images (and the abort records that void them) are
        // forced regardless of the commit-record policy, and recovery
        // replays them in place of the volatile software undo log.
        if matches!(self.backend, Backend::LogTm(_)) {
            log.set_wal(true);
        }
        self.durable = Some(log);
    }

    /// Caller-side durability counters, when a durable log is attached.
    pub fn durable_stats(&self) -> Option<&DurStats> {
        self.durable.as_ref().map(|d| d.stats())
    }

    /// Log-device counters, when a durable log is attached.
    pub fn log_dev_stats(&self) -> Option<&LogDevStats> {
        self.durable.as_ref().map(|d| d.dev_stats())
    }

    /// OS statistics (context switches, exceptions, faults).
    pub fn kernel_stats(&self) -> &crate::kernel::KernelStats {
        self.kernel.stats()
    }

    /// Bus and memory traffic statistics.
    pub fn bus_stats(&self) -> &ptm_cache::bus::BusStats {
        self.bus.stats()
    }

    /// Per-core read checksums (prevents dead-code elimination concerns in
    /// benches and gives tests a quick divergence signal).
    pub fn checksums(&self) -> Vec<u64> {
        self.cores.iter().map(|c| c.checksum).collect()
    }

    /// Runs every program to completion and finalizes statistics.
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making progress (a simulator bug, not a
    /// workload property — oldest-wins arbitration guarantees progress).
    pub fn run(&mut self) {
        let mut guard: u64 = 0;
        let limit = self.progress_limit();
        // Read the tracing knob once: `std::env::var` is a syscall and this
        // is the hottest loop in the simulator.
        let trace_progress = std::env::var("PTM_TRACE_PROGRESS").is_ok();
        let mut heap = self.build_ready_heap();
        while let Some((_, idx)) = heap.peek() {
            // Run-ahead dispatch: keep stepping this core while its key stays
            // strictly below the heap's runner-up, no cross-core effect needs
            // re-keying, and the program has more work. Every iteration steps
            // exactly the core a peek would have yielded — heap traffic is
            // skipped, not reordered — so the schedule is canonical-order
            // identical to the one-step-per-peek loop.
            loop {
                self.step(idx);
                guard += 1;
                if trace_progress && guard.is_multiple_of(20_000_000) {
                    let pcs: Vec<_> = self
                        .cores
                        .iter()
                        .map(|c| (c.prog.thread().0, c.prog.pc(), c.ready_at))
                        .collect();
                    eprintln!("[progress] steps={guard} {pcs:?}");
                }
                if guard >= limit {
                    self.progress_panic();
                }
                if !self.ready_dirty.is_empty() || self.cores[idx].prog.is_finished() {
                    break;
                }
                match heap.runner_up() {
                    // (ready_at, core) keys are unique, so strict less-than
                    // is exactly "still the global minimum".
                    Some(bound) if (self.cores[idx].ready_at, idx) > bound => break,
                    _ => {}
                }
            }
            self.sync_heap(&mut heap, idx);
        }
        self.finalize_stats();
    }

    /// The step budget after which a run is declared stuck.
    pub(crate) fn progress_limit(&self) -> u64 {
        200_000_000u64
            .saturating_add(self.cores.iter().map(|c| c.prog.len() as u64).sum::<u64>() * 10_000)
    }

    /// Panics with the full per-core + live-transaction state dump.
    pub(crate) fn progress_panic(&self) -> ! {
        let state: Vec<String> = self
            .cores
            .iter()
            .map(|c| {
                format!(
                    "pc={}/{} ready={} tx={:?} op={:?}",
                    c.prog.pc(),
                    c.prog.len(),
                    c.ready_at,
                    c.prog.cur_tx(),
                    c.prog.current()
                )
            })
            .collect();
        let live = match &self.backend {
            Backend::Ptm(p) => p.tstate().live_transactions(),
            _ => Vec::new(),
        };
        let owners: Vec<_> = live
            .iter()
            .map(|t| (*t, self.tx_owner.get(t).copied()))
            .collect();
        panic!("machine stopped making progress: {state:#?} live={owners:?}");
    }

    /// A [`ReadyHeap`] seeded with every unfinished core.
    pub(crate) fn build_ready_heap(&self) -> ReadyHeap {
        let mut heap = ReadyHeap::new(self.cores.len());
        for (i, c) in self.cores.iter().enumerate() {
            if !c.prog.is_finished() {
                heap.upsert(i, c.ready_at);
            }
        }
        heap
    }

    /// Re-keys `idx` plus any cores a cross-core effect (abort penalty,
    /// migration swap) touched during the last step.
    pub(crate) fn sync_heap(&mut self, heap: &mut ReadyHeap, idx: usize) {
        self.sync_heap_core(heap, idx);
        while let Some(d) = self.ready_dirty.pop() {
            self.sync_heap_core(heap, d);
        }
    }

    pub(crate) fn sync_heap_core(&self, heap: &mut ReadyHeap, core: usize) {
        if self.cores[core].prog.is_finished() {
            heap.remove(core);
        } else {
            heap.upsert(core, self.cores[core].ready_at);
        }
    }

    pub(crate) fn finalize_stats(&mut self) {
        self.stats.cycles = self.cores.iter().map(|c| c.ready_at).max().unwrap_or(0);
        let mut misses = 0;
        let mut evictions = 0;
        for h in &self.caches {
            misses += h.l2_stats().misses;
            evictions += h.l2_stats().evictions;
        }
        self.stats.l2_misses = misses;
        self.stats.l2_evictions = evictions;
    }

    // ------------------------------------------------------------------
    // The core step function
    // ------------------------------------------------------------------

    pub(crate) fn step(&mut self, idx: usize) {
        let now = self.cores[idx].ready_at;

        // System-event injection (context switches, exceptions).
        if now >= self.cores[idx].next_cs {
            let interval = self.cfg.kernel.cs_interval.expect("cs scheduled");
            self.cores[idx].ready_at = now + self.cfg.kernel.cs_cost;
            // The next switch is an interval after this one *ends*, so a
            // cost larger than the interval cannot livelock the core.
            self.cores[idx].next_cs = self.cores[idx].ready_at + interval;
            self.kernel.note_context_switch();
            // The other process pollutes the cache; transactional lines are
            // tagged with their transaction ID and survive (§4.7).
            flush_non_tx_lines(&mut self.caches[idx]);
            if self.cfg.kernel.migrate_on_cs && self.cores.len() > 1 {
                self.migrate_thread(idx, now);
            }
            return;
        }
        if now >= self.cores[idx].next_exc {
            let interval = self.cfg.kernel.exc_interval.expect("exc scheduled");
            self.cores[idx].ready_at = now + self.cfg.kernel.exc_cost;
            self.cores[idx].next_exc = self.cores[idx].ready_at + interval;
            self.kernel.note_exception();
            return;
        }

        let Some(op) = self.cores[idx].prog.current() else {
            return;
        };
        match op {
            Op::Compute(c) => {
                self.cores[idx].prog.advance();
                self.cores[idx].ready_at = now + u64::from(c.max(1));
            }
            Op::Begin { ordered, lock } => self.step_begin(idx, now, ordered, lock),
            Op::End => self.step_end(idx, now),
            Op::Read(va) => self.step_access(idx, now, va, AccessKind::Read, None),
            Op::Write(va, v) => {
                self.step_access(idx, now, va, AccessKind::Write, Some(WriteVal::Const(v)))
            }
            Op::Rmw(va, d) => {
                self.step_access(idx, now, va, AccessKind::Write, Some(WriteVal::Delta(d)))
            }
            Op::Barrier(id) => self.step_barrier(idx, now, id),
        }
    }

    fn step_barrier(&mut self, idx: usize, now: Cycle, id: u32) {
        debug_assert!(
            self.cores[idx].prog.cur_tx().is_none() || !self.kind.is_transactional(),
            "barrier inside a transaction"
        );
        let n = self.cores.len();
        let poll = self.cfg.retry_poll;
        let thread = self.cores[idx].prog.thread().0;
        let st = self.barriers.entry(id).or_insert_with(|| BarrierState {
            arrived: std::collections::HashSet::new(),
            release_at: None,
            passed: std::collections::HashSet::new(),
        });
        if let Some(rel) = st.release_at {
            if now >= rel {
                st.passed.insert(thread);
                let done = st.passed.len() == n;
                self.cores[idx].prog.advance();
                self.cores[idx].ready_at = now + 1;
                if done {
                    self.barriers.remove(&id);
                }
            } else {
                self.cores[idx].ready_at = rel;
            }
            return;
        }
        st.arrived.insert(thread);
        if st.arrived.len() == n {
            // Last arriver: release everyone after a short notification
            // round on the bus.
            st.release_at = Some(now + 20);
            self.cores[idx].ready_at = now + 20;
        } else {
            self.stats.stall_cycles += poll;
            self.cores[idx].ready_at = now + poll;
        }
    }

    /// Migrates the thread on `idx` by swapping it with the next core's
    /// thread (§4.7). Cache lines stay behind: in-flight transactions'
    /// tagged lines on the old core will be spilled into the overflow
    /// structures by coherence when the transaction touches them again, or
    /// simply supply data — PTM needs no reverse address translation for
    /// either, unlike VTM.
    pub(crate) fn migrate_thread(&mut self, idx: usize, now: Cycle) {
        let other = (idx + 1) % self.cores.len();
        // Fairness guard: if the partner core is still busy (typically
        // because it just context-switched itself), stealing its thread
        // again before it ever ran would starve that thread — dense switch
        // storms could bounce it around the ring forever. Skip this
        // migration; the switch itself still happened.
        if self.cores[other].ready_at > now {
            return;
        }
        // A migration reorders which core runs which thread — nothing
        // speculated before it can survive, and the partner core's key in
        // the ready heap changes.
        self.exec_log.poison_all();
        self.ready_dirty.push(other);
        if trace_word().is_some() {
            eprintln!("[ptm-trace] migrate core {idx} <-> core {other} now={now}");
        }
        // Swap the thread-owned state; core-owned state (ready_at, injection
        // timers) stays with the core.
        {
            let [a, b] = self
                .cores
                .get_disjoint_mut([idx, other])
                .expect("distinct cores");
            std::mem::swap(&mut a.prog, &mut b.prog);
            std::mem::swap(&mut a.cur_ordered, &mut b.cur_ordered);
            std::mem::swap(&mut a.lock_stack, &mut b.lock_stack);
            std::mem::swap(&mut a.checksum, &mut b.checksum);
        }
        // The destination core requeues cheaply (the full switch cost is
        // paid by the initiating core); its timer restarts so it does not
        // immediately re-migrate, and the arriving thread gets a full
        // interval of CPU — otherwise rotating switches can starve a thread
        // by always moving it just before it would run.
        let other_ready = self.cores[other].ready_at.max(now) + 200;
        self.cores[other].ready_at = other_ready;
        if let Some(interval) = self.cfg.kernel.cs_interval {
            self.cores[other].next_cs = other_ready + interval.max(self.cfg.kernel.cs_cost);
        }
        // In-flight transactions now run on the other core.
        for (i, c) in self.cores.iter().enumerate() {
            if let Some(tx) = c.prog.cur_tx() {
                self.tx_owner.insert(tx, i);
            }
        }
    }

    fn step_begin(&mut self, idx: usize, now: Cycle, ordered: Option<OrderedSeq>, lock: VirtAddr) {
        match self.kind {
            SystemKind::Serial => {
                self.cores[idx].prog.advance();
                self.cores[idx].ready_at = now + 1;
            }
            SystemKind::Locks => {
                let thread = self.cores[idx].prog.thread();
                match match &mut self.backend {
                    Backend::Locks(t) => t.acquire(lock, thread, now),
                    _ => unreachable!("lock mode has a lock table"),
                } {
                    LockAttempt::Acquired => {
                        self.cores[idx].lock_stack.push(lock);
                        self.cores[idx].prog.advance();
                        // The acquire is an atomic RMW on the lock word: a
                        // real coherence transaction, so contended locks
                        // ping-pong between caches.
                        let lat = match self.access(idx, now, lock, AccessKind::Write) {
                            AccessEffect::Done(lat) => lat,
                            AccessEffect::Stall(until) => until.saturating_sub(now),
                            AccessEffect::SelfAborted => unreachable!("no tx in lock mode"),
                        };
                        self.cores[idx].ready_at = now + lat.max(1);
                    }
                    LockAttempt::Busy => {
                        self.stats.stall_cycles += self.cfg.retry_poll;
                        self.cores[idx].ready_at = now + self.cfg.retry_poll;
                    }
                }
            }
            _ => {
                // Transactional modes.
                if self.cores[idx].prog.nest() > 0 {
                    // Flattened nesting: just bump the depth (§2.3.1).
                    self.cores[idx].prog.enter_nested();
                    self.cores[idx].prog.advance();
                    self.cores[idx].ready_at = now + 1;
                    return;
                }
                let tx = self.cores[idx]
                    .prog
                    .cur_tx()
                    .unwrap_or_else(|| self.tx_src.next_id());
                let retry = self.cores[idx].prog.begin_outer(tx);
                match &mut self.backend {
                    Backend::Ptm(p) => p.begin(tx, ordered.map(|o| o.seq)),
                    Backend::Vtm(v) => v.begin(tx),
                    Backend::LogTm(l) => l.begin(tx),
                    _ => unreachable!("transactional mode"),
                }
                if !retry {
                    self.tx_owner.insert(tx, idx);
                }
                self.cores[idx].cur_ordered = ordered;
                self.cores[idx].prog.advance();
                self.cores[idx].ready_at = now + self.cfg.begin_cost;
                self.stats.begins += 1;
            }
        }
    }

    fn step_end(&mut self, idx: usize, now: Cycle) {
        match self.kind {
            SystemKind::Serial => {
                self.cores[idx].prog.advance();
                self.cores[idx].ready_at = now + 1;
            }
            SystemKind::Locks => {
                let lock = self.cores[idx]
                    .lock_stack
                    .pop()
                    .expect("end without matching begin in lock mode");
                let thread = self.cores[idx].prog.thread();
                match &mut self.backend {
                    Backend::Locks(t) => t.release(lock, thread),
                    _ => unreachable!(),
                }
                self.cores[idx].prog.advance();
                // The release is a store to the lock word.
                let lat = match self.access(idx, now, lock, AccessKind::Write) {
                    AccessEffect::Done(lat) => lat,
                    AccessEffect::Stall(until) => until.saturating_sub(now),
                    AccessEffect::SelfAborted => unreachable!("no tx in lock mode"),
                };
                self.cores[idx].ready_at = now + lat.max(1);
            }
            _ => {
                if self.cores[idx].prog.nest() > 1 {
                    self.cores[idx].prog.leave();
                    self.cores[idx].prog.advance();
                    self.cores[idx].ready_at = now + 1;
                    return;
                }
                // Outermost end: ordered transactions wait for their turn.
                if let Some(seq) = self.cores[idx].cur_ordered {
                    if !self.gate.may_commit(seq) {
                        // A gate-blocked LogTM transaction must advertise
                        // itself as stalling, or the possible-cycle
                        // heuristic could deadlock against it.
                        if let (Backend::LogTm(l), Some(tx)) =
                            (&mut self.backend, self.cores[idx].prog.cur_tx())
                        {
                            l.mark_stalling(tx);
                        }
                        self.stats.stall_cycles += self.cfg.retry_poll;
                        self.cores[idx].ready_at = now + self.cfg.retry_poll;
                        return;
                    }
                }
                // Durable mode: a writing commit must not start while the
                // log device is stalled — throttle to the stall deadline
                // instead. Bounded: the device's stall window has a fixed
                // end, so commits degrade gracefully, never deadlock.
                if let (Some(d), Some(tx)) = (self.durable.as_mut(), self.cores[idx].prog.cur_tx())
                {
                    if let Some(until) = d.commit_blocked(tx, now) {
                        let until = until.max(now + 1);
                        self.stats.stall_cycles += until - now;
                        self.cores[idx].ready_at = until;
                        return;
                    }
                }
                self.commit(idx, now);
            }
        }
    }

    fn commit(&mut self, idx: usize, now: Cycle) {
        let tx = self.cores[idx].prog.cur_tx().expect("commit inside tx");
        // A non-overflowed commit under block granularity only drains this
        // transaction's buffers and clears its tags: its effects are
        // word-precise, so publish them to the multi-version map instead of
        // poisoning every run. Overflowed commits toggle selection vectors /
        // copy back overflow structures (whole frames change meaning), and
        // word-granularity modes carry precomputed mirror pointers into
        // co-writers' speculative pages that the cleanup below frees — both
        // invalidate speculated state wholesale.
        let overflowed = match &self.backend {
            Backend::Ptm(p) => p.tx_has_overflow(tx),
            Backend::Vtm(v) => v.tx_has_overflow(tx),
            _ => false,
        };
        let precise =
            self.exec_log.active && !self.kind.granularity().word_in_cache() && !overflowed;
        if !precise {
            self.exec_log.poison_all();
        }
        if trace_word().is_some() {
            eprintln!("[ptm-trace] commit {tx} now={now}");
        }
        let pid = self.cores[idx].prog.pid();

        // Logical commit + lazy cleanup in the backend (selection-vector
        // toggling / XADT copy-back).
        match &mut self.backend {
            Backend::Ptm(p) => {
                p.commit(tx, &mut self.mem, &mut self.kernel.swap, now, &mut self.bus);
            }
            Backend::Vtm(v) => {
                let kernel = &self.kernel;
                v.commit(
                    tx,
                    &mut self.mem,
                    |va| {
                        kernel
                            .frame_of(pid, va.vpn())
                            .map(|f| PhysBlock::new(f, va.block_in_page()))
                    },
                    now,
                    &mut self.bus,
                );
            }
            Backend::LogTm(l) => {
                l.commit(tx, now, &mut self.bus);
            }
            _ => unreachable!("transactional mode"),
        }

        // Surviving in-cache speculative buffers promote to the committed
        // location (for blocks that also overflowed earlier, the buffer is
        // the newest version and correctly lands last).
        let buffers = self.spec.drain_tx(tx);
        for (block, specb) in buffers {
            // Durable mode: the published words ride the write-behind log
            // as a redo payload before the commit record below seals them.
            if let Some(d) = self.durable.as_mut() {
                let words: Vec<(u8, u32)> = specb
                    .written
                    .iter()
                    .map(|w| (w.0, specb.read_word(w)))
                    .collect();
                d.append_redo(tx, block, &words, now);
            }
            let (frame, mirror) = match &self.backend {
                Backend::Ptm(p) => (p.committed_frame(block), p.mirror_location(block, Some(tx))),
                _ => (block.frame(), None),
            };
            if precise {
                // The drained words become globally visible right here:
                // publish each so concurrent speculated readers of stale
                // values fail validation word-by-word.
                for w in specb.written.iter() {
                    self.exec_log.note_write(block, w, idx, specb.read_word(w));
                }
            }
            let tgt = block.on_frame(frame);
            let mut data = self.mem.read_block(tgt);
            ptm_mem::versions::apply_written_words(&mut data, &specb);
            self.mem.write_block(tgt, &data);
            // Word-granularity: a live co-writer's speculative page must
            // see these committed words too (it never wrote them itself).
            if let Some(mirror) = mirror {
                let mut data = self.mem.read_block(mirror);
                ptm_mem::versions::apply_written_words(&mut data, &specb);
                self.mem.write_block(mirror, &data);
            }
        }

        // Migration can leave committed lines on other cores: sweep every
        // cache for this transaction's tags.
        for cache in &mut self.caches {
            commit_tx_lines(cache, tx);
        }

        if let Some(seq) = self.cores[idx].cur_ordered.take() {
            self.gate.committed(seq);
        }

        let begin_pc = {
            // The End op is at the current pc; Begin was recorded in the
            // program before it rewound/advanced — recover it from the log
            // by scanning backwards is fragile, so ask the program.
            self.cores[idx].prog.tx_begin_pc().expect("tx in flight")
        };
        self.stats.commit_log.push(CommittedTx {
            tx,
            thread: self.cores[idx].prog.thread(),
            core: idx,
            begin_pc,
            end_pc: self.current_pc(idx),
            at: now,
        });

        // Durable mode: the commit record (plus any policy force, retry
        // backoff or stall wait) extends the commit latency. Read-only
        // transactions take the fast path and append nothing.
        let durable_lat = match self.durable.as_mut() {
            Some(d) => d.commit_tx(tx, self.cores[idx].prog.thread().0, now),
            None => 0,
        };
        self.cores[idx].prog.finish_tx();
        self.cores[idx].prog.advance();
        self.cores[idx].ready_at = now + self.cfg.commit_cost + durable_lat;
        self.stats.commits += 1;
    }

    fn current_pc(&self, idx: usize) -> usize {
        self.cores[idx].prog.pc()
    }

    // ------------------------------------------------------------------
    // Memory access path
    // ------------------------------------------------------------------

    fn step_access(
        &mut self,
        idx: usize,
        now: Cycle,
        va: VirtAddr,
        kind: AccessKind,
        write: Option<WriteVal>,
    ) {
        match self.access(idx, now, va, kind) {
            AccessEffect::Done(latency) => {
                // Functional data movement.
                let pid = self.cores[idx].prog.pid();
                let pa = self
                    .kernel
                    .frame_of(pid, va.vpn())
                    .map(|f| PhysAddr::from_frame(f, va.page_offset()))
                    .expect("page resident after successful access");
                let tx = self.tx_context(idx);
                let old = self.read_word_functional(tx, pid, va, pa);
                self.cores[idx].checksum = self.cores[idx]
                    .checksum
                    .rotate_left(1)
                    .wrapping_add(u64::from(old));
                if let Some(w) = write {
                    let value = match w {
                        WriteVal::Const(v) => v,
                        WriteVal::Delta(d) => old.wrapping_add(d as u32),
                    };
                    let wal_latency = self.write_word_functional(tx, pid, va, pa, value, now);
                    if let (Some(d), Some(tx)) = (self.durable.as_mut(), tx) {
                        d.note_tx_write(tx);
                    }
                    // Publish globally visible writes to the multi-version
                    // map: non-transactional stores and LogTM's eager
                    // in-place updates. Lazily buffered transactional
                    // writes stay invisible until their commit drains them.
                    if tx.is_none() || matches!(self.backend, Backend::LogTm(_)) {
                        self.exec_log
                            .note_write(pa.block(), pa.word_in_block(), idx, value);
                    }
                    self.note_page_touch(idx, pid, va.vpn(), tx.is_some());
                    self.stats.mem_ops += 1;
                    self.cores[idx].prog.advance();
                    // WAL latency: eager-versioning stores wait for their
                    // word pre-image to be forced durable.
                    self.cores[idx].ready_at = now + (latency + wal_latency).max(1);
                    return;
                }
                self.note_page_touch(idx, pid, va.vpn(), false);
                self.stats.mem_ops += 1;
                self.cores[idx].prog.advance();
                self.cores[idx].ready_at = now + latency.max(1);
            }
            AccessEffect::Stall(until) => {
                let until = until.max(now + 1);
                if trace_stall() {
                    eprintln!("[stall] core {idx} va {va} until {until} (now {now})");
                }
                self.stats.stall_cycles += until - now;
                self.cores[idx].ready_at = until;
            }
            AccessEffect::SelfAborted => {
                // ready_at was set by the abort path; nothing else to do.
            }
        }
    }

    /// Whether a cache hit still needs an overflow-structure conflict check
    /// (word-granularity configurations only): the cached copy proves the
    /// block was fetched conflict-free, but an overflowed transaction may
    /// own *this word* if the access is the first touch of it.
    pub(crate) fn hit_needs_overflow_check(
        &self,
        idx: usize,
        block: PhysBlock,
        word: WordIdx,
        kind: AccessKind,
        tx: Option<TxId>,
    ) -> bool {
        let Some(tx) = tx else {
            // Non-transactional copies are invalidated whenever a writer
            // upgrades, so a non-transactional hit is always current.
            return false;
        };
        // Thread migration can leave this transaction's *own* tagged copies
        // on other cores; a write through a fresh local copy must reclaim
        // them via a coherence transaction (which displaces them into the
        // overflow structures), or the transaction forks its own line.
        if self.cfg.kernel.migrate_on_cs
            && peek_remote_tx_use(&self.caches, idx, block).any(|r| r.meta.tx == tx)
        {
            return true;
        }
        if !self.kind.granularity().word_in_cache() {
            return false;
        }
        // Filters for the common case: a hit needs checking only if some
        // *other* transaction still holds a preserved word-disjoint copy of
        // the block in another cache, or has overflowed state for it (the
        // §4.6 per-block overflow bit).
        let remote_tx_copy = peek_remote_tx_use(&self.caches, idx, block).any(|r| r.meta.tx != tx);
        if !remote_tx_copy {
            match &self.backend {
                Backend::Ptm(p) => {
                    if !p.has_overflows() || !p.block_overflowed(block, Some(tx)) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        match self.caches[idx].line(block).and_then(|l| l.tx_meta()) {
            Some(m) if m.tx == tx => match kind {
                // Words this transaction already touched were checked when
                // first accessed; a conflicting access since then would have
                // snooped this line and resolved against it.
                AccessKind::Read => !(m.read_words.get(word) || m.write_words.get(word)),
                AccessKind::Write => !m.write_words.get(word),
            },
            _ => true,
        }
    }

    /// Records page-touch statistics for one memory op, memoized per core:
    /// consecutive ops on the same page skip the hash-set insert entirely.
    #[inline]
    pub(crate) fn note_page_touch(&mut self, idx: usize, pid: ProcessId, vpn: Vpn, tx_write: bool) {
        let key = (pid, vpn);
        if self.cores[idx].last_stat_page != Some(key) {
            self.stats.pages.insert(key);
            self.cores[idx].last_stat_page = Some(key);
        }
        if tx_write && self.cores[idx].last_tx_write_page != Some(key) {
            self.stats.tx_write_pages.insert(key);
            self.cores[idx].last_tx_write_page = Some(key);
        }
    }

    /// The transaction context of a core, if it is inside one *and* the mode
    /// is transactional.
    pub(crate) fn tx_context(&self, idx: usize) -> Option<TxId> {
        if self.kind.is_transactional() {
            self.cores[idx].prog.cur_tx()
        } else {
            None
        }
    }

    /// Consults core `idx`'s TLB for `(pid, vpn)`.
    pub(crate) fn tlb_lookup(&self, idx: usize, pid: ProcessId, vpn: Vpn) -> Option<FrameId> {
        let tlb = &self.cores[idx].tlb;
        if tlb.is_empty() {
            return None;
        }
        let slot = vpn.0 as usize % tlb.len();
        tlb[slot]
            .filter(|e| e.pid == pid && e.vpn == vpn)
            .map(|e| e.frame)
    }

    /// Installs a translation in core `idx`'s TLB (evicting whatever shared
    /// its direct-mapped slot).
    fn tlb_insert(&mut self, idx: usize, pid: ProcessId, vpn: Vpn, frame: FrameId) {
        let tlb = &mut self.cores[idx].tlb;
        if tlb.is_empty() {
            return;
        }
        let slot = vpn.0 as usize % tlb.len();
        tlb[slot] = Some(TlbEntry { pid, vpn, frame });
    }

    /// Invalidates every core's TLB entry for `(pid, vpn)` — the
    /// inter-processor shootdown the OS broadcasts before it changes a
    /// mapping. Called automatically on swap-out; tests that remap pages
    /// directly through [`Machine::kernel_mut`] must call it themselves.
    pub fn tlb_shootdown(&mut self, pid: ProcessId, vpn: Vpn) {
        // A mapping is dying: speculated translations may be stale.
        self.exec_log.poison_all();
        for core in &mut self.cores {
            if core.tlb.is_empty() {
                continue;
            }
            let slot = vpn.0 as usize % core.tlb.len();
            if core.tlb[slot].is_some_and(|e| e.pid == pid && e.vpn == vpn) {
                core.tlb[slot] = None;
                self.stats.tlb_shootdowns += 1;
            }
        }
    }

    pub(crate) fn access(
        &mut self,
        idx: usize,
        now: Cycle,
        va: VirtAddr,
        kind: AccessKind,
    ) -> AccessEffect {
        let pid = self.cores[idx].prog.pid();

        // 1. Translate: the core's own TLB first (a hit bypasses the kernel
        //    entirely — same zero cost as a kernel-TLB hit, but no kernel
        //    work on the host either), then the kernel (TLB, page tables,
        //    demand paging) on a miss.
        let (pa, mut latency) = if let Some(frame) = self.tlb_lookup(idx, pid, va.vpn()) {
            self.stats.tlb_hits += 1;
            (PhysAddr::from_frame(frame, va.page_offset()), 0)
        } else {
            self.stats.tlb_misses += 1;
            match self.kernel.translate(pid, va, &mut self.mem) {
                Translation::Resident {
                    pa,
                    cost,
                    allocated,
                } => {
                    if let Some(frame) = allocated {
                        if let Backend::Ptm(p) = &mut self.backend {
                            p.on_page_alloc(frame);
                        }
                        self.rev_map.insert(frame, (pid, va.vpn()));
                    }
                    self.tlb_insert(idx, pid, va.vpn(), pa.frame());
                    (pa, cost)
                }
                Translation::SwappedOut { slot, cost } => {
                    // Swap the page (and, under PTM, its shadow) back in,
                    // then retry the access after the fault latency. The
                    // retry's translation installs the new TLB entry.
                    // Swap-in rewrites page tables and moves page data:
                    // everything speculated from the old state is stale.
                    self.exec_log.poison_all();
                    let frame = match &mut self.backend {
                        Backend::Ptm(_) => match self.ptm_swap_in_with_recovery(idx, slot, now) {
                            Ok(f) => {
                                self.kernel.complete_swap_in(pid, va.vpn(), f);
                                f
                            }
                            Err(effect) => return effect,
                        },
                        _ => {
                            match self
                                .kernel
                                .plain_swap_in(pid, va.vpn(), slot, &mut self.mem)
                            {
                                Some(f) => f,
                                // Pool empty (memory-squeeze fault): wait for
                                // frames to come back, then re-fault.
                                None => {
                                    return AccessEffect::Stall(
                                        now + cost.max(self.cfg.retry_poll),
                                    );
                                }
                            }
                        }
                    };
                    self.rev_map.insert(frame, (pid, va.vpn()));
                    return AccessEffect::Stall(now + cost + self.swap_in_delay);
                }
                Translation::OutOfMemory { cost } => {
                    // A minor fault found the frame pool empty. Recover by
                    // aborting the youngest live transaction (its shadow
                    // pages and buffers come back to the pool), then let the
                    // retry take the minor fault again.
                    self.exec_log.poison_all();
                    let requester = self.tx_context(idx);
                    if let Some(victim) = self.youngest_live_tx(requester) {
                        self.abort_tx(victim, now);
                        if let Backend::Ptm(p) = &mut self.backend {
                            p.note_exhaustion_abort();
                        }
                    }
                    return AccessEffect::Stall(now + cost.max(self.cfg.retry_poll));
                }
            }
        };
        let block = pa.block();
        let word = pa.word_in_block();
        let tx = self.tx_context(idx);
        let is_write = kind == AccessKind::Write;

        if trace_word() == Some(va.word_aligned().0) {
            eprintln!(
                "[ptm-trace] core {idx} {tx:?} {kind:?} {va} probe={:?} now={now}",
                self.caches[idx].probe(block)
            );
        }
        // 2. Cache probe.
        match self.caches[idx].probe(block) {
            ProbeResult::Hit(hit) => {
                latency += self.caches[idx].hit_latency(hit);
                self.caches[idx].l2_stats_mut().hits += 1;

                // After a thread migration the local cache may hold lines
                // tagged by a *different* transaction (the thread that used
                // to run here). Resolve any conflict, displace the line into
                // the overflow structures, and retry the access.
                let foreign = self.caches[idx]
                    .line(block)
                    .and_then(|l| l.tx_meta())
                    .filter(|m| Some(m.tx) != tx)
                    .copied();
                if let Some(fm) = foreign {
                    if self.is_live_tx(fm.tx) {
                        let word_mode = self.kind.granularity().word_in_cache();
                        let conflicts = match (kind, word_mode) {
                            (AccessKind::Read, false) => fm.write,
                            (AccessKind::Read, true) => fm.write_words.get(word),
                            (AccessKind::Write, false) => fm.read || fm.write,
                            (AccessKind::Write, true) => {
                                fm.read_words.get(word) || fm.write_words.get(word)
                            }
                        };
                        if conflicts {
                            let requester_wins =
                                tx.map(|me| me.wins_against(fm.tx)).unwrap_or(true);
                            if requester_wins {
                                self.abort_tx(fm.tx, now);
                            } else {
                                self.abort_tx(tx.expect("loser is transactional"), now);
                                return AccessEffect::SelfAborted;
                            }
                        }
                    }
                    // Displace whatever survives (the foreign line, or
                    // nothing if the abort already invalidated it).
                    if let Some(line) = self.caches[idx].invalidate(block) {
                        if line.is_transactional() && self.handle_eviction(line, now, tx) {
                            return AccessEffect::SelfAborted;
                        }
                    }
                    return match self.access(idx, now, va, kind) {
                        AccessEffect::Done(extra) => AccessEffect::Done(latency + extra),
                        other => other,
                    };
                }

                let state = self.caches[idx].line(block).expect("hit").state();
                if is_write && !state.allows_silent_write() {
                    // Upgrade: a coherence transaction with full conflict
                    // checking.
                    match self.miss_conflicts_and_supply(idx, now, pid, va, block, word, kind, true)
                    {
                        Ok((extra, _outcome)) => latency += extra,
                        Err(effect) => return effect,
                    }
                } else if self.hit_needs_overflow_check(idx, block, word, kind, tx) {
                    // Word-granularity configurations: a silent hit may touch
                    // a word some *overflowed* transaction wrote — the block
                    // was displaced to the overflow structures by a word-
                    // disjoint access, so the cached copy grants no rights to
                    // this word. Consult the VTS like an ownership upgrade.
                    match self.miss_conflicts_and_supply(idx, now, pid, va, block, word, kind, true)
                    {
                        Ok((extra, _outcome)) => latency += extra,
                        Err(effect) => return effect,
                    }
                }
                let line = self.caches[idx].touch_mut(block).expect("hit");
                if is_write {
                    line.set_state(ptm_cache::Moesi::Modified);
                }
                if let Some(tx) = tx {
                    let meta = line.tx_meta_for(tx);
                    match kind {
                        AccessKind::Read => meta.record_read(word),
                        AccessKind::Write => {
                            meta.record_read(word);
                            meta.record_write(word);
                        }
                    }
                }
                AccessEffect::Done(latency)
            }
            ProbeResult::Miss => {
                self.caches[idx].l2_stats_mut().misses += 1;
                let (extra, outcome) = match self
                    .miss_conflicts_and_supply(idx, now, pid, va, block, word, kind, false)
                {
                    Ok(v) => v,
                    Err(effect) => return effect,
                };
                latency += extra;

                // Fill the line, tag it, and spill the victim.
                let mut line = CacheLine::new(block, outcome.new_state);
                if let Some(tx) = tx {
                    let meta = line.tx_meta_for(tx);
                    match kind {
                        AccessKind::Read => meta.record_read(word),
                        AccessKind::Write => {
                            meta.record_read(word);
                            meta.record_write(word);
                        }
                    }
                }
                if is_write {
                    line.set_state(ptm_cache::Moesi::Modified);
                }
                let victim = self.caches[idx].fill(line);
                if let Some(ev) = victim {
                    if self.handle_eviction(ev.line, now, tx) {
                        return AccessEffect::SelfAborted;
                    }
                }
                AccessEffect::Done(latency)
            }
        }
    }

    /// Conflict detection + arbitration + MOESI supply for a miss/upgrade.
    /// Returns the added latency and the supply outcome, or the control
    /// effect when the access must stall or the requester aborted.
    #[allow(clippy::too_many_arguments)]
    fn miss_conflicts_and_supply(
        &mut self,
        idx: usize,
        now: Cycle,
        pid: ProcessId,
        va: VirtAddr,
        block: PhysBlock,
        word: WordIdx,
        kind: AccessKind,
        upgrade: bool,
    ) -> Result<(Cycle, ptm_cache::SupplyOutcome), AccessEffect> {
        let tx = self.tx_context(idx);
        let is_write = kind == AccessKind::Write;
        let word_mode = self.kind.granularity().word_in_cache();

        // a. Overflow-structure conflict check (only when anything has
        //    overflowed — the paper's global overflow flag).
        let mut deny_exclusive = false;
        let mut conflicts: Vec<TxId> = Vec::new();
        let mut check_done = now;
        if self.backend.has_overflows() {
            match &mut self.backend {
                Backend::Ptm(p) => {
                    let outcome = p.check_conflict(tx, block, word, kind, now, &mut self.bus);
                    if let Some(until) = outcome.stall_until {
                        return Err(AccessEffect::Stall(until));
                    }
                    deny_exclusive = outcome.deny_exclusive;
                    conflicts = outcome.conflicts;
                    check_done = check_done.max(outcome.done_at);
                }
                Backend::Vtm(v) => {
                    let outcome = v.check_conflict(tx, (pid, va), word, kind, now, &mut self.bus);
                    if let Some(until) = outcome.stall_until {
                        return Err(AccessEffect::Stall(until));
                    }
                    deny_exclusive = outcome.deny_exclusive;
                    conflicts = outcome.conflicts;
                    check_done = check_done.max(outcome.done_at);
                }
                Backend::LogTm(l) => {
                    // Stall-preferring resolution against sticky state.
                    use crate::logtm::Resolution;
                    let (res, owners) = l.resolve(tx, block, is_write);
                    match (res, tx) {
                        (Resolution::Proceed, _) => {}
                        (Resolution::Stall, _) => {
                            self.stats.stall_cycles += self.cfg.retry_poll;
                            return Err(AccessEffect::Stall(now + self.cfg.retry_poll));
                        }
                        (Resolution::SelfAbort, Some(me)) => {
                            self.abort_tx(me, now);
                            return Err(AccessEffect::SelfAborted);
                        }
                        (Resolution::SelfAbort, None) => {
                            for o in owners {
                                self.abort_tx(o, now);
                            }
                        }
                        (Resolution::AbortOwners(losers), _) => {
                            for o in losers {
                                self.abort_tx(o, now);
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        // b. In-cache conflict check via the snoop — one pass over the
        //    remote caches collects the conflicting owners and, for the
        //    word-granularity write path, whether any *other* writer's line
        //    is cached (the contested-block test reuses the same snoop).
        let mut other_cached_writer = false;
        for r in peek_remote_tx_use(&self.caches, idx, block) {
            if Some(r.meta.tx) == tx {
                continue;
            }
            other_cached_writer |= r.meta.write;
            let hit = match (kind, word_mode) {
                (AccessKind::Read, false) => r.meta.write,
                (AccessKind::Read, true) => r.meta.write_words.get(word),
                (AccessKind::Write, false) => r.meta.read || r.meta.write,
                (AccessKind::Write, true) => {
                    r.meta.read_words.get(word) || r.meta.write_words.get(word)
                }
            };
            if hit {
                conflicts.push(r.meta.tx);
            }
        }
        conflicts.sort();
        conflicts.dedup();
        conflicts.retain(|c| self.is_live_tx(*c));

        // Word-granularity bookkeeping: a write that finds another writer's
        // live transactional state on this block (cached or overflowed)
        // makes the block *contested* — even when the words are disjoint and
        // no conflict arises. Contested blocks lose the whole-block /
        // toggle fast path, whose snapshots could otherwise go stale.
        if is_write && word_mode {
            if let Backend::Ptm(p) = &mut self.backend {
                let other_overflow_writer =
                    p.overflow_writers(block).into_iter().any(|w| Some(w) != tx);
                if other_cached_writer || other_overflow_writer {
                    p.mark_contested(block);
                }
            }
        }

        // c. Arbitration. PTM/VTM: the oldest transaction always wins
        //    (§4.4.3); non-transactional accesses always win (§2.3.3).
        //    LogTM instead *stalls* the requester (NACK + retry) unless its
        //    possible-cycle heuristic demands a self-abort.
        if !conflicts.is_empty() {
            if let Backend::LogTm(l) = &mut self.backend {
                use crate::logtm::Resolution;
                match l.arbitrate(tx, &conflicts) {
                    Resolution::Proceed => unreachable!("conflicts are non-empty"),
                    Resolution::Stall => {
                        self.stats.stall_cycles += self.cfg.retry_poll;
                        return Err(AccessEffect::Stall(now + self.cfg.retry_poll));
                    }
                    Resolution::SelfAbort => {
                        let me = tx.expect("self-abort is transactional");
                        self.abort_tx(me, now);
                        return Err(AccessEffect::SelfAborted);
                    }
                    Resolution::AbortOwners(losers) => {
                        for loser in losers {
                            self.abort_tx(loser, now);
                        }
                    }
                }
            } else {
                let requester_wins = match tx {
                    None => true,
                    Some(me) => conflicts.iter().all(|c| me.wins_against(*c)),
                };
                if requester_wins {
                    for loser in conflicts {
                        self.abort_tx(loser, now);
                    }
                } else {
                    let me = tx.expect("loser is transactional");
                    self.abort_tx(me, now);
                    return Err(AccessEffect::SelfAborted);
                }
            }
        }

        // d. Remote readers of this block (in-cache, non-conflicting) also
        //    deny exclusivity implicitly through `sharers_remaining`.
        //
        //    In the word-granularity configurations, remote transactional
        //    lines with word-disjoint writes are *preserved* (sub-block
        //    ownership); the hit path compensates by conflict-checking any
        //    hit on a word the line's own masks do not cover.
        //
        //    A supply can invalidate, downgrade or displace the block in any
        //    other cache — if a core with a pending speculative run holds
        //    it, that run was computed against state this step changes.
        if self.exec_log.active {
            for c in 0..self.caches.len() {
                if c != idx && self.exec_log.is_pending(c) && self.caches[c].line(block).is_some() {
                    self.exec_log.poison_core(c);
                }
            }
        }
        let mut outcome = supply(
            &mut self.caches,
            idx,
            block,
            is_write,
            !deny_exclusive,
            word_mode,
            tx,
        );

        // e. Displaced remote transactional lines overflow. Taking the list
        //    (callers never read it from the outcome) avoids cloning the
        //    lines just to iterate them.
        for line in std::mem::take(&mut outcome.displaced_tx) {
            if self.handle_eviction(line, now, tx) {
                return Err(AccessEffect::SelfAborted);
            }
        }

        // f. Latency: the snoop round, plus the memory fetch when no cache
        //    supplied the data, overlapped with the conflict check.
        let mut done = self.bus.onchip_transfer(now);
        if outcome.source == DataSource::Memory && !upgrade {
            // PTM fetches from home or shadow per the Figure 3 XOR rule —
            // same latency either way, but keep the selection observable.
            if let Backend::Ptm(p) = &self.backend {
                let _ = p.fetch_frame(block);
            }
            done = self.bus.mem_access(done);
        }
        done = done.max(check_done);
        Ok((done.saturating_sub(now), outcome))
    }

    pub(crate) fn is_live_tx(&self, tx: TxId) -> bool {
        match &self.backend {
            Backend::Ptm(p) => p.is_live(tx),
            Backend::Vtm(v) => v.is_live(tx),
            Backend::LogTm(l) => l.is_live(tx),
            _ => false,
        }
    }

    /// The *youngest* live transaction other than `exclude` — the
    /// exhaustion-recovery victim (youngest has done the least work, and
    /// aborting it can never abort an older conflict winner). Sorted before
    /// selection: `live_transactions()` iterates a hash map.
    pub(crate) fn youngest_live_tx(&self, exclude: Option<TxId>) -> Option<TxId> {
        let mut live = match &self.backend {
            Backend::Ptm(p) => p.tstate().live_transactions(),
            _ => return None,
        };
        live.sort();
        live.into_iter().rfind(|t| Some(*t) != exclude)
    }

    /// PTM swap-in with exhaustion recovery: aborts youngest-first until the
    /// pool covers the home+shadow burst. Falls back to aborting the
    /// requester itself, and to a plain stall (frames may return later — a
    /// memory-squeeze fault releases its hostages) when even that cannot
    /// free a frame.
    fn ptm_swap_in_with_recovery(
        &mut self,
        idx: usize,
        slot: ptm_types::SwapSlot,
        now: Cycle,
    ) -> Result<FrameId, AccessEffect> {
        let requester = self.tx_context(idx);
        let mut recovered = false;
        let mut retries: u32 = 0;
        loop {
            let attempt = match &mut self.backend {
                Backend::Ptm(p) => p.on_swap_in(slot, &mut self.mem, &mut self.kernel.swap),
                _ => unreachable!("PTM swap-in"),
            };
            match attempt {
                Ok(frame) => {
                    if recovered {
                        if let Backend::Ptm(p) = &mut self.backend {
                            p.note_exhaustion_retry();
                        }
                    }
                    return Ok(frame);
                }
                Err(e) => {
                    retries += 1;
                    if retries > MAX_EXHAUSTION_RETRIES {
                        panic!(
                            "swap-in exhaustion recovery did not converge after {MAX_EXHAUSTION_RETRIES} \
                             abort-and-retry rounds (slot={slot:?} requester={requester:?} last={e:?} \
                             free_frames={}): every abort must shrink the live set, so this is a \
                             simulator bug, not resource pressure",
                            self.mem.free_frames()
                        );
                    }
                    if let Some(victim) = self.youngest_live_tx(requester) {
                        self.abort_tx(victim, now);
                        if let Backend::Ptm(p) = &mut self.backend {
                            p.note_exhaustion_abort();
                        }
                        recovered = true;
                        continue;
                    }
                    if let Some(me) = requester {
                        if self.is_live_tx(me) {
                            self.abort_tx(me, now);
                            if let Backend::Ptm(p) = &mut self.backend {
                                p.note_exhaustion_abort();
                            }
                            return Err(AccessEffect::SelfAborted);
                        }
                    }
                    return Err(AccessEffect::Stall(now + self.cfg.retry_poll));
                }
            }
        }
    }

    /// Aborts `tx` wherever it runs: cache invalidation, buffer discard,
    /// backend processing (Copy-PTM restore!), program rewind, backoff.
    pub(crate) fn abort_tx(&mut self, tx: TxId, now: Cycle) {
        if trace_word().is_some() {
            eprintln!("[ptm-trace] abort {tx} now={now}");
        }
        let owner = *self.tx_owner.get(&tx).expect("abort of unknown tx");
        // A non-overflowed abort under block granularity only touches the
        // owner: tags swept, lazy buffers discarded (never visible), and —
        // LogTM only — logged words rolled back in place. The owner's run is
        // dead either way, but other cores' runs survive: mark each rolled
        // back word as an ESTIMATE so speculated reads of the undone values
        // fail validation precisely. Everything else (overflow structures,
        // word-granularity mirror pointers) invalidates wholesale.
        let overflowed = match &self.backend {
            Backend::Ptm(p) => p.tx_has_overflow(tx),
            Backend::Vtm(v) => v.tx_has_overflow(tx),
            _ => false,
        };
        let precise =
            self.exec_log.active && !self.kind.granularity().word_in_cache() && !overflowed;
        if precise {
            self.exec_log.poison_core(owner);
            if let Backend::LogTm(l) = &self.backend {
                // Capture before `abort` consumes the log below.
                for pa in l.log_addrs(tx) {
                    self.exec_log
                        .note_estimate(pa.block(), pa.word_in_block(), owner);
                }
            }
        } else {
            self.exec_log.poison_all();
        }
        self.ready_dirty.push(owner);
        // Migration can spread a transaction's lines across cores: sweep
        // every cache.
        for cache in &mut self.caches {
            abort_tx_lines(cache, tx);
        }
        let _ = self.spec.drain_tx(tx);
        let done = match &mut self.backend {
            Backend::Ptm(p) => {
                p.abort(tx, &mut self.mem, &mut self.kernel.swap, now, &mut self.bus)
            }
            Backend::Vtm(v) => v.abort(tx, now, &mut self.bus),
            Backend::LogTm(l) => l.abort(tx, &mut self.mem, now, &mut self.bus),
            _ => unreachable!("aborts only in transactional modes"),
        };
        // Durable mode: void the transaction's undo/redo records with an
        // abort record (write-behind — its cost hides under the penalty).
        if let Some(d) = self.durable.as_mut() {
            let _ = d.abort_tx(tx, now);
        }
        let attempts = u64::from(self.cores[owner].prog.attempts());
        self.cores[owner].prog.rewind();
        let penalty = self.cfg.abort_penalty * (attempts + 1);
        self.cores[owner].ready_at = self.cores[owner].ready_at.max(done + penalty);
        self.stats.aborts += 1;
    }

    /// Spills an evicted (or coherence-displaced) line into the overflow
    /// structures / writeback path. `requester` is the transaction whose
    /// access displaced the line; it is only ever aborted as the *last
    /// resort* of exhaustion recovery, signalled by the `true` return (the
    /// caller must then unwind with [`AccessEffect::SelfAborted`]).
    pub(crate) fn handle_eviction(
        &mut self,
        line: CacheLine,
        now: Cycle,
        requester: Option<TxId>,
    ) -> bool {
        if let Some(w) = trace_word() {
            if line.block().addr().page_offset() == (w as usize % 4096) & !63 {
                eprintln!(
                    "[ptm-trace] evict {} meta={:?} now={now}",
                    line.block(),
                    line.tx_meta()
                );
            }
        }
        if let Some(meta) = line.tx_meta().copied() {
            if !self.is_live_tx(meta.tx) {
                // A line of an already-finished transaction (tags are lazily
                // cleared only on its own core); drop it.
                return false;
            }
            // A live transactional eviction creates or mutates overflow
            // structures (and may abort a bystander): the frozen backend
            // lookups speculation depends on are about to change.
            self.exec_log.poison_all();
            // wd:cache (§6.3): coherence tracks words, but the overflowed
            // structures track one writer per block — evicting a dirty
            // block that a different live transaction already
            // write-overflowed forces an abort.
            let g = self.kind.granularity();
            if meta.write && g.word_in_cache() && !g.word_in_memory() {
                if let Backend::Ptm(p) = &self.backend {
                    let other = p
                        .overflow_writers(line.block())
                        .into_iter()
                        .find(|w| *w != meta.tx && self.is_live_tx(*w));
                    if let Some(w) = other {
                        // The requester wins outright; between bystanders,
                        // the older transaction wins.
                        let victim = if Some(w) == requester {
                            meta.tx
                        } else if Some(meta.tx) == requester || meta.tx.is_older_than(w) {
                            w
                        } else {
                            meta.tx
                        };
                        self.abort_tx(victim, now);
                        if victim == meta.tx {
                            // The evicted line died with its transaction.
                            return false;
                        }
                    }
                }
            }
            if let Backend::LogTm(l) = &mut self.backend {
                // Eager versioning keeps no buffered data: the eviction only
                // leaves sticky conflict state behind.
                l.on_tx_eviction(&meta, line.block());
                return false;
            }
            let spec = if meta.write {
                let s = self.spec.take(meta.tx, line.block());
                assert!(
                    s.is_some(),
                    "dirty tx line without a spec buffer: tx={} block={} state={} requester={:?} live={}",
                    meta.tx,
                    line.block(),
                    line.state(),
                    requester,
                    self.is_live_tx(meta.tx),
                );
                s
            } else {
                None
            };
            // Another live transaction may still hold a preserved
            // word-disjoint write copy of this block in its cache.
            let in_cache_cowriter = self
                .caches
                .iter()
                .filter_map(|h| h.line(line.block()))
                .filter_map(|l| l.tx_meta())
                .any(|m| m.write && m.tx != meta.tx);
            // Durable mode (PTM): the first time a transaction's dirty
            // write overflows a block, its committed pre-image rides the
            // log as an undo payload (deduplicated per (tx, block) inside
            // the log). Captured *before* the overflow mutates anything.
            if meta.write && self.durable.is_some() && matches!(self.backend, Backend::Ptm(_)) {
                if let Some(&(pid, vpn)) = self.rev_map.get(&line.block().frame()) {
                    let payload = UndoPayload {
                        pid,
                        vpn,
                        block: line.block().index(),
                        data: self.committed_block_snapshot(line.block()),
                    };
                    if let Some(d) = self.durable.as_mut() {
                        let _ = d.append_undo(meta.tx, line.block(), payload, now);
                    }
                }
            }
            match &mut self.backend {
                Backend::Ptm(_) => {
                    // Overflow processing can exhaust the frame pool (shadow
                    // allocation) or the TAV arena. Recover by aborting the
                    // youngest live bystander and retrying; a failed
                    // `on_tx_eviction` is side-effect free.
                    let mut recovered = false;
                    let mut retries: u32 = 0;
                    loop {
                        let attempt = match &mut self.backend {
                            Backend::Ptm(p) => p.on_tx_eviction(
                                &meta,
                                line.block(),
                                spec.as_ref(),
                                in_cache_cowriter,
                                &mut self.mem,
                                now,
                                &mut self.bus,
                            ),
                            _ => unreachable!("checked above"),
                        };
                        match attempt {
                            Ok(_) => {
                                if recovered {
                                    if let Backend::Ptm(p) = &mut self.backend {
                                        p.note_exhaustion_retry();
                                    }
                                }
                                return false;
                            }
                            Err(e) => {
                                retries += 1;
                                if retries > MAX_EXHAUSTION_RETRIES {
                                    panic!(
                                        "eviction exhaustion recovery did not converge after \
                                         {MAX_EXHAUSTION_RETRIES} abort-and-retry rounds \
                                         (block={} owner={} requester={requester:?} last={e:?} \
                                         free_frames={}): every abort must shrink the live set, \
                                         so this is a simulator bug, not resource pressure",
                                        line.block(),
                                        meta.tx,
                                        self.mem.free_frames()
                                    );
                                }
                                // Victims: youngest live transaction that is
                                // neither the line's owner nor the requester.
                                let victim = {
                                    let mut live = match &self.backend {
                                        Backend::Ptm(p) => p.tstate().live_transactions(),
                                        _ => unreachable!("checked above"),
                                    };
                                    live.sort();
                                    live.into_iter()
                                        .rfind(|t| *t != meta.tx && Some(*t) != requester)
                                };
                                let victim = match victim {
                                    Some(v) => v,
                                    None if Some(meta.tx) != requester => {
                                        // Abort the line's owner: the line
                                        // dies with it, nothing to overflow.
                                        self.abort_tx(meta.tx, now);
                                        if let Backend::Ptm(p) = &mut self.backend {
                                            p.note_exhaustion_abort();
                                        }
                                        return false;
                                    }
                                    None => {
                                        // The requester owns the line and is
                                        // the only live transaction left.
                                        self.abort_tx(meta.tx, now);
                                        if let Backend::Ptm(p) = &mut self.backend {
                                            p.note_exhaustion_abort();
                                        }
                                        return true;
                                    }
                                };
                                self.abort_tx(victim, now);
                                if let Backend::Ptm(p) = &mut self.backend {
                                    p.note_exhaustion_abort();
                                }
                                recovered = true;
                            }
                        }
                    }
                }
                Backend::Vtm(v) => {
                    let (pid, vpn) = *self
                        .rev_map
                        .get(&line.block().frame())
                        .expect("reverse mapping for evicted block");
                    let vaddr = vpn.block_addr(line.block().index());
                    let old = self.mem.read_block(line.block());
                    v.on_tx_eviction(&meta, (pid, vaddr), spec.as_ref(), old, now, &mut self.bus);
                }
                _ => unreachable!("tx lines only exist in transactional modes"),
            }
        } else if line.state().is_dirty() {
            // Non-transactional dirty writeback.
            let _ = self.bus.mem_access(now);
            if let Backend::Ptm(p) = &mut self.backend {
                if p.on_nontx_dirty_writeback(line.block(), &mut self.mem) {
                    // Lazy shadow migration moved page data and flipped the
                    // select bit: committed-frame lookups are stale.
                    self.exec_log.poison_all();
                }
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Functional data movement
    // ------------------------------------------------------------------

    pub(crate) fn read_word_functional(
        &self,
        tx: Option<TxId>,
        pid: ProcessId,
        va: VirtAddr,
        pa: PhysAddr,
    ) -> u32 {
        let block = pa.block();
        let word = pa.word_in_block();
        if let Some(tx) = tx {
            // Serve only words this transaction *wrote* from its buffer; the
            // snapshot's other words can go stale under word-granularity
            // conflict detection (a disjoint co-writer may commit between
            // the snapshot and this read). The fallthrough view below is
            // always current.
            if let Some(v) = self.spec.read_own_written_word(tx, block, word) {
                return v;
            }
            match &self.backend {
                Backend::Ptm(p) => {
                    let f = p.tx_view_frame(tx, block, word);
                    self.mem
                        .read_word(PhysAddr::from_frame(f, pa.page_offset()))
                }
                Backend::Vtm(v) => v
                    .read_spec_word(tx, (pid, va), word)
                    .unwrap_or_else(|| self.mem.read_word(pa)),
                // Eager versioning: memory already holds the speculative
                // value (isolation comes from conflict detection alone).
                Backend::LogTm(_) => self.mem.read_word(pa),
                _ => unreachable!("tx context implies a TM backend"),
            }
        } else {
            match &self.backend {
                Backend::Ptm(p) => {
                    let f = p.committed_frame(block);
                    self.mem
                        .read_word(PhysAddr::from_frame(f, pa.page_offset()))
                }
                _ => self.mem.read_word(pa),
            }
        }
    }

    /// Returns the extra cycles the store owes the core — non-zero only for
    /// WAL-forced word-undo appends on durable eager-versioning machines.
    fn write_word_functional(
        &mut self,
        tx: Option<TxId>,
        pid: ProcessId,
        va: VirtAddr,
        pa: PhysAddr,
        value: u32,
        now: Cycle,
    ) -> Cycle {
        let block = pa.block();
        let word = pa.word_in_block();
        if let Some(w) = trace_word() {
            if va.block_aligned().0 == w & !63 {
                eprintln!(
                    "[ptm-trace] fwrite {tx:?} {va} = {value} (buffered={})",
                    tx.map(|t| self.spec.has(t, block)).unwrap_or(false)
                );
            }
        }
        if let Some(tx) = tx {
            if matches!(self.backend, Backend::LogTm(_)) {
                // Eager versioning: log the old value, update in place.
                // With a durable log attached, the pre-image is write-ahead
                // logged and forced first — memory must never get ahead of
                // the undo record it takes to roll this store back.
                let old = self.mem.read_word(pa);
                let wal_latency = match self.durable.as_mut() {
                    Some(d) => d.append_word_undo(tx, pa, old, now),
                    None => 0,
                };
                if let Backend::LogTm(l) = &mut self.backend {
                    l.log_write(tx, pa, old);
                }
                self.mem.write_word(pa, value);
                return wal_latency;
            }
            let snapshot = if self.spec.has(tx, block) {
                None
            } else {
                Some(self.tx_block_snapshot(tx, pid, va, block))
            };
            self.spec
                .write_word(tx, block, word, value, || snapshot.expect("fresh buffer"));
        } else {
            match &self.backend {
                Backend::Ptm(p) => {
                    let f = p.committed_frame(block);
                    let mirror = p.mirror_location(block, None);
                    self.mem
                        .write_word(PhysAddr::from_frame(f, pa.page_offset()), value);
                    // Word-granularity: keep live speculative pages current
                    // for words their owners never wrote (a word-disjoint
                    // non-transactional write does not conflict there).
                    if let Some(m) = mirror {
                        self.mem
                            .write_word(PhysAddr::from_frame(m.frame(), pa.page_offset()), value);
                    }
                }
                _ => self.mem.write_word(pa, value),
            }
        }
        0
    }

    /// The transaction's consistent view of a whole block (used to seed a
    /// fresh speculative buffer).
    pub(crate) fn tx_block_snapshot(
        &self,
        tx: TxId,
        pid: ProcessId,
        va: VirtAddr,
        block: PhysBlock,
    ) -> [u8; BLOCK_SIZE] {
        match &self.backend {
            Backend::Ptm(p) => {
                let mut out = [0u8; BLOCK_SIZE];
                let base_off = block.addr().page_offset();
                for w in 0..(BLOCK_SIZE / WORD_SIZE) as u8 {
                    let f = p.tx_view_frame(tx, block, WordIdx(w));
                    let pa = PhysAddr::from_frame(f, base_off + w as usize * WORD_SIZE);
                    let v = self.mem.read_word(pa);
                    out[w as usize * WORD_SIZE..(w as usize + 1) * WORD_SIZE]
                        .copy_from_slice(&v.to_le_bytes());
                }
                out
            }
            Backend::Vtm(v) => {
                let mut out = self.mem.read_block(block);
                let va_block = va.block_aligned();
                for w in 0..(BLOCK_SIZE / WORD_SIZE) as u8 {
                    if let Some(val) = v.read_spec_word(tx, (pid, va_block), WordIdx(w)) {
                        if v.tx_wrote_overflowed(tx, (pid, va_block)) {
                            out[w as usize * WORD_SIZE..(w as usize + 1) * WORD_SIZE]
                                .copy_from_slice(&val.to_le_bytes());
                        }
                    }
                }
                out
            }
            _ => self.mem.read_block(block),
        }
    }

    /// The committed (non-transactional) view of a whole block — what a
    /// freshly begun transaction with no buffered history observes. Seeds
    /// speculative buffers for transactions the epoch executor itself
    /// begins, whose `TxId` does not exist yet at speculation time.
    pub(crate) fn committed_block_snapshot(&self, block: PhysBlock) -> [u8; BLOCK_SIZE] {
        match &self.backend {
            Backend::Ptm(p) => self
                .mem
                .read_block(block.on_frame(p.committed_frame(block))),
            _ => self.mem.read_block(block),
        }
    }

    // ------------------------------------------------------------------
    // Introspection for tests and the reference executor
    // ------------------------------------------------------------------

    /// Reads the committed value of a word as the coherent, non-speculative
    /// world would see it (used by the serial reference check).
    pub fn read_committed(&self, pid: ProcessId, va: VirtAddr) -> u32 {
        if let Some(frame) = self.kernel.frame_of(pid, va.vpn()) {
            let pa = PhysAddr::from_frame(frame, va.page_offset());
            return match &self.backend {
                Backend::Ptm(p) => {
                    let f = p.committed_frame(pa.block());
                    self.mem
                        .read_word(PhysAddr::from_frame(f, pa.page_offset()))
                }
                _ => self.mem.read_word(pa),
            };
        }
        // Swapped-out pages are still part of the committed state: their
        // home image lives in the swap store, and for PTM the SIT says
        // whether a block's committed version was left in the shadow image
        // instead (§3.5).
        let Some(slot) = self.kernel.swap_slot_of(pid, va.vpn()) else {
            return 0; // Never mapped: untouched memory reads as zero.
        };
        let img_slot = match &self.backend {
            Backend::Ptm(p) => {
                let idx = PhysAddr::from_frame(FrameId(0), va.page_offset())
                    .block()
                    .index();
                p.committed_swap_slot(slot, idx)
            }
            _ => slot,
        };
        let img = self.kernel.swap.peek(img_slot);
        let off = va.page_offset();
        u32::from_le_bytes(img[off..off + WORD_SIZE].try_into().expect("word in page"))
    }

    /// The programs' thread count.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Direct kernel access for scenario tests (shared mappings, forced
    /// swaps).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Direct memory access for scenario tests.
    pub fn memory_mut(&mut self) -> &mut PhysicalMemory {
        &mut self.mem
    }

    /// Forces a page out to swap (backend-aware): PTM migrates its SPT
    /// entry to the SIT and co-swaps the shadow page; other backends just
    /// move the data. Scenario tests use this to exercise §3.5 paging.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn force_swap_out(&mut self, pid: ProcessId, vpn: Vpn) {
        // The mapping is about to die: no core may keep serving the old
        // frame from its TLB.
        self.tlb_shootdown(pid, vpn);
        match &mut self.backend {
            Backend::Ptm(p) => {
                let frame = self
                    .kernel
                    .frame_of(pid, vpn)
                    .unwrap_or_else(|| panic!("swapping non-resident page {vpn}"));
                let out = p.on_swap_out(frame, &mut self.mem, &mut self.kernel.swap);
                self.kernel.mark_swapped(pid, vpn, out.home_slot);
                self.rev_map.remove(&frame);
            }
            _ => {
                let _ = self.kernel.plain_swap_out(pid, vpn, &mut self.mem);
            }
        }
    }

    /// The frame core `idx`'s TLB currently caches for `(pid, vpn)`, if any
    /// (test introspection for shootdown coverage).
    pub fn tlb_peek(&self, idx: usize, pid: ProcessId, vpn: Vpn) -> Option<FrameId> {
        self.tlb_lookup(idx, pid, vpn)
    }

    /// Faults a page in ahead of execution (scenario setup: inter-process
    /// sharing, forced swap tests) and registers it with the TM backend.
    /// Returns the page's frame.
    ///
    /// # Panics
    ///
    /// Panics if the page is swapped out.
    pub fn prefault(&mut self, pid: ProcessId, va: VirtAddr) -> FrameId {
        match self.kernel.translate(pid, va, &mut self.mem) {
            Translation::Resident { pa, allocated, .. } => {
                if let Some(frame) = allocated {
                    if let Backend::Ptm(p) = &mut self.backend {
                        p.on_page_alloc(frame);
                    }
                    self.rev_map.insert(frame, (pid, va.vpn()));
                }
                pa.frame()
            }
            Translation::SwappedOut { .. } => panic!("prefault hit a swapped page"),
            Translation::OutOfMemory { .. } => {
                panic!("prefault exhausted the physical frame pool")
            }
        }
    }
}

/// The value side of a store operation.
#[derive(Debug, Clone, Copy)]
enum WriteVal {
    Const(u32),
    Delta(i32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::{Granularity, ThreadId};

    fn machine(kind: SystemKind) -> Machine {
        let prog = ThreadProgram::new(ProcessId(0), ThreadId(0), vec![Op::Compute(1)]);
        Machine::new(MachineConfig::default(), kind, vec![prog])
    }

    #[test]
    fn stale_tlb_entry_never_survives_swap_out() {
        // Both the PTM swap path (SPT→SIT migration) and the plain kernel
        // path must shoot the mapping out of every core TLB, so the
        // post-swap access takes the major fault instead of reading through
        // a dangling frame.
        for kind in [SystemKind::SelectPtm(Granularity::Block), SystemKind::Locks] {
            let mut m = machine(kind);
            let pid = ProcessId(0);
            let va = VirtAddr::new(0x7000);
            let frame = m.prefault(pid, va);
            m.mem
                .write_word(PhysAddr::from_frame(frame, va.page_offset()), 77);

            // Warm core 0's TLB, then hit it once.
            assert!(matches!(
                m.access(0, 0, va, AccessKind::Read),
                AccessEffect::Done(_)
            ));
            assert_eq!(m.tlb_peek(0, pid, va.vpn()), Some(frame));
            assert!(matches!(
                m.access(0, 50, va, AccessKind::Read),
                AccessEffect::Done(_)
            ));
            assert_eq!(m.stats.tlb_hits, 1);
            assert_eq!(m.stats.tlb_misses, 1);

            m.force_swap_out(pid, va.vpn());
            assert_eq!(
                m.tlb_peek(0, pid, va.vpn()),
                None,
                "shootdown must clear the entry"
            );
            assert_eq!(m.stats.tlb_shootdowns, 1);

            // The page is gone: the access must fault and swap it back in.
            assert!(
                matches!(
                    m.access(0, 100, va, AccessKind::Read),
                    AccessEffect::Stall(_)
                ),
                "swapped page must fault, not serve a stale TLB entry"
            );
            // The retry completes against the new mapping with the old data.
            assert!(matches!(
                m.access(0, 20_000, va, AccessKind::Read),
                AccessEffect::Done(_)
            ));
            assert_eq!(m.read_committed(pid, va), 77);
            let new_frame = m.kernel.frame_of(pid, va.vpn()).expect("resident again");
            assert_eq!(m.tlb_peek(0, pid, va.vpn()), Some(new_frame));
        }
    }

    #[test]
    fn direct_mapped_tlb_evicts_on_slot_conflict() {
        let mut m = machine(SystemKind::Serial);
        let pid = ProcessId(0);
        let stride = m.cfg.core_tlb_entries as u64 * 4096;
        let a = VirtAddr::new(0x10_0000);
        let b = VirtAddr::new(0x10_0000 + stride);
        assert!(matches!(
            m.access(0, 0, a, AccessKind::Read),
            AccessEffect::Done(_)
        ));
        assert!(matches!(
            m.access(0, 100, b, AccessKind::Read),
            AccessEffect::Done(_)
        ));
        // `b` displaced `a` from their shared direct-mapped slot.
        assert_eq!(m.tlb_peek(0, pid, a.vpn()), None);
        assert!(m.tlb_peek(0, pid, b.vpn()).is_some());
        assert!(matches!(
            m.access(0, 200, a, AccessKind::Read),
            AccessEffect::Done(_)
        ));
        assert_eq!(m.stats.tlb_hits, 0);
        assert_eq!(m.stats.tlb_misses, 3);
    }

    #[test]
    fn zero_sized_tlb_disables_cleanly() {
        let prog = ThreadProgram::new(ProcessId(0), ThreadId(0), vec![Op::Compute(1)]);
        let cfg = MachineConfig {
            core_tlb_entries: 0,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg, SystemKind::Serial, vec![prog]);
        let va = VirtAddr::new(0x3000);
        assert!(matches!(
            m.access(0, 0, va, AccessKind::Read),
            AccessEffect::Done(_)
        ));
        assert!(matches!(
            m.access(0, 100, va, AccessKind::Read),
            AccessEffect::Done(_)
        ));
        assert_eq!(m.tlb_peek(0, ProcessId(0), va.vpn()), None);
        assert_eq!(m.stats.tlb_hits, 0);
        assert_eq!(m.stats.tlb_misses, 2);
        m.tlb_shootdown(ProcessId(0), va.vpn());
        assert_eq!(m.stats.tlb_shootdowns, 0);
    }
}
