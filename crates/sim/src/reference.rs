//! The serial reference executor: the functional ground truth.
//!
//! Transactions are serializable iff there is some serial order with the
//! same effect. Our machine records the actual commit order; this module
//! replays the committed transactions *serially in that order* (with each
//! thread's non-transactional operations in program order around them) on a
//! plain word-level memory, and compares the result with the machine's
//! committed memory. Any divergence means the TM implementation broke
//! isolation or versioning — this is the backbone check behind the
//! integration and property tests.

use crate::ops::Op;
use crate::program::ThreadProgram;
use crate::stats::CommittedTx;
use ptm_types::{FastMap, ProcessId, VirtAddr};
use std::collections::HashMap;

/// A word-level reference memory.
pub type RefMemory = FastMap<(ProcessId, VirtAddr), u32>;

/// Executes one operation against the reference memory.
fn exec_op(mem: &mut RefMemory, pid: ProcessId, op: Op) {
    match op {
        Op::Write(va, v) => {
            mem.insert((pid, va.word_aligned()), v);
        }
        Op::Rmw(va, d) => {
            let k = (pid, va.word_aligned());
            let old = mem.get(&k).copied().unwrap_or(0);
            mem.insert(k, old.wrapping_add(d as u32));
        }
        Op::Read(_) | Op::Begin { .. } | Op::End | Op::Compute(_) | Op::Barrier(_) => {}
    }
}

/// Replays the programs serially: committed transactions in commit order,
/// each preceded by its thread's pending non-transactional operations, and
/// trailing non-transactional operations at the end. Returns the final
/// word-level memory image.
///
/// Validity relies on the workload convention that *shared* data is only
/// written inside transactions (or under locks); racy non-transactional
/// writes to shared words would make the serial order ambiguous.
pub fn serial_reference(programs: &[ThreadProgram], commit_log: &[CommittedTx]) -> RefMemory {
    if commit_log.is_empty() {
        // Lock-based / serial runs record no commit log: replay the
        // programs phase-by-phase, honouring barrier alignment (threads may
        // legitimately reuse shared words across barrier-separated phases).
        return barrier_ordered_replay(programs);
    }
    let mut mem = RefMemory::default();
    let mut done: Vec<usize> = vec![0; programs.len()];
    // Transactions are attributed to *threads* (stable across core
    // migration), not the cores they happened to commit on.
    let index_of_thread = |c: &CommittedTx| {
        programs
            .iter()
            .position(|p| p.thread() == c.thread)
            .expect("commit log references a known thread")
    };

    for c in commit_log {
        let i = index_of_thread(c);
        let prog = &programs[i];
        let pid = prog.pid();
        // Non-transactional prefix (ops before the transaction's Begin).
        while done[i] < c.begin_pc {
            if let Some(op) = prog.op_at(done[i]) {
                exec_op(&mut mem, pid, op);
            }
            done[i] += 1;
        }
        // The transaction body, atomically.
        for pc in c.begin_pc..=c.end_pc {
            if let Some(op) = prog.op_at(pc) {
                exec_op(&mut mem, pid, op);
            }
        }
        done[i] = c.end_pc + 1;
    }

    // Trailing non-transactional tails.
    for (i, prog) in programs.iter().enumerate() {
        let pid = prog.pid();
        for pc in done[i]..prog.len() {
            if let Some(op) = prog.op_at(pc) {
                exec_op(&mut mem, pid, op);
            }
        }
    }
    mem
}

/// The committed-prefix oracle for crash points: replays the committed
/// transactions in commit order plus each thread's non-transactional
/// operations up to its *watermark* — the first program counter whose
/// effects were not yet durable when the machine stopped. For a thread
/// inside a transaction at the crash the watermark is that transaction's
/// `Begin`; otherwise it is the thread's current pc (non-transactional
/// writes are write-through and durable immediately).
///
/// With every watermark at `len()` and the full commit log this degenerates
/// to [`serial_reference`], so a "crash" past the end of the run must match
/// the final committed state.
pub fn crash_reference(
    programs: &[ThreadProgram],
    commit_log: &[CommittedTx],
    watermarks: &HashMap<ptm_types::ThreadId, usize>,
) -> RefMemory {
    let mut mem = RefMemory::default();
    let mut done: Vec<usize> = vec![0; programs.len()];
    for c in commit_log {
        let i = programs
            .iter()
            .position(|p| p.thread() == c.thread)
            .expect("commit log references a known thread");
        let prog = &programs[i];
        let pid = prog.pid();
        while done[i] < c.begin_pc {
            if let Some(op) = prog.op_at(done[i]) {
                exec_op(&mut mem, pid, op);
            }
            done[i] += 1;
        }
        for pc in c.begin_pc..=c.end_pc {
            if let Some(op) = prog.op_at(pc) {
                exec_op(&mut mem, pid, op);
            }
        }
        done[i] = c.end_pc + 1;
    }
    // Durable non-transactional tails, cut at each thread's watermark.
    for (i, prog) in programs.iter().enumerate() {
        let pid = prog.pid();
        let stop = watermarks
            .get(&prog.thread())
            .copied()
            .unwrap_or(0)
            .min(prog.len());
        for pc in done[i]..stop {
            if let Some(op) = prog.op_at(pc) {
                exec_op(&mut mem, pid, op);
            }
        }
    }
    mem
}

/// Replays programs with barrier synchronization but no transactional
/// reordering: each thread runs to its next barrier, then all cross it
/// together. Sound when, within any phase, cross-thread writes to the same
/// word are commutative `Rmw`s or absent — the workload convention.
fn barrier_ordered_replay(programs: &[ThreadProgram]) -> RefMemory {
    let mut mem = RefMemory::default();
    let mut pc: Vec<usize> = vec![0; programs.len()];
    loop {
        let mut progressed = false;
        for (t, prog) in programs.iter().enumerate() {
            while pc[t] < prog.len() {
                match prog.op_at(pc[t]) {
                    Some(Op::Barrier(_)) => break,
                    Some(op) => {
                        exec_op(&mut mem, prog.pid(), op);
                        pc[t] += 1;
                        progressed = true;
                    }
                    None => break,
                }
            }
        }
        // Everyone is at a barrier or finished: cross the barriers.
        let mut all_done = true;
        for (t, prog) in programs.iter().enumerate() {
            if pc[t] < prog.len() {
                all_done = false;
                if matches!(prog.op_at(pc[t]), Some(Op::Barrier(_))) {
                    pc[t] += 1;
                    progressed = true;
                }
            }
        }
        if all_done {
            return mem;
        }
        assert!(progressed, "barrier replay stuck (malformed barrier usage)");
    }
}

/// A divergence between the machine and the serial reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mismatch {
    /// The process and address that diverged.
    pub key: (ProcessId, VirtAddr),
    /// What the serial reference computed.
    pub expected: u32,
    /// What the machine's committed memory holds.
    pub actual: u32,
}

/// Compares every word the reference wrote against the machine's committed
/// memory. Returns all mismatches (empty means serializable).
pub fn diff_against_machine(
    machine: &crate::machine::Machine,
    programs: &[ThreadProgram],
) -> Vec<Mismatch> {
    let reference = serial_reference(programs, &machine.stats().commit_log);
    let mut mismatches: Vec<Mismatch> = reference
        .into_iter()
        .filter_map(|((pid, va), expected)| {
            let actual = machine.read_committed(pid, va);
            (actual != expected).then_some(Mismatch {
                key: (pid, va),
                expected,
                actual,
            })
        })
        .collect();
    mismatches.sort_by_key(|m| m.key);
    mismatches
}

/// Panics with a readable report if the machine diverged from the serial
/// reference.
///
/// # Panics
///
/// Panics on any mismatch — the TM system violated serializability.
pub fn assert_serializable(machine: &crate::machine::Machine, programs: &[ThreadProgram]) {
    let mismatches = diff_against_machine(machine, programs);
    assert!(
        mismatches.is_empty(),
        "machine diverged from serial reference under {}: {} mismatches, first: {:?}",
        machine.kind(),
        mismatches.len(),
        mismatches.first()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::{ThreadId, TxId};

    fn prog(pid: u16, thread: u32, ops: Vec<Op>) -> ThreadProgram {
        ThreadProgram::new(ProcessId(pid), ThreadId(thread), ops)
    }

    fn begin() -> Op {
        Op::Begin {
            ordered: None,
            lock: VirtAddr::new(0),
        }
    }

    #[test]
    fn rmw_accumulates_in_reference() {
        let p = prog(
            0,
            0,
            vec![
                begin(),
                Op::Rmw(VirtAddr::new(0x1000), 5),
                Op::Rmw(VirtAddr::new(0x1000), 7),
                Op::End,
            ],
        );
        let log = vec![CommittedTx {
            tx: TxId(0),
            thread: ThreadId(0),
            core: 0,
            begin_pc: 0,
            end_pc: 3,
            at: 1,
        }];
        let mem = serial_reference(&[p], &log);
        assert_eq!(mem[&(ProcessId(0), VirtAddr::new(0x1000))], 12);
    }

    #[test]
    fn commit_order_decides_write_winner() {
        let a = prog(
            0,
            0,
            vec![begin(), Op::Write(VirtAddr::new(0x1000), 1), Op::End],
        );
        let b = prog(
            0,
            1,
            vec![begin(), Op::Write(VirtAddr::new(0x1000), 2), Op::End],
        );
        let log = vec![
            CommittedTx {
                tx: TxId(1),
                thread: ThreadId(1),
                core: 1,
                begin_pc: 0,
                end_pc: 2,
                at: 5,
            },
            CommittedTx {
                tx: TxId(0),
                thread: ThreadId(0),
                core: 0,
                begin_pc: 0,
                end_pc: 2,
                at: 9,
            },
        ];
        let mem = serial_reference(&[a, b], &log);
        assert_eq!(
            mem[&(ProcessId(0), VirtAddr::new(0x1000))],
            1,
            "core 0 committed last"
        );
    }

    #[test]
    fn non_tx_prefix_runs_before_the_thread_transaction() {
        let p = prog(
            0,
            0,
            vec![
                Op::Write(VirtAddr::new(0x2000), 10),
                begin(),
                Op::Rmw(VirtAddr::new(0x2000), 1),
                Op::End,
            ],
        );
        let log = vec![CommittedTx {
            tx: TxId(0),
            thread: ThreadId(0),
            core: 0,
            begin_pc: 1,
            end_pc: 3,
            at: 1,
        }];
        let mem = serial_reference(&[p], &log);
        assert_eq!(mem[&(ProcessId(0), VirtAddr::new(0x2000))], 11);
    }

    #[test]
    fn trailing_non_tx_ops_apply_last() {
        let p = prog(0, 0, vec![Op::Write(VirtAddr::new(0x3000), 42)]);
        let mem = serial_reference(&[p], &[]);
        assert_eq!(mem[&(ProcessId(0), VirtAddr::new(0x3000))], 42);
    }

    #[test]
    fn unaligned_addresses_fold_to_their_word() {
        let p = prog(0, 0, vec![Op::Write(VirtAddr::new(0x1002), 9)]);
        let mem = serial_reference(&[p], &[]);
        assert_eq!(mem[&(ProcessId(0), VirtAddr::new(0x1000))], 9);
    }
}
