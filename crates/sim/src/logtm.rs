//! A LogTM-style backend (Moore et al., HPCA 2006), implemented as an
//! *extension* beyond the paper's evaluated systems — §5.2 describes it as
//! related work. The contrasts with PTM it exists to demonstrate:
//!
//! * **Eager, in-place versioning**: transactional stores update memory
//!   directly, saving the old value in a per-transaction software **undo
//!   log**. Commit is trivially cheap (discard the log); **abort is the
//!   expensive path** (walk the log backwards in software, restoring every
//!   word).
//! * **Sticky overflow state**: when a transactional line is evicted, the
//!   directory remembers the transaction's interest in the block and keeps
//!   forwarding conflicting requests to it — modeled here as a
//!   [`StickyTable`] keyed by physical block.
//! * **Stall-preferring conflict resolution**: a conflicting requester
//!   NACKs and retries rather than aborting; a *possible-cycle* heuristic
//!   (requester older than an owner that is itself stalling) triggers the
//!   rare self-abort, guaranteeing progress.
//!
//! As the paper notes, LogTM does not virtualize: it requires transactional
//! state never to be paged out, and does not handle context-switch
//! migration. The simulator enforces the same restriction.

use ptm_cache::{SystemBus, TxLineMeta};
use ptm_core::tstate::{TStateTable, TxStatus};
use ptm_mem::PhysicalMemory;
use ptm_types::{Cycle, FastMap, PhysAddr, PhysBlock, TxId};

/// One undo-log record: the word's address and its pre-transaction value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoEntry {
    /// The word written.
    pub addr: PhysAddr,
    /// The value it held before the transactional store.
    pub old: u32,
}

/// The directory's memory of evicted transactional state ("sticky" states).
#[derive(Debug, Default, Clone)]
pub struct StickyTable {
    entries: FastMap<PhysBlock, StickyUse>,
}

/// Which transactions an overflowed block is sticky to.
#[derive(Debug, Default, Clone)]
pub struct StickyUse {
    /// Transactions with an overflowed read of the block.
    pub readers: Vec<TxId>,
    /// The transaction with an overflowed write, if any.
    pub writer: Option<TxId>,
}

impl StickyTable {
    /// Records an evicted line's transactional use.
    pub fn record(&mut self, meta: &TxLineMeta, block: PhysBlock) {
        let e = self.entries.entry(block).or_default();
        if meta.read && !e.readers.contains(&meta.tx) {
            e.readers.push(meta.tx);
        }
        if meta.write {
            debug_assert!(
                e.writer.is_none() || e.writer == Some(meta.tx),
                "conflict detection admits one writer"
            );
            e.writer = Some(meta.tx);
        }
    }

    /// The recorded use of `block`, if any.
    pub fn get(&self, block: PhysBlock) -> Option<&StickyUse> {
        self.entries.get(&block)
    }

    /// Clears one transaction out of every entry (commit/abort), dropping
    /// entries that become empty. Returns how many entries were touched.
    pub fn release(&mut self, tx: TxId) -> u64 {
        let mut touched = 0;
        self.entries.retain(|_, e| {
            let before = e.readers.len() + usize::from(e.writer.is_some());
            e.readers.retain(|r| *r != tx);
            if e.writer == Some(tx) {
                e.writer = None;
            }
            let after = e.readers.len() + usize::from(e.writer.is_some());
            if after != before {
                touched += 1;
            }
            after > 0
        });
        touched
    }

    /// Number of sticky blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is sticky.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// LogTM event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogTmStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions (the expensive software path).
    pub aborts: u64,
    /// Undo-log entries written.
    pub log_entries: u64,
    /// Undo-log entries restored by aborts.
    pub log_restores: u64,
    /// Conflicting requests that stalled (NACK + retry).
    pub stalls: u64,
    /// Evicted lines recorded sticky.
    pub sticky_records: u64,
}

/// What a conflicting LogTM request should do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// No conflict: proceed.
    Proceed,
    /// NACK: retry after a delay (the owner is expected to finish).
    Stall,
    /// Possible cycle, requester is the youngest participant: abort itself.
    SelfAbort,
    /// Possible cycle, some owners are younger *and* stalled: abort them and
    /// proceed. (The original protocol always aborts the requester; with
    /// ordered commits in the mix, a gate-blocked younger owner can only be
    /// released by the older requester committing, so the youngest
    /// participant must be the one to go.)
    AbortOwners(Vec<TxId>),
}

/// The LogTM system state.
#[derive(Debug, Default, Clone)]
pub struct LogTmSystem {
    logs: FastMap<TxId, Vec<UndoEntry>>,
    sticky: StickyTable,
    tstate: TStateTable,
    /// Transactions currently stalling on a conflict (the possible-cycle
    /// flag of the real protocol).
    stalling: FastMap<TxId, bool>,
    stats: LogTmStats,
}

impl LogTmSystem {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters.
    pub fn stats(&self) -> &LogTmStats {
        &self.stats
    }

    /// The status table.
    pub fn tstate(&self) -> &TStateTable {
        &self.tstate
    }

    /// Starts (or restarts) a transaction.
    pub fn begin(&mut self, tx: TxId) {
        self.tstate.begin(tx, None);
        self.stalling.insert(tx, false);
    }

    /// Whether `tx` is live.
    pub fn is_live(&self, tx: TxId) -> bool {
        self.tstate.is_live(tx)
    }

    /// Whether any sticky overflow state exists.
    pub fn has_overflows(&self) -> bool {
        !self.sticky.is_empty()
    }

    /// Logs a transactional store's old value (eager versioning: the caller
    /// then writes memory in place). Log writes are cacheable and charged
    /// nothing here; the price is paid on abort.
    pub fn log_write(&mut self, tx: TxId, addr: PhysAddr, old: u32) {
        self.logs
            .entry(tx)
            .or_default()
            .push(UndoEntry { addr, old });
        self.stats.log_entries += 1;
    }

    /// The physical word addresses `tx`'s undo log would restore on abort,
    /// oldest first. The speculative executor captures these *before* the
    /// abort runs so it can publish ESTIMATE markers for exactly the words
    /// the rollback rewrites instead of invalidating every pending run.
    pub fn log_addrs(&self, tx: TxId) -> Vec<PhysAddr> {
        self.logs
            .get(&tx)
            .map(|log| log.iter().map(|e| e.addr).collect())
            .unwrap_or_default()
    }

    /// Records an evicted transactional line as sticky.
    pub fn on_tx_eviction(&mut self, meta: &TxLineMeta, block: PhysBlock) {
        self.sticky.record(meta, block);
        self.stats.sticky_records += 1;
    }

    /// Conflict check against sticky state for a miss, with LogTM's
    /// stall-preferring resolution. `requester` is `None` for
    /// non-transactional accesses (which always win: the transaction
    /// aborts, as in §2.3.3).
    pub fn resolve(
        &mut self,
        requester: Option<TxId>,
        block: PhysBlock,
        is_write: bool,
    ) -> (Resolution, Vec<TxId>) {
        let Some(u) = self.sticky.get(block) else {
            if let Some(tx) = requester {
                self.stalling.insert(tx, false);
            }
            return (Resolution::Proceed, Vec::new());
        };
        let mut owners: Vec<TxId> = Vec::new();
        if let Some(w) = u.writer {
            if Some(w) != requester && self.is_live(w) {
                owners.push(w);
            }
        }
        if is_write {
            for r in &u.readers {
                if Some(*r) != requester && self.is_live(*r) {
                    owners.push(*r);
                }
            }
        }
        owners.sort();
        owners.dedup();
        if owners.is_empty() {
            if let Some(tx) = requester {
                self.stalling.insert(tx, false);
            }
            return (Resolution::Proceed, Vec::new());
        }
        let Some(me) = requester else {
            // Non-transactional conflicts abort the transactions.
            return (Resolution::SelfAbort, owners); // caller aborts owners instead
        };
        let res = self.cycle_break(me, &owners);
        (res, owners)
    }

    fn cycle_break(&mut self, me: TxId, owners: &[TxId]) -> Resolution {
        // Possible-cycle heuristic: a stall edge from an older transaction
        // to a younger *stalled* owner can close a cycle; break it by
        // aborting the youngest participants.
        let stuck_younger: Vec<TxId> = owners
            .iter()
            .filter(|o| me.is_older_than(**o) && *self.stalling.get(o).unwrap_or(&false))
            .copied()
            .collect();
        if !stuck_younger.is_empty() {
            return Resolution::AbortOwners(stuck_younger);
        }
        let blocked_by_older_staller = owners
            .iter()
            .any(|o| o.is_older_than(me) && *self.stalling.get(o).unwrap_or(&false));
        if blocked_by_older_staller && owners.iter().all(|o| o.is_older_than(me)) {
            // I am the youngest in a possible cycle: step aside.
            return Resolution::SelfAbort;
        }
        self.stalling.insert(me, true);
        self.stats.stalls += 1;
        Resolution::Stall
    }

    /// Marks a transaction as stalled for reasons outside conflict
    /// resolution (e.g. an ordered-commit gate), so the possible-cycle
    /// heuristic can break deadlocks through it.
    pub fn mark_stalling(&mut self, tx: TxId) {
        self.stalling.insert(tx, true);
    }

    /// LogTM's resolution for an *in-cache* coherence conflict with the
    /// given live owners: stall unless the possible-cycle heuristic demands
    /// a self-abort. Non-transactional requesters always break through
    /// (callers abort the owners).
    pub fn arbitrate(&mut self, requester: Option<TxId>, owners: &[TxId]) -> Resolution {
        let Some(me) = requester else {
            // Non-transactional requesters break through; the caller aborts
            // the owners.
            return Resolution::AbortOwners(owners.to_vec());
        };
        self.cycle_break(me, owners)
    }

    /// Commits: discard the log, release sticky state. LogTM's cheap path.
    pub fn commit(&mut self, tx: TxId, now: Cycle, bus: &mut SystemBus) -> Cycle {
        self.tstate.set_status(tx, TxStatus::Committing);
        self.logs.remove(&tx);
        let touched = self.sticky.release(tx);
        self.stalling.remove(&tx);
        // Lazy sticky cleanup: one controller access per touched entry.
        let mut t = now;
        for _ in 0..touched.min(8) {
            t = bus.controller_mem_access(t);
        }
        self.tstate.set_status(tx, TxStatus::Committed);
        self.stats.commits += 1;
        t
    }

    /// Aborts: walk the undo log *backwards*, restoring every word — the
    /// expensive, software-handled path the paper calls out.
    pub fn abort(
        &mut self,
        tx: TxId,
        mem: &mut PhysicalMemory,
        now: Cycle,
        bus: &mut SystemBus,
    ) -> Cycle {
        self.tstate.set_status(tx, TxStatus::Aborting);
        let log = self.logs.remove(&tx).unwrap_or_default();
        // Software handler entry cost.
        let mut t = now + 500;
        for entry in log.iter().rev() {
            mem.write_word(entry.addr, entry.old);
            t = bus.controller_mem_access(t);
            self.stats.log_restores += 1;
        }
        self.sticky.release(tx);
        self.stalling.remove(&tx);
        self.tstate.set_status(tx, TxStatus::Aborted);
        self.stats.aborts += 1;
        t
    }

    /// Crash recovery for machines *without* a unified durable log: discard
    /// every live transaction without any timing model — walk each undo log
    /// backwards restoring old values (the logs are assumed durable
    /// software structures in that mode), drop sticky and stalling state.
    /// Returns `(transactions discarded, words restored)`. Idempotent: a
    /// second call finds no live transactions and does nothing. Durable
    /// machines replay the device log's word-undo records and call
    /// [`LogTmSystem::discard_live`] instead.
    pub fn recover(&mut self, mem: &mut PhysicalMemory) -> (u64, u64) {
        let mut live = self.tstate.live_transactions();
        live.sort();
        let mut restored = 0u64;
        for tx in &live {
            let log = self.logs.remove(tx).unwrap_or_default();
            for entry in log.iter().rev() {
                mem.write_word(entry.addr, entry.old);
                restored += 1;
                self.stats.log_restores += 1;
            }
            self.sticky.release(*tx);
            self.stalling.remove(tx);
            self.tstate.set_status(*tx, TxStatus::Aborted);
            self.stats.aborts += 1;
        }
        (live.len() as u64, restored)
    }

    /// Drops the in-DRAM undo logs. A machine running with a unified
    /// durable log calls this when capturing a crash image: the software
    /// log is ordinary volatile memory there, and recovery replays the
    /// device log's word-undo records instead ([`crate::crash`]).
    pub fn drop_logs(&mut self) {
        self.logs.clear();
    }

    /// Discards every live transaction *without* touching memory — the
    /// unified durable log's word-undo replay already rolled their stores
    /// back. Drops log, sticky and stalling state and marks each
    /// transaction aborted. Returns the count discarded. Idempotent: a
    /// second call finds no live transactions.
    pub fn discard_live(&mut self) -> u64 {
        let mut live = self.tstate.live_transactions();
        live.sort();
        for tx in &live {
            self.logs.remove(tx);
            self.sticky.release(*tx);
            self.stalling.remove(tx);
            self.tstate.set_status(*tx, TxStatus::Aborted);
            self.stats.aborts += 1;
        }
        live.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_cache::BusTimings;
    use ptm_types::{BlockIdx, FrameId, WordIdx};

    fn block(n: u32) -> PhysBlock {
        PhysBlock::new(FrameId(n), BlockIdx(0))
    }

    fn bus() -> SystemBus {
        SystemBus::new(BusTimings::default())
    }

    #[test]
    fn in_place_write_with_undo_restore() {
        let mut sys = LogTmSystem::new();
        let mut mem = PhysicalMemory::new(4);
        let f = mem.alloc().unwrap();
        let addr = PhysAddr::from_frame(f, 8);
        mem.write_word(addr, 10);

        sys.begin(TxId(0));
        // Eager versioning: log old, write new in place.
        sys.log_write(TxId(0), addr, mem.read_word(addr));
        mem.write_word(addr, 99);
        assert_eq!(mem.read_word(addr), 99, "in-place speculative value");

        let mut b = bus();
        sys.abort(TxId(0), &mut mem, 0, &mut b);
        assert_eq!(mem.read_word(addr), 10, "undo log restored the word");
        assert_eq!(sys.stats().log_restores, 1);
    }

    #[test]
    fn abort_restores_in_reverse_order() {
        let mut sys = LogTmSystem::new();
        let mut mem = PhysicalMemory::new(4);
        let f = mem.alloc().unwrap();
        let addr = PhysAddr::from_frame(f, 0);
        mem.write_word(addr, 1);

        sys.begin(TxId(0));
        sys.log_write(TxId(0), addr, 1);
        mem.write_word(addr, 2);
        sys.log_write(TxId(0), addr, 2);
        mem.write_word(addr, 3);

        let mut b = bus();
        sys.abort(TxId(0), &mut mem, 0, &mut b);
        assert_eq!(
            mem.read_word(addr),
            1,
            "reverse walk ends at the oldest value"
        );
    }

    #[test]
    fn commit_is_cheap_abort_is_not() {
        let mut sys = LogTmSystem::new();
        let mut mem = PhysicalMemory::new(4);
        let f = mem.alloc().unwrap();
        sys.begin(TxId(0));
        for w in 0..16u32 {
            let addr = PhysAddr::from_frame(f, (w as usize) * 4);
            sys.log_write(TxId(0), addr, 0);
            mem.write_word(addr, w);
        }
        let mut b1 = bus();
        let commit_done = sys.commit(TxId(0), 0, &mut b1);

        let mut sys2 = LogTmSystem::new();
        sys2.begin(TxId(0));
        for w in 0..16u32 {
            let addr = PhysAddr::from_frame(f, (w as usize) * 4);
            sys2.log_write(TxId(0), addr, 0);
        }
        let mut b2 = bus();
        let abort_done = sys2.abort(TxId(0), &mut mem, 0, &mut b2);
        assert!(
            abort_done > commit_done,
            "abort ({abort_done}) must cost more than commit ({commit_done})"
        );
    }

    #[test]
    fn sticky_state_drives_conflicts() {
        let mut sys = LogTmSystem::new();
        sys.begin(TxId(0));
        sys.begin(TxId(1));
        let mut meta = TxLineMeta::new(TxId(0));
        meta.record_write(WordIdx(0));
        sys.on_tx_eviction(&meta, block(0));
        assert!(sys.has_overflows());

        // Younger writer conflicts with the sticky writer: stall.
        let (r, owners) = sys.resolve(Some(TxId(1)), block(0), true);
        assert_eq!(r, Resolution::Stall);
        assert_eq!(owners, vec![TxId(0)]);

        // Reads of a sticky WRITE also conflict.
        let (r, _) = sys.resolve(Some(TxId(1)), block(0), false);
        assert_eq!(r, Resolution::Stall);

        // The owner itself proceeds.
        let (r, _) = sys.resolve(Some(TxId(0)), block(0), true);
        assert_eq!(r, Resolution::Proceed);
    }

    #[test]
    fn possible_cycle_aborts_the_youngest_participant() {
        let mut sys = LogTmSystem::new();
        sys.begin(TxId(0));
        sys.begin(TxId(1));
        // tx1 overflows a write; tx0 (older) will request it.
        let mut meta = TxLineMeta::new(TxId(1));
        meta.record_write(WordIdx(0));
        sys.on_tx_eviction(&meta, block(0));
        // tx1 is itself stalling on something (tx0's block).
        let mut meta0 = TxLineMeta::new(TxId(0));
        meta0.record_write(WordIdx(0));
        sys.on_tx_eviction(&meta0, block(1));
        let (r, _) = sys.resolve(Some(TxId(1)), block(1), true);
        assert_eq!(r, Resolution::Stall, "tx1 stalls on tx0");

        // Now tx0 requests tx1's block: cycle detected; the *youngest*
        // participant (tx1) aborts so that gate-style dependencies on the
        // older's commit can always drain.
        let (r, _) = sys.resolve(Some(TxId(0)), block(0), true);
        assert_eq!(r, Resolution::AbortOwners(vec![TxId(1)]));

        // Symmetric case: the younger requester facing an older stalled
        // owner steps aside itself.
        let mut sys2 = LogTmSystem::new();
        sys2.begin(TxId(0));
        sys2.begin(TxId(1));
        let mut m0 = TxLineMeta::new(TxId(0));
        m0.record_write(WordIdx(0));
        sys2.on_tx_eviction(&m0, block(0));
        sys2.mark_stalling(TxId(0));
        let (r, _) = sys2.resolve(Some(TxId(1)), block(0), true);
        assert_eq!(r, Resolution::SelfAbort);
    }

    #[test]
    fn release_clears_sticky_entries() {
        let mut sys = LogTmSystem::new();
        sys.begin(TxId(0));
        let mut meta = TxLineMeta::new(TxId(0));
        meta.record_read(WordIdx(0));
        sys.on_tx_eviction(&meta, block(0));
        let mut b = bus();
        sys.commit(TxId(0), 0, &mut b);
        assert!(!sys.has_overflows(), "commit released the sticky state");
    }

    #[test]
    fn readers_do_not_conflict_with_readers() {
        let mut sys = LogTmSystem::new();
        sys.begin(TxId(0));
        sys.begin(TxId(1));
        let mut meta = TxLineMeta::new(TxId(0));
        meta.record_read(WordIdx(0));
        sys.on_tx_eviction(&meta, block(0));
        let (r, _) = sys.resolve(Some(TxId(1)), block(0), false);
        assert_eq!(r, Resolution::Proceed, "read/read never conflicts");
        let (r, _) = sys.resolve(Some(TxId(1)), block(0), true);
        assert_eq!(r, Resolution::Stall, "write/read does");
    }
}
