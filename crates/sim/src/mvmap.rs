//! Multi-version memory map for the Block-STM executor.
//!
//! Block-STM (PAPERS.md: arxiv 2203.06871 lineage, via the progressive/
//! optimistic STM designs the issue cites) resolves speculation conflicts
//! through a *multi-version* map: every writer publishes its writes keyed
//! by `(tx_index, incarnation)`, readers observe the latest version below
//! their own index, and an aborted incarnation leaves **ESTIMATE** markers
//! behind so dependent readers suspend instead of consuming data that the
//! next incarnation is likely to overwrite.
//!
//! [`MvMap`] implements that contract at the simulator's natural
//! granularity — one version list per `(PhysBlock, WordIdx)` word — and is
//! used two ways:
//!
//! - **Standalone Block-STM semantics** ([`MvMap::read`]): versioned
//!   read-below-latest with `Value` / `Estimate` / `NotFound` outcomes,
//!   exercised directly by the unit tests here and the
//!   `mvmap_prop` reference-model property test.
//! - **Epoch validation** ([`MvMap::latest_foreign`],
//!   [`MvMap::block_has_foreign`]): the epoch executor publishes every
//!   canonically-applied write (live or consumed) and asks, at each
//!   consume point, whether a *foreign* version exists for the word a
//!   speculated step read — word-granular invalidation that replaces the
//!   old block-level writers map.

use ptm_types::{FastMap, PhysBlock, WordIdx};

/// One attempt of one transaction: `tx_index` orders writers, an aborted
/// attempt re-executes as `incarnation + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnVersion {
    /// Position of the transaction in the preset (canonical) order.
    pub tx_index: u32,
    /// Re-execution count of that transaction.
    pub incarnation: u32,
}

/// A word-granular memory location.
pub type Location = (PhysBlock, WordIdx);

/// What a version slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    /// A concrete written value.
    Value(u32),
    /// The ESTIMATE marker an abort leaves behind: "this transaction wrote
    /// here last incarnation and will probably write here again".
    Estimate,
}

/// Outcome of a versioned [`MvMap::read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadResult {
    /// No version below the reader: fall through to committed storage.
    NotFound,
    /// The latest version below the reader, with its provenance (the
    /// reader records `version` in its read set and revalidates against
    /// it).
    Value { version: TxnVersion, value: u32 },
    /// The latest version below the reader is an abort placeholder; the
    /// reader should suspend on `tx_index` rather than speculate through
    /// likely-stale data.
    Estimate {
        /// The transaction whose re-execution the reader depends on.
        tx_index: u32,
    },
}

/// The multi-version map: per-word version lists plus an owner index so
/// aborts can flip their entries to ESTIMATE without a full scan.
#[derive(Debug, Default)]
pub struct MvMap {
    /// `block → word → versions`, each version list sorted by `tx_index`
    /// (at most one entry per transaction — a newer incarnation replaces
    /// the older one's entry in place).
    blocks: FastMap<PhysBlock, FastMap<WordIdx, Vec<(TxnVersion, Cell)>>>,
    /// `tx_index → locations it has entries at` (may hold duplicates and
    /// stale locations; consumers re-check ownership).
    by_owner: FastMap<u32, Vec<Location>>,
    /// Live version count across all locations.
    versions: usize,
}

impl MvMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes `value` at `loc` for `version`. A transaction has at most
    /// one entry per location: re-publishing (a later incarnation, or a
    /// re-executed write of the same incarnation) replaces it in place.
    pub fn write(&mut self, loc: Location, version: TxnVersion, value: u32) {
        self.put(loc, version, Cell::Value(value));
    }

    /// Publishes an ESTIMATE marker at `loc` for `version` (used directly
    /// by the epoch executor when an eager-versioning abort rolls back
    /// in-place memory writes).
    pub fn write_estimate(&mut self, loc: Location, version: TxnVersion) {
        self.put(loc, version, Cell::Estimate);
    }

    fn put(&mut self, loc: Location, version: TxnVersion, cell: Cell) {
        let list = self
            .blocks
            .entry(loc.0)
            .or_default()
            .entry(loc.1)
            .or_default();
        match list.binary_search_by_key(&version.tx_index, |(v, _)| v.tx_index) {
            Ok(i) => {
                debug_assert!(
                    list[i].0.incarnation <= version.incarnation,
                    "version regression at {loc:?}"
                );
                list[i] = (version, cell);
            }
            Err(i) => {
                list.insert(i, (version, cell));
                self.versions += 1;
                self.by_owner.entry(version.tx_index).or_default().push(loc);
            }
        }
    }

    /// Converts every entry owned by `tx_index` into an ESTIMATE marker —
    /// the abort path of Block-STM. The entries stay in place (keeping
    /// readers suspended) until the next incarnation overwrites them or
    /// [`MvMap::remove`] deletes them.
    pub fn mark_estimates(&mut self, tx_index: u32) {
        let Some(locs) = self.by_owner.get(&tx_index) else {
            return;
        };
        for &(block, word) in locs {
            if let Some(list) = self.blocks.get_mut(&block).and_then(|b| b.get_mut(&word)) {
                if let Ok(i) = list.binary_search_by_key(&tx_index, |(v, _)| v.tx_index) {
                    list[i].1 = Cell::Estimate;
                }
            }
        }
    }

    /// Deletes every entry owned by `tx_index` (a re-incarnation whose new
    /// write set dropped locations, or a transaction leaving the window).
    pub fn remove(&mut self, tx_index: u32) {
        let Some(locs) = self.by_owner.remove(&tx_index) else {
            return;
        };
        for (block, word) in locs {
            if let Some(list) = self.blocks.get_mut(&block).and_then(|b| b.get_mut(&word)) {
                if let Ok(i) = list.binary_search_by_key(&tx_index, |(v, _)| v.tx_index) {
                    list.remove(i);
                    self.versions -= 1;
                }
            }
        }
    }

    /// The Block-STM read rule: the latest version *strictly below* the
    /// reader's transaction index, an [`ReadResult::Estimate`] if that
    /// version is an abort marker, or [`ReadResult::NotFound`] when no
    /// lower version exists (read committed storage).
    pub fn read(&self, loc: Location, reader_tx_index: u32) -> ReadResult {
        let Some(list) = self.blocks.get(&loc.0).and_then(|b| b.get(&loc.1)) else {
            return ReadResult::NotFound;
        };
        let below = match list.binary_search_by_key(&reader_tx_index, |(v, _)| v.tx_index) {
            Ok(i) | Err(i) => i,
        };
        match below.checked_sub(1).map(|i| list[i]) {
            None => ReadResult::NotFound,
            Some((version, Cell::Value(value))) => ReadResult::Value { version, value },
            Some((version, Cell::Estimate)) => ReadResult::Estimate {
                tx_index: version.tx_index,
            },
        }
    }

    /// The latest version at `loc` published by any owner other than `me`
    /// (the epoch executor's word-granular invalidation probe).
    pub fn latest_foreign(&self, loc: Location, me: u32) -> Option<TxnVersion> {
        let list = self.blocks.get(&loc.0).and_then(|b| b.get(&loc.1))?;
        list.iter()
            .rev()
            .find(|(v, _)| v.tx_index != me)
            .map(|(v, _)| *v)
    }

    /// Whether *any* word of `block` carries a version from an owner other
    /// than `me` (invalidates precomputed whole-block snapshots).
    pub fn block_has_foreign(&self, block: PhysBlock, me: u32) -> bool {
        self.blocks.get(&block).is_some_and(|words| {
            words
                .values()
                .any(|list| list.iter().any(|(v, _)| v.tx_index != me))
        })
    }

    /// Live version count.
    pub fn len(&self) -> usize {
        self.versions
    }

    /// Whether the map holds no versions.
    pub fn is_empty(&self) -> bool {
        self.versions == 0
    }

    /// Drops every version (epoch boundary).
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.by_owner.clear();
        self.versions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::{BlockIdx, FrameId};

    fn blk(n: u32) -> PhysBlock {
        PhysBlock::new(FrameId(n), BlockIdx(0))
    }

    fn loc(b: u32, w: u8) -> Location {
        (blk(b), WordIdx(w))
    }

    fn v(tx: u32, inc: u32) -> TxnVersion {
        TxnVersion {
            tx_index: tx,
            incarnation: inc,
        }
    }

    #[test]
    fn read_sees_latest_version_below_reader() {
        let mut m = MvMap::new();
        m.write(loc(1, 0), v(2, 0), 20);
        m.write(loc(1, 0), v(5, 0), 50);
        assert_eq!(m.read(loc(1, 0), 1), ReadResult::NotFound);
        assert_eq!(
            m.read(loc(1, 0), 3),
            ReadResult::Value {
                version: v(2, 0),
                value: 20
            }
        );
        // A reader at the writer's own index does not see its own entry.
        assert_eq!(
            m.read(loc(1, 0), 5),
            ReadResult::Value {
                version: v(2, 0),
                value: 20
            }
        );
        assert_eq!(
            m.read(loc(1, 0), 9),
            ReadResult::Value {
                version: v(5, 0),
                value: 50
            }
        );
        assert_eq!(m.read(loc(1, 1), 9), ReadResult::NotFound);
    }

    #[test]
    fn reincarnation_replaces_in_place() {
        let mut m = MvMap::new();
        m.write(loc(1, 3), v(4, 0), 1);
        m.write(loc(1, 3), v(4, 1), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(
            m.read(loc(1, 3), 8),
            ReadResult::Value {
                version: v(4, 1),
                value: 2
            }
        );
    }

    #[test]
    fn estimates_mask_reads_until_overwritten() {
        let mut m = MvMap::new();
        m.write(loc(2, 1), v(3, 0), 7);
        m.write(loc(9, 0), v(3, 0), 8);
        m.write(loc(2, 1), v(1, 0), 5);
        m.mark_estimates(3);
        assert_eq!(m.read(loc(2, 1), 6), ReadResult::Estimate { tx_index: 3 });
        assert_eq!(m.read(loc(9, 0), 6), ReadResult::Estimate { tx_index: 3 });
        // Readers below the estimate still see the older value.
        assert_eq!(
            m.read(loc(2, 1), 2),
            ReadResult::Value {
                version: v(1, 0),
                value: 5
            }
        );
        // The next incarnation's write replaces the marker.
        m.write(loc(2, 1), v(3, 1), 9);
        assert_eq!(
            m.read(loc(2, 1), 6),
            ReadResult::Value {
                version: v(3, 1),
                value: 9
            }
        );
    }

    #[test]
    fn remove_deletes_versions() {
        let mut m = MvMap::new();
        m.write(loc(1, 0), v(2, 0), 1);
        m.write(loc(1, 1), v(2, 0), 2);
        m.write(loc(1, 0), v(4, 0), 3);
        m.remove(2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.read(loc(1, 0), 3), ReadResult::NotFound);
        assert_eq!(m.read(loc(1, 1), 9), ReadResult::NotFound);
        assert_eq!(
            m.read(loc(1, 0), 9),
            ReadResult::Value {
                version: v(4, 0),
                value: 3
            }
        );
    }

    #[test]
    fn foreign_probes_are_word_granular() {
        let mut m = MvMap::new();
        m.write(loc(1, 0), v(0, 0), 1);
        m.write(loc(1, 2), v(3, 0), 2);
        assert_eq!(m.latest_foreign(loc(1, 0), 0), None);
        assert_eq!(m.latest_foreign(loc(1, 0), 3), Some(v(0, 0)));
        assert_eq!(m.latest_foreign(loc(1, 1), 3), None);
        assert!(m.block_has_foreign(blk(1), 7));
        assert!(!m.block_has_foreign(blk(2), 7));
        // A block written only by me is not foreign to me.
        m.clear();
        m.write(loc(1, 0), v(5, 2), 1);
        assert!(!m.block_has_foreign(blk(1), 5));
        assert!(m.block_has_foreign(blk(1), 6));
    }
}
