//! Per-core TLB scenarios: translation results must be indistinguishable
//! from the kernel-only path (the TLB is a pure cache), and a stale entry
//! must never serve a translation across a swap cycle — even when thread
//! migration has spread a thread's accesses over several cores' TLBs.

use ptm_sim::{assert_serializable, run, Machine, MachineConfig, Op, SystemKind, ThreadProgram};
use ptm_types::{Granularity, PhysAddr, ProcessId, ThreadId, VirtAddr};

fn begin(lock: u64) -> Op {
    Op::Begin {
        ordered: None,
        lock: VirtAddr::new(lock),
    }
}

/// Four threads hammering shared counters across several pages.
fn counter_programs() -> Vec<ThreadProgram> {
    (0..4u32)
        .map(|t| {
            let mut ops = Vec::new();
            for i in 0..30u64 {
                ops.push(begin(0x100 + u64::from(t) * 64));
                ops.push(Op::Rmw(VirtAddr::new(0x50_0000 + (i % 8) * 4096), 1));
                ops.push(Op::Rmw(VirtAddr::new(0x60_0000 + u64::from(t) * 4096), 1));
                ops.push(Op::End);
                ops.push(Op::Compute(15));
            }
            ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
        })
        .collect()
}

#[test]
fn core_tlb_is_functionally_and_temporally_transparent() {
    // The TLB is a pure cache over the kernel's translations: with every
    // page fitting the kernel TLB, enabling it must change neither the data
    // (checksums, commit totals) nor the timing (a core-TLB hit and a
    // kernel-TLB hit both cost zero cycles).
    let with_tlb = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        counter_programs(),
    );
    let without = run(
        MachineConfig {
            core_tlb_entries: 0,
            ..MachineConfig::default()
        },
        SystemKind::SelectPtm(Granularity::Block),
        counter_programs(),
    );

    assert_eq!(with_tlb.checksums(), without.checksums());
    assert_eq!(with_tlb.stats().cycles, without.stats().cycles);
    assert_eq!(with_tlb.stats().commits, without.stats().commits);
    assert_eq!(with_tlb.stats().aborts, without.stats().aborts);
    for p in 0..8u64 {
        assert_eq!(
            with_tlb.read_committed(ProcessId(0), VirtAddr::new(0x50_0000 + p * 4096)),
            without.read_committed(ProcessId(0), VirtAddr::new(0x50_0000 + p * 4096)),
        );
    }
    assert!(
        with_tlb.stats().tlb_hits > 0,
        "hot pages must hit the core TLB"
    );
    assert_eq!(without.stats().tlb_hits, 0);
    assert_eq!(
        with_tlb.stats().tlb_hits + with_tlb.stats().tlb_misses,
        without.stats().tlb_misses,
        "every translation is either a hit or a kernel consultation"
    );
}

#[test]
fn swap_cycle_under_migration_never_serves_stale_translations() {
    // A page is swapped out before the run; two migrating threads then
    // transact over it. The major fault remaps it to a fresh frame, so any
    // stale TLB entry would misdirect every later access — totals and
    // serializability prove none did.
    let data = VirtAddr::new(0x6000);
    let mk = |t: u32| {
        let mut ops = Vec::new();
        for _ in 0..50 {
            ops.push(begin(0x100 + u64::from(t) * 64));
            ops.push(Op::Rmw(data, 1));
            ops.push(Op::End);
            ops.push(Op::Compute(25));
        }
        ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
    };
    let mut cfg = MachineConfig::default();
    cfg.kernel.cs_interval = Some(5_000);
    cfg.kernel.migrate_on_cs = true;
    let programs: Vec<_> = (0..2).map(mk).collect();
    let mut m = Machine::new(
        cfg,
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    // Seed the page, then push it to swap before any thread runs (the
    // serial reference starts from zeroed memory, so seed with 0).
    let frame = m.prefault(ProcessId(0), data);
    m.memory_mut()
        .write_word(PhysAddr::from_frame(frame, data.page_offset()), 0);
    m.force_swap_out(ProcessId(0), data.vpn());
    m.run();

    assert_eq!(m.read_committed(ProcessId(0), data), 100);
    assert_eq!(m.kernel_stats().swap_ins, 1);
    assert!(m.kernel_stats().context_switches > 0, "migration ran");
    assert!(m.stats().tlb_hits > 0);
    assert_serializable(&m, &programs);
}
