//! Property tests for the Block-STM layer: the multi-version map against a
//! sequential reference model, and executor determinism over random
//! (workload, thread-count) pairs.
//!
//! The workspace's proptest shim samples deterministically (seeds derived
//! from the test name) and reports the failing case number instead of
//! shrinking; re-running reproduces a failure exactly.

use proptest::prelude::*;
use ptm_sim::{
    run, run_parallel, ExecutorConfig, Machine, MachineConfig, MvMap, Op, ReadResult, SystemKind,
    ThreadProgram, TxnVersion,
};
use ptm_types::{
    BlockIdx, FrameId, Granularity, PhysBlock, ProcessId, ThreadId, VirtAddr, WordIdx,
};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Part 1: MvMap vs a sequential reference map.
// ---------------------------------------------------------------------------

/// One step of a Block-STM interaction history. Incarnations are tracked
/// per transaction by the driver (they only move forward, as in the real
/// scheduler), so events carry transaction and location indices only.
#[derive(Debug, Clone)]
enum MvEvent {
    /// `tx` publishes a value at the location (derived from the indices).
    Write { t: u8, b: u8, w: u8 },
    /// `tx` aborts: every entry it owns flips to ESTIMATE and its next
    /// execution runs as a higher incarnation.
    Abort { t: u8 },
    /// `tx` leaves the window: every entry it owns is deleted.
    Remove { t: u8 },
}

fn mv_event() -> impl Strategy<Value = MvEvent> {
    prop_oneof![
        5 => (0u8..6, 0u8..4, 0u8..4).prop_map(|(t, b, w)| MvEvent::Write { t, b, w }),
        2 => (0u8..6).prop_map(|t| MvEvent::Abort { t }),
        1 => (0u8..6).prop_map(|t| MvEvent::Remove { t }),
    ]
}

fn blk(n: u32) -> PhysBlock {
    PhysBlock::new(FrameId(n), BlockIdx(0))
}

/// Per location: `tx_index → (version, Some(value) | None-for-ESTIMATE)`.
type RefVersions = BTreeMap<u32, (TxnVersion, Option<u32>)>;

/// The reference: per location, an ordered version map updated by the
/// obvious sequential rules. `read` scans for the greatest key strictly
/// below the reader.
#[derive(Default)]
struct RefMap {
    locs: BTreeMap<(u32, u8), RefVersions>,
}

impl RefMap {
    fn read(&self, loc: (u32, u8), reader: u32) -> ReadResult {
        let Some(list) = self.locs.get(&loc) else {
            return ReadResult::NotFound;
        };
        match list.range(..reader).next_back() {
            None => ReadResult::NotFound,
            Some((_, (version, Some(value)))) => ReadResult::Value {
                version: *version,
                value: *value,
            },
            Some((tx, (_, None))) => ReadResult::Estimate { tx_index: *tx },
        }
    }

    fn latest_foreign(&self, loc: (u32, u8), me: u32) -> Option<TxnVersion> {
        let list = self.locs.get(&loc)?;
        list.iter()
            .rev()
            .find(|(tx, _)| **tx != me)
            .map(|(_, (v, _))| *v)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any interleaving of writes, aborts (ESTIMATE markers) and removals
    /// at arbitrary (tx_index, incarnation) pairs reads identically to the
    /// sequential reference map, for every (location, reader) pair, after
    /// every event.
    #[test]
    fn mvmap_matches_sequential_reference(events in prop::collection::vec(mv_event(), 1..80)) {
        let mut mv = MvMap::new();
        let mut reference = RefMap::default();
        let mut incarnation = [0u32; 6];
        let mut model_len = 0usize;

        for ev in &events {
            match *ev {
                MvEvent::Write { t, b, w } => {
                    let tx = u32::from(t);
                    let version = TxnVersion { tx_index: tx, incarnation: incarnation[t as usize] };
                    let value = 1 + u32::from(t) * 100 + u32::from(b) * 10 + u32::from(w);
                    mv.write((blk(u32::from(b)), WordIdx(w)), version, value);
                    let slot = reference.locs.entry((u32::from(b), w)).or_default();
                    if slot.insert(tx, (version, Some(value))).is_none() {
                        model_len += 1;
                    }
                }
                MvEvent::Abort { t } => {
                    let tx = u32::from(t);
                    mv.mark_estimates(tx);
                    incarnation[t as usize] += 1;
                    for list in reference.locs.values_mut() {
                        if let Some(entry) = list.get_mut(&tx) {
                            entry.1 = None;
                        }
                    }
                }
                MvEvent::Remove { t } => {
                    let tx = u32::from(t);
                    mv.remove(tx);
                    for list in reference.locs.values_mut() {
                        if list.remove(&tx).is_some() {
                            model_len -= 1;
                        }
                    }
                }
            }

            prop_assert_eq!(mv.len(), model_len);
            for b in 0..4u32 {
                for w in 0..4u8 {
                    let loc = (blk(b), WordIdx(w));
                    for reader in 0..8u32 {
                        prop_assert_eq!(
                            mv.read(loc, reader),
                            reference.read((b, w), reader),
                            "read at block {} word {} by tx {} after {:?}",
                            b, w, reader, ev
                        );
                        prop_assert_eq!(
                            mv.latest_foreign(loc, reader),
                            reference.latest_foreign((b, w), reader),
                            "latest_foreign at block {} word {} vs {}",
                            b, w, reader
                        );
                    }
                }
                let foreign_model = (0..8u32).map(|me| {
                    (0..4u8).any(|w| reference.latest_foreign((b, w), me).is_some())
                });
                for (me, want) in foreign_model.enumerate() {
                    prop_assert_eq!(mv.block_has_foreign(blk(b), me as u32), want);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Part 2: executor determinism over random (workload, thread-count) pairs.
// ---------------------------------------------------------------------------

/// One generated slot of a thread program: either a plain op or a whole
/// transaction over a handful of addresses.
#[derive(Debug, Clone)]
enum Segment {
    Compute(u32),
    Read(u8),
    Write(u8, u32),
    Rmw(u8, i32),
    /// `(address index, is_write)` accesses wrapped in Begin/End.
    Tx(Vec<(u8, bool)>),
}

fn segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        2 => (1u32..6).prop_map(Segment::Compute),
        2 => (0u8..12).prop_map(Segment::Read),
        2 => (0u8..12, 1u32..1000).prop_map(|(a, v)| Segment::Write(a, v)),
        2 => (0u8..12, 1i32..5).prop_map(|(a, d)| Segment::Rmw(a, d)),
        3 => prop::collection::vec((0u8..12, any::<bool>()), 1..5).prop_map(Segment::Tx),
    ]
}

/// Address pool: indices 0..4 hit one shared region (cross-thread
/// conflicts), 4..12 hit a per-thread private region (speculation-friendly
/// disjoint work).
fn addr(thread: usize, idx: u8) -> VirtAddr {
    if idx < 4 {
        VirtAddr::new(0x4000 + u64::from(idx) * 4)
    } else {
        VirtAddr::new(0x10_0000 + (thread as u64) * 0x2000 + u64::from(idx - 4) * 4)
    }
}

fn programs_from(segments: &[Vec<Segment>]) -> Vec<ThreadProgram> {
    let pid = ProcessId(3);
    segments
        .iter()
        .enumerate()
        .map(|(t, segs)| {
            let mut ops = Vec::new();
            for seg in segs {
                match seg {
                    Segment::Compute(c) => ops.push(Op::Compute(*c)),
                    Segment::Read(a) => ops.push(Op::Read(addr(t, *a))),
                    Segment::Write(a, v) => ops.push(Op::Write(addr(t, *a), *v)),
                    Segment::Rmw(a, d) => ops.push(Op::Rmw(addr(t, *a), *d)),
                    Segment::Tx(accesses) => {
                        ops.push(Op::Begin {
                            ordered: None,
                            lock: VirtAddr::new(0x9000),
                        });
                        for (a, is_write) in accesses {
                            if *is_write {
                                ops.push(Op::Rmw(addr(t, *a), 1));
                            } else {
                                ops.push(Op::Read(addr(t, *a)));
                            }
                        }
                        ops.push(Op::End);
                    }
                }
            }
            ThreadProgram::new(pid, ThreadId(t as u32), ops)
        })
        .collect()
}

/// Everything observable about a finished machine, in deterministic order.
fn fingerprint(m: &Machine) -> String {
    let s = m.stats();
    format!(
        "cycles={} mem_ops={} begins={} commits={} aborts={} stalls={} \
         tlb={}h/{}m l2={}miss checksums={:?} commit_log={:?} kernel={:?} bus={:?}",
        s.cycles,
        s.mem_ops,
        s.begins,
        s.commits,
        s.aborts,
        s.stall_cycles,
        s.tlb_hits,
        s.tlb_misses,
        s.l2_misses,
        m.checksums(),
        s.commit_log,
        m.kernel_stats(),
        m.bus_stats(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random workloads stay bit-identical to `Machine::run` at every
    /// executor thread count in {1, 2, 4, 8} and across epoch sizes.
    #[test]
    fn executor_is_deterministic_across_thread_counts(
        segments in prop::collection::vec(prop::collection::vec(segment(), 5..40), 2..5),
        kind_idx in 0u8..4,
        epoch_cycles in prop_oneof![Just(256u64), Just(4096u64), Just(16384u64)],
    ) {
        let kind = match kind_idx {
            0 => SystemKind::SelectPtm(Granularity::Block),
            1 => SystemKind::CopyPtm,
            2 => SystemKind::Vtm,
            _ => SystemKind::LogTm,
        };
        let programs = programs_from(&segments);
        let cfg = MachineConfig::default();
        let seq = run(cfg, kind, programs.clone());
        let want = fingerprint(&seq);
        for threads in [1usize, 2, 4, 8] {
            let exec = ExecutorConfig { threads, epoch_cycles };
            let (m, _) = run_parallel(cfg, kind, programs.clone(), &exec);
            prop_assert_eq!(
                fingerprint(&m),
                want.clone(),
                "{} with {} executor threads (epoch {}) diverged from sequential",
                kind, threads, epoch_cycles
            );
        }
    }
}
