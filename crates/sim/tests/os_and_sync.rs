//! OS-model and synchronization edge cases: TLB behaviour, multi-process
//! paging, multi-lock critical sections, interleaved ordered groups, and
//! barrier lifecycles.

use ptm_cache::CacheConfig;
use ptm_sim::{
    assert_serializable, run, Machine, MachineConfig, Op, OrderedSeq, SystemKind, ThreadProgram,
};
use ptm_types::{Granularity, ProcessId, ThreadId, VirtAddr};

fn begin(lock: u64) -> Op {
    Op::Begin {
        ordered: None,
        lock: VirtAddr::new(lock),
    }
}

#[test]
fn tlb_capacity_shows_up_as_walk_latency() {
    // A single thread striding over more pages than a tiny TLB holds: the
    // second sweep must still pay walks; with a large TLB it must not.
    let pages = 32u64;
    let mk = || {
        let mut ops = Vec::new();
        for sweep in 0..2 {
            for p in 0..pages {
                ops.push(Op::Read(VirtAddr::new(0x100_0000 + p * 4096 + sweep)));
            }
        }
        vec![ThreadProgram::new(ProcessId(0), ThreadId(0), ops)]
    };
    // Disable the per-core TLB so the kernel's TLB capacity is what the
    // access stream actually exercises.
    let mut small = MachineConfig {
        core_tlb_entries: 0,
        ..MachineConfig::default()
    };
    small.kernel.tlb_entries = 4;
    let m_small = run(small, SystemKind::Serial, mk());

    let big = MachineConfig {
        core_tlb_entries: 0,
        ..MachineConfig::default()
    };
    let m_big = run(big, SystemKind::Serial, mk());
    assert!(
        m_small.kernel_stats().tlb_misses >= m_big.kernel_stats().tlb_misses + pages,
        "tiny TLB must keep missing: {} vs {}",
        m_small.kernel_stats().tlb_misses,
        m_big.kernel_stats().tlb_misses
    );
    assert!(m_small.stats().cycles > m_big.stats().cycles);
}

#[test]
fn two_processes_page_independently() {
    // Same virtual addresses in two processes: both run transactions over
    // "their" page; totals are independent.
    let va = VirtAddr::new(0x5000);
    let mk = |pid: u16, t: u32, delta: i32| {
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push(begin(0x100 + u64::from(t) * 64));
            ops.push(Op::Rmw(va, delta));
            ops.push(Op::End);
        }
        ThreadProgram::new(ProcessId(pid), ThreadId(t), ops)
    };
    let m = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        vec![mk(0, 0, 1), mk(1, 1, 5)],
    );
    assert_eq!(m.read_committed(ProcessId(0), va), 10);
    assert_eq!(m.read_committed(ProcessId(1), va), 50);
}

#[test]
fn multi_lock_critical_sections_nest_correctly() {
    // Lock mode: nested Begins acquire multiple locks; both threads take
    // (own, shared) in a consistent order — mutual exclusion on the shared
    // data, parallelism elsewhere.
    let shared = 0x10_0000u64;
    let mk = |t: u64| {
        let mut ops = Vec::new();
        for _ in 0..12 {
            ops.push(begin(0x200 + t * 64)); // own lock
            ops.push(Op::Rmw(VirtAddr::new(0x20_0000 + t * 4096), 1)); // private
            ops.push(begin(0x300)); // shared lock (inner)
            ops.push(Op::Rmw(VirtAddr::new(shared), 1));
            ops.push(Op::End);
            ops.push(Op::End);
        }
        ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops)
    };
    let programs: Vec<_> = (0..4).map(mk).collect();
    let m = run(
        MachineConfig::default(),
        SystemKind::Locks,
        programs.clone(),
    );
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(shared)), 48);
    for t in 0..4u64 {
        assert_eq!(
            m.read_committed(ProcessId(0), VirtAddr::new(0x20_0000 + t * 4096)),
            12
        );
    }
    assert_serializable(&m, &programs);
}

#[test]
fn independent_ordered_groups_interleave_freely() {
    // Two ordered groups on two thread pairs: group constraints hold within
    // each group, not across.
    let mk = |t: u64, group: u32| {
        let mut ops = Vec::new();
        for i in 0..5u64 {
            let seq = i * 2 + (t % 2);
            ops.push(Op::Begin {
                ordered: Some(OrderedSeq { group, seq }),
                lock: VirtAddr::new(0x100 + t * 64),
            });
            ops.push(Op::Rmw(
                VirtAddr::new(0x30_0000 + u64::from(group) * 4096),
                1,
            ));
            ops.push(Op::End);
            ops.push(Op::Compute(30));
        }
        ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops)
    };
    let programs = vec![mk(0, 1), mk(1, 1), mk(2, 2), mk(3, 2)];
    let m = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    assert_eq!(m.stats().commits, 20);
    assert_eq!(
        m.read_committed(ProcessId(0), VirtAddr::new(0x30_0000 + 4096)),
        10
    );
    assert_eq!(
        m.read_committed(ProcessId(0), VirtAddr::new(0x30_0000 + 8192)),
        10
    );
    assert_serializable(&m, &programs);
}

#[test]
fn barriers_line_up_unbalanced_work() {
    // Thread 0 does 10x the work of the others before each barrier; the
    // final phase's writes must still see every thread's pre-barrier work.
    let mk = |t: u64| {
        let mut ops = Vec::new();
        let reps = if t == 0 { 40 } else { 4 };
        for _ in 0..reps {
            ops.push(begin(0x100 + t * 64));
            ops.push(Op::Rmw(VirtAddr::new(0x40_0000 + t * 4), 1));
            ops.push(Op::End);
        }
        ops.push(Op::Barrier(0));
        // Post-barrier: one transaction sums the phase-one counters into a
        // result cell (reads cross-thread data race-free thanks to the
        // barrier).
        ops.push(begin(0x200 + t * 64));
        for o in 0..4u64 {
            ops.push(Op::Read(VirtAddr::new(0x40_0000 + o * 4)));
        }
        ops.push(Op::Rmw(VirtAddr::new(0x41_0000), 1));
        ops.push(Op::End);
        ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops)
    };
    let programs: Vec<_> = (0..4).map(mk).collect();
    let m = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(0x40_0000)), 40);
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(0x40_0004)), 4);
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(0x41_0000)), 4);
    assert_serializable(&m, &programs);
}

#[test]
fn barrier_with_finished_threads_does_not_hang() {
    // A thread finishing all its barriers while others still compute: the
    // machine must drain without deadlock (all threads emit all barriers).
    let mk = |t: u64| {
        let mut ops = Vec::new();
        ops.push(Op::Compute(if t == 0 { 10_000 } else { 10 }));
        ops.push(Op::Barrier(0));
        ops.push(Op::Compute(5));
        ops.push(Op::Barrier(1));
        ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops)
    };
    let m = run(MachineConfig::default(), SystemKind::Serial, vec![mk(0)]);
    assert!(m.stats().cycles >= 10_000);
    let m = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        (0..4).map(mk).collect(),
    );
    assert!(
        m.stats().cycles >= 10_000,
        "everyone waited for the slow thread"
    );
}

#[test]
fn swap_pressure_during_lock_mode_is_transparent() {
    // Lock-mode threads over a page that was swapped out beforehand.
    let data = VirtAddr::new(0x6000);
    let mk = |t: u32| {
        ThreadProgram::new(
            ProcessId(0),
            ThreadId(t),
            vec![begin(0x100), Op::Rmw(data, 1), Op::End],
        )
    };
    let mut m = Machine::new(
        MachineConfig {
            l1: CacheConfig::tiny(2, 1),
            l2: CacheConfig::tiny(4, 2),
            ..MachineConfig::default()
        },
        SystemKind::Locks,
        (0..4).map(mk).collect(),
    );
    let frame = m.prefault(ProcessId(0), data);
    let pa = ptm_types::PhysAddr::from_frame(frame, data.page_offset());
    m.memory_mut().write_word(pa, 100);
    m.force_swap_out(ProcessId(0), data.vpn());
    m.run();
    assert_eq!(m.read_committed(ProcessId(0), data), 104);
    assert_eq!(m.kernel_stats().swap_ins, 1);
}
