//! Reference-executor and runner edge cases.

use ptm_sim::{
    diff_against_machine, run, serial_reference, serialize_programs, speedup_vs_serial,
    MachineConfig, Op, SystemKind, ThreadProgram,
};
use ptm_types::{Granularity, ProcessId, ThreadId, VirtAddr};

fn begin(lock: u64) -> Op {
    Op::Begin {
        ordered: None,
        lock: VirtAddr::new(lock),
    }
}

#[test]
fn empty_commit_log_replays_barrier_phases() {
    // Serial/lock-style replay: writes to the same word across a barrier
    // must respect phase order, not thread order.
    let a = ThreadProgram::new(
        ProcessId(0),
        ThreadId(0),
        vec![
            Op::Barrier(0),
            Op::Write(VirtAddr::new(0x1000), 2), // phase 2 (after barrier)
        ],
    );
    let b = ThreadProgram::new(
        ProcessId(0),
        ThreadId(1),
        vec![
            Op::Write(VirtAddr::new(0x1000), 1), // phase 1 (before barrier)
            Op::Barrier(0),
        ],
    );
    let mem = serial_reference(&[a, b], &[]);
    assert_eq!(
        mem[&(ProcessId(0), VirtAddr::new(0x1000))],
        2,
        "phase-2 write wins even though thread 0 comes first"
    );
}

#[test]
fn reference_detects_injected_divergence() {
    // Sanity of the oracle itself: corrupt the machine's memory after a run
    // and the diff must notice.
    let prog = ThreadProgram::new(
        ProcessId(0),
        ThreadId(0),
        vec![begin(0x100), Op::Write(VirtAddr::new(0x2000), 7), Op::End],
    );
    let mut m = ptm_sim::Machine::new(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        vec![prog.clone()],
    );
    m.run();
    assert!(diff_against_machine(&m, std::slice::from_ref(&prog)).is_empty());

    // Corrupt the committed word behind the system's back.
    let frame = m.prefault(ProcessId(0), VirtAddr::new(0x2000));
    let pa = ptm_types::PhysAddr::from_frame(frame, 0);
    m.memory_mut().write_word(pa, 999);
    let diffs = diff_against_machine(&m, &[prog]);
    assert_eq!(diffs.len(), 1);
    assert_eq!(diffs[0].expected, 7);
    assert_eq!(diffs[0].actual, 999);
}

#[test]
fn serialization_preserves_total_work() {
    let programs: Vec<_> = (0..4)
        .map(|t| {
            ThreadProgram::new(
                ProcessId(0),
                ThreadId(t),
                vec![
                    begin(0x100),
                    Op::Rmw(VirtAddr::new(0x3000), 1),
                    Op::End,
                    Op::Compute(5),
                ],
            )
        })
        .collect();
    let serial = serialize_programs(&programs);
    assert_eq!(serial.len(), 1);
    assert_eq!(
        serial[0].len(),
        programs.iter().map(|p| p.len()).sum::<usize>()
    );
    // Running it serially produces the same totals.
    let m = run(MachineConfig::default(), SystemKind::Serial, serial);
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(0x3000)), 4);
}

#[test]
fn speedup_helper_is_consistent_with_manual_runs() {
    let programs: Vec<_> = (0..4)
        .map(|t| {
            let base = 0x100_0000 + t as u64 * 0x10_0000;
            let mut ops = Vec::new();
            for i in 0..50u64 {
                ops.push(begin(0x100 + t as u64 * 64));
                ops.push(Op::Rmw(VirtAddr::new(base + i * 64), 1));
                ops.push(Op::Compute(30));
                ops.push(Op::End);
            }
            ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
        })
        .collect();
    let kind = SystemKind::SelectPtm(Granularity::Block);
    let (s, p, pct) = speedup_vs_serial(MachineConfig::default(), kind, programs.clone());
    assert!(s > p, "disjoint work parallelizes");
    assert!(pct > 0.0);
    // Determinism: re-running reproduces the same numbers.
    let (s2, p2, pct2) = speedup_vs_serial(MachineConfig::default(), kind, programs);
    assert_eq!((s, p), (s2, p2));
    assert_eq!(pct, pct2);
}

#[test]
fn checksums_are_deterministic_and_order_sensitive() {
    let mk = || {
        vec![ThreadProgram::new(
            ProcessId(0),
            ThreadId(0),
            vec![
                begin(0x100),
                Op::Write(VirtAddr::new(0x1000), 5),
                Op::Read(VirtAddr::new(0x1000)),
                Op::End,
            ],
        )]
    };
    let m1 = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        mk(),
    );
    let m2 = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        mk(),
    );
    assert_eq!(m1.checksums(), m2.checksums());
    assert_ne!(m1.checksums()[0], 0, "reads fed the checksum");
}
