//! Determinism suite for the speculative epoch executor: the same
//! (workload, system) cell must produce **bit-identical** results with 1,
//! 2, and 4 executor threads — and all of them identical to the plain
//! sequential `Machine::run`.
//!
//! Debug builds additionally re-verify every consumed speculative step
//! against the live machine state (`debug_validate_access`), so these tests
//! double as a proof harness for the executor's poison rules.

use ptm_sim::{
    run, run_parallel, ExecutorConfig, Machine, MachineConfig, Op, SystemKind, ThreadProgram,
};
use ptm_types::{Granularity, ProcessId, ThreadId, VirtAddr};

/// Everything observable about a finished machine, in deterministic order.
fn fingerprint(m: &Machine) -> String {
    let s = m.stats();
    let mut pages: Vec<_> = s.pages.iter().collect();
    pages.sort();
    let mut tx_pages: Vec<_> = s.tx_write_pages.iter().collect();
    tx_pages.sort();
    format!(
        "cycles={} mem_ops={} begins={} commits={} aborts={} stalls={} \
         tlb={}h/{}m/{}s l2={}miss/{}evict pages={pages:?} tx_pages={tx_pages:?} \
         checksums={:?} commit_log={:?} kernel={:?} bus={:?}",
        s.cycles,
        s.mem_ops,
        s.begins,
        s.commits,
        s.aborts,
        s.stall_cycles,
        s.tlb_hits,
        s.tlb_misses,
        s.tlb_shootdowns,
        s.l2_misses,
        s.l2_evictions,
        m.checksums(),
        s.commit_log,
        m.kernel_stats(),
        m.bus_stats(),
    )
}

/// Committed memory contents over the workload's footprint.
fn memory_image(m: &Machine, pid: ProcessId, words: &[u64]) -> Vec<u32> {
    words
        .iter()
        .map(|&w| m.read_committed(pid, VirtAddr::new(w)))
        .collect()
}

/// Runs the cell sequentially and with 1/2/4 executor threads, asserting
/// bit-identical outcomes; returns the executor stats of the 4-thread run.
fn assert_deterministic(
    cfg: MachineConfig,
    kind: SystemKind,
    programs: Vec<ThreadProgram>,
    epoch_cycles: u64,
    footprint: &[u64],
) -> ptm_sim::ExecStats {
    let pid = programs[0].pid();
    let seq = run(cfg, kind, programs.clone());
    let want = fingerprint(&seq);
    let want_mem = memory_image(&seq, pid, footprint);
    let mut last = None;
    for threads in [1, 2, 4] {
        let exec = ExecutorConfig {
            threads,
            epoch_cycles,
        };
        let (m, xs) = run_parallel(cfg, kind, programs.clone(), &exec);
        assert_eq!(
            fingerprint(&m),
            want,
            "{kind} with {threads} executor threads diverged from sequential"
        );
        assert_eq!(
            memory_image(&m, pid, footprint),
            want_mem,
            "{kind} with {threads} executor threads corrupted memory"
        );
        last = Some(xs);
    }
    last.expect("ran at least one configuration")
}

/// A contended transactional workload: every thread read-modify-writes a
/// shared counter block inside transactions, with private work between.
fn contended_programs(threads: usize, txs: usize) -> (Vec<ThreadProgram>, Vec<u64>) {
    let pid = ProcessId(1);
    let shared = 0x4000u64;
    let mut footprint = vec![shared];
    let progs = (0..threads)
        .map(|t| {
            let private = 0x10_0000 + (t as u64) * 0x2000;
            footprint.push(private);
            let mut ops = Vec::new();
            for i in 0..txs {
                ops.push(Op::Compute(3 + (t as u32 % 5)));
                ops.push(Op::Begin {
                    ordered: None,
                    lock: VirtAddr::new(0x9000),
                });
                ops.push(Op::Rmw(VirtAddr::new(shared), 1));
                ops.push(Op::Rmw(VirtAddr::new(private + (i as u64 % 16) * 4), 1));
                ops.push(Op::End);
                ops.push(Op::Write(VirtAddr::new(private), (t * 1000 + i) as u32));
                ops.push(Op::Read(VirtAddr::new(shared)));
            }
            ThreadProgram::new(pid, ThreadId(t as u32), ops)
        })
        .collect();
    (progs, footprint)
}

/// A mostly-disjoint workload with long private phases and one barrier,
/// so speculation gets long uninterrupted runs.
fn phased_programs(threads: usize) -> (Vec<ThreadProgram>, Vec<u64>) {
    let pid = ProcessId(2);
    let mut footprint = Vec::new();
    let progs = (0..threads)
        .map(|t| {
            let base = 0x20_0000 + (t as u64) * 0x4000;
            footprint.push(base);
            footprint.push(base + 256);
            let mut ops = Vec::new();
            for i in 0..200u64 {
                ops.push(Op::Write(VirtAddr::new(base + (i % 64) * 4), i as u32));
                ops.push(Op::Compute(2));
                ops.push(Op::Read(VirtAddr::new(base + ((i * 7) % 64) * 4)));
            }
            ops.push(Op::Barrier(1));
            for i in 0..100u64 {
                ops.push(Op::Rmw(VirtAddr::new(base + 256 + (i % 16) * 4), 2));
            }
            ThreadProgram::new(pid, ThreadId(t as u32), ops)
        })
        .collect();
    (progs, footprint)
}

#[test]
fn select_ptm_contended_is_bit_identical() {
    let (progs, fp) = contended_programs(4, 40);
    let xs = assert_deterministic(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        progs,
        ExecutorConfig::DEFAULT_EPOCH_CYCLES,
        &fp,
    );
    assert!(xs.spec_steps > 0, "nothing was speculated: {xs:?}");
    assert!(xs.committed_spec_steps > 0, "nothing consumed: {xs:?}");
}

#[test]
fn phased_disjoint_is_bit_identical_and_mostly_speculated() {
    // Small epochs so speculation restarts often against warm caches
    // (the workload is short; one default-size epoch would cover it all
    // and the single cold-cache speculation pass would find nothing).
    let (progs, fp) = phased_programs(4);
    let xs = assert_deterministic(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        progs,
        256,
        &fp,
    );
    assert!(
        xs.spec_commit_fraction() > 0.5,
        "disjoint phases should speculate well: {xs:?}"
    );
}

#[test]
fn copy_ptm_and_vtm_and_logtm_are_bit_identical() {
    for kind in [SystemKind::CopyPtm, SystemKind::Vtm, SystemKind::LogTm] {
        let (progs, fp) = contended_programs(3, 25);
        assert_deterministic(
            MachineConfig::default(),
            kind,
            progs,
            ExecutorConfig::DEFAULT_EPOCH_CYCLES,
            &fp,
        );
    }
}

#[test]
fn word_granularity_is_bit_identical() {
    // wd:cache disables transactional speculation (the overflow-check gate);
    // non-transactional runs must still match exactly.
    let (progs, fp) = contended_programs(3, 20);
    assert_deterministic(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::WordCache),
        progs,
        ExecutorConfig::DEFAULT_EPOCH_CYCLES,
        &fp,
    );
}

#[test]
fn context_switches_and_migration_are_bit_identical() {
    // Frequent context switches with thread migration: the strongest
    // cross-core reordering stress (programs swap cores mid-run).
    let mut cfg = MachineConfig::default();
    cfg.kernel.cs_interval = Some(1_500);
    cfg.kernel.cs_cost = 120;
    cfg.kernel.migrate_on_cs = true;
    cfg.kernel.exc_interval = Some(4_000);
    let (progs, fp) = contended_programs(4, 30);
    let xs = assert_deterministic(
        cfg,
        SystemKind::SelectPtm(Granularity::Block),
        progs,
        ExecutorConfig::DEFAULT_EPOCH_CYCLES,
        &fp,
    );
    assert!(xs.poison_events > 0, "migrations must poison: {xs:?}");
}

#[test]
fn epoch_size_one_forces_validation_and_stays_bit_identical() {
    // One-cycle epochs: every speculative step crosses an epoch boundary,
    // stressing rollback/re-execution continuously.
    let (progs, fp) = contended_programs(4, 25);
    let xs = assert_deterministic(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        progs,
        1,
        &fp,
    );
    assert!(
        xs.rollbacks > 0,
        "1-cycle epochs must discard run-ahead: {xs:?}"
    );
    assert!(xs.reexecuted_steps > 0, "{xs:?}");
}

#[test]
fn serial_and_locks_modes_are_bit_identical() {
    // Non-transactional execution modes go through the same hit fast path.
    let (progs, fp) = contended_programs(2, 15);
    for kind in [SystemKind::Locks, SystemKind::Serial] {
        let progs = if kind == SystemKind::Serial {
            vec![progs[0].clone()]
        } else {
            progs.clone()
        };
        assert_deterministic(
            MachineConfig::default(),
            kind,
            progs,
            ExecutorConfig::DEFAULT_EPOCH_CYCLES,
            &fp,
        );
    }
}
