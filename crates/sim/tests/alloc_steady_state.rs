//! Steady-state allocation discipline for the sequential cycle loop.
//!
//! The raw-speed pass moved the hot structures to preallocated
//! arena/slab layouts, so once a machine has warmed up (pages touched,
//! caches filled, TLB slab built) the cycle loop must not allocate at
//! all. Rather than instrument the loop itself, this test measures the
//! *total* allocation count of two runs that differ only in how many
//! times they replay the same working set: every allocation lives in
//! setup or first touch, so doubling the op count must not change the
//! count. A per-op (or per-cycle) allocation anywhere in the loop makes
//! the counts diverge by thousands and fails loudly.
//!
//! The workloads are non-transactional on purpose: transactional commits
//! legitimately grow per-transaction logs, while the plain cycle loop —
//! fetch, translate, cache, coherence, stats — claims to be allocation
//! free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ptm_sim::{run, MachineConfig, Op, SystemKind, ThreadProgram};
use ptm_types::{ProcessId, ThreadId, VirtAddr};

/// Forwards to the system allocator, counting every alloc/realloc call.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Two threads replaying reads, writes and RMWs over a fixed 16-page
/// working set, `reps` times. Identical first-touch footprint for any
/// `reps >= 1`; only the number of steady-state loop iterations varies.
fn programs(reps: usize) -> Vec<ThreadProgram> {
    let base = 0x40_0000u64;
    let pages = 16u64;
    (0..2u32)
        .map(|t| {
            let mut ops = Vec::new();
            for r in 0..reps {
                for p in 0..pages {
                    let addr = VirtAddr::new(base + p * 4096 + u64::from(t) * 64);
                    ops.push(Op::Write(addr, (r as u32) ^ (p as u32)));
                    ops.push(Op::Read(addr));
                    ops.push(Op::Rmw(addr, 3));
                    ops.push(Op::Compute(2));
                }
            }
            ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
        })
        .collect()
}

/// Allocation count of one full machine run (construction + cycle loop).
fn allocs_for(reps: usize) -> u64 {
    let programs = programs(reps);
    let before = ALLOCS.load(Ordering::Relaxed);
    let m = run(MachineConfig::default(), SystemKind::Vtm, programs);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(m.stats().cycles > 0, "machine ran");
    after - before
}

#[test]
fn steady_state_cycle_loop_is_allocation_free() {
    // Warm-up run so lazily initialized process/test-harness state does
    // not bill its allocations to the first measured run.
    let _ = allocs_for(1);

    let short = allocs_for(50);
    let long = allocs_for(100);
    assert_eq!(
        short, long,
        "doubling the steady-state iteration count changed the allocation \
         count: the cycle loop allocates per-op ({short} vs {long} allocations)"
    );
}
