//! Integration and property tests for the durable-log seam.
//!
//! The durability layer is opt-in and must be *transparent* when it costs
//! nothing: an eager-forced, zero-latency, fault-free log attached to a
//! machine must leave every observable simulated result — cycles, commit
//! log, checksums, kernel and bus counters — bit-identical to the same
//! machine running volatile. Crashing a durable run anywhere and
//! recovering must satisfy the committed-prefix oracle and be idempotent,
//! and the log-integrity invariants (no phantom commits, no undo-replay
//! mismatches, no missing commit records under eager forcing) must hold
//! under injected device faults. A device stalled hard must throttle
//! commits, never deadlock them.

use proptest::prelude::*;
use ptm_core::durability::{DurabilityConfig, ForcePolicy, MAX_LOG_RETRIES};
use ptm_mem::{LogDevConfig, LogFaultPlan};
use ptm_sim::crash::CrashPlan;
use ptm_sim::{Machine, MachineConfig, Op, SystemKind, ThreadProgram};
use ptm_types::{Granularity, ProcessId, ThreadId, VirtAddr};

// ---------------------------------------------------------------------------
// Random workload generation (shared-vs-private address pool, like
// mvmap_prop's executor part, but biased toward transactions that write:
// undo/redo logging only fires on dirty overflows and commits).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Segment {
    Compute(u32),
    /// `(address index, is_write)` accesses wrapped in Begin/End.
    Tx(Vec<(u8, bool)>),
}

fn segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        1 => (1u32..6).prop_map(Segment::Compute),
        4 => prop::collection::vec((0u8..12, any::<bool>()), 1..8).prop_map(Segment::Tx),
    ]
}

fn addr(thread: usize, idx: u8) -> VirtAddr {
    if idx < 4 {
        VirtAddr::new(0x4000 + u64::from(idx) * 4)
    } else {
        VirtAddr::new(0x10_0000 + (thread as u64) * 0x2000 + u64::from(idx - 4) * 4)
    }
}

fn programs_from(segments: &[Vec<Segment>]) -> Vec<ThreadProgram> {
    let pid = ProcessId(3);
    segments
        .iter()
        .enumerate()
        .map(|(t, segs)| {
            let mut ops = Vec::new();
            for seg in segs {
                match seg {
                    Segment::Compute(c) => ops.push(Op::Compute(*c)),
                    Segment::Tx(accesses) => {
                        ops.push(Op::Begin {
                            ordered: None,
                            lock: VirtAddr::new(0x9000),
                        });
                        for (a, is_write) in accesses {
                            if *is_write {
                                ops.push(Op::Rmw(addr(t, *a), 1));
                            } else {
                                ops.push(Op::Read(addr(t, *a)));
                            }
                        }
                        ops.push(Op::End);
                    }
                }
            }
            ThreadProgram::new(pid, ThreadId(t as u32), ops)
        })
        .collect()
}

fn kind_of(choice: u8) -> SystemKind {
    match choice % 4 {
        0 => SystemKind::CopyPtm,
        1 => SystemKind::SelectPtm(Granularity::Block),
        2 => SystemKind::SelectPtm(Granularity::WordCache),
        _ => SystemKind::LogTm,
    }
}

/// Everything observable about a finished machine, in deterministic order.
fn fingerprint(m: &Machine) -> String {
    let s = m.stats();
    format!(
        "cycles={} mem_ops={} begins={} commits={} aborts={} stalls={} \
         tlb={}h/{}m l2={}miss checksums={:?} commit_log={:?} kernel={:?} bus={:?}",
        s.cycles,
        s.mem_ops,
        s.begins,
        s.commits,
        s.aborts,
        s.stall_cycles,
        s.tlb_hits,
        s.tlb_misses,
        s.l2_misses,
        m.checksums(),
        s.commit_log,
        m.kernel_stats(),
        m.bus_stats(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// A zero-cost, fault-free, eager-forced log is observationally free:
    /// the durable run is bit-identical to the volatile run on every
    /// system kind and workload — LogTM's forced WAL appends included.
    #[test]
    fn zero_cost_eager_durability_is_transparent(
        segments in prop::collection::vec(prop::collection::vec(segment(), 1..12), 1..4),
        kind_choice in 0u8..4,
    ) {
        let kind = kind_of(kind_choice);
        let programs = programs_from(&segments);

        let mut volatile = Machine::new(MachineConfig::default(), kind, programs.clone());
        volatile.run();

        let mut durable = Machine::new(MachineConfig::default(), kind, programs);
        durable.enable_durability(DurabilityConfig::zero_cost_eager());
        durable.run();

        prop_assert_eq!(fingerprint(&volatile), fingerprint(&durable));
        let dur = durable.durable_stats().expect("durable machine");
        prop_assert_eq!(dur.commit_latency_cycles, 0, "zero-cost must charge nothing");
        prop_assert_eq!(dur.throttle_events, 0);
    }

    /// Crashing a fault-injected durable run anywhere and recovering
    /// satisfies the committed-prefix oracle, is idempotent, and upholds
    /// the log-integrity invariants under every force policy.
    #[test]
    fn durable_crash_recovery_is_oracle_clean_and_idempotent(
        segments in prop::collection::vec(prop::collection::vec(segment(), 1..12), 1..4),
        kind_choice in 0u8..2, // undo verification targets block granularity
        policy_choice in 0u8..3,
        fault_seed in 0u64..16,
        crash_fraction in 0.0f64..1.0,
    ) {
        let kind = kind_of(kind_choice);
        let policy = match policy_choice {
            0 => ForcePolicy::Eager,
            1 => ForcePolicy::Lazy,
            _ => ForcePolicy::Group(3),
        };
        let cfg = DurabilityConfig {
            policy,
            dev: LogDevConfig::realistic(),
            faults: LogFaultPlan::from_seed(fault_seed),
        };
        let programs = programs_from(&segments);

        // Probe for the run length, then crash at the chosen fraction.
        let total = {
            let mut m = Machine::new(MachineConfig::default(), kind, programs.clone());
            m.enable_durability(cfg);
            m.run_until_crash(&CrashPlan::at_step(u64::MAX)).step
        };
        let crash_step = ((total as f64) * crash_fraction) as u64;

        let mut m = Machine::new(MachineConfig::default(), kind, programs.clone());
        m.enable_durability(cfg);
        let mut img = m.run_until_crash(&CrashPlan::at_step(crash_step));
        prop_assert!(img.log.is_some(), "durable crash image must carry the log");

        let stats = img.recover();
        prop_assert_eq!(stats.log_phantom_commits, 0, "phantom commit records");
        prop_assert_eq!(stats.log_replay_mismatches, 0, "undo pre-image contradicts memory");
        if policy == ForcePolicy::Eager {
            prop_assert_eq!(
                stats.log_commits_missing, 0,
                "eager forcing must persist every commit record"
            );
        }
        prop_assert_eq!(img.diff_committed(&programs), Vec::new());
        prop_assert!(img.recover().is_noop(), "second recovery must be a no-op");
    }

    /// LogTM's undo records route through the same durable log: crashing a
    /// fault-injected eager-versioning run anywhere and replaying the
    /// *device* log — the software undo logs are volatile and cleared from
    /// the image — satisfies the committed-prefix oracle, is idempotent,
    /// and upholds the integrity invariants under eager, lazy and group
    /// forcing (the WAL appends are forced regardless of policy).
    #[test]
    fn logtm_unified_log_crash_recovery_is_oracle_clean_and_idempotent(
        segments in prop::collection::vec(prop::collection::vec(segment(), 1..12), 1..4),
        policy_choice in 0u8..3,
        fault_seed in 0u64..16,
        crash_fraction in 0.0f64..1.0,
    ) {
        let policy = match policy_choice {
            0 => ForcePolicy::Eager,
            1 => ForcePolicy::Lazy,
            _ => ForcePolicy::Group(4),
        };
        let cfg = DurabilityConfig {
            policy,
            dev: LogDevConfig::realistic(),
            faults: LogFaultPlan::from_seed(fault_seed),
        };
        let programs = programs_from(&segments);

        let total = {
            let mut m = Machine::new(MachineConfig::default(), SystemKind::LogTm, programs.clone());
            m.enable_durability(cfg);
            m.run_until_crash(&CrashPlan::at_step(u64::MAX)).step
        };
        let crash_step = ((total as f64) * crash_fraction) as u64;

        let mut m = Machine::new(MachineConfig::default(), SystemKind::LogTm, programs.clone());
        m.enable_durability(cfg);
        let mut img = m.run_until_crash(&CrashPlan::at_step(crash_step));
        prop_assert!(img.log.is_some(), "durable crash image must carry the log");

        // The software undo logs must not have leaked into the durable
        // image: the unified log is the only recovery source.
        let logtm = img.backend.as_logtm().expect("LogTM backend");
        for tx in logtm.tstate().live_transactions() {
            prop_assert!(
                logtm.log_addrs(tx).is_empty(),
                "volatile software undo log leaked into the crash image"
            );
        }

        let stats = img.recover();
        prop_assert_eq!(stats.log_phantom_commits, 0, "phantom commit records");
        prop_assert_eq!(stats.log_replay_mismatches, 0, "undo pre-image contradicts memory");
        if policy == ForcePolicy::Eager {
            prop_assert_eq!(
                stats.log_commits_missing, 0,
                "eager forcing must persist every commit record"
            );
        }
        prop_assert_eq!(img.diff_committed(&programs), Vec::new());
        prop_assert!(img.recover().is_noop(), "second recovery must be a no-op");
    }
}

/// A device that stalls constantly still lets the machine finish: commits
/// are throttled (deferred and retried), appends stay within the bounded
/// retry budget, and nothing deadlocks.
#[test]
fn hard_stalls_throttle_commits_without_deadlock() {
    let segments: Vec<Vec<Segment>> = (0..3)
        .map(|t| {
            (0..8)
                .map(|i| Segment::Tx(vec![(4 + ((t + i) % 8) as u8, true), (0, true)]))
                .collect()
        })
        .collect();
    let programs = programs_from(&segments);
    let mut m = Machine::new(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        programs,
    );
    m.enable_durability(DurabilityConfig {
        policy: ForcePolicy::Eager,
        dev: LogDevConfig::realistic(),
        faults: LogFaultPlan {
            seed: 999,
            transient_pct: 0,
            stall_pct: 60,
            stall_window: 4_000,
            reorder_pct: 0,
            reorder_jitter: 0,
            torn_pct: 0,
        },
    });
    m.run();
    let dur = m.durable_stats().expect("durable machine");
    let dev = m.log_dev_stats().expect("durable machine");
    assert!(m.stats().commits > 0, "the workload must commit");
    assert!(dev.stall_events > 0, "the stall plan never fired");
    assert!(
        dur.throttle_events > 0,
        "a stalled device must throttle commits, not pass them through"
    );
    assert!(
        dur.max_append_attempts <= MAX_LOG_RETRIES,
        "append attempts {} exceeded the bounded retry budget {}",
        dur.max_append_attempts,
        MAX_LOG_RETRIES
    );
}

/// A crash in the middle of an eager-versioning transaction finds its
/// in-place stores already sitting in memory; recovery must roll them back
/// from the forced word-undo records of the unified durable log — the
/// volatile software undo log is gone. Sweeps every crash step so at least
/// one catches the transaction mid-flight with pre-images logged.
#[test]
fn logtm_word_undo_replay_restores_midflight_stores() {
    let segments = vec![vec![
        Segment::Tx(vec![(0, true), (1, true), (4, true), (5, true)]),
        Segment::Compute(3),
    ]];
    let programs = programs_from(&segments);
    let cfg = DurabilityConfig {
        policy: ForcePolicy::Lazy, // WAL forcing is policy-independent
        dev: LogDevConfig::realistic(),
        faults: LogFaultPlan::none(),
    };
    let total = {
        let mut m = Machine::new(
            MachineConfig::default(),
            SystemKind::LogTm,
            programs.clone(),
        );
        m.enable_durability(cfg);
        m.run_until_crash(&CrashPlan::at_step(u64::MAX)).step
    };
    let mut exercised = false;
    for step in 0..total {
        let mut m = Machine::new(
            MachineConfig::default(),
            SystemKind::LogTm,
            programs.clone(),
        );
        m.enable_durability(cfg);
        let mut img = m.run_until_crash(&CrashPlan::at_step(step));
        let live = img
            .backend
            .as_logtm()
            .expect("LogTM backend")
            .tstate()
            .live_transactions();
        let logged = img.dur.as_ref().expect("durable image").word_undo_records;
        let stats = img.recover();
        if !live.is_empty() && logged > 0 {
            exercised = true;
            assert!(
                stats.log_word_undo_records > 0,
                "the scan must see the forced WAL records at step {step}"
            );
            assert!(
                stats.blocks_restored > 0,
                "a mid-flight crash must roll stores back at step {step}"
            );
        }
        img.assert_matches_reference(&programs);
        assert!(img.recover().is_noop(), "second recovery at step {step}");
    }
    assert!(exercised, "no crash step caught the transaction mid-flight");
}

/// The epoch executor refuses a durable machine: speculation replays
/// steps, which would double-append log records.
#[test]
#[should_panic(expected = "epoch executor does not support a durable log")]
fn epoch_executor_refuses_durable_machines() {
    let programs = programs_from(&[vec![Segment::Tx(vec![(0, true)])]]);
    let mut m = Machine::new(MachineConfig::default(), SystemKind::CopyPtm, programs);
    m.enable_durability(DurabilityConfig::zero_cost_eager());
    m.run_parallel(&ptm_sim::ExecutorConfig::default());
}
