//! End-to-end machine tests: multi-core transactional execution under every
//! backend, with the serial reference executor as ground truth.

use ptm_cache::CacheConfig;
use ptm_sim::{
    assert_serializable, run, serialize_programs, Machine, MachineConfig, Op, OrderedSeq,
    SystemKind, ThreadProgram,
};
use ptm_types::{Granularity, ProcessId, ThreadId, VirtAddr};

fn begin(lock: u64) -> Op {
    Op::Begin {
        ordered: None,
        lock: VirtAddr::new(lock),
    }
}

fn all_tm_systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Vtm,
        SystemKind::VictimVtm,
        SystemKind::CopyPtm,
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::SelectPtm(Granularity::WordCache),
        SystemKind::SelectPtm(Granularity::WordCacheMem),
    ]
}

/// A config with deliberately tiny caches so transactions overflow.
fn tiny_cache_config() -> MachineConfig {
    MachineConfig {
        l1: CacheConfig::tiny(2, 1),
        l2: CacheConfig::tiny(4, 2),
        ..MachineConfig::default()
    }
}

fn lock0() -> u64 {
    0x20_0000
}

/// `threads` threads each add 1 to a shared counter `increments` times,
/// transactionally.
fn counter_programs(threads: usize, increments: usize) -> Vec<ThreadProgram> {
    let counter = 0x10_0000u64;
    (0..threads)
        .map(|t| {
            let mut ops = Vec::new();
            for _ in 0..increments {
                ops.push(begin(lock0()));
                ops.push(Op::Rmw(VirtAddr::new(counter), 1));
                ops.push(Op::End);
                ops.push(Op::Compute(5));
            }
            ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops)
        })
        .collect()
}

#[test]
fn shared_counter_is_exact_under_every_tm_system() {
    for kind in all_tm_systems() {
        let programs = counter_programs(4, 10);
        let m = run(MachineConfig::default(), kind, programs.clone());
        let total = m.read_committed(ProcessId(0), VirtAddr::new(0x10_0000));
        assert_eq!(total, 40, "{kind}: lost or duplicated increments");
        assert_eq!(m.stats().commits, 40, "{kind}");
        assert_serializable(&m, &programs);
    }
}

#[test]
fn shared_counter_is_exact_under_locks() {
    let programs = counter_programs(4, 10);
    let m = run(
        MachineConfig::default(),
        SystemKind::Locks,
        programs.clone(),
    );
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(0x10_0000)), 40);
    assert_serializable(&m, &programs);
}

#[test]
fn contention_causes_aborts_but_no_lost_updates() {
    // Long transactions over the same counter force conflicts.
    let counter = 0x10_0000u64;
    let programs: Vec<_> = (0..4)
        .map(|t| {
            let mut ops = Vec::new();
            for _ in 0..5 {
                ops.push(begin(lock0()));
                ops.push(Op::Rmw(VirtAddr::new(counter), 1));
                ops.push(Op::Compute(400));
                ops.push(Op::Rmw(VirtAddr::new(counter + 4), 1));
                ops.push(Op::End);
            }
            ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
        })
        .collect();
    let m = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    assert!(m.stats().aborts > 0, "long overlapping txns must conflict");
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(counter)), 20);
    assert_eq!(
        m.read_committed(ProcessId(0), VirtAddr::new(counter + 4)),
        20
    );
    assert_serializable(&m, &programs);
}

#[test]
fn overflowing_transactions_stay_correct() {
    // Each transaction writes several pages' worth of blocks through a tiny
    // cache, guaranteeing dirty overflows mid-transaction.
    for kind in all_tm_systems() {
        let programs: Vec<_> = (0..2)
            .map(|t| {
                let mut ops = Vec::new();
                let base = 0x40_0000u64 + t as u64 * 0x10_0000;
                for it in 0..3u64 {
                    ops.push(begin(lock0() + t as u64 * 64));
                    for blk in 0..24u64 {
                        ops.push(Op::Write(
                            VirtAddr::new(base + it * 8192 + blk * 64),
                            (it * 100 + blk) as u32,
                        ));
                    }
                    ops.push(Op::End);
                }
                ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
            })
            .collect();
        let m = run(tiny_cache_config(), kind, programs.clone());
        assert_eq!(m.stats().commits, 6, "{kind}");
        // Overflow machinery must actually have fired.
        let overflowed = match m.backend() {
            ptm_sim::Backend::Ptm(p) => p.stats().overflows() > 0,
            ptm_sim::Backend::Vtm(v) => v.stats().overflows() > 0,
            _ => unreachable!(),
        };
        assert!(overflowed, "{kind}: tiny caches must overflow");
        assert_serializable(&m, &programs);
        // Spot-check a committed value through the committed-view read.
        assert_eq!(
            m.read_committed(ProcessId(0), VirtAddr::new(0x40_0000 + 2 * 8192 + 5 * 64)),
            205
        );
    }
}

#[test]
fn overflowed_conflicts_are_detected_across_cores() {
    // Thread 0 writes a large region (overflowing), thread 1 then reads it
    // transactionally: conflicts must serialize them, not corrupt data.
    let region = 0x50_0000u64;
    let t0 = {
        let mut ops = vec![begin(lock0())];
        for blk in 0..32u64 {
            ops.push(Op::Write(VirtAddr::new(region + blk * 64), 7));
        }
        ops.push(Op::Compute(2000));
        ops.push(Op::End);
        ThreadProgram::new(ProcessId(0), ThreadId(0), ops)
    };
    let t1 = {
        let mut ops = vec![Op::Compute(500), begin(lock0())];
        for blk in 0..32u64 {
            ops.push(Op::Rmw(VirtAddr::new(region + blk * 64), 1));
        }
        ops.push(Op::End);
        ThreadProgram::new(ProcessId(0), ThreadId(1), ops)
    };
    for kind in [
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::CopyPtm,
        SystemKind::Vtm,
    ] {
        let programs = vec![t0.clone(), t1.clone()];
        let m = run(tiny_cache_config(), kind, programs.clone());
        assert_serializable(&m, &programs);
        assert_eq!(
            m.read_committed(ProcessId(0), VirtAddr::new(region)),
            8,
            "{kind}: write then increment"
        );
    }
}

#[test]
fn ordered_transactions_commit_in_sequence() {
    // Three threads append to a log position derived from a shared cursor;
    // ordered commits make the result deterministic.
    let cursor = 0x60_0000u64;
    let programs: Vec<_> = (0..3)
        .map(|t| {
            let mut ops = Vec::new();
            for i in 0..4u64 {
                let seq = i * 3 + t as u64;
                ops.push(Op::Begin {
                    ordered: Some(OrderedSeq { group: 1, seq }),
                    lock: VirtAddr::new(lock0()),
                });
                // Each ordered tx adds its seq to the running sum; with
                // ordered commits the intermediate values are fixed.
                ops.push(Op::Rmw(VirtAddr::new(cursor), seq as i32));
                ops.push(Op::End);
                ops.push(Op::Compute(50));
            }
            ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
        })
        .collect();
    let m = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    assert_eq!(m.stats().commits, 12);
    // Commit log must be in strictly ascending seq order = ascending TxId
    // is NOT guaranteed, but the sum is exact.
    let total: u64 = (0..12u64).sum();
    assert_eq!(
        u64::from(m.read_committed(ProcessId(0), VirtAddr::new(cursor))),
        total
    );
    assert_serializable(&m, &programs);
}

#[test]
fn non_transactional_write_aborts_conflicting_transaction() {
    // Thread 0 runs a long transaction over X; thread 1 writes X *outside*
    // any transaction. The transaction must abort and retry (§2.3.3), and
    // both updates must land.
    let x = 0x70_0000u64;
    let t0 = {
        let mut ops = vec![begin(lock0())];
        ops.push(Op::Rmw(VirtAddr::new(x), 1));
        ops.push(Op::Compute(3000));
        ops.push(Op::Rmw(VirtAddr::new(x + 8), 1));
        ops.push(Op::End);
        ThreadProgram::new(ProcessId(0), ThreadId(0), ops)
    };
    // The non-tx write targets a DIFFERENT word of the same block: at block
    // granularity this conflicts; the final values are unambiguous because
    // the words are disjoint.
    let t1 = ThreadProgram::new(
        ProcessId(0),
        ThreadId(1),
        vec![Op::Compute(800), Op::Write(VirtAddr::new(x + 16), 99)],
    );
    let programs = vec![t0, t1];
    let m = run(
        tiny_cache_config(),
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(x)), 1);
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(x + 8)), 1);
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(x + 16)), 99);
}

#[test]
fn word_granularity_eliminates_false_sharing_aborts() {
    // Four threads each hammer their own word of ONE shared block.
    let block = 0x80_0000u64;
    let mk = |t: u32| {
        let mut ops = Vec::new();
        for _ in 0..20 {
            ops.push(begin(lock0() + u64::from(t) * 64));
            ops.push(Op::Rmw(VirtAddr::new(block + u64::from(t) * 4), 1));
            ops.push(Op::End);
        }
        ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
    };
    let programs: Vec<_> = (0..4).map(mk).collect();

    let blk = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    let wd = run(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::WordCacheMem),
        programs.clone(),
    );
    for m in [&blk, &wd] {
        for t in 0..4u64 {
            assert_eq!(
                m.read_committed(ProcessId(0), VirtAddr::new(block + t * 4)),
                20,
                "{}",
                m.kind()
            );
        }
        assert_serializable(m, &programs);
    }
    assert!(
        wd.stats().aborts < blk.stats().aborts || blk.stats().aborts == 0,
        "word granularity should not abort more than block (blk={} wd={})",
        blk.stats().aborts,
        wd.stats().aborts
    );
}

#[test]
fn disjoint_work_scales_over_serial() {
    // Four threads on fully disjoint pages: parallel execution should beat
    // the serialized baseline clearly.
    let programs: Vec<_> = (0..4)
        .map(|t| {
            let base = 0x100_0000u64 + t as u64 * 0x10_0000;
            let mut ops = Vec::new();
            for i in 0..200u64 {
                ops.push(begin(lock0() + t as u64 * 64));
                ops.push(Op::Rmw(VirtAddr::new(base + (i % 64) * 64), 1));
                ops.push(Op::Compute(20));
                ops.push(Op::End);
            }
            ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
        })
        .collect();
    let (s, p, pct) = ptm_sim::speedup_vs_serial(
        MachineConfig::default(),
        SystemKind::SelectPtm(Granularity::Block),
        programs,
    );
    assert!(
        pct > 100.0,
        "disjoint parallel work should speed up well: serial={s} parallel={p} ({pct:.0}%)"
    );
}

#[test]
fn context_switches_and_exceptions_are_survivable() {
    let cfg = MachineConfig {
        kernel: ptm_sim::KernelConfig {
            cs_interval: Some(2_000),
            exc_interval: Some(900),
            ..Default::default()
        },
        ..tiny_cache_config()
    };
    let programs = counter_programs(4, 25);
    let m = run(
        cfg,
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    assert!(m.kernel_stats().context_switches > 0);
    assert!(m.kernel_stats().exceptions > 0);
    assert_eq!(
        m.read_committed(ProcessId(0), VirtAddr::new(0x10_0000)),
        100
    );
    assert_serializable(&m, &programs);
}

#[test]
fn serialized_baseline_preserves_functionality() {
    let programs = counter_programs(4, 5);
    let serial = serialize_programs(&programs);
    let m = run(MachineConfig::default(), SystemKind::Serial, serial);
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(0x10_0000)), 20);
}

#[test]
fn inter_process_shared_physical_page_conflicts_under_ptm() {
    // Two processes share one physical page (mapped at different VPNs).
    // PTM detects the conflict because its structures are physically
    // indexed (§3.5.3). We drive the machine manually to set up sharing.
    let va0 = VirtAddr::new(0x1000);
    let va1 = VirtAddr::new(0x9000); // different virtual page, same frame
    let t0 = ThreadProgram::new(
        ProcessId(0),
        ThreadId(0),
        vec![
            begin(lock0()),
            Op::Write(va0, 5),
            Op::Compute(2500),
            Op::Write(va0.offset(8), 6),
            Op::End,
        ],
    );
    let t1 = ThreadProgram::new(
        ProcessId(1),
        ThreadId(1),
        vec![
            Op::Compute(600),
            begin(lock0() + 64),
            Op::Rmw(va1, 10),
            Op::End,
        ],
    );
    let mut m = Machine::new(
        tiny_cache_config(),
        SystemKind::SelectPtm(Granularity::Block),
        vec![t0, t1],
    );
    // Pre-fault process 0's page, then alias it into process 1's address
    // space: genuine physical sharing.
    let frame = m.prefault(ProcessId(0), va0);
    m.kernel_mut().map_shared(ProcessId(1), va1.vpn(), frame);
    m.run();
    // Both updates present in the shared frame, serializably: the write of
    // 5 then +10 on the same word → 15, or +10 on zero then write 5 → 5.
    let v = m.read_committed(ProcessId(0), va0);
    assert!(v == 15 || v == 5, "serializable outcomes only, got {v}");
    assert_eq!(
        v,
        m.read_committed(ProcessId(1), va1),
        "both processes see the same physical word"
    );
}

#[test]
fn thread_migration_preserves_transactions() {
    // Frequent context switches WITH migration: threads hop between cores
    // mid-transaction, leaving tagged lines behind. PTM's physically-indexed
    // structures make this safe (§4.7); totals must still be exact.
    let cfg = MachineConfig {
        kernel: ptm_sim::KernelConfig {
            cs_interval: Some(1_200),
            migrate_on_cs: true,
            ..Default::default()
        },
        ..tiny_cache_config()
    };
    for kind in [
        SystemKind::SelectPtm(Granularity::Block),
        SystemKind::CopyPtm,
        SystemKind::Vtm,
    ] {
        let programs = counter_programs(4, 20);
        let m = run(cfg, kind, programs.clone());
        assert!(m.kernel_stats().context_switches > 0, "{kind}");
        assert_eq!(
            m.read_committed(ProcessId(0), VirtAddr::new(0x10_0000)),
            80,
            "{kind}: all increments survive migration"
        );
        assert_serializable(&m, &programs);
    }
}

#[test]
fn migration_spills_left_behind_lines_through_overflow() {
    // A long transaction writing many blocks, migrated mid-flight: its
    // tagged lines on the old core must spill through the overflow
    // structures when touched from the new core (or at commit), never be
    // lost.
    let base = 0x40_0000u64;
    let mut ops = vec![begin(lock0())];
    for blk in 0..16u64 {
        ops.push(Op::Rmw(VirtAddr::new(base + blk * 64), 1));
        ops.push(Op::Compute(300));
    }
    // Re-touch everything so post-migration accesses hit the old lines.
    for blk in 0..16u64 {
        ops.push(Op::Rmw(VirtAddr::new(base + blk * 64), 1));
    }
    ops.push(Op::End);
    let t0 = ThreadProgram::new(ProcessId(0), ThreadId(0), ops);
    let t1 = ThreadProgram::new(
        ProcessId(0),
        ThreadId(1),
        vec![
            Op::Compute(200),
            begin(lock0() + 64),
            Op::Rmw(VirtAddr::new(0x50_0000), 1),
            Op::End,
        ],
    );
    let cfg = MachineConfig {
        kernel: ptm_sim::KernelConfig {
            cs_interval: Some(900),
            migrate_on_cs: true,
            ..Default::default()
        },
        ..MachineConfig::default()
    };
    let programs = vec![t0, t1];
    let m = run(
        cfg,
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    for blk in 0..16u64 {
        assert_eq!(
            m.read_committed(ProcessId(0), VirtAddr::new(base + blk * 64)),
            2,
            "block {blk}"
        );
    }
    assert_serializable(&m, &programs);
}

#[test]
fn logtm_backend_is_functionally_correct() {
    // The eager-versioning extension: counters exact, overflows via sticky
    // state, serializable.
    let programs = counter_programs(4, 15);
    let m = run(tiny_cache_config(), SystemKind::LogTm, programs.clone());
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(0x10_0000)), 60);
    assert_eq!(m.stats().commits, 60);
    assert_serializable(&m, &programs);
}

#[test]
fn logtm_prefers_stalling_over_aborting() {
    // The same contended workload that gives PTM dozens of aborts should
    // mostly STALL under LogTM.
    let counter = 0x10_0000u64;
    let mk = |t: u32| {
        let mut ops = Vec::new();
        for _ in 0..8 {
            ops.push(begin(lock0()));
            ops.push(Op::Rmw(VirtAddr::new(counter), 1));
            ops.push(Op::Compute(400));
            ops.push(Op::Rmw(VirtAddr::new(counter + 4), 1));
            ops.push(Op::End);
        }
        ThreadProgram::new(ProcessId(0), ThreadId(t), ops)
    };
    let programs: Vec<_> = (0..4).map(mk).collect();
    let ptm = run(
        tiny_cache_config(),
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    let log = run(tiny_cache_config(), SystemKind::LogTm, programs.clone());
    assert!(
        log.stats().aborts <= ptm.stats().aborts,
        "LogTM stalls where PTM aborts (logtm {} vs ptm {})",
        log.stats().aborts,
        ptm.stats().aborts
    );
    let l = log.backend().as_logtm().unwrap().stats();
    assert!(l.stalls > 0, "contention must produce NACK stalls");
    assert_eq!(log.read_committed(ProcessId(0), VirtAddr::new(counter)), 32);
    assert_serializable(&log, &programs);
}

#[test]
fn logtm_abort_restores_overflowed_writes() {
    // A big transaction writes beyond the cache (sticky overflow), then a
    // non-transactional access forces it to abort: the undo log must restore
    // every word, including overflowed ones.
    let base = 0x70_0000u64;
    let t0 = {
        let mut ops = vec![begin(lock0())];
        for blk in 0..32u64 {
            ops.push(Op::Write(VirtAddr::new(base + blk * 64), 7));
        }
        ops.push(Op::Compute(4000));
        ops.push(Op::Rmw(VirtAddr::new(base), 1)); // re-touch
        ops.push(Op::End);
        ThreadProgram::new(ProcessId(0), ThreadId(0), ops)
    };
    // Non-transactional write to one of the blocks: LogTM's tx must abort,
    // restore, then retry and win.
    let t1 = ThreadProgram::new(
        ProcessId(0),
        ThreadId(1),
        vec![
            Op::Compute(6000),
            Op::Write(VirtAddr::new(base + 8 * 64 + 4), 99),
        ],
    );
    let programs = vec![t0, t1];
    let m = run(tiny_cache_config(), SystemKind::LogTm, programs.clone());
    assert!(m.stats().aborts >= 1, "non-tx conflict forces an abort");
    let l = m.backend().as_logtm().unwrap().stats();
    assert!(l.log_restores > 0, "the undo log was walked");
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(base)), 8);
    assert_eq!(
        m.read_committed(ProcessId(0), VirtAddr::new(base + 8 * 64 + 4)),
        99
    );
    assert_serializable(&m, &programs);
}

#[test]
fn logtm_ordered_transactions_do_not_deadlock() {
    // An ordered younger transaction holds data an older transaction wants;
    // the younger can't commit until the older does. LogTM's stall-preferring
    // resolution must break this cycle via the possible-cycle heuristic.
    let x = 0x10_0000u64;
    let programs: Vec<_> = (0..2u64)
        .map(|t| {
            let mut ops = Vec::new();
            for i in 0..6u64 {
                let seq = i * 2 + t;
                ops.push(Op::Begin {
                    ordered: Some(OrderedSeq { group: 0, seq }),
                    lock: VirtAddr::new(lock0()),
                });
                ops.push(Op::Rmw(VirtAddr::new(x), 1));
                ops.push(Op::Compute(150));
                ops.push(Op::End);
            }
            ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops)
        })
        .collect();
    let m = run(tiny_cache_config(), SystemKind::LogTm, programs.clone());
    assert_eq!(m.stats().commits, 12);
    assert_eq!(m.read_committed(ProcessId(0), VirtAddr::new(x)), 12);
    assert_serializable(&m, &programs);
}

#[test]
fn barriers_are_migration_safe() {
    // Threads migrate between cores while blocked at barriers: arrivals are
    // tracked per thread, so a migrated thread's old core cannot satisfy the
    // barrier on behalf of a thread that has not arrived. Phase ordering
    // must hold: phase-2 writes overwrite phase-1 writes of other threads.
    let x = 0x90_0000u64;
    let mk = |t: u64| {
        let mut ops = Vec::new();
        // Phase 1: thread t writes slot t.
        ops.push(begin(lock0() + t * 64));
        ops.push(Op::Write(VirtAddr::new(x + t * 4), (t + 1) as u32));
        ops.push(Op::Compute(if t == 0 { 9_000 } else { 50 }));
        ops.push(Op::End);
        ops.push(Op::Barrier(0));
        // Phase 2: every thread overwrites slot (t+1)%4 — only safe if the
        // barrier really separated the phases.
        let o = (t + 1) % 4;
        ops.push(begin(lock0() + 1024 + t * 64));
        ops.push(Op::Write(VirtAddr::new(x + o * 4), (o + 100) as u32));
        ops.push(Op::End);
        ThreadProgram::new(ProcessId(0), ThreadId(t as u32), ops)
    };
    let cfg = MachineConfig {
        kernel: ptm_sim::KernelConfig {
            cs_interval: Some(700),
            migrate_on_cs: true,
            ..Default::default()
        },
        ..MachineConfig::default()
    };
    let programs: Vec<_> = (0..4).map(mk).collect();
    let m = run(
        cfg,
        SystemKind::SelectPtm(Granularity::Block),
        programs.clone(),
    );
    assert!(m.kernel_stats().context_switches > 0);
    for t in 0..4u64 {
        assert_eq!(
            m.read_committed(ProcessId(0), VirtAddr::new(x + t * 4)),
            (t + 100) as u32,
            "phase-2 value must win in slot {t}"
        );
    }
    assert_serializable(&m, &programs);
}
