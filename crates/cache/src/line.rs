//! Cache lines: MOESI state plus the paper's transactional augmentation.

use ptm_types::{PhysBlock, TxId, WordIdx, WordMask};
use std::fmt;

/// MOESI coherence states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Moesi {
    /// Not present / stale.
    Invalid,
    /// Clean, possibly shared with other caches.
    Shared,
    /// Clean, exclusive to this cache.
    Exclusive,
    /// Dirty, shared with other caches (this cache supplies data).
    Owned,
    /// Dirty, exclusive to this cache.
    Modified,
}

impl Moesi {
    /// Whether this state implies the line differs from memory.
    pub fn is_dirty(self) -> bool {
        matches!(self, Moesi::Owned | Moesi::Modified)
    }

    /// Whether the cache may write without a coherence transaction.
    pub fn allows_silent_write(self) -> bool {
        matches!(self, Moesi::Exclusive | Moesi::Modified)
    }
}

impl fmt::Display for Moesi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Moesi::Invalid => 'I',
            Moesi::Shared => 'S',
            Moesi::Exclusive => 'E',
            Moesi::Owned => 'O',
            Moesi::Modified => 'M',
        };
        write!(f, "{c}")
    }
}

/// The transactional metadata a line carries (§4.1): "a Transaction ID, and
/// bits indicating if the transaction read or wrote the block" — extended
/// with per-word masks for the Figure 5 word-granularity configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxLineMeta {
    /// The owning transaction.
    pub tx: TxId,
    /// The transaction read this block.
    pub read: bool,
    /// The transaction wrote this block.
    pub write: bool,
    /// Words the transaction read (word-granularity tracking).
    pub read_words: WordMask,
    /// Words the transaction wrote (word-granularity tracking).
    pub write_words: WordMask,
}

impl TxLineMeta {
    /// Fresh metadata for a transaction that has not yet touched the block.
    pub fn new(tx: TxId) -> Self {
        TxLineMeta {
            tx,
            read: false,
            write: false,
            read_words: WordMask::EMPTY,
            write_words: WordMask::EMPTY,
        }
    }

    /// Records a read of `word`.
    pub fn record_read(&mut self, word: WordIdx) {
        self.read = true;
        self.read_words.set(word);
    }

    /// Records a write of `word`.
    pub fn record_write(&mut self, word: WordIdx) {
        self.write = true;
        self.write_words.set(word);
    }
}

/// A cache line: which block it caches, its MOESI state, and optional
/// transactional metadata.
///
/// Lines carry no data — see the crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    block: PhysBlock,
    state: Moesi,
    tx: Option<TxLineMeta>,
    /// LRU timestamp maintained by the containing array.
    pub(crate) lru: u64,
}

impl CacheLine {
    /// A line in the given coherence state with no transactional state.
    pub fn new(block: PhysBlock, state: Moesi) -> Self {
        CacheLine {
            block,
            state,
            tx: None,
            lru: 0,
        }
    }

    /// A presence-only line for the L1 filter.
    pub(crate) fn presence(block: PhysBlock) -> Self {
        CacheLine::new(block, Moesi::Shared)
    }

    /// The block this line caches.
    pub fn block(&self) -> PhysBlock {
        self.block
    }

    /// Current MOESI state.
    pub fn state(&self) -> Moesi {
        self.state
    }

    /// Sets the MOESI state.
    pub fn set_state(&mut self, state: Moesi) {
        self.state = state;
    }

    /// The transactional metadata, if any transaction touched the line.
    pub fn tx_meta(&self) -> Option<&TxLineMeta> {
        self.tx.as_ref()
    }

    /// Mutable transactional metadata.
    pub fn tx_meta_mut(&mut self) -> Option<&mut TxLineMeta> {
        self.tx.as_mut()
    }

    /// Returns the metadata for `tx`, creating it if the line is currently
    /// non-transactional.
    ///
    /// # Panics
    ///
    /// Panics if the line is already owned by a *different* transaction —
    /// conflict detection must have resolved that before the access.
    pub fn tx_meta_for(&mut self, tx: TxId) -> &mut TxLineMeta {
        match &mut self.tx {
            Some(meta) => {
                assert_eq!(meta.tx, tx, "line already owned by {}", meta.tx);
                self.tx.as_mut().expect("just matched")
            }
            None => {
                self.tx = Some(TxLineMeta::new(tx));
                self.tx.as_mut().expect("just set")
            }
        }
    }

    /// Clears the transactional metadata (commit keeps the line; abort
    /// invalidates dirty lines separately).
    pub fn clear_tx(&mut self) {
        self.tx = None;
    }

    /// Whether this line belongs to transaction `tx`.
    pub fn is_owned_by(&self, tx: TxId) -> bool {
        self.tx.map(|m| m.tx == tx).unwrap_or(false)
    }

    /// Whether the line carries any transactional state.
    pub fn is_transactional(&self) -> bool {
        self.tx.is_some()
    }
}

impl fmt::Display for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.state)?;
        if let Some(m) = &self.tx {
            write!(
                f,
                " {}{}{}",
                m.tx,
                if m.read { "r" } else { "" },
                if m.write { "w" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// Which level an access hit in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hit {
    /// First-level hit (1 cycle).
    L1,
    /// Second-level hit.
    L2,
}

/// Result of probing a [`crate::Hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeResult {
    /// The block is cached.
    Hit(Hit),
    /// The block is not cached; a bus transaction is needed.
    Miss,
}

impl ProbeResult {
    /// Returns `true` for a miss.
    pub fn is_miss(self) -> bool {
        matches!(self, ProbeResult::Miss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::{BlockIdx, FrameId};

    fn blk() -> PhysBlock {
        PhysBlock::new(FrameId(0), BlockIdx(0))
    }

    #[test]
    fn moesi_dirty_states() {
        assert!(Moesi::Modified.is_dirty());
        assert!(Moesi::Owned.is_dirty());
        assert!(!Moesi::Shared.is_dirty());
        assert!(!Moesi::Exclusive.is_dirty());
        assert!(!Moesi::Invalid.is_dirty());
    }

    #[test]
    fn silent_write_only_in_exclusive_states() {
        assert!(Moesi::Exclusive.allows_silent_write());
        assert!(Moesi::Modified.allows_silent_write());
        assert!(!Moesi::Shared.allows_silent_write());
        assert!(!Moesi::Owned.allows_silent_write());
    }

    #[test]
    fn tx_meta_records_word_accesses() {
        let mut m = TxLineMeta::new(TxId(1));
        m.record_read(WordIdx(2));
        m.record_write(WordIdx(5));
        assert!(m.read && m.write);
        assert!(m.read_words.get(WordIdx(2)));
        assert!(m.write_words.get(WordIdx(5)));
        assert!(!m.write_words.get(WordIdx(2)));
    }

    #[test]
    fn tx_meta_for_creates_then_reuses() {
        let mut line = CacheLine::new(blk(), Moesi::Exclusive);
        assert!(!line.is_transactional());
        line.tx_meta_for(TxId(3)).record_read(WordIdx(0));
        assert!(line.is_owned_by(TxId(3)));
        line.tx_meta_for(TxId(3)).record_write(WordIdx(1));
        let m = line.tx_meta().unwrap();
        assert!(m.read && m.write);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn tx_meta_for_rejects_second_transaction() {
        let mut line = CacheLine::new(blk(), Moesi::Exclusive);
        line.tx_meta_for(TxId(1));
        line.tx_meta_for(TxId(2));
    }

    #[test]
    fn clear_tx_removes_metadata() {
        let mut line = CacheLine::new(blk(), Moesi::Modified);
        line.tx_meta_for(TxId(1)).record_write(WordIdx(0));
        line.clear_tx();
        assert!(!line.is_transactional());
        assert_eq!(line.state(), Moesi::Modified, "coherence state unchanged");
    }

    #[test]
    fn display_includes_tx_bits() {
        let mut line = CacheLine::new(blk(), Moesi::Modified);
        line.tx_meta_for(TxId(9)).record_write(WordIdx(0));
        let s = format!("{line}");
        assert!(s.contains("tx:9"), "{s}");
        assert!(s.contains('w'), "{s}");
    }
}
