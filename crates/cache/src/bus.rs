//! On-chip bus and main-memory timing model.
//!
//! The paper's platform (§6.1): "a high speed on-chip bus connecting the
//! four CPUs and the on-chip memory controller with a minimum round-trip
//! latency of 20 cycles" and "access to main memory has a minimum latency of
//! 200 cycles, but up to three requests can be pipelined simultaneously."
//!
//! The model is occupancy-based: the bus serializes transactions (each holds
//! the bus for a short arbitration/address window), and memory is a bank of
//! three pipelined slots. Background traffic — VTM's commit copy-back, PTM's
//! Copy-PTM eviction copies — consumes the same resources, which is exactly
//! the contention effect Figure 4 turns on.

use ptm_types::Cycle;
use std::fmt;

/// Latency parameters for the bus/memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTimings {
    /// Minimum round-trip latency of an on-chip bus transaction.
    pub onchip_round_trip: Cycle,
    /// Cycles a transaction occupies the shared bus (arbitration + address +
    /// data beats), creating contention between cores.
    pub bus_occupancy: Cycle,
    /// Minimum main-memory access latency.
    pub mem_latency: Cycle,
    /// Number of memory requests that can be in flight simultaneously.
    pub mem_pipeline: usize,
}

impl Default for BusTimings {
    fn default() -> Self {
        BusTimings {
            onchip_round_trip: 20,
            bus_occupancy: 4,
            mem_latency: 200,
            mem_pipeline: 3,
        }
    }
}

/// Occupancy counters for the shared bus and the memory pipeline.
///
/// All methods take `now` (the requester's current cycle) and return the
/// *completion* cycle of the operation; they advance internal busy-until
/// state so later requests see the contention.
///
/// # Examples
///
/// ```
/// use ptm_cache::SystemBus;
///
/// let mut bus = SystemBus::new(Default::default());
/// let t1 = bus.onchip_transfer(0);
/// assert_eq!(t1, 20);
/// // A second transaction at the same instant waits for the bus.
/// let t2 = bus.onchip_transfer(0);
/// assert!(t2 > t1 - 20 + 4);
/// ```
#[derive(Debug, Clone)]
pub struct SystemBus {
    timings: BusTimings,
    bus_free_at: Cycle,
    mem_slots: Vec<Cycle>,
    stats: BusStats,
}

/// Traffic counters for the bus/memory model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// On-chip (cache-to-cache or cache-to-controller) transactions.
    pub onchip_transactions: u64,
    /// Main-memory accesses (demand or background).
    pub mem_accesses: u64,
    /// Cycles requesters spent waiting for the bus to free up.
    pub bus_wait_cycles: u64,
    /// Cycles requesters spent waiting for a memory pipeline slot.
    pub mem_wait_cycles: u64,
}

impl SystemBus {
    /// Creates an idle bus with the given timings.
    pub fn new(timings: BusTimings) -> Self {
        SystemBus {
            bus_free_at: 0,
            mem_slots: vec![0; timings.mem_pipeline.max(1)],
            timings,
            stats: BusStats::default(),
        }
    }

    /// The configured timings.
    pub fn timings(&self) -> &BusTimings {
        &self.timings
    }

    /// Performs an on-chip bus transaction (snoop round, cache-to-cache
    /// transfer) starting no earlier than `now`; returns its completion
    /// cycle.
    pub fn onchip_transfer(&mut self, now: Cycle) -> Cycle {
        let start = self.acquire_bus(now);
        self.stats.onchip_transactions += 1;
        start + self.timings.onchip_round_trip
    }

    /// Performs a main-memory access (fill or writeback) starting no earlier
    /// than `now`. The request first takes the bus to reach the controller,
    /// then occupies one of the pipelined memory slots.
    pub fn mem_access(&mut self, now: Cycle) -> Cycle {
        let issued = self.acquire_bus(now);
        self.slot_access(issued)
    }

    /// A memory access issued *from* the memory controller itself (VTS TAV
    /// walks, XADT walks, commit copy traffic): no front-side bus trip, but
    /// it still competes for the memory pipeline.
    pub fn controller_mem_access(&mut self, now: Cycle) -> Cycle {
        self.slot_access(now)
    }

    /// Drains a burst of `n` chained controller-side accesses in one call:
    /// each access issues at the completion of the previous one, exactly as
    /// if [`Self::controller_mem_access`] were called `n` times in a loop.
    /// Walk costs (VTS TAV walks, summary rebuilds) arrive as a count, so
    /// batching the charge keeps the per-event call out of the hot loop
    /// while leaving slot state and statistics bit-identical.
    pub fn controller_mem_accesses(&mut self, now: Cycle, n: u32) -> Cycle {
        let mut done = now;
        for _ in 0..n {
            done = self.slot_access(done);
        }
        done
    }

    /// Predicts — without mutating occupancy or statistics — the completion
    /// cycle a miss's bus traffic would have if issued at `now`: the snoop
    /// round of [`Self::onchip_transfer`], chained into
    /// [`Self::mem_access`]'s pipeline slot when `from_memory`. The
    /// speculative executor pre-schedules cache-miss fills with this; the
    /// prediction is exact while no other traffic intervenes, and a
    /// divergence merely discards the speculated tail behind the miss.
    pub fn peek_miss_fill(&self, now: Cycle, from_memory: bool) -> Cycle {
        let transferred = now.max(self.bus_free_at) + self.timings.onchip_round_trip;
        if !from_memory {
            return transferred;
        }
        let slot = self.mem_slots.iter().copied().min().unwrap_or(0);
        transferred.max(slot) + self.timings.mem_latency
    }

    fn slot_access(&mut self, issued: Cycle) -> Cycle {
        let slot = self
            .mem_slots
            .iter_mut()
            .min()
            .expect("at least one memory slot");
        let start = issued.max(*slot);
        self.stats.mem_wait_cycles += start - issued;
        let done = start + self.timings.mem_latency;
        // The slot frees when the access completes; throughput is limited to
        // `mem_pipeline` concurrent accesses.
        *slot = done;
        self.stats.mem_accesses += 1;
        done
    }

    fn acquire_bus(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.bus_free_at);
        self.stats.bus_wait_cycles += start - now;
        self.bus_free_at = start + self.timings.bus_occupancy;
        start
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }
}

impl fmt::Display for BusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "onchip={} mem={} bus-wait={} mem-wait={}",
            self.onchip_transactions, self.mem_accesses, self.bus_wait_cycles, self.mem_wait_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onchip_latency_is_minimum_round_trip() {
        let mut bus = SystemBus::new(BusTimings::default());
        assert_eq!(bus.onchip_transfer(100), 120);
    }

    #[test]
    fn bus_serializes_concurrent_transactions() {
        let mut bus = SystemBus::new(BusTimings::default());
        let a = bus.onchip_transfer(0);
        let b = bus.onchip_transfer(0);
        assert_eq!(a, 20);
        assert_eq!(b, 24, "second waits one occupancy window");
        assert_eq!(bus.stats().bus_wait_cycles, 4);
    }

    #[test]
    fn memory_latency_includes_bus_trip() {
        let mut bus = SystemBus::new(BusTimings::default());
        let done = bus.mem_access(0);
        assert_eq!(done, 200, "bus acquired at 0, memory 200 cycles");
        assert_eq!(bus.stats().mem_accesses, 1);
    }

    #[test]
    fn memory_pipelines_three_requests() {
        let mut bus = SystemBus::new(BusTimings::default());
        // Controller-side accesses skip the bus so we see raw slot behavior.
        let d1 = bus.controller_mem_access(0);
        let d2 = bus.controller_mem_access(0);
        let d3 = bus.controller_mem_access(0);
        let d4 = bus.controller_mem_access(0);
        assert_eq!(d1, 200);
        assert_eq!(d2, 200);
        assert_eq!(d3, 200);
        assert_eq!(d4, 400, "fourth request waits for a slot");
        assert_eq!(bus.stats().mem_wait_cycles, 200);
    }

    #[test]
    fn batched_controller_accesses_match_loop() {
        let mut a = SystemBus::new(BusTimings::default());
        let mut b = SystemBus::new(BusTimings::default());
        // Interleave bursts with demand traffic; both orders must agree.
        for (now, n) in [(0u64, 4u32), (150, 1), (900, 3), (901, 0)] {
            let mut done_loop = now;
            for _ in 0..n {
                done_loop = a.controller_mem_access(done_loop);
            }
            let done_batch = b.controller_mem_accesses(now, n);
            assert_eq!(done_loop, done_batch);
            assert_eq!(a.mem_access(done_loop), b.mem_access(done_batch));
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn peek_miss_fill_matches_live_sequence() {
        for from_memory in [false, true] {
            let mut bus = SystemBus::new(BusTimings::default());
            bus.onchip_transfer(0); // pre-existing traffic
            bus.mem_access(10);
            let predicted = bus.peek_miss_fill(30, from_memory);
            let t1 = bus.onchip_transfer(30);
            let live = if from_memory { bus.mem_access(t1) } else { t1 };
            assert_eq!(predicted, live, "from_memory={from_memory}");
        }
    }

    #[test]
    fn peek_miss_fill_does_not_mutate() {
        let bus = SystemBus::new(BusTimings::default());
        let stats = *bus.stats();
        let _ = bus.peek_miss_fill(0, true);
        assert_eq!(*bus.stats(), stats);
    }

    #[test]
    fn idle_bus_resets_no_contention() {
        let mut bus = SystemBus::new(BusTimings::default());
        bus.onchip_transfer(0);
        let later = bus.onchip_transfer(1000);
        assert_eq!(later, 1020, "no residual contention after idle gap");
    }

    #[test]
    fn custom_timings_respected() {
        let mut bus = SystemBus::new(BusTimings {
            onchip_round_trip: 10,
            bus_occupancy: 2,
            mem_latency: 50,
            mem_pipeline: 1,
        });
        assert_eq!(bus.onchip_transfer(0), 10);
        let d1 = bus.controller_mem_access(0);
        let d2 = bus.controller_mem_access(0);
        assert_eq!(d1, 50);
        assert_eq!(d2, 100, "single slot serializes");
    }
}
