//! Snoopy MOESI coherence operations across a set of core caches.
//!
//! The machine-level simulator resolves transactional conflicts *before*
//! calling [`supply`]; these functions only perform the protocol-state
//! transitions and report what happened (data source, invalidated
//! transactional lines) so the caller can account timing and overflow
//! bookkeeping.

use crate::line::{CacheLine, Moesi, TxLineMeta};
use crate::Hierarchy;
use ptm_types::{PhysBlock, TxId};

/// A remote cache's transactional use of a block, discovered by a snoop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteTxUse {
    /// Index of the core whose cache holds the line.
    pub core: usize,
    /// The transactional metadata on that line.
    pub meta: TxLineMeta,
}

/// Where a miss was sourced from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// Supplied by another core's cache (on-chip transfer).
    OtherCache,
    /// Supplied by main memory (through the memory controller, where PTM
    /// chooses between home and shadow page).
    Memory,
}

/// Result of performing the coherence transitions for a miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupplyOutcome {
    /// Where the data came from.
    pub source: DataSource,
    /// The MOESI state the requester's new line should take.
    pub new_state: Moesi,
    /// Transactional lines that were invalidated at remote caches by this
    /// transaction (e.g. the same transaction's own lines left behind on
    /// another core after a context-switch migration). The caller must spill
    /// their metadata into the overflow structures.
    pub displaced_tx: Vec<CacheLine>,
    /// Number of remote copies invalidated (write misses).
    pub invalidations: u64,
}

/// Snoops all caches except `requester` for transactional metadata on
/// `block`. This is the in-cache half of eager conflict detection: the
/// caller combines it with the overflow-structure checks (PTM's TAV / VTM's
/// XADT) to decide whether the access conflicts.
pub fn peek_remote_tx_use(
    caches: &[Hierarchy],
    requester: usize,
    block: PhysBlock,
) -> impl Iterator<Item = RemoteTxUse> + '_ {
    caches.iter().enumerate().filter_map(move |(i, h)| {
        if i == requester {
            return None;
        }
        let meta = h.line(block)?.tx_meta()?;
        Some(RemoteTxUse {
            core: i,
            meta: *meta,
        })
    })
}

/// Performs the MOESI transitions for a miss by `requester` on `block`.
///
/// * Read miss (`for_write == false`): any remote M/E/O/S copy supplies the
///   data on-chip; M degrades to O, E degrades to S. The requester receives
///   S if any other copy remains, otherwise E — unless `allow_exclusive` is
///   false (PTM §4.2.2 denies exclusivity to blocks with remote overflowed
///   readers), in which case it receives S regardless.
/// * Write miss (`for_write == true`): every remote copy is invalidated; a
///   dirty remote copy supplies the data. The requester receives M. With
///   `preserve_tx_lines` (word-granularity coherence, Figure 5's `wd:cache`),
///   remote *transactional* lines are left in place instead of invalidated —
///   conflict detection has already established that their word sets are
///   disjoint from this access, so multiple word-writers of one block may
///   coexist (sub-block ownership in the style of adjustable-block-size
///   coherence).
///
/// Conflicting transactional use must already have been resolved; remote
/// lines owned by a *different* live transaction may still be present if the
/// caller decided the access is compatible (e.g. read/read sharing), and are
/// left intact on read misses.
pub fn supply(
    caches: &mut [Hierarchy],
    requester: usize,
    block: PhysBlock,
    for_write: bool,
    allow_exclusive: bool,
    preserve_tx_lines: bool,
    requester_tx: Option<TxId>,
) -> SupplyOutcome {
    let mut source = DataSource::Memory;
    let mut sharers_remaining = false;
    let mut displaced_tx = Vec::new();
    let mut invalidations = 0;

    for (i, h) in caches.iter_mut().enumerate() {
        if i == requester {
            continue;
        }
        let Some(line) = h.touch_mut(block) else {
            continue;
        };
        if for_write {
            // Invalidate every remote copy; any valid one supplies data
            // (dirty copies must, clean copies beat the memory round trip).
            if line.state().is_dirty()
                || (source == DataSource::Memory && line.state() != Moesi::Invalid)
            {
                source = DataSource::OtherCache;
            }
            let owned_by_requester = requester_tx.map(|t| line.is_owned_by(t)).unwrap_or(false);
            if preserve_tx_lines && line.is_transactional() && !owned_by_requester {
                // Word-granular coherence keeps the disjoint-word owner's
                // line alive; both copies count as sharers. The requester's
                // *own* stale copies (left behind by thread migration) are
                // always displaced, so each (transaction, block) has at most
                // one writable copy and one speculative buffer.
                sharers_remaining = true;
                continue;
            }
            let removed = h.invalidate(block).expect("line was present");
            h.l2_stats_mut().coherence_invalidations += 1;
            invalidations += 1;
            if removed.is_transactional() {
                displaced_tx.push(removed);
            }
        } else {
            // Read miss: degrade remote states, keep copies.
            source = DataSource::OtherCache;
            sharers_remaining = true;
            match line.state() {
                Moesi::Modified => line.set_state(Moesi::Owned),
                Moesi::Exclusive => line.set_state(Moesi::Shared),
                Moesi::Owned | Moesi::Shared => {}
                Moesi::Invalid => unreachable!("invalid lines are not returned"),
            }
        }
    }

    let new_state = if for_write {
        Moesi::Modified
    } else if sharers_remaining || !allow_exclusive {
        Moesi::Shared
    } else {
        Moesi::Exclusive
    };

    SupplyOutcome {
        source,
        new_state,
        displaced_tx,
        invalidations,
    }
}

/// Clears transactional metadata on every line owned by `tx` after a commit
/// (§4.5): "all of the cache blocks with the transaction ID are specified as
/// no longer being speculative, and the transaction ID is cleared." Returns
/// the number of lines processed.
pub fn commit_tx_lines(h: &mut Hierarchy, tx: TxId) -> u64 {
    let mut n = 0;
    for line in h.lines_mut() {
        if line.is_owned_by(tx) {
            line.clear_tx();
            n += 1;
        }
    }
    n
}

/// Processes an abort in the cache (§4.5): dirty lines owned by `tx` are
/// invalidated (their speculative data is discarded); clean lines just drop
/// the transaction tag. Returns `(dirty_invalidated, clean_cleared)`.
pub fn abort_tx_lines(h: &mut Hierarchy, tx: TxId) -> (u64, u64) {
    let dirty: Vec<PhysBlock> = h
        .lines()
        .filter(|l| l.is_owned_by(tx) && l.state().is_dirty())
        .map(|l| l.block())
        .collect();
    for b in &dirty {
        h.invalidate(*b);
    }
    let mut clean = 0;
    for line in h.lines_mut() {
        if line.is_owned_by(tx) {
            line.clear_tx();
            clean += 1;
        }
    }
    (dirty.len() as u64, clean)
}

/// Invalidates every non-transactional line (context-switch cache pollution
/// model): transactional lines survive because they are tagged with their
/// transaction ID (§4.7), the PTM advantage over flush-on-switch schemes.
/// Returns the number of lines dropped.
pub fn flush_non_tx_lines(h: &mut Hierarchy) -> u64 {
    let dropped = h.l2_mut().drain_matching(|l| !l.is_transactional());
    // L1 is a presence filter: rebuild it empty; transactional L2 lines will
    // re-promote on their next touch.
    let _ = h.l1_mut().drain_matching(|_| true);
    dropped.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::{BlockIdx, FrameId, WordIdx};

    fn blk(n: u64) -> PhysBlock {
        PhysBlock::new(FrameId((n / 64) as u32), BlockIdx((n % 64) as u8))
    }

    fn machine(n: usize) -> Vec<Hierarchy> {
        (0..n).map(|_| Hierarchy::with_default_config()).collect()
    }

    #[test]
    fn read_miss_from_memory_gets_exclusive() {
        let mut caches = machine(2);
        let out = supply(&mut caches, 0, blk(0), false, true, false, None);
        assert_eq!(out.source, DataSource::Memory);
        assert_eq!(out.new_state, Moesi::Exclusive);
        assert!(out.displaced_tx.is_empty());
    }

    #[test]
    fn read_miss_denied_exclusive_gets_shared() {
        let mut caches = machine(2);
        let out = supply(&mut caches, 0, blk(0), false, false, false, None);
        assert_eq!(out.new_state, Moesi::Shared);
    }

    #[test]
    fn read_miss_sourced_from_modified_remote_degrades_to_owned() {
        let mut caches = machine(2);
        caches[1].fill(CacheLine::new(blk(0), Moesi::Modified));
        let out = supply(&mut caches, 0, blk(0), false, true, false, None);
        assert_eq!(out.source, DataSource::OtherCache);
        assert_eq!(out.new_state, Moesi::Shared);
        assert_eq!(caches[1].line(blk(0)).unwrap().state(), Moesi::Owned);
    }

    #[test]
    fn read_miss_degrades_remote_exclusive_to_shared() {
        let mut caches = machine(2);
        caches[1].fill(CacheLine::new(blk(0), Moesi::Exclusive));
        let out = supply(&mut caches, 0, blk(0), false, true, false, None);
        assert_eq!(out.new_state, Moesi::Shared);
        assert_eq!(caches[1].line(blk(0)).unwrap().state(), Moesi::Shared);
    }

    #[test]
    fn write_miss_invalidates_all_remote_copies() {
        let mut caches = machine(3);
        caches[1].fill(CacheLine::new(blk(0), Moesi::Shared));
        caches[2].fill(CacheLine::new(blk(0), Moesi::Shared));
        let out = supply(&mut caches, 0, blk(0), true, true, false, None);
        assert_eq!(out.new_state, Moesi::Modified);
        assert_eq!(out.invalidations, 2);
        assert!(caches[1].line(blk(0)).is_none());
        assert!(caches[2].line(blk(0)).is_none());
        assert_eq!(caches[1].l2_stats().coherence_invalidations, 1);
    }

    #[test]
    fn write_miss_returns_displaced_tx_lines() {
        let mut caches = machine(2);
        let mut line = CacheLine::new(blk(0), Moesi::Modified);
        line.tx_meta_for(TxId(5)).record_write(WordIdx(0));
        caches[1].fill(line);
        let out = supply(&mut caches, 0, blk(0), true, true, false, None);
        assert_eq!(out.displaced_tx.len(), 1);
        assert!(out.displaced_tx[0].is_owned_by(TxId(5)));
        assert_eq!(out.source, DataSource::OtherCache, "dirty remote supplies");
    }

    #[test]
    fn peek_remote_reports_tx_metadata_only() {
        let mut caches = machine(3);
        caches[1].fill(CacheLine::new(blk(0), Moesi::Shared));
        let mut tx_line = CacheLine::new(blk(0), Moesi::Shared);
        tx_line.tx_meta_for(TxId(2)).record_read(WordIdx(1));
        caches[2].fill(tx_line);
        let uses: Vec<_> = peek_remote_tx_use(&caches, 0, blk(0)).collect();
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].core, 2);
        assert_eq!(uses[0].meta.tx, TxId(2));
        assert!(uses[0].meta.read);
    }

    #[test]
    fn peek_remote_skips_requester() {
        let mut caches = machine(2);
        let mut line = CacheLine::new(blk(0), Moesi::Modified);
        line.tx_meta_for(TxId(1));
        caches[0].fill(line);
        assert!(peek_remote_tx_use(&caches, 0, blk(0)).next().is_none());
    }

    #[test]
    fn commit_clears_tx_tags_but_keeps_lines() {
        let mut h = Hierarchy::with_default_config();
        let mut line = CacheLine::new(blk(0), Moesi::Modified);
        line.tx_meta_for(TxId(1)).record_write(WordIdx(0));
        h.fill(line);
        h.fill(CacheLine::new(blk(1), Moesi::Shared));
        let n = commit_tx_lines(&mut h, TxId(1));
        assert_eq!(n, 1);
        let l = h.line(blk(0)).unwrap();
        assert!(!l.is_transactional());
        assert_eq!(l.state(), Moesi::Modified, "committed dirty data stays");
    }

    #[test]
    fn abort_invalidates_dirty_and_clears_clean() {
        let mut h = Hierarchy::with_default_config();
        let mut dirty = CacheLine::new(blk(0), Moesi::Modified);
        dirty.tx_meta_for(TxId(1)).record_write(WordIdx(0));
        h.fill(dirty);
        let mut clean = CacheLine::new(blk(1), Moesi::Shared);
        clean.tx_meta_for(TxId(1)).record_read(WordIdx(0));
        h.fill(clean);
        let (d, c) = abort_tx_lines(&mut h, TxId(1));
        assert_eq!((d, c), (1, 1));
        assert!(h.line(blk(0)).is_none(), "speculative data discarded");
        let l = h.line(blk(1)).unwrap();
        assert!(!l.is_transactional(), "clean line survives untagged");
    }

    #[test]
    fn abort_leaves_other_transactions_alone() {
        let mut h = Hierarchy::with_default_config();
        let mut other = CacheLine::new(blk(2), Moesi::Modified);
        other.tx_meta_for(TxId(9)).record_write(WordIdx(0));
        h.fill(other);
        abort_tx_lines(&mut h, TxId(1));
        assert!(h.line(blk(2)).unwrap().is_owned_by(TxId(9)));
    }

    #[test]
    fn flush_keeps_transactional_lines() {
        let mut h = Hierarchy::with_default_config();
        let mut tx_line = CacheLine::new(blk(0), Moesi::Modified);
        tx_line.tx_meta_for(TxId(1)).record_write(WordIdx(0));
        h.fill(tx_line);
        h.fill(CacheLine::new(blk(1), Moesi::Shared));
        h.fill(CacheLine::new(blk(2), Moesi::Exclusive));
        let dropped = flush_non_tx_lines(&mut h);
        assert_eq!(dropped, 2);
        assert!(h.line(blk(0)).is_some(), "tagged tx line survives switch");
        assert!(h.line(blk(1)).is_none());
    }
}
