//! A generic set-associative cache array with LRU replacement.

use crate::config::CacheConfig;
use crate::line::{CacheLine, Moesi};
use crate::stats::CacheStats;
use ptm_types::{PhysBlock, BLOCK_SIZE};

/// A line displaced from the array by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The displaced line (its transactional metadata drives overflow
    /// handling in PTM/VTM).
    pub line: CacheLine,
}

/// A set-associative array of [`CacheLine`]s with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use ptm_cache::{CacheArray, CacheConfig, CacheLine, Moesi};
/// use ptm_types::{BlockIdx, FrameId, PhysBlock};
///
/// let mut c = CacheArray::new(CacheConfig::tiny(2, 1));
/// let b = PhysBlock::new(FrameId(0), BlockIdx(0));
/// assert!(c.insert(CacheLine::new(b, Moesi::Exclusive)).is_none());
/// assert!(c.contains(b));
/// ```
#[derive(Debug)]
pub struct CacheArray {
    cfg: CacheConfig,
    sets: Vec<Vec<CacheLine>>,
    clock: u64,
    stats: CacheStats,
}

impl CacheArray {
    /// Creates an empty array.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        CacheArray {
            cfg,
            sets: (0..cfg.sets)
                .map(|_| Vec::with_capacity(cfg.ways))
                .collect(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The array's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_index(&self, block: PhysBlock) -> usize {
        let block_number = block.addr().0 / BLOCK_SIZE as u64;
        (block_number as usize) & (self.cfg.sets - 1)
    }

    /// Returns `true` if the block is present (any valid state).
    pub fn contains(&self, block: PhysBlock) -> bool {
        self.sets[self.set_index(block)]
            .iter()
            .any(|l| l.block() == block && l.state() != Moesi::Invalid)
    }

    /// Read-only lookup (does not update LRU).
    pub fn get(&self, block: PhysBlock) -> Option<&CacheLine> {
        self.sets[self.set_index(block)]
            .iter()
            .find(|l| l.block() == block && l.state() != Moesi::Invalid)
    }

    /// Mutable lookup; refreshes the line's LRU position.
    pub fn get_mut(&mut self, block: PhysBlock) -> Option<&mut CacheLine> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(block);
        let line = self.sets[idx]
            .iter_mut()
            .find(|l| l.block() == block && l.state() != Moesi::Invalid)?;
        line.lru = clock;
        Some(line)
    }

    /// Inserts a line, returning the LRU victim if the set was full.
    ///
    /// Re-inserting a block that is already present replaces its line in
    /// place (no eviction).
    pub fn insert(&mut self, mut line: CacheLine) -> Option<Eviction> {
        self.clock += 1;
        line.lru = self.clock;
        let idx = self.set_index(line.block());
        let set = &mut self.sets[idx];

        if let Some(existing) = set
            .iter_mut()
            .find(|l| l.block() == line.block() && l.state() != Moesi::Invalid)
        {
            *existing = line;
            return None;
        }

        if set.len() < self.cfg.ways {
            set.push(line);
            return None;
        }

        // Evict the least recently used way.
        let (victim_idx, _) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .expect("full set is non-empty");
        let victim = set[victim_idx];
        set[victim_idx] = line;
        self.stats.evictions += 1;
        if victim.is_transactional() {
            self.stats.tx_evictions += 1;
        }
        Some(Eviction { line: victim })
    }

    /// The `(block, lru)` pairs of the set `block` maps to (valid lines
    /// only). An external LRU simulation — the epoch executor's run-ahead
    /// overlay — seeds itself from this view and replays [`insert`]'s
    /// replace-in-place / fill / evict-min-lru behaviour without mutating
    /// the array.
    ///
    /// [`insert`]: CacheArray::insert
    pub fn set_view(&self, block: PhysBlock) -> impl Iterator<Item = (PhysBlock, u64)> + '_ {
        self.sets[self.set_index(block)]
            .iter()
            .filter(|l| l.state() != Moesi::Invalid)
            .map(|l| (l.block(), l.lru))
    }

    /// Removes a block, returning its line.
    pub fn invalidate(&mut self, block: PhysBlock) -> Option<Eviction> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        let pos = set
            .iter()
            .position(|l| l.block() == block && l.state() != Moesi::Invalid)?;
        Some(Eviction {
            line: set.swap_remove(pos),
        })
    }

    /// Iterates over all valid lines.
    pub fn lines(&self) -> impl Iterator<Item = &CacheLine> {
        self.sets
            .iter()
            .flatten()
            .filter(|l| l.state() != Moesi::Invalid)
    }

    /// Mutable iteration over all valid lines.
    pub fn lines_mut(&mut self) -> impl Iterator<Item = &mut CacheLine> {
        self.sets
            .iter_mut()
            .flatten()
            .filter(|l| l.state() != Moesi::Invalid)
    }

    /// Removes all lines matching `pred`, returning them.
    pub fn drain_matching<F>(&mut self, mut pred: F) -> Vec<CacheLine>
    where
        F: FnMut(&CacheLine) -> bool,
    {
        let mut out = Vec::new();
        for set in &mut self.sets {
            let mut i = 0;
            while i < set.len() {
                if set[i].state() != Moesi::Invalid && pred(&set[i]) {
                    out.push(set.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        out
    }

    /// Number of valid lines.
    pub fn len(&self) -> usize {
        self.lines().count()
    }

    /// Returns `true` if the array holds no valid lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Access statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable access statistics.
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_types::{BlockIdx, FrameId, TxId};

    fn blk(n: u64) -> PhysBlock {
        PhysBlock::new(FrameId((n / 64) as u32), BlockIdx((n % 64) as u8))
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = CacheArray::new(CacheConfig::tiny(4, 2));
        assert!(c.insert(CacheLine::new(blk(0), Moesi::Shared)).is_none());
        assert!(c.contains(blk(0)));
        assert!(!c.contains(blk(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = CacheArray::new(CacheConfig::tiny(1, 2));
        c.insert(CacheLine::new(blk(0), Moesi::Shared));
        c.insert(CacheLine::new(blk(1), Moesi::Shared));
        // Touch block 0 so block 1 becomes LRU.
        c.get_mut(blk(0)).unwrap();
        let ev = c.insert(CacheLine::new(blk(2), Moesi::Shared)).unwrap();
        assert_eq!(ev.line.block(), blk(1));
        assert!(c.contains(blk(0)));
        assert!(c.contains(blk(2)));
    }

    #[test]
    fn reinsert_existing_block_replaces_in_place() {
        let mut c = CacheArray::new(CacheConfig::tiny(1, 1));
        c.insert(CacheLine::new(blk(0), Moesi::Shared));
        let ev = c.insert(CacheLine::new(blk(0), Moesi::Modified));
        assert!(ev.is_none());
        assert_eq!(c.get(blk(0)).unwrap().state(), Moesi::Modified);
    }

    #[test]
    fn set_conflicts_respect_indexing() {
        // 2 sets: even block numbers to set 0, odd to set 1.
        let mut c = CacheArray::new(CacheConfig::tiny(2, 1));
        c.insert(CacheLine::new(blk(0), Moesi::Shared));
        c.insert(CacheLine::new(blk(1), Moesi::Shared));
        assert_eq!(c.len(), 2, "different sets, no eviction");
        let ev = c.insert(CacheLine::new(blk(2), Moesi::Shared)).unwrap();
        assert_eq!(ev.line.block(), blk(0), "same set as block 0");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = CacheArray::new(CacheConfig::tiny(2, 1));
        c.insert(CacheLine::new(blk(0), Moesi::Modified));
        let ev = c.invalidate(blk(0)).unwrap();
        assert_eq!(ev.line.state(), Moesi::Modified);
        assert!(!c.contains(blk(0)));
        assert!(c.invalidate(blk(0)).is_none());
    }

    #[test]
    fn eviction_stats_count_tx_lines() {
        let mut c = CacheArray::new(CacheConfig::tiny(1, 1));
        let mut tx_line = CacheLine::new(blk(0), Moesi::Modified);
        tx_line.tx_meta_for(TxId(1));
        c.insert(tx_line);
        c.insert(CacheLine::new(blk(2), Moesi::Shared)); // evicts tx line
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().tx_evictions, 1);
    }

    #[test]
    fn drain_matching_extracts_tx_lines() {
        let mut c = CacheArray::new(CacheConfig::tiny(4, 2));
        let mut tx_line = CacheLine::new(blk(0), Moesi::Modified);
        tx_line.tx_meta_for(TxId(7));
        c.insert(tx_line);
        c.insert(CacheLine::new(blk(1), Moesi::Shared));
        let drained = c.drain_matching(|l| l.is_owned_by(TxId(7)));
        assert_eq!(drained.len(), 1);
        assert_eq!(c.len(), 1);
        assert!(c.contains(blk(1)));
    }
}
